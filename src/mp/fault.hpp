// Fault model for the MiniMPI substrate.
//
// The paper's production farm lost processes mid-run; MiniMPI's ranks are
// threads and cannot crash for real, so failures are *scripted*: a FaultPlan
// kills a rank at a chosen point in its batch loop, or drops/delays a chosen
// mailbox delivery. The runtime surfaces the consequences the way a real
// network stack would — a typed CommError on the blocked peers (timeout, or
// peer-declared-dead via the heartbeat failure detector) instead of a hang,
// and a WorldFailure from run_world naming the lost ranks — so the engine's
// elastic runner (engine/recovery.hpp) can rewind to the last checkpoint and
// re-shard the dead rank's photon slice across the survivors. See DESIGN.md,
// "Fault model".
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/error.hpp"

namespace photon {

// Where in a rank's batch loop a scripted kill fires. The three points pin
// the three pipeline states recovery must handle: before any tracing of
// batch k, after the batch's sends are posted but before the matching
// finish, and after the batch's records are applied.
enum class FaultPoint { kBeforeBatch, kMidExchange, kAfterBatch };
const char* fault_point_name(FaultPoint p);

enum class CommErrorKind {
  kTimeout,     // deadline expired after bounded retries; peer may be alive
  kPeerDead,    // peer killed, or declared dead by the failure detector
  kPeerExited,  // peer left the world and can never send again
  kWedged,      // world poisoned by the stuck-run watchdog (poison_all_worlds)
};
const char* comm_error_kind_name(CommErrorKind k);

// Thrown by recv/finish/barrier instead of blocking forever: every blocking
// path in a world with a deadline policy (or a dead rank) resolves to one of
// these. `peer` is the rank waited on (-1 for collectives), `tag` the
// channel (-1 for collectives). Part of the EngineError taxonomy
// (core/error.hpp, EngineErrorKind::kComm — exit code 4); kind() keeps the
// fine-grained CommErrorKind.
class CommError : public EngineError {
 public:
  CommError(CommErrorKind kind, int peer, int tag, const std::string& what)
      : EngineError(EngineErrorKind::kComm, what), kind_(kind), peer_(peer), tag_(tag) {}
  CommErrorKind kind() const { return kind_; }
  int peer() const { return peer_; }
  int tag() const { return tag_; }

 private:
  CommErrorKind kind_;
  int peer_;
  int tag_;
};

// Thrown on the rank a KillFault targets (by Comm::fault_point). Backends
// let it propagate: run_world catches it, records the death, and reports it
// in the WorldFailure after the join.
class RankKilled : public std::runtime_error {
 public:
  RankKilled(int rank, FaultPoint point, std::uint64_t batch);
  int rank;
  FaultPoint point;
  std::uint64_t batch;
};

// Thrown by run_world (after every rank thread joined) when the world lost
// ranks or a communication deadline expired: the run's partial work is gone,
// but the caller knows exactly who died and can re-run at the survivor
// shape from its last checkpoint.
class WorldFailure : public std::runtime_error {
 public:
  WorldFailure(std::vector<int> dead, int aborted, bool timed_out);
  std::vector<int> dead_ranks;  // killed or declared dead, ascending
  int aborted_ranks = 0;        // ranks that unwound on a CommError
  bool timed_out = false;       // some rank hit a deadline (kTimeout)
};

struct KillFault {
  int rank = 0;
  FaultPoint point = FaultPoint::kBeforeBatch;
  std::uint64_t batch = 0;  // batch/window/round index the kill fires at
};

// Drops (or delays) the nth cross-rank delivery on (src,dst,tag), counting
// from 0 in delivery order. Self-deliveries never touch the wire and are
// not counted or faultable.
struct DropFault {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint64_t nth = 0;
};

struct DelayFault {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint64_t nth = 0;
  double delay_s = 0.0;
};

// A scripted set of faults, consulted by the MiniMPI hot paths. Thread-safe;
// every entry fires exactly once. The plan is shared across recovery legs
// (the elastic runner re-runs a failed leg in a fresh world), so a consumed
// kill does not re-fire in the recovered world — which is what lets a
// recovered run complete at the survivor shape.
class FaultPlan {
 public:
  void add_kill(const KillFault& f);
  void add_drop(const DropFault& f);
  void add_delay(const DelayFault& f);

  bool empty() const;

  // Runtime hooks. should_kill consumes a matching armed kill; on_delivery
  // advances the (src,dst,tag) delivery counter, consumes a matching armed
  // drop (returns false: do not deliver) or delay (delay_s set, deliver
  // late). Delivery counters persist across legs like the armed bits.
  bool should_kill(int rank, FaultPoint point, std::uint64_t batch);
  bool on_delivery(int src, int dst, int tag, double& delay_s);

 private:
  mutable std::mutex m_;
  struct Armed {
    bool armed = true;
  };
  struct ArmedKill : Armed {
    KillFault f;
  };
  struct ArmedDrop : Armed {
    DropFault f;
  };
  struct ArmedDelay : Armed {
    DelayFault f;
  };
  std::vector<ArmedKill> kills_;
  std::vector<ArmedDrop> drops_;
  std::vector<ArmedDelay> delays_;
  std::map<std::tuple<int, int, int>, std::uint64_t> delivered_;
};

// Parses a CLI fault spec into `plan`. Entries are ';'-separated, each
// `kind:key=value,...`:
//   kill:rank=R[,batch=K][,point=before|mid|after]
//   drop:src=S,dst=D[,tag=T][,nth=N]
//   delay:src=S,dst=D,ms=M[,tag=T][,nth=N]
// Returns false with a diagnostic in `error` on malformed specs.
bool parse_fault_plan(const std::string& spec, FaultPlan& plan, std::string& error);

// Deadline/heartbeat policy for a world's blocking paths (recv, finish, and
// the barrier under every collective). The defaults preserve the historical
// semantics exactly: block forever, no failure detector.
struct CommPolicy {
  // Per-attempt deadline for a blocked recv/finish/barrier; 0 blocks forever.
  double deadline_s = 0.0;
  // Missed deadlines tolerated before erroring: total blocked time is
  // deadline_s * (1 + backoff + backoff^2 + ... + backoff^retries).
  int retries = 3;
  double backoff = 2.0;
  // When set, ranks publish per-batch liveness counters (Comm::heartbeat)
  // and a waiter whose retries expired declares the peer dead if its counter
  // never advanced while waiting — the failure-detector path. Without it an
  // expired wait is only ever a kTimeout.
  bool heartbeats = false;
  // When set (the default), a scripted kill marks the rank dead immediately
  // and wakes every blocked peer — fail-stop semantics. When cleared the
  // rank dies silently (a partition, not a crash) and only the heartbeat
  // detector can discover it; every blocking path the survivors use must
  // then have a deadline or the world genuinely hangs, as a real one would.
  bool announce_death = true;
};

}  // namespace photon
