#include "mp/minimpi.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace photon {

namespace {
struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Bytes> q;
};
}  // namespace

class World {
 public:
  explicit World(int nranks)
      : nranks_(nranks),
        boxes_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks) *
               static_cast<std::size_t>(kNumTags)),
        reduce_slots_(static_cast<std::size_t>(nranks), 0.0) {}

  int size() const { return nranks_; }

  Mailbox& box(int src, int dst, int tag) {
    return boxes_[(static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks_) +
                   static_cast<std::size_t>(dst)) *
                      static_cast<std::size_t>(kNumTags) +
                  static_cast<std::size_t>(tag)];
  }

  void deliver(int src, int dst, int tag, Bytes msg) {
    Mailbox& b = box(src, dst, tag);
    {
      std::lock_guard<std::mutex> lock(b.m);
      b.q.push_back(std::move(msg));
    }
    b.cv.notify_one();
  }

  // Pops the next message from (src,tag); time spent blocked on an empty
  // mailbox is accumulated into `wait_s` (the overlap telemetry).
  Bytes take(int src, int dst, int tag, double& wait_s) {
    Mailbox& b = box(src, dst, tag);
    std::unique_lock<std::mutex> lock(b.m);
    if (b.q.empty()) {
      const auto start = std::chrono::steady_clock::now();
      b.cv.wait(lock, [&] { return !b.q.empty(); });
      wait_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    }
    Bytes msg = std::move(b.q.front());
    b.q.pop_front();
    return msg;
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_m_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

  // Writes this rank's value, barriers, reduces, barriers again so the slots
  // can be safely reused by the next collective.
  double allreduce(int rank, double v, bool use_max) {
    {
      std::lock_guard<std::mutex> lock(barrier_m_);
      reduce_slots_[static_cast<std::size_t>(rank)] = v;
    }
    barrier();
    double acc = use_max ? reduce_slots_[0] : 0.0;
    for (int r = 0; r < nranks_; ++r) {
      const double x = reduce_slots_[static_cast<std::size_t>(r)];
      if (use_max) {
        acc = x > acc ? x : acc;
      } else {
        acc += x;
      }
    }
    barrier();
    return acc;
  }

  std::atomic<std::uint64_t> total_bytes{0};
  std::atomic<std::uint64_t> total_messages{0};

 private:
  int nranks_;
  std::vector<Mailbox> boxes_;
  std::vector<double> reduce_slots_;

  std::mutex barrier_m_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
};

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, Bytes msg, int tag) {
  if (tag < 0 || tag >= kNumTags) throw std::invalid_argument("MiniMPI: tag out of range");
  if (dst != rank_) {
    bytes_sent_ += msg.size();
    ++messages_sent_;
    world_->total_bytes.fetch_add(msg.size(), std::memory_order_relaxed);
    world_->total_messages.fetch_add(1, std::memory_order_relaxed);
  }
  world_->deliver(rank_, dst, tag, std::move(msg));
}

Bytes Comm::recv(int src, int tag) {
  if (tag < 0 || tag >= kNumTags) throw std::invalid_argument("MiniMPI: tag out of range");
  return world_->take(src, rank_, tag, wait_by_tag_[static_cast<std::size_t>(tag)]);
}

void Comm::barrier() { world_->barrier(); }

PendingExchange Comm::alltoall_start(std::vector<Bytes> outgoing, int tag) {
  const int P = size();
  Bytes self = std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int d = 0; d < P; ++d) {
    if (d == rank_) continue;
    send(d, std::move(outgoing[static_cast<std::size_t>(d)]), tag);
  }
  return PendingExchange(this, tag, std::move(self));
}

std::vector<Bytes> PendingExchange::finish() {
  if (finished_) throw std::logic_error("MiniMPI: PendingExchange finished twice");
  finished_ = true;
  const int P = comm_->size();
  std::vector<Bytes> incoming(static_cast<std::size_t>(P));
  incoming[static_cast<std::size_t>(comm_->rank())] = std::move(self_);
  for (int s = 0; s < P; ++s) {
    if (s == comm_->rank()) continue;
    incoming[static_cast<std::size_t>(s)] = comm_->recv(s, tag_);
  }
  return incoming;
}

std::vector<Bytes> Comm::alltoall(std::vector<Bytes> outgoing, int tag) {
  return alltoall_start(std::move(outgoing), tag).finish();
}

double Comm::allreduce_sum(double v) { return world_->allreduce(rank_, v, false); }
double Comm::allreduce_max(double v) { return world_->allreduce(rank_, v, true); }
std::uint64_t Comm::allreduce_sum_u64(std::uint64_t v) {
  // 2^53 headroom is ample for photon counts in one run.
  return static_cast<std::uint64_t>(world_->allreduce(rank_, static_cast<double>(v), false));
}

WorldStats run_world(int nranks, const std::function<void(Comm&)>& fn) {
  World world(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error = nullptr;
  std::mutex error_m;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&world, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_m);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return {world.total_bytes.load(), world.total_messages.load()};
}

}  // namespace photon
