#include "mp/minimpi.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace photon {

namespace {

using Clock = std::chrono::steady_clock;

// A mailbox entry. `visible_at` implements scripted delivery delays: the
// message is queued immediately (FIFO order is preserved — a delayed message
// also delays everything queued behind it, like a stalled TCP stream) but a
// take() will not surrender it before this instant. The default-constructed
// time_point is the epoch, i.e. immediately visible.
struct Msg {
  Bytes bytes;
  Clock::time_point visible_at{};
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Msg> q;
};

// Liveness states per rank. Alive -> exited (fn returned or aborted) or
// alive -> dead (scripted kill with announce, or declared by the failure
// detector). Monotonic: a gone rank never comes back in this world.
constexpr std::uint8_t kAlive = 0;
constexpr std::uint8_t kExited = 1;
constexpr std::uint8_t kDead = 2;

// Live-world registry for poison_all_worlds (the watchdog's wedge path).
// Registration brackets the World lifetime exactly: construct/destruct on the
// run_world caller's stack.
void register_world(World* world);
void deregister_world(World* world);

}  // namespace

class World {
 public:
  enum class TakeStatus { kOk, kTimeout, kPeerGone, kPoisoned };

  World(int nranks, const WorldOptions& options)
      : nranks_(nranks),
        opts_(options),
        boxes_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks) *
               static_cast<std::size_t>(kNumTags)),
        reduce_slots_(static_cast<std::size_t>(nranks), 0.0),
        life_(static_cast<std::size_t>(nranks)),
        hb_(static_cast<std::size_t>(nranks)),
        arrived_(static_cast<std::size_t>(nranks), 0) {
    register_world(this);
  }
  ~World() { deregister_world(this); }
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // The watchdog's wedge path: one-way flag checked by every blocking wait,
  // plus a wake of everything currently blocked. Waiters throw
  // CommError(kWedged), which run_world folds into a WorldFailure.
  void poison() {
    poisoned_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(barrier_m_);
      barrier_cv_.notify_all();
    }
    for (Mailbox& b : boxes_) {
      std::lock_guard<std::mutex> lock(b.m);
      b.cv.notify_all();
    }
  }
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  int size() const { return nranks_; }
  FaultPlan* plan() const { return opts_.plan; }
  const CommPolicy& policy() const { return opts_.policy; }

  Mailbox& box(int src, int dst, int tag) {
    return boxes_[(static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks_) +
                   static_cast<std::size_t>(dst)) *
                      static_cast<std::size_t>(kNumTags) +
                  static_cast<std::size_t>(tag)];
  }

  void deliver(int src, int dst, int tag, Bytes msg, double delay_s) {
    Mailbox& b = box(src, dst, tag);
    Msg entry;
    entry.bytes = std::move(msg);
    if (delay_s > 0.0) {
      entry.visible_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(delay_s));
    }
    {
      std::lock_guard<std::mutex> lock(b.m);
      b.q.push_back(std::move(entry));
    }
    b.cv.notify_one();
  }

  // Pops the next visible message from (src,tag). Every interval spent
  // blocked — including one that ends in a timeout — is accumulated into
  // `wait_s` (the overlap telemetry). deadline_s <= 0 blocks until a message
  // arrives or `src` is known gone; a bounded wait returns kTimeout on
  // expiry. Queued messages from a gone rank are drained before kPeerGone is
  // reported — a dead rank's last posted batch is still valid data.
  TakeStatus take(int src, int dst, int tag, double deadline_s, Bytes& out, double& wait_s) {
    Mailbox& b = box(src, dst, tag);
    std::unique_lock<std::mutex> lock(b.m);
    const bool bounded = deadline_s > 0.0;
    const Clock::time_point deadline =
        bounded ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(deadline_s))
                : Clock::time_point::max();
    for (;;) {
      if (poisoned()) return TakeStatus::kPoisoned;
      const Clock::time_point now = Clock::now();
      if (!b.q.empty()) {
        if (b.q.front().visible_at <= now) {
          out = std::move(b.q.front().bytes);
          b.q.pop_front();
          return TakeStatus::kOk;
        }
        if (bounded && now >= deadline) return TakeStatus::kTimeout;
        Clock::time_point until = b.q.front().visible_at;
        if (deadline < until) until = deadline;
        b.cv.wait_until(lock, until);
        wait_s += std::chrono::duration<double>(Clock::now() - now).count();
        continue;
      }
      if (life_[static_cast<std::size_t>(src)].load(std::memory_order_acquire) != kAlive) {
        return TakeStatus::kPeerGone;
      }
      if (bounded && now >= deadline) return TakeStatus::kTimeout;
      if (bounded) {
        b.cv.wait_until(lock, deadline);
      } else {
        b.cv.wait(lock);
      }
      wait_s += std::chrono::duration<double>(Clock::now() - now).count();
    }
  }

  std::uint8_t life_of(int rank) const {
    return life_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }
  std::uint64_t heartbeat_of(int rank) const {
    return hb_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }
  void set_heartbeat(int rank, std::uint64_t counter) {
    hb_[static_cast<std::size_t>(rank)].store(counter, std::memory_order_release);
  }

  // Records a death for the post-join WorldFailure. Under announce (the
  // fail-stop model) the rank is also marked gone, which wakes and aborts
  // every peer blocked on it; a silent death leaves discovery to the
  // heartbeat detector.
  void record_death(int rank, bool announce) {
    {
      std::lock_guard<std::mutex> lock(record_m_);
      if (std::find(dead_.begin(), dead_.end(), rank) == dead_.end()) dead_.push_back(rank);
    }
    if (announce) mark_gone(rank, kDead);
  }

  // The failure detector's verdict: a peer whose heartbeat went stale
  // through every retry. Same effect as an announced kill.
  void declare_dead(int rank) { record_death(rank, true); }

  void mark_exited(int rank) { mark_gone(rank, kExited); }

  void record_abort(CommErrorKind kind) {
    std::lock_guard<std::mutex> lock(record_m_);
    ++aborted_;
    if (kind == CommErrorKind::kTimeout) timed_out_ = true;
  }

  bool failed() const {
    std::lock_guard<std::mutex> lock(record_m_);
    return !dead_.empty() || aborted_ > 0 || timed_out_;
  }
  WorldFailure make_failure() const {
    std::lock_guard<std::mutex> lock(record_m_);
    std::vector<int> dead = dead_;
    std::sort(dead.begin(), dead.end());
    return WorldFailure(std::move(dead), aborted_, timed_out_);
  }

  void barrier(int rank, std::uint64_t& retries) {
    std::unique_lock<std::mutex> lock(barrier_m_);
    if (any_gone_) throw_collective_abort();
    if (poisoned()) throw_poisoned();
    const std::uint64_t gen = barrier_gen_;
    arrived_[static_cast<std::size_t>(rank)] = 1;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      std::fill(arrived_.begin(), arrived_.end(), char{0});
      barrier_cv_.notify_all();
      return;
    }
    const CommPolicy& pol = opts_.policy;
    const auto released = [&] { return barrier_gen_ != gen; };
    if (pol.deadline_s <= 0.0) {
      // Unbounded wait — but a rank death/exit (or a watchdog poison) still
      // aborts the barrier: the missing participant can never arrive, so
      // waiting on is a hang.
      barrier_cv_.wait(lock, [&] { return released() || any_gone_ || poisoned(); });
      if (released()) return;
      leave_barrier(rank);
      if (poisoned() && !any_gone_) throw_poisoned();
      throw_collective_abort();
    }
    // Baseline heartbeat snapshot: a missing rank whose counter advances
    // during our waits is alive (slow), not dead.
    std::vector<std::uint64_t> hb0(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) hb0[static_cast<std::size_t>(r)] = heartbeat_of(r);
    double d = pol.deadline_s;
    for (int attempt = 0;; ++attempt) {
      const Clock::time_point deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(d));
      barrier_cv_.wait_until(lock, deadline,
                             [&] { return released() || any_gone_ || poisoned(); });
      if (released()) return;
      if (poisoned() && !any_gone_) {
        leave_barrier(rank);
        throw_poisoned();
      }
      if (any_gone_) {
        leave_barrier(rank);
        throw_collective_abort();
      }
      if (attempt < pol.retries) {
        ++retries;
        d *= pol.backoff;
        continue;
      }
      // Out of retries. Declare the missing ranks dead if every one of them
      // has a stale heartbeat; if any is provably alive this is load skew or
      // a lost message, and only a timeout can be reported.
      std::vector<int> stale;
      bool any_advancing = false;
      for (int r = 0; r < nranks_; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (arrived_[ri]) continue;
        if (heartbeat_of(r) != hb0[ri]) {
          any_advancing = true;
        } else {
          stale.push_back(r);
        }
      }
      leave_barrier(rank);
      if (pol.heartbeats && !any_advancing && !stale.empty()) {
        for (const int r : stale) declare_dead_locked(r);
        barrier_cv_.notify_all();
        throw CommError(CommErrorKind::kPeerDead, stale.front(), -1,
                        "MiniMPI: barrier declared stale rank(s) dead");
      }
      throw CommError(CommErrorKind::kTimeout, -1, -1,
                      "MiniMPI: barrier deadline expired");
    }
  }

  // Writes this rank's value, barriers, reduces, barriers again so the slots
  // can be safely reused by the next collective.
  double allreduce(int rank, double v, bool use_max, std::uint64_t& retries) {
    {
      std::lock_guard<std::mutex> lock(barrier_m_);
      reduce_slots_[static_cast<std::size_t>(rank)] = v;
    }
    barrier(rank, retries);
    double acc = use_max ? reduce_slots_[0] : 0.0;
    for (int r = 0; r < nranks_; ++r) {
      const double x = reduce_slots_[static_cast<std::size_t>(r)];
      if (use_max) {
        acc = x > acc ? x : acc;
      } else {
        acc += x;
      }
    }
    barrier(rank, retries);
    return acc;
  }

  std::atomic<std::uint64_t> total_bytes{0};
  std::atomic<std::uint64_t> total_messages{0};

 private:
  // Flags the rank gone (first writer wins), then wakes the barrier and
  // every mailbox a peer could be blocked on. Lock order is barrier_m_ then
  // box mutexes; nothing locks in the opposite order.
  void mark_gone(int rank, std::uint8_t state) {
    std::uint8_t expected = kAlive;
    if (!life_[static_cast<std::size_t>(rank)].compare_exchange_strong(
            expected, state, std::memory_order_acq_rel)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(barrier_m_);
      any_gone_ = true;
      barrier_cv_.notify_all();
    }
    wake_receivers_of(rank);
  }

  // Same as declare_dead but callable while holding barrier_m_ (the barrier
  // detector path): sets the flags directly instead of re-locking.
  void declare_dead_locked(int rank) {
    {
      std::lock_guard<std::mutex> lock(record_m_);
      if (std::find(dead_.begin(), dead_.end(), rank) == dead_.end()) dead_.push_back(rank);
    }
    std::uint8_t expected = kAlive;
    if (life_[static_cast<std::size_t>(rank)].compare_exchange_strong(
            expected, kDead, std::memory_order_acq_rel)) {
      any_gone_ = true;
      wake_receivers_of(rank);
    }
  }

  void wake_receivers_of(int rank) {
    for (int dst = 0; dst < nranks_; ++dst) {
      for (int tag = 0; tag < kNumTags; ++tag) {
        Mailbox& b = box(rank, dst, tag);
        std::lock_guard<std::mutex> lock(b.m);
        b.cv.notify_all();
      }
    }
  }

  // Un-count this rank from the current barrier before throwing, so ranks
  // that arrive later see consistent state (they will abort on any_gone_ or
  // their own deadline, not on a phantom arrival).
  void leave_barrier(int rank) {
    --barrier_count_;
    arrived_[static_cast<std::size_t>(rank)] = 0;
  }

  [[noreturn]] static void throw_poisoned() {
    throw CommError(CommErrorKind::kWedged, -1, -1,
                    "MiniMPI: world poisoned by the stuck-run watchdog");
  }

  [[noreturn]] void throw_collective_abort() {
    bool dead = false;
    for (int r = 0; r < nranks_; ++r) {
      if (life_of(r) == kDead) dead = true;
    }
    throw CommError(dead ? CommErrorKind::kPeerDead : CommErrorKind::kPeerExited, -1, -1,
                    dead ? "MiniMPI: barrier aborted (rank dead)"
                         : "MiniMPI: barrier aborted (rank left the world)");
  }

  int nranks_;
  WorldOptions opts_;
  std::vector<Mailbox> boxes_;
  std::vector<double> reduce_slots_;
  std::vector<std::atomic<std::uint8_t>> life_;
  std::vector<std::atomic<std::uint64_t>> hb_;

  std::mutex barrier_m_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<char> arrived_;  // guarded by barrier_m_
  bool any_gone_ = false;      // guarded by barrier_m_

  std::atomic<bool> poisoned_{false};

  mutable std::mutex record_m_;
  std::vector<int> dead_;
  int aborted_ = 0;
  bool timed_out_ = false;
};

namespace {

std::mutex g_worlds_m;
std::vector<World*> g_worlds;

void register_world(World* world) {
  std::lock_guard<std::mutex> lock(g_worlds_m);
  g_worlds.push_back(world);
}

void deregister_world(World* world) {
  std::lock_guard<std::mutex> lock(g_worlds_m);
  g_worlds.erase(std::remove(g_worlds.begin(), g_worlds.end(), world), g_worlds.end());
}

}  // namespace

void poison_all_worlds() {
  // The registry lock brackets every World's lifetime, so each pointer here
  // is live for the duration of its poison() call.
  std::lock_guard<std::mutex> lock(g_worlds_m);
  for (World* world : g_worlds) world->poison();
}

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, Bytes msg, int tag) {
  if (tag < 0 || tag >= kNumTags) throw std::invalid_argument("MiniMPI: tag out of range");
  double delay_s = 0.0;
  if (dst != rank_) {
    bytes_sent_ += msg.size();
    ++messages_sent_;
    world_->total_bytes.fetch_add(msg.size(), std::memory_order_relaxed);
    world_->total_messages.fetch_add(1, std::memory_order_relaxed);
    if (FaultPlan* plan = world_->plan()) {
      // A dropped delivery was sent (the counters above stand) but never
      // arrives; a delayed one arrives late. Self-deliveries are not on the
      // wire and not faultable.
      if (!plan->on_delivery(rank_, dst, tag, delay_s)) return;
    }
  }
  world_->deliver(rank_, dst, tag, std::move(msg), delay_s);
}

Bytes Comm::recv(int src, int tag) { return recv_deadline(src, tag, world_->policy().deadline_s); }

Bytes Comm::recv(int src, int tag, double deadline_s) {
  return recv_deadline(src, tag, deadline_s);
}

Bytes Comm::recv_deadline(int src, int tag, double deadline_s) {
  if (tag < 0 || tag >= kNumTags) throw std::invalid_argument("MiniMPI: tag out of range");
  double& wait_ref = wait_by_tag_[static_cast<std::size_t>(tag)];
  const auto throw_gone = [&]() -> Bytes {
    const bool dead = world_->life_of(src) == kDead;
    std::ostringstream what;
    what << "MiniMPI: recv from rank " << src << " tag " << tag
         << (dead ? ": peer dead" : ": peer left the world with nothing queued");
    throw CommError(dead ? CommErrorKind::kPeerDead : CommErrorKind::kPeerExited, src, tag,
                    what.str());
  };
  const auto throw_poisoned = [&]() -> Bytes {
    std::ostringstream what;
    what << "MiniMPI: recv from rank " << src << " tag " << tag
         << ": world poisoned by the stuck-run watchdog";
    throw CommError(CommErrorKind::kWedged, src, tag, what.str());
  };
  Bytes out;
  if (deadline_s <= 0.0) {
    const World::TakeStatus st = world_->take(src, rank_, tag, 0.0, out, wait_ref);
    if (st == World::TakeStatus::kOk) return out;
    if (st == World::TakeStatus::kPoisoned) return throw_poisoned();
    return throw_gone();  // kPeerGone — an unbounded take cannot time out
  }
  const CommPolicy& pol = world_->policy();
  double d = deadline_s;
  std::uint64_t hb_last = world_->heartbeat_of(src);
  bool advanced = false;
  for (int attempt = 0;; ++attempt) {
    const World::TakeStatus st = world_->take(src, rank_, tag, d, out, wait_ref);
    if (st == World::TakeStatus::kOk) return out;
    if (st == World::TakeStatus::kPoisoned) return throw_poisoned();
    if (st == World::TakeStatus::kPeerGone) return throw_gone();
    const std::uint64_t hb = world_->heartbeat_of(src);
    if (hb != hb_last) {
      advanced = true;
      hb_last = hb;
    }
    if (attempt >= pol.retries) {
      std::ostringstream what;
      if (pol.heartbeats && !advanced) {
        // Missed-deadline threshold reached and the peer's liveness counter
        // never moved: the failure detector declares it dead, waking every
        // other rank blocked on it.
        world_->declare_dead(src);
        what << "MiniMPI: rank " << src << " declared dead after " << (attempt + 1)
             << " missed deadlines on tag " << tag;
        throw CommError(CommErrorKind::kPeerDead, src, tag, what.str());
      }
      what << "MiniMPI: recv from rank " << src << " tag " << tag << " timed out after "
           << (attempt + 1) << " attempts";
      throw CommError(CommErrorKind::kTimeout, src, tag, what.str());
    }
    ++deadline_retries_;
    d *= pol.backoff;
  }
}

void Comm::barrier() { world_->barrier(rank_, deadline_retries_); }

void Comm::heartbeat(std::uint64_t counter) { world_->set_heartbeat(rank_, counter); }

void Comm::fault_point(FaultPoint point, std::uint64_t index) {
  FaultPlan* plan = world_->plan();
  if (!plan || !plan->should_kill(rank_, point, index)) return;
  world_->record_death(rank_, world_->policy().announce_death);
  throw RankKilled(rank_, point, index);
}

PendingExchange Comm::alltoall_start(std::vector<Bytes> outgoing, int tag) {
  const int P = size();
  Bytes self = std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int d = 0; d < P; ++d) {
    if (d == rank_) continue;
    send(d, std::move(outgoing[static_cast<std::size_t>(d)]), tag);
  }
  return PendingExchange(this, tag, std::move(self));
}

std::vector<Bytes> PendingExchange::finish() {
  return finish(comm_->world_->policy().deadline_s);
}

std::vector<Bytes> PendingExchange::finish(double deadline_s) {
  if (finished_) throw std::logic_error("MiniMPI: PendingExchange finished twice");
  finished_ = true;
  const int P = comm_->size();
  std::vector<Bytes> incoming(static_cast<std::size_t>(P));
  incoming[static_cast<std::size_t>(comm_->rank())] = std::move(self_);
  for (int s = 0; s < P; ++s) {
    if (s == comm_->rank()) continue;
    incoming[static_cast<std::size_t>(s)] = comm_->recv(s, tag_, deadline_s);
  }
  return incoming;
}

std::vector<Bytes> Comm::alltoall(std::vector<Bytes> outgoing, int tag) {
  return alltoall_start(std::move(outgoing), tag).finish();
}

double Comm::allreduce_sum(double v) {
  return world_->allreduce(rank_, v, false, deadline_retries_);
}
double Comm::allreduce_max(double v) {
  return world_->allreduce(rank_, v, true, deadline_retries_);
}
std::uint64_t Comm::allreduce_sum_u64(std::uint64_t v) {
  // 2^53 headroom is ample for photon counts in one run.
  return static_cast<std::uint64_t>(
      world_->allreduce(rank_, static_cast<double>(v), false, deadline_retries_));
}

WorldStats run_world(int nranks, const WorldOptions& options,
                     const std::function<void(Comm&)>& fn) {
  World world(nranks, options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error = nullptr;
  std::mutex error_m;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&world, r);
      try {
        fn(comm);
        world.mark_exited(r);
      } catch (const RankKilled&) {
        // Scripted death: recorded by fault_point. Under announce_death the
        // rank is already marked gone; a silent death leaves no trace here —
        // the zombie is for the heartbeat detector to find.
      } catch (const CommError& e) {
        // Collateral abort: this rank was blocked on a failure elsewhere (or
        // hit its own deadline). Not a program error — folded into the
        // post-join WorldFailure.
        world.record_abort(e.kind());
        world.mark_exited(r);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_m);
          if (!first_error) first_error = std::current_exception();
        }
        world.mark_exited(r);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  if (world.failed()) throw world.make_failure();
  return {world.total_bytes.load(), world.total_messages.load()};
}

WorldStats run_world(int nranks, const std::function<void(Comm&)>& fn) {
  return run_world(nranks, WorldOptions{}, fn);
}

}  // namespace photon
