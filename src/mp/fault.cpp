#include "mp/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

namespace photon {

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kBeforeBatch: return "before-batch";
    case FaultPoint::kMidExchange: return "mid-exchange";
    case FaultPoint::kAfterBatch: return "after-batch";
  }
  return "?";
}

const char* comm_error_kind_name(CommErrorKind k) {
  switch (k) {
    case CommErrorKind::kTimeout: return "timeout";
    case CommErrorKind::kPeerDead: return "peer-dead";
    case CommErrorKind::kPeerExited: return "peer-exited";
    case CommErrorKind::kWedged: return "wedged";
  }
  return "?";
}

namespace {
std::string kill_message(int rank, FaultPoint point, std::uint64_t batch) {
  std::ostringstream out;
  out << "MiniMPI: rank " << rank << " killed " << fault_point_name(point) << " " << batch;
  return out.str();
}

std::string failure_message(const std::vector<int>& dead, int aborted, bool timed_out) {
  std::ostringstream out;
  out << "MiniMPI: world failed (";
  if (dead.empty()) {
    out << "no rank deaths";
  } else {
    out << "dead ranks";
    for (const int r : dead) out << " " << r;
  }
  out << ", " << aborted << " aborted";
  if (timed_out) out << ", deadline expired";
  out << ")";
  return out.str();
}
}  // namespace

RankKilled::RankKilled(int rank_, FaultPoint point_, std::uint64_t batch_)
    : std::runtime_error(kill_message(rank_, point_, batch_)),
      rank(rank_),
      point(point_),
      batch(batch_) {}

WorldFailure::WorldFailure(std::vector<int> dead, int aborted, bool timed_out_)
    : std::runtime_error(failure_message(dead, aborted, timed_out_)),
      dead_ranks(std::move(dead)),
      aborted_ranks(aborted),
      timed_out(timed_out_) {}

void FaultPlan::add_kill(const KillFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  kills_.push_back({{}, f});
}

void FaultPlan::add_drop(const DropFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  drops_.push_back({{}, f});
}

void FaultPlan::add_delay(const DelayFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  delays_.push_back({{}, f});
}

bool FaultPlan::empty() const {
  std::lock_guard<std::mutex> lock(m_);
  return kills_.empty() && drops_.empty() && delays_.empty();
}

bool FaultPlan::should_kill(int rank, FaultPoint point, std::uint64_t batch) {
  std::lock_guard<std::mutex> lock(m_);
  for (ArmedKill& k : kills_) {
    if (k.armed && k.f.rank == rank && k.f.point == point && k.f.batch == batch) {
      k.armed = false;
      return true;
    }
  }
  return false;
}

bool FaultPlan::on_delivery(int src, int dst, int tag, double& delay_s) {
  std::lock_guard<std::mutex> lock(m_);
  const std::uint64_t n = delivered_[std::make_tuple(src, dst, tag)]++;
  for (ArmedDrop& d : drops_) {
    if (d.armed && d.f.src == src && d.f.dst == dst && d.f.tag == tag && d.f.nth == n) {
      d.armed = false;
      return false;
    }
  }
  for (ArmedDelay& d : delays_) {
    if (d.armed && d.f.src == src && d.f.dst == dst && d.f.tag == tag && d.f.nth == n) {
      d.armed = false;
      delay_s = d.f.delay_s;
      break;
    }
  }
  return true;
}

namespace {

// One key=value field of a fault entry; numeric values parse with strtod so
// "ms=0.5" works.
bool split_field(const std::string& field, std::string& key, std::string& value) {
  const std::size_t eq = field.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= field.size()) return false;
  key = field.substr(0, eq);
  value = field.substr(eq + 1);
  return true;
}

// Strict full-string numeric parses: trailing garbage, empty values, and
// out-of-range numbers are errors, never silent zeros (the old strtod with a
// null end pointer read "rank=x" as rank 0 — exactly the wrong rank to kill).
bool parse_u64_strict(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int_strict(const std::string& s, int& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_double_strict(const std::string& s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_entry(const std::string& entry, FaultPlan& plan, std::string& error) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) {
    error = "fault entry '" + entry + "' has no kind (expected kill:/drop:/delay:)";
    return false;
  }
  const std::string kind = entry.substr(0, colon);
  std::map<std::string, std::string> fields;
  std::stringstream rest(entry.substr(colon + 1));
  std::string field;
  while (std::getline(rest, field, ',')) {
    std::string key, value;
    if (!split_field(field, key, value)) {
      error = "fault entry '" + entry + "': malformed field '" + field + "'";
      return false;
    }
    if (!fields.emplace(key, value).second) {
      error = "fault entry '" + entry + "': duplicate key '" + key + "'";
      return false;
    }
  }
  // Typed field accessors over the split map. Each marks its key consumed;
  // leftovers are rejected below so a typo ("nht=3") can never silently
  // disable a fault.
  const auto get_int = [&](const char* key, int& out, bool& present) {
    const auto it = fields.find(key);
    present = it != fields.end();
    if (!present) return true;
    if (!parse_int_strict(it->second, out) || out < 0) {
      error = "fault entry '" + entry + "': " + key + "= needs a non-negative integer, got '" +
              it->second + "'";
      return false;
    }
    fields.erase(it);
    return true;
  };
  const auto get_u64 = [&](const char* key, std::uint64_t& out, bool& present) {
    const auto it = fields.find(key);
    present = it != fields.end();
    if (!present) return true;
    if (!parse_u64_strict(it->second, out)) {
      error = "fault entry '" + entry + "': " + key + "= needs a non-negative integer, got '" +
              it->second + "'";
      return false;
    }
    fields.erase(it);
    return true;
  };
  const auto reject_leftovers = [&] {
    if (fields.empty()) return true;
    error = "fault entry '" + entry + "': unknown key '" + fields.begin()->first + "'";
    return false;
  };
  bool present = false;
  if (kind == "kill") {
    KillFault f;
    if (!get_int("rank", f.rank, present)) return false;
    if (!present) {
      error = "kill entry needs rank=";
      return false;
    }
    if (!get_u64("batch", f.batch, present)) return false;
    const auto it = fields.find("point");
    if (it != fields.end()) {
      if (it->second == "before") {
        f.point = FaultPoint::kBeforeBatch;
      } else if (it->second == "mid") {
        f.point = FaultPoint::kMidExchange;
      } else if (it->second == "after") {
        f.point = FaultPoint::kAfterBatch;
      } else {
        error = "kill entry: unknown point '" + it->second + "' (before|mid|after)";
        return false;
      }
      fields.erase(it);
    }
    if (!reject_leftovers()) return false;
    plan.add_kill(f);
    return true;
  }
  if (kind == "drop" || kind == "delay") {
    int src = 0, dst = 0, tag = 0;
    std::uint64_t nth = 0;
    bool have_src = false, have_dst = false;
    if (!get_int("src", src, have_src) || !get_int("dst", dst, have_dst)) return false;
    if (!have_src || !have_dst) {
      error = kind + " entry needs src= and dst=";
      return false;
    }
    if (!get_int("tag", tag, present)) return false;
    if (!get_u64("nth", nth, present)) return false;
    if (kind == "drop") {
      if (!reject_leftovers()) return false;
      plan.add_drop({src, dst, tag, nth});
      return true;
    }
    double ms = -1.0;
    const auto it = fields.find("ms");
    if (it == fields.end() || !parse_double_strict(it->second, ms) || ms < 0.0) {
      error = "delay entry needs ms= >= 0";
      return false;
    }
    fields.erase(it);
    if (!reject_leftovers()) return false;
    plan.add_delay({src, dst, tag, nth, ms / 1000.0});
    return true;
  }
  error = "unknown fault kind '" + kind + "' (kill|drop|delay)";
  return false;
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlan& plan, std::string& error) {
  std::stringstream in(spec);
  std::string entry;
  bool any = false;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    if (!parse_entry(entry, plan, error)) return false;
    any = true;
  }
  if (!any) {
    error = "empty fault plan";
    return false;
  }
  return true;
}

}  // namespace photon
