#include "mp/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace photon {

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kBeforeBatch: return "before-batch";
    case FaultPoint::kMidExchange: return "mid-exchange";
    case FaultPoint::kAfterBatch: return "after-batch";
  }
  return "?";
}

const char* comm_error_kind_name(CommErrorKind k) {
  switch (k) {
    case CommErrorKind::kTimeout: return "timeout";
    case CommErrorKind::kPeerDead: return "peer-dead";
    case CommErrorKind::kPeerExited: return "peer-exited";
  }
  return "?";
}

namespace {
std::string kill_message(int rank, FaultPoint point, std::uint64_t batch) {
  std::ostringstream out;
  out << "MiniMPI: rank " << rank << " killed " << fault_point_name(point) << " " << batch;
  return out.str();
}

std::string failure_message(const std::vector<int>& dead, int aborted, bool timed_out) {
  std::ostringstream out;
  out << "MiniMPI: world failed (";
  if (dead.empty()) {
    out << "no rank deaths";
  } else {
    out << "dead ranks";
    for (const int r : dead) out << " " << r;
  }
  out << ", " << aborted << " aborted";
  if (timed_out) out << ", deadline expired";
  out << ")";
  return out.str();
}
}  // namespace

RankKilled::RankKilled(int rank_, FaultPoint point_, std::uint64_t batch_)
    : std::runtime_error(kill_message(rank_, point_, batch_)),
      rank(rank_),
      point(point_),
      batch(batch_) {}

WorldFailure::WorldFailure(std::vector<int> dead, int aborted, bool timed_out_)
    : std::runtime_error(failure_message(dead, aborted, timed_out_)),
      dead_ranks(std::move(dead)),
      aborted_ranks(aborted),
      timed_out(timed_out_) {}

void FaultPlan::add_kill(const KillFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  kills_.push_back({{}, f});
}

void FaultPlan::add_drop(const DropFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  drops_.push_back({{}, f});
}

void FaultPlan::add_delay(const DelayFault& f) {
  std::lock_guard<std::mutex> lock(m_);
  delays_.push_back({{}, f});
}

bool FaultPlan::empty() const {
  std::lock_guard<std::mutex> lock(m_);
  return kills_.empty() && drops_.empty() && delays_.empty();
}

bool FaultPlan::should_kill(int rank, FaultPoint point, std::uint64_t batch) {
  std::lock_guard<std::mutex> lock(m_);
  for (ArmedKill& k : kills_) {
    if (k.armed && k.f.rank == rank && k.f.point == point && k.f.batch == batch) {
      k.armed = false;
      return true;
    }
  }
  return false;
}

bool FaultPlan::on_delivery(int src, int dst, int tag, double& delay_s) {
  std::lock_guard<std::mutex> lock(m_);
  const std::uint64_t n = delivered_[std::make_tuple(src, dst, tag)]++;
  for (ArmedDrop& d : drops_) {
    if (d.armed && d.f.src == src && d.f.dst == dst && d.f.tag == tag && d.f.nth == n) {
      d.armed = false;
      return false;
    }
  }
  for (ArmedDelay& d : delays_) {
    if (d.armed && d.f.src == src && d.f.dst == dst && d.f.tag == tag && d.f.nth == n) {
      d.armed = false;
      delay_s = d.f.delay_s;
      break;
    }
  }
  return true;
}

namespace {

// One key=value field of a fault entry; numeric values parse with strtod so
// "ms=0.5" works.
bool split_field(const std::string& field, std::string& key, std::string& value) {
  const std::size_t eq = field.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= field.size()) return false;
  key = field.substr(0, eq);
  value = field.substr(eq + 1);
  return true;
}

bool parse_entry(const std::string& entry, FaultPlan& plan, std::string& error) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) {
    error = "fault entry '" + entry + "' has no kind (expected kill:/drop:/delay:)";
    return false;
  }
  const std::string kind = entry.substr(0, colon);
  std::map<std::string, std::string> fields;
  std::stringstream rest(entry.substr(colon + 1));
  std::string field;
  while (std::getline(rest, field, ',')) {
    std::string key, value;
    if (!split_field(field, key, value)) {
      error = "fault entry '" + entry + "': malformed field '" + field + "'";
      return false;
    }
    fields[key] = value;
  }
  const auto num = [&](const char* key, double fallback, bool& present) {
    const auto it = fields.find(key);
    present = it != fields.end();
    return present ? std::strtod(it->second.c_str(), nullptr) : fallback;
  };
  bool present = false;
  if (kind == "kill") {
    KillFault f;
    f.rank = static_cast<int>(num("rank", 0, present));
    if (!present) {
      error = "kill entry needs rank=";
      return false;
    }
    f.batch = static_cast<std::uint64_t>(num("batch", 0, present));
    const auto it = fields.find("point");
    if (it != fields.end()) {
      if (it->second == "before") {
        f.point = FaultPoint::kBeforeBatch;
      } else if (it->second == "mid") {
        f.point = FaultPoint::kMidExchange;
      } else if (it->second == "after") {
        f.point = FaultPoint::kAfterBatch;
      } else {
        error = "kill entry: unknown point '" + it->second + "' (before|mid|after)";
        return false;
      }
    }
    plan.add_kill(f);
    return true;
  }
  if (kind == "drop" || kind == "delay") {
    bool have_src = false, have_dst = false;
    const int src = static_cast<int>(num("src", 0, have_src));
    const int dst = static_cast<int>(num("dst", 0, have_dst));
    if (!have_src || !have_dst) {
      error = kind + " entry needs src= and dst=";
      return false;
    }
    const int tag = static_cast<int>(num("tag", 0, present));
    const auto nth = static_cast<std::uint64_t>(num("nth", 0, present));
    if (kind == "drop") {
      plan.add_drop({src, dst, tag, nth});
      return true;
    }
    const double ms = num("ms", -1.0, present);
    if (!present || ms < 0.0) {
      error = "delay entry needs ms= >= 0";
      return false;
    }
    plan.add_delay({src, dst, tag, nth, ms / 1000.0});
    return true;
  }
  error = "unknown fault kind '" + kind + "' (kill|drop|delay)";
  return false;
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlan& plan, std::string& error) {
  std::stringstream in(spec);
  std::string entry;
  bool any = false;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    if (!parse_entry(entry, plan, error)) return false;
    any = true;
  }
  if (!any) {
    error = "empty fault plan";
    return false;
  }
  return true;
}

}  // namespace photon
