// MiniMPI: an in-process message-passing runtime with MPI-shaped semantics.
//
// The paper implements distributed Photon on MPI; this environment has no MPI
// installation, so the distributed algorithm (Fig 5.3) runs against this
// substrate instead: ranks are threads, each with logically private state,
// exchanging byte buffers through per-(src,dst,tag) mailboxes. Provided
// primitives mirror the MPI subset the paper needs — buffered point-to-point
// send/recv (MPI_Send/MPI_Recv with a small tag space), barrier, all-to-all
// (the photon queue exchange, MPI_Alltoallv), a split-phase all-to-all
// (MPI_Ialltoallv: alltoall_start posts the sends and returns immediately;
// PendingExchange::finish is the matching MPI_Wait) and allreduce (batch-size
// agreement) — plus traffic counters and a blocked-receive clock that feed
// the performance model. See DESIGN.md, "Substitutions".
//
// Fault semantics (mp/fault.hpp; DESIGN.md "Fault model"): a world can run
// under a WorldOptions carrying a scripted FaultPlan and a CommPolicy of
// deadlines/heartbeats. Blocking paths then resolve instead of hanging — a
// typed CommError for a deadline expiry or a dead peer — and run_world
// reports lost ranks as a WorldFailure after all threads joined. The
// no-options overload preserves the historical block-forever semantics
// bit for bit.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "mp/fault.hpp"

namespace photon {

using Bytes = std::vector<std::uint8_t>;

struct WorldStats {
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
};

// Fault-injection and deadline policy for one world. The default — no plan,
// block-forever policy — is exactly the historical behavior.
struct WorldOptions {
  FaultPlan* plan = nullptr;  // not owned; shared across recovery legs
  CommPolicy policy;
};

class World;
class Comm;

// Message channels: a send on one tag can never be received on another, so
// two in-flight exchanges (e.g. the spatial backend's synchronous photon
// migration and its overlapped record drain) keep their streams separate.
inline constexpr int kNumTags = 4;

// Handle for a split-phase all-to-all started with Comm::alltoall_start. The
// outgoing buffers are already on the wire when the handle is returned; the
// incoming buffers are claimed by finish(). Exactly one finish() per handle,
// on the owning rank, before that rank starts another exchange on the same
// tag (mailboxes are FIFO per (src,dst,tag)).
class PendingExchange {
 public:
  // Moves transfer the one finish() permit: the moved-from handle reads as
  // already finished, so two handles can never drain the same exchange.
  PendingExchange(PendingExchange&& other) noexcept
      : comm_(other.comm_), tag_(other.tag_), self_(std::move(other.self_)),
        finished_(other.finished_) {
    other.finished_ = true;
  }
  PendingExchange& operator=(PendingExchange&& other) noexcept {
    comm_ = other.comm_;
    tag_ = other.tag_;
    self_ = std::move(other.self_);
    finished_ = other.finished_;
    other.finished_ = true;
    return *this;
  }
  PendingExchange(const PendingExchange&) = delete;
  PendingExchange& operator=(const PendingExchange&) = delete;

  // Blocks until every rank's buffer has arrived; incoming[s] is from rank s.
  // Under a world deadline policy, throws CommError instead of blocking past
  // the (retried, backed-off) deadline; the handle reads as finished either
  // way, so an aborted exchange cannot be drained twice.
  std::vector<Bytes> finish();
  // Same, with an explicit per-call deadline overriding the world policy
  // (<= 0 blocks forever).
  std::vector<Bytes> finish(double deadline_s);

 private:
  friend class Comm;
  PendingExchange(Comm* comm, int tag, Bytes self) : comm_(comm), tag_(tag), self_(std::move(self)) {}

  Comm* comm_;
  int tag_;
  Bytes self_;
  bool finished_ = false;
};

// Per-rank communicator handle. Not thread-safe across ranks by design: each
// rank owns exactly one Comm, like an MPI process.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // Buffered, non-blocking send (MPI_Send with buffering semantics). Subject
  // to the world's FaultPlan: a scripted drop consumes the message on the
  // wire, a scripted delay makes it visible to the receiver late.
  void send(int dst, Bytes msg, int tag = 0);
  // Blocking receive of the next message from `src` on `tag` (MPI_Recv).
  // Under the world deadline policy this retries with backoff and then
  // throws a typed CommError: kTimeout if the peer's heartbeat advanced (or
  // there is no detector), kPeerDead if the failure detector declared it, or
  // kPeerExited if the peer left the world with nothing queued.
  Bytes recv(int src, int tag = 0);
  // Same, with an explicit deadline overriding the world policy (<= 0 blocks
  // forever — but a dead/exited peer still unblocks with a CommError).
  Bytes recv(int src, int tag, double deadline_s);

  // Under the world deadline policy, throws CommError on expiry (a barrier
  // whose missing ranks have stale heartbeats declares them dead first);
  // any barrier also aborts when a rank is known dead or departed.
  void barrier();

  // Exchanges one buffer with every rank (MPI_Alltoallv): outgoing[d] goes to
  // rank d (outgoing[rank()] is delivered to self); returns incoming[s] from
  // each rank s. Counts as size()-1 messages.
  std::vector<Bytes> alltoall(std::vector<Bytes> outgoing, int tag = 0);

  // Split-phase all-to-all (MPI_Ialltoallv + MPI_Wait): posts every outgoing
  // buffer immediately and returns; the caller keeps computing and claims the
  // incoming buffers later with PendingExchange::finish(). This is what lets
  // a rank trace batch k+1 while batch k's records drain.
  PendingExchange alltoall_start(std::vector<Bytes> outgoing, int tag = 0);

  double allreduce_sum(double v);
  double allreduce_max(double v);
  std::uint64_t allreduce_sum_u64(std::uint64_t v);

  // Publishes this rank's liveness counter (the per-batch heartbeat the
  // failure detector reads). Cheap enough to call unconditionally.
  void heartbeat(std::uint64_t counter);
  // Scripted-kill hook: if the world's FaultPlan has an armed kill for
  // (rank, point, index), marks this rank dead (fail-stop under
  // announce_death, silent otherwise) and throws RankKilled.
  void fault_point(FaultPoint point, std::uint64_t index);
  // Per-batch liveness tick: heartbeat(index) + fault_point(kBeforeBatch).
  void batch_tick(std::uint64_t index) {
    heartbeat(index);
    fault_point(FaultPoint::kBeforeBatch, index);
  }

  // Traffic actually put on the "wire" by this rank (self-delivery excluded).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  // Deadline expiries this rank retried through (recv/finish/barrier): how
  // much slack the CommPolicy absorbed without declaring anything.
  std::uint64_t deadline_retries() const { return deadline_retries_; }

  // Wall time this rank has spent blocked in recv (mailbox empty — the
  // compute/communication overlap metric: a fully overlapped exchange finds
  // every buffer already delivered and adds nothing here). Accounted per tag,
  // so an overlapped exchange's waits can be read separately from a
  // deliberately synchronous one on another tag. Time blocked on an attempt
  // that *timed out* counts too — the wait was real even though no message
  // came. Barrier and allreduce waits are deliberately excluded; they
  // measure load skew, not exchange latency.
  double wait_seconds(int tag) const { return wait_by_tag_[static_cast<std::size_t>(tag)]; }
  double wait_seconds() const {
    double total = 0.0;
    for (const double w : wait_by_tag_) total += w;
    return total;
  }

 private:
  friend class World;
  friend class PendingExchange;
  friend WorldStats run_world(int nranks, const WorldOptions& options,
                              const std::function<void(Comm&)>& fn);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  Bytes recv_deadline(int src, int tag, double deadline_s);

  World* world_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t deadline_retries_ = 0;
  std::array<double, kNumTags> wait_by_tag_{};
};

// Runs `fn` on `nranks` concurrent ranks and joins them. The first exception
// thrown by any rank is rethrown after all ranks finish or abort — except
// the fault paths: scripted kills (RankKilled) and the CommErrors they
// cascade into are collected instead, and reported as one WorldFailure after
// the join when any rank died or timed out.
WorldStats run_world(int nranks, const WorldOptions& options,
                     const std::function<void(Comm&)>& fn);
// Historical entry point: no faults, block-forever policy.
WorldStats run_world(int nranks, const std::function<void(Comm&)>& fn);

// Poisons every live world (a global registry tracks them): all blocked and
// future mailbox waits, barriers and collectives throw
// CommError(CommErrorKind::kWedged) instead of blocking. The watchdog's
// wedge path (engine/governor.hpp): turns a hung world into a typed
// WorldFailure the elastic runner can convert into a WedgedError. One-way
// per world; new worlds start unpoisoned.
void poison_all_worlds();

}  // namespace photon
