// MiniMPI: an in-process message-passing runtime with MPI-shaped semantics.
//
// The paper implements distributed Photon on MPI; this environment has no MPI
// installation, so the distributed algorithm (Fig 5.3) runs against this
// substrate instead: ranks are threads, each with logically private state,
// exchanging byte buffers through per-(src,dst) mailboxes. Provided
// primitives mirror the MPI subset the paper needs — buffered point-to-point
// send/recv, barrier, all-to-all (the photon queue exchange), and allreduce
// (batch-size agreement) — plus traffic counters that feed the performance
// model. See DESIGN.md, "Substitutions".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace photon {

using Bytes = std::vector<std::uint8_t>;

struct WorldStats {
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
};

class World;

// Per-rank communicator handle. Not thread-safe across ranks by design: each
// rank owns exactly one Comm, like an MPI process.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // Buffered, non-blocking send (MPI_Send with buffering semantics).
  void send(int dst, Bytes msg);
  // Blocking receive of the next message from `src` (MPI_Recv).
  Bytes recv(int src);

  void barrier();

  // Exchanges one buffer with every rank (MPI_Alltoallv): outgoing[d] goes to
  // rank d (outgoing[rank()] is delivered to self); returns incoming[s] from
  // each rank s. Counts as size()-1 messages.
  std::vector<Bytes> alltoall(std::vector<Bytes> outgoing);

  double allreduce_sum(double v);
  double allreduce_max(double v);
  std::uint64_t allreduce_sum_u64(std::uint64_t v);

  // Traffic actually put on the "wire" by this rank (self-delivery excluded).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  friend class World;
  friend WorldStats run_world(int nranks, const std::function<void(Comm&)>& fn);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

// Runs `fn` on `nranks` concurrent ranks and joins them. The first exception
// thrown by any rank is rethrown after all ranks finish or abort.
WorldStats run_world(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace photon
