// The elastic runner: checkpointed legs + rank-failure recovery on top of
// any Backend.
//
// run_elastic cuts a run into legs of config.checkpoint_photons photons and
// holds the last completed leg's RunResult as an in-memory checkpoint (the
// same object checkpoint v2 serializes). When a leg dies with a WorldFailure
// — a scripted kill, or the heartbeat detector declaring a rank dead
// (mp/fault.hpp) — the runner rewinds to that checkpoint, removes the dead
// ranks from the parallel width (groups for hybrid, workers for the dist
// backends), and re-runs the open leg at the survivor shape: the dead rank's
// photon-id slice re-shards across the survivors automatically because every
// backend derives its slice from (width, rank).
//
// Determinism after recovery (DESIGN.md "Fault model"): hybrid is bitwise
// shape-invariant and legs align to window boundaries, so a recovered run is
// bitwise equal to an undisturbed run at the survivor shape. dist-particle
// and dist-spatial recover with conserved tallies but not bitwise equality —
// dist-particle's leapfrog streams are shape-bound (its resume degrades to
// disjoint-block streams, the conservative re-trace), and dist-spatial's
// record interleaving is shape-dependent.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// Runs `backend` to config.photons total, recovering from WorldFailures as
// above. With no faults, no deadline policy, and checkpoint_photons == 0
// this is exactly one backend.run() call. Throws the last WorldFailure when
// the width would drop below 1 or config.max_recoveries is exhausted; other
// exceptions propagate untouched. `stats` (and result.recovery) report what
// happened.
RunResult run_elastic(Backend& backend, const Scene& scene, const RunConfig& config,
                      const RunResult* resume = nullptr, RecoveryStats* stats = nullptr);

}  // namespace photon
