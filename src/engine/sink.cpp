#include "engine/sink.hpp"

#include <algorithm>

namespace photon {

BufferedForestSink::BufferedForestSink(BinForest& forest, std::vector<std::mutex>& tree_mutexes,
                                       std::size_t flush_threshold)
    : forest_(&forest),
      mutexes_(&tree_mutexes),
      threshold_(std::max<std::size_t>(flush_threshold, 1)) {
  buffer_.reserve(threshold_);
  order_.reserve(threshold_);
}

BufferedForestSink::~BufferedForestSink() { flush(); }

void BufferedForestSink::flush() {
  const std::size_t n = buffer_.size();
  if (n == 0) return;

  // Group records by target tree, stably: equal trees keep recording order.
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = static_cast<std::uint32_t>(i);
  std::sort(order_.begin(), order_.end(), [this](std::uint32_t a, std::uint32_t b) {
    const int ta = BinForest::tree_index(buffer_[a].patch, buffer_[a].front);
    const int tb = BinForest::tree_index(buffer_[b].patch, buffer_[b].front);
    return ta != tb ? ta < tb : a < b;
  });

  std::size_t i = 0;
  while (i < n) {
    const BounceRecord& first = buffer_[order_[i]];
    const int tree_idx = BinForest::tree_index(first.patch, first.front);
    std::lock_guard<std::mutex> lock((*mutexes_)[static_cast<std::size_t>(tree_idx)]);
    BinTree& tree = forest_->tree_at(tree_idx);
    do {
      const BounceRecord& rec = buffer_[order_[i]];
      tree.record(rec.coords, rec.channel);
      ++i;
    } while (i < n &&
             BinForest::tree_index(buffer_[order_[i]].patch, buffer_[order_[i]].front) ==
                 tree_idx);
  }
  buffer_.clear();
}

void RouterSink::apply_incoming(const Bytes& buf) {
  for_each_wire<WireRecord>(buf, [&](const WireRecord& wire) {
    const BounceRecord rec = from_wire(wire);
    forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
    ++(*applied_);
  });
}

}  // namespace photon
