#include "engine/sink.hpp"

#include <algorithm>

namespace photon {

BufferedForestSink::BufferedForestSink(BinForest& forest, std::vector<std::mutex>& tree_mutexes,
                                       std::size_t flush_threshold)
    : forest_(&forest),
      mutexes_(&tree_mutexes),
      threshold_(std::max<std::size_t>(flush_threshold, 1)) {
  buffer_.reserve(threshold_);
  order_.reserve(threshold_);
}

BufferedForestSink::~BufferedForestSink() { flush(); }

void BufferedForestSink::flush() {
  const std::size_t n = buffer_.size();
  if (n == 0) return;

  // Group records by target tree, stably: one precomputed key per record —
  // tree index in the high half, recording position in the low half — so the
  // sort is a single integer compare instead of re-deriving tree_index twice
  // per comparison, and equal trees keep recording order by construction.
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto tree =
        static_cast<std::uint64_t>(BinForest::tree_index(buffer_[i].patch, buffer_[i].front));
    order_[i] = (tree << 32) | static_cast<std::uint32_t>(i);
  }
  std::sort(order_.begin(), order_.end());

  std::size_t i = 0;
  while (i < n) {
    const int tree_idx = static_cast<int>(order_[i] >> 32);
    std::lock_guard<std::mutex> lock((*mutexes_)[static_cast<std::size_t>(tree_idx)]);
    BinTree& tree = forest_->tree_at(tree_idx);
    do {
      const BounceRecord& rec = buffer_[static_cast<std::uint32_t>(order_[i])];
      tree.record(rec.coords, rec.channel);
      ++i;
    } while (i < n && static_cast<int>(order_[i] >> 32) == tree_idx);
  }
  buffer_.clear();
}

void RouterSink::apply_incoming(const Bytes& buf) {
  for_each_wire<WireRecord>(buf, [&](const WireRecord& wire) {
    const BounceRecord rec = from_wire(wire);
    forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
    ++(*applied_);
  });
}

void OrderedRouterSink::apply_batch(const std::vector<BounceRecord>& held,
                                    const std::vector<Bytes>& incoming) {
  const int sources = static_cast<int>(incoming.size());
  for (int s = 0; s < sources; ++s) {
    if (s == rank_) {
      for (const BounceRecord& rec : held) apply_record(rec);
    } else {
      for_each_wire<WireRecord>(incoming[static_cast<std::size_t>(s)],
                                [&](const WireRecord& wire) { apply_record(from_wire(wire)); });
    }
  }
}

}  // namespace photon
