#include "engine/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace photon {

namespace {

// The resume path: keep the previous legs' rows up to the checkpoint
// boundary, drop everything past it. Rows above the boundary are windows a
// preempted/failed leg traced beyond its last checkpoint — the new leg
// replays exactly those windows, so keeping the old rows would write every
// replayed window twice and break the monotone round-trip parse.
std::string rows_at_or_below(const std::string& path, std::uint64_t base_photons) {
  std::ifstream in(path);
  if (!in) return std::string();
  std::ostringstream kept;
  std::string line;
  while (std::getline(in, line)) {
    SpeedPoint sp;
    MemoryPoint mp;
    std::uint64_t photons;
    if (TraceWriter::parse(line, sp)) {
      photons = sp.photons;
    } else if (TraceWriter::parse(line, mp)) {
      photons = mp.photons;
    } else {
      continue;  // foreign line; a rewritten trace file carries only points
    }
    if (photons <= base_photons) kept << line << '\n';
  }
  return kept.str();
}

}  // namespace

// "w", not "a": each fresh run owns its trace file — a stale file from a
// previous run must not prefix this one (the photon sequence would reset
// mid-file and break monotonic consumers). A resumed leg (base_photons > 0)
// instead rewrites the file with the rows at or below the checkpoint
// boundary and appends after them.
TraceWriter::TraceWriter(const std::string& path, std::uint64_t base_photons) {
  std::string kept;
  if (base_photons > 0) kept = rows_at_or_below(path, base_photons);
  file_ = std::fopen(path.c_str(), "w");
  if (!file_) {
    // The run proceeds (telemetry must never kill a simulation), but losing
    // the trace silently would defeat the flag's purpose — say so up front,
    // not after the multi-hour run.
    std::fprintf(stderr, "warning: cannot open trace file '%s'; speed trace disabled\n",
                 path.c_str());
    return;
  }
  if (!kept.empty()) {
    std::fwrite(kept.data(), 1, kept.size(), file_);
    std::fflush(file_);
  }
}

TraceWriter::~TraceWriter() {
  if (file_) std::fclose(file_);
}

void TraceWriter::write(const SpeedPoint& p) {
  if (!file_) return;
  // %.17g round-trips an IEEE-754 double exactly, so parse() reproduces the
  // in-memory point bit for bit.
  std::fprintf(file_, "{\"t\": %.17g, \"photons\": %" PRIu64 ", \"rate\": %.17g}\n", p.time_s,
               p.photons, p.rate);
  std::fflush(file_);  // one point per batch; a crash must not lose the tail
}

void TraceWriter::write(const MemoryPoint& p) {
  if (!file_) return;
  std::fprintf(file_, "{\"photons\": %" PRIu64 ", \"mem_bytes\": %" PRIu64 "}\n", p.photons,
               p.bytes);
  std::fflush(file_);
}

bool TraceWriter::parse(const std::string& line, SpeedPoint& out) {
  SpeedPoint p;
  if (std::sscanf(line.c_str(), "{\"t\": %lg, \"photons\": %" SCNu64 ", \"rate\": %lg}",
                  &p.time_s, &p.photons, &p.rate) != 3) {
    return false;
  }
  out = p;
  return true;
}

bool TraceWriter::parse(const std::string& line, MemoryPoint& out) {
  MemoryPoint p;
  if (std::sscanf(line.c_str(), "{\"photons\": %" SCNu64 ", \"mem_bytes\": %" SCNu64 "}",
                  &p.photons, &p.bytes) != 2) {
    return false;
  }
  out = p;
  return true;
}

}  // namespace photon
