#include "engine/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

namespace photon {

// "w", not "a": each run owns its trace file. Points append per batch within
// the run; a stale file from a previous run must not prefix this one (the
// photon sequence would reset mid-file and break monotonic consumers).
TraceWriter::TraceWriter(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {
  if (!file_) {
    // The run proceeds (telemetry must never kill a simulation), but losing
    // the trace silently would defeat the flag's purpose — say so up front,
    // not after the multi-hour run.
    std::fprintf(stderr, "warning: cannot open trace file '%s'; speed trace disabled\n",
                 path.c_str());
  }
}

TraceWriter::~TraceWriter() {
  if (file_) std::fclose(file_);
}

void TraceWriter::write(const SpeedPoint& p) {
  if (!file_) return;
  // %.17g round-trips an IEEE-754 double exactly, so parse() reproduces the
  // in-memory point bit for bit.
  std::fprintf(file_, "{\"t\": %.17g, \"photons\": %" PRIu64 ", \"rate\": %.17g}\n", p.time_s,
               p.photons, p.rate);
  std::fflush(file_);  // one point per batch; a crash must not lose the tail
}

void TraceWriter::write(const MemoryPoint& p) {
  if (!file_) return;
  std::fprintf(file_, "{\"photons\": %" PRIu64 ", \"mem_bytes\": %" PRIu64 "}\n", p.photons,
               p.bytes);
  std::fflush(file_);
}

bool TraceWriter::parse(const std::string& line, SpeedPoint& out) {
  SpeedPoint p;
  if (std::sscanf(line.c_str(), "{\"t\": %lg, \"photons\": %" SCNu64 ", \"rate\": %lg}",
                  &p.time_s, &p.photons, &p.rate) != 3) {
    return false;
  }
  out = p;
  return true;
}

bool TraceWriter::parse(const std::string& line, MemoryPoint& out) {
  MemoryPoint p;
  if (std::sscanf(line.c_str(), "{\"photons\": %" SCNu64 ", \"mem_bytes\": %" SCNu64 "}",
                  &p.photons, &p.bytes) != 2) {
    return false;
  }
  out = p;
  return true;
}

}  // namespace photon
