#include "engine/telemetry.hpp"

#include <thread>

namespace photon {

void sample_progress(SpeedSampler& sampler, const std::atomic<std::uint64_t>& progress,
                     std::uint64_t total, double interval_s) {
  if (total == 0) return;
  if (interval_s <= 0.0) interval_s = 0.05;
  while (true) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    const std::uint64_t done = progress.load(std::memory_order_relaxed);
    if (done >= total) return;  // finish() records the terminal point
    sampler.sample(done);
  }
}

}  // namespace photon
