#include "engine/governor.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "engine/wire.hpp"
#include "hist/binforest.hpp"
#include "mp/minimpi.hpp"

namespace photon {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kComplete: return "complete";
    case RunStatus::kPreempted: return "preempted";
    case RunStatus::kOverBudget: return "over-budget";
  }
  return "?";
}

// ---- Preemption ------------------------------------------------------------

namespace {

// The whole cross-signal surface: one lock-free flag. The handler stores it
// and returns — no locks, no allocation, no I/O — which is the entirety of
// the async-signal-safety argument (DESIGN.md "Run governance").
std::atomic<bool> g_preempt{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the signal handler may only touch lock-free atomics");

void preempt_signal_handler(int) { g_preempt.store(true, std::memory_order_release); }

}  // namespace

void install_preempt_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  struct sigaction action {};
  action.sa_handler = preempt_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // interrupted syscalls resume; the flag is the signal
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGUSR1, &action, nullptr);
}

void request_preempt() { g_preempt.store(true, std::memory_order_release); }
bool preempt_requested() { return g_preempt.load(std::memory_order_acquire); }
void clear_preempt() { g_preempt.store(false, std::memory_order_release); }

// ---- Stop word -------------------------------------------------------------

namespace {

// Low 13 bits: preempt votes (world width is validated <= 4096 = 2^12, so
// the vote sum can never carry into the footprint field). High bits: forest
// footprint in 64 KiB units (rounded UP, so a small-but-nonzero forest is
// visible to small budgets), capped per rank so even a 4096-rank sum of
// maximal words — including every partial sum of the reduction — stays
// strictly below 2^53: MiniMPI reduces in double, and anything bigger would
// round the vote bits away. 4096 * ((2^27 << 13) | 1) = 2^52 + 2^12.
constexpr int kVoteBits = 13;
constexpr std::uint64_t kVoteMask = (1ull << kVoteBits) - 1;
constexpr int kUnitShift = 16;  // 64 KiB footprint granularity
constexpr std::uint64_t kUnitCap = 1ull << 27;  // 8 TiB per rank

}  // namespace

std::uint64_t encode_stop_word(bool preempt, std::uint64_t forest_bytes) {
  // Overflow-safe ceiling division (a naive `bytes + 65535` wraps at ~0).
  std::uint64_t units =
      (forest_bytes >> kUnitShift) + ((forest_bytes & ((1ull << kUnitShift) - 1)) != 0 ? 1 : 0);
  if (units > kUnitCap) units = kUnitCap;
  return (preempt ? 1ull : 0ull) | (units << kVoteBits);
}

bool stop_word_preempted(std::uint64_t sum) { return (sum & kVoteMask) != 0; }

bool stop_word_over_budget(std::uint64_t sum, std::uint64_t budget_bytes) {
  if (budget_bytes == 0) return false;
  return ((sum >> kVoteBits) << kUnitShift) > budget_bytes;
}

// ---- Progress beacon -------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct Progress::Impl {
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::int64_t> last_ns{-1};

  // Labeled slots: found-or-created under the mutex (ticks are batch-grain,
  // so a lock per tick is noise next to the batch body); unique_ptr keeps
  // addresses stable while the vector grows.
  struct Slot {
    std::string label;
    std::atomic<std::uint64_t> ticks{0};
    std::atomic<std::uint64_t> detail{0};
    std::atomic<std::int64_t> last_ns{-1};
  };
  mutable std::mutex m;
  std::vector<std::unique_ptr<Slot>> slots;
};

Progress::Progress() : impl_(std::make_unique<Impl>()) {}
Progress::~Progress() = default;

Progress& Progress::instance() {
  static Progress beacon;
  return beacon;
}

void Progress::pulse() {
  Impl& i = *impl_;
  i.total.fetch_add(1, std::memory_order_relaxed);
  i.last_ns.store(now_ns(), std::memory_order_relaxed);
}

void Progress::tick(const char* label, std::uint64_t detail) {
  Impl& i = *impl_;
  const std::int64_t t = now_ns();
  i.total.fetch_add(1, std::memory_order_relaxed);
  i.last_ns.store(t, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(i.m);
  for (const std::unique_ptr<Impl::Slot>& s : i.slots) {
    if (s->label == label) {
      s->ticks.fetch_add(1, std::memory_order_relaxed);
      s->detail.store(detail, std::memory_order_relaxed);
      s->last_ns.store(t, std::memory_order_relaxed);
      return;
    }
  }
  auto slot = std::make_unique<Impl::Slot>();
  slot->label = label;
  slot->ticks.store(1, std::memory_order_relaxed);
  slot->detail.store(detail, std::memory_order_relaxed);
  slot->last_ns.store(t, std::memory_order_relaxed);
  i.slots.push_back(std::move(slot));
}

std::uint64_t Progress::total_ticks() const {
  return impl_->total.load(std::memory_order_relaxed);
}

double Progress::seconds_since_tick() const {
  const std::int64_t last = impl_->last_ns.load(std::memory_order_relaxed);
  if (last < 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(now_ns() - last) * 1e-9;
}

ProgressSnapshot Progress::snapshot() const {
  Impl& i = *impl_;
  ProgressSnapshot snap;
  snap.total_ticks = i.total.load(std::memory_order_relaxed);
  snap.stalled_s = seconds_since_tick();
  const std::int64_t t = now_ns();
  std::lock_guard<std::mutex> lock(i.m);
  snap.slots.reserve(i.slots.size());
  for (const std::unique_ptr<Impl::Slot>& s : i.slots) {
    ProgressSlot out;
    out.label = s->label;
    out.ticks = s->ticks.load(std::memory_order_relaxed);
    out.detail = s->detail.load(std::memory_order_relaxed);
    const std::int64_t last = s->last_ns.load(std::memory_order_relaxed);
    out.age_s = last < 0 ? -1.0 : static_cast<double>(t - last) * 1e-9;
    snap.slots.push_back(std::move(out));
  }
  return snap;
}

void Progress::reset() {
  Impl& i = *impl_;
  std::lock_guard<std::mutex> lock(i.m);
  i.slots.clear();
  i.total.store(0, std::memory_order_relaxed);
  i.last_ns.store(-1, std::memory_order_relaxed);
}

// ---- Per-run scope ---------------------------------------------------------

bool preempt_requested(const RunConfig& config) {
  if (config.control) return config.control->preempt_requested();
  return preempt_requested();
}

void acknowledge_preempt(const RunConfig& config) {
  if (config.control) {
    config.control->clear_preempt();
    return;
  }
  clear_preempt();
}

Progress& run_progress(const RunConfig& config) {
  if (config.control) return config.control->progress();
  return Progress::instance();
}

void progress_tick(const RunConfig& config, const char* label, std::uint64_t detail) {
  if (config.control) {
    config.control->progress().tick(label, detail);
    // A scoped job must still register as process liveness: a service-wide
    // watchdog watching the global beacon would otherwise see a busy process
    // as wedged.
    Progress::instance().pulse();
    return;
  }
  Progress::instance().tick(label, detail);
}

std::string ProgressSnapshot::to_string() const {
  std::ostringstream out;
  out << "progress: " << total_ticks << " ticks, stalled " << stalled_s << "s";
  for (const ProgressSlot& s : slots) {
    out << "; " << s.label << ": " << s.ticks << " ticks at index " << s.detail
        << " (" << s.age_s << "s ago)";
  }
  return out.str();
}

// ---- Watchdog --------------------------------------------------------------

struct Watchdog::Impl {
  double deadline_s;
  double grace_s;
  Progress* beacon = nullptr;  // null = the process-global beacon

  Progress& watched() const { return beacon ? *beacon : Progress::instance(); }

  mutable std::mutex m;
  std::condition_variable cv;
  bool stop = false;
  std::function<void(const ProgressSnapshot&)> emergency;
  ProgressSnapshot snap;  // captured at firing

  std::atomic<bool> exit_on_wedge{false};
  std::atomic<bool> fired{false};
  Clock::time_point created = Clock::now();
  std::thread monitor;

  // Age of the last beacon tick, clamped to this watchdog's lifetime so a
  // beacon idle since a previous run does not trip the new watchdog before
  // its run starts ticking.
  double effective_age() const {
    const double since_created =
        std::chrono::duration<double>(Clock::now() - created).count();
    const double since_tick = watched().seconds_since_tick();
    return since_tick < since_created ? since_tick : since_created;
  }

  void monitor_main() {
    const auto slice = std::chrono::duration<double>(
        std::min(std::max(deadline_s / 8.0, 0.01), 0.25));
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      if (cv.wait_for(lock, slice, [&] { return stop; })) return;
      // HEALTHY below deadline_s; SUSPECT until deadline_s + grace_s (any
      // tick resets the age and returns to HEALTHY); then WEDGED, one-way.
      if (effective_age() < deadline_s + grace_s) continue;

      fired.store(true, std::memory_order_release);
      snap = watched().snapshot();
      if (emergency) {
        // Flush the emergency checkpoint BEFORE poisoning: the callback
        // saves the last completed leg, which no wedged rank can touch.
        emergency(snap);
      }
      lock.unlock();
      poison_all_worlds();

      if (!exit_on_wedge.load(std::memory_order_acquire)) return;
      // The CLI fallback for wedges the poison cannot reach (a stuck compute
      // loop runs no comm wait): give the poison one more grace period to
      // unwind the run; a tick means it worked and the typed error path owns
      // the exit.
      const Clock::time_point poisoned_at = Clock::now();
      while (std::chrono::duration<double>(Clock::now() - poisoned_at).count() <
             std::max(grace_s, deadline_s)) {
        std::this_thread::sleep_for(slice);
        {
          std::lock_guard<std::mutex> relock(m);
          if (stop) return;
        }
        if (effective_age() < deadline_s) return;  // run unwedged itself
      }
      std::fprintf(stderr, "photon: watchdog: run wedged and unreachable; %s\n",
                   snap.to_string().c_str());
      std::_Exit(engine_error_exit_code(EngineErrorKind::kWedged));
    }
  }
};

Watchdog::Watchdog(double deadline_s, double grace_s, Progress* beacon)
    : impl_(new Impl) {
  impl_->deadline_s = deadline_s;
  impl_->grace_s = grace_s > 0.0 ? grace_s : deadline_s;
  impl_->beacon = beacon;
  impl_->monitor = std::thread([this] { impl_->monitor_main(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->monitor.join();
  delete impl_;
}

void Watchdog::set_emergency(std::function<void(const ProgressSnapshot&)> fn) {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->emergency = std::move(fn);
}

void Watchdog::set_exit_on_wedge(bool enabled) {
  impl_->exit_on_wedge.store(enabled, std::memory_order_release);
}

bool Watchdog::fired() const { return impl_->fired.load(std::memory_order_acquire); }

ProgressSnapshot Watchdog::wedged_snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->snap;
}

// ---- Memory budget ---------------------------------------------------------

namespace {

// Planning-time footprint: the built accel, a virgin forest, and the batch
// buffer high-water estimate (per-window wire bytes plus the per-worker sink
// buffers). Coarse by design — the runtime forest growth is governed by the
// stop word, not by this estimate.
std::uint64_t estimate_bytes(const Scene& scene, const RunConfig& config,
                             std::uint64_t sink_buffer) {
  const int width = std::max(config.workers, 1) * std::max(config.groups, 1);
  const std::uint64_t accel = scene.accel().memory_bytes();
  const std::uint64_t forest =
      BinForest(scene.patch_count(), config.policy).memory_bytes();
  const std::uint64_t batch = std::max<std::uint64_t>(config.batch, 1);
  const std::uint64_t wire =
      static_cast<std::uint64_t>(width) * batch * sizeof(WireRecord);
  const std::uint64_t sinks = static_cast<std::uint64_t>(width) * sink_buffer *
                              sizeof(BounceRecord);
  return accel + forest + wire + sinks;
}

}  // namespace

std::uint64_t admission_estimate_bytes(const Scene& scene, const RunConfig& config,
                                       std::uint64_t sink_buffer) {
  return estimate_bytes(scene, config, std::max<std::uint64_t>(sink_buffer, 1));
}

AdmissionPlan govern_admission(Scene& scene, const RunConfig& config) {
  AdmissionPlan plan;
  plan.sink_buffer = std::max<std::uint64_t>(config.sink_buffer, 1);
  plan.estimated_bytes = estimate_bytes(scene, config, plan.sink_buffer);
  const std::uint64_t budget = config.memory_budget;
  if (budget == 0 || plan.estimated_bytes <= budget) return plan;

  // Rung 1: shrink the sink/wire buffers. Buffering thresholds never change
  // any tree's record order (engine/sink.hpp), so this is bitwise-neutral.
  plan.sink_buffer = std::min<std::uint64_t>(plan.sink_buffer, 16);
  plan.shrank_buffers = true;
  plan.estimated_bytes = estimate_bytes(scene, config, plan.sink_buffer);
  if (plan.estimated_bytes <= budget) return plan;

  // Rung 2: coarsen the accel leaf parameters and rebuild — fatter leaves,
  // shallower tree, smaller index. Every structure answers queries bitwise
  // identically at any build parameters (the AccelStructure contract), so
  // this trades traversal speed for memory, never results.
  plan.accel_params.max_leaf_items = 64;
  plan.accel_params.max_depth = 8;
  plan.accel_params.bvh_leaf_items = 16;
  plan.accel_params.grid_refine_threshold = 96;
  plan.accel_params.grid_sub_res = 2;
  plan.coarsened_accel = true;
  scene.build(plan.accel_params);
  progress_tick(config, "accel-build", scene.patch_count());
  plan.estimated_bytes = estimate_bytes(scene, config, plan.sink_buffer);
  if (plan.estimated_bytes <= budget) return plan;

  // Rung 3: refuse admission. Deliberately NOT on the ladder: batch/window
  // size — record order feeds the adaptive split decisions, so shrinking it
  // would change results, and a degraded run must stay bitwise-equal.
  std::ostringstream what;
  what << "memory budget " << budget << " bytes refused: coarsest plan still needs ~"
       << plan.estimated_bytes << " bytes (accel "
       << scene.accel().memory_bytes() << ", scene " << scene.patch_count()
       << " patches)";
  throw ResourceError(what.str());
}

}  // namespace photon
