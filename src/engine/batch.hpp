// Adaptive batch sizing (chapter 5, "Communication vs. Computation").
//
// Photon matches the batch size to the communication medium at run time:
// "Batch size starts with just 500 photons per processor and grows as long as
// overall speed is increased. When a decrease in simulation speed is
// detected, the batch size is reduced." The paper's text says the reduction
// is 15 percent, but its own Table 5.3 sequences shrink by ~10% (e.g.
// 1687 -> 1518); both are supported, default 10% to match the table.
#pragma once

#include <cstdint>
#include <vector>

namespace photon {

struct BatchPolicy {
  std::uint64_t initial = 500;
  double growth = 1.5;
  double backoff = 0.9;   // multiplier applied when speed drops
  double tolerance = 0.02;  // speed may dip this fraction below the best seen
  std::uint64_t min_size = 50;
  std::uint64_t max_size = 1u << 20;
};

// Grows while the measured rate keeps (approximately) setting new highs and
// backs off when it falls below the best rate seen. Comparing against the
// best — rather than only the previous sample — is what keeps the controller
// hovering near the optimum instead of ratcheting upward forever when the
// rate curve is smooth (grow/shrink alternation with growth*backoff > 1
// would otherwise always drift up).
class BatchController {
 public:
  explicit BatchController(BatchPolicy policy = {})
      : policy_(policy), size_(policy.initial) {
    history_.push_back(size_);
  }

  std::uint64_t size() const { return size_; }

  // Feeds the rate (photons/sec) measured for the batch just completed and
  // chooses the next size: grow while speed improves, back off otherwise.
  void update(double rate) {
    if (rate >= best_rate_ * (1.0 - policy_.tolerance)) {
      size_ = static_cast<std::uint64_t>(static_cast<double>(size_) * policy_.growth);
    } else {
      size_ = static_cast<std::uint64_t>(static_cast<double>(size_) * policy_.backoff);
    }
    if (size_ < policy_.min_size) size_ = policy_.min_size;
    if (size_ > policy_.max_size) size_ = policy_.max_size;
    if (rate > best_rate_) best_rate_ = rate;
    history_.push_back(size_);
  }

  // Sequence of batch sizes used so far (Table 5.3 rows).
  const std::vector<std::uint64_t>& history() const { return history_; }

 private:
  BatchPolicy policy_;
  std::uint64_t size_;
  double best_rate_ = 0.0;
  std::vector<std::uint64_t> history_;
};

}  // namespace photon
