// WorkerPool — the engine's persistent, deterministic work-stealing worker
// pool. Every threaded path in the codebase (the `shared` backend, each
// hybrid group's thread team, the parallel octree build, the viewer's tile
// loop) schedules through this service instead of spawning raw std::threads
// per batch.
//
// Two problems with the per-batch spawn/join idiom this replaces:
//
//   1. Spawn overhead on the hot path. hybrid paid a full thread
//      create/destroy cycle per batch WINDOW; at chapter-5 window sizes that
//      is thousands of spawns per run (bench_pool measures the per-batch
//      cost). Pool workers are spawned once and parked on a condition
//      variable between jobs, so dispatching a job costs a wake, not a
//      clone().
//   2. Static splits bake in the Table 5.2 load imbalance. A contiguous
//      ids/T split makes the slowest worker the critical path; the paper
//      measures exactly this skew. The pool schedules CHUNKS dynamically:
//      the index range is cut into fixed-size chunks, each worker owns a
//      contiguous run of them, and an idle worker steals a chunk from the
//      richest victim's tail. The busiest worker sheds work instead of
//      gating the batch.
//
// Determinism contract. The *schedule* (which worker runs which chunk, in
// what order) is wall-clock dependent and unreproducible — but no output may
// depend on it. Callers get a bitwise-deterministic result by construction:
//
//   - each chunk's work is a pure function of the chunk index (per-photon
//     RNG streams, disjoint output rows, private subtree arenas);
//   - each chunk writes only chunk-private state (a per-chunk record
//     buffer, its own image rows, its own arena);
//   - the caller combines chunk outputs in ascending chunk order after
//     run() returns (or writes to disjoint locations needing no combine).
//
// Under that discipline the combined result is bitwise identical for any
// worker count and any steal interleaving — the test hook
// (set_test_schedule) forces adversarial schedules (every worker stealing,
// or a globally shuffled claim order) and the pool unit suite pins that the
// outputs do not move.
//
// Reentrancy: run() called from inside a pool task (e.g. Octree::build
// invoked by a service job that is itself a pool task) executes its chunks
// inline on the calling thread — nested submits cannot deadlock and cannot
// change outputs (the determinism contract is schedule-independent).
// Concurrent run() calls from distinct external threads serialize on the
// job slot; each job still uses the full requested width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace photon {

// One cache line, the false-sharing quantum for hot per-worker counters.
inline constexpr std::size_t kCacheLineBytes = 64;

// Pads T to a cache line so per-worker slots in a contiguous array never
// share a line — adjacent workers incrementing their own counters must not
// bounce the line between cores (the src/par hot-counter fix).
template <typename T>
struct alignas(kCacheLineBytes) CachePadded {
  T value{};
};
static_assert(alignof(CachePadded<std::uint64_t>) == kCacheLineBytes);

// Per-run() scheduler observability: which worker ran each chunk and how the
// load spread. Imbalance and steal pressure (the Table 5.2 axis) become
// measurable instead of inferred.
struct PoolRunStats {
  std::uint64_t chunks = 0;                    // chunks in this run
  std::uint64_t steals = 0;                    // claims outside the claimer's own range
  std::vector<std::uint64_t> worker_chunks;    // chunks executed, per worker slot
  std::vector<std::uint64_t> worker_steals;    // steals performed, per worker slot
  std::vector<std::int32_t> chunk_worker;      // slot that executed each chunk
};

class WorkerPool {
 public:
  // Test-only schedule perturbation (set_test_schedule): forces adversarial
  // claim orders so the determinism suite can pin that outputs are schedule-
  // independent without waiting for an unlucky preemption.
  enum class TestSchedule {
    kNone,        // production scheduler: own range first, steal from richest
    kForceSteal,  // all chunks start on slot 0's range: every other worker
                  // can only steal, slot 0 fights its thieves for the tail
    kShuffle,     // claim order globally permuted (seeded LCG): chunk->worker
                  // assignment becomes timing noise by design
    kStaticOnly,  // stealing disabled: the pre-pool contiguous static split
                  // (bench_pool's baseline; never use for real work)
  };

  // Spawns `helpers` parked worker threads (the calling thread of run() is
  // always an additional worker). helpers < 0 means hardware_concurrency-1.
  // The pool grows lazily if a later run() asks for more width, so
  // construction cost is paid once per high-water mark, never per batch.
  explicit WorkerPool(int helpers = -1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Joins every helper. Idempotent: safe to call repeatedly and before/after
  // the destructor's implicit call. run() after shutdown executes inline.
  void shutdown();

  // Helpers currently spawned (not counting callers).
  int helper_count() const;

  // Invokes body(chunk_index, worker_slot) exactly once for every chunk in
  // [0, chunks), on up to `width` concurrent workers: the calling thread
  // claims as slot 0 and up to width-1 parked helpers claim as slots 1+.
  // Blocks until every chunk has run. worker_slot is stable within one
  // chunk's execution and < width — index per-worker accumulators with it.
  //
  // The first exception thrown by any chunk is rethrown here (remaining
  // unclaimed chunks are dropped once a chunk has thrown).
  //
  // `stats`, when non-null, receives the run's schedule telemetry.
  void run(std::uint64_t chunks, int width,
           const std::function<void(std::uint64_t, int)>& body, PoolRunStats* stats = nullptr);

  // The process-lifetime pool every call site shares by default (hybrid
  // groups construct private pools instead, so G groups can run their
  // windows concurrently). First use spawns it; it parks between runs.
  static WorkerPool& instance();

  // Test-only, process-global: perturbs the claim order of every subsequent
  // run() on every pool. Always restore to kNone (see ScheduleGuard).
  static void set_test_schedule(TestSchedule schedule, std::uint64_t seed = 0);

  // RAII for set_test_schedule in tests.
  struct ScheduleGuard {
    explicit ScheduleGuard(TestSchedule schedule, std::uint64_t seed = 0) {
      set_test_schedule(schedule, seed);
    }
    ~ScheduleGuard() { set_test_schedule(TestSchedule::kNone); }
    ScheduleGuard(const ScheduleGuard&) = delete;
    ScheduleGuard& operator=(const ScheduleGuard&) = delete;
  };

 private:
  struct Impl;
  Impl* impl_;
};

// Serial cut of [0, n) into ceil(n / chunk_size) chunks; chunk c covers
// [c * chunk_size, min((c+1) * chunk_size, n)). One definition so every call
// site and test agrees on the chunk grid.
inline std::uint64_t chunk_count(std::uint64_t n, std::uint64_t chunk_size) {
  if (chunk_size == 0) chunk_size = 1;
  return (n + chunk_size - 1) / chunk_size;
}

}  // namespace photon
