#include "engine/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "core/error.hpp"
#include "engine/governor.hpp"
#include "mp/fault.hpp"
#include "sim/checkpoint.hpp"

namespace photon {

RunResult run_elastic(Backend& backend, const Scene& scene, const RunConfig& config,
                      const RunResult* resume, RecoveryStats* stats) {
  using Clock = std::chrono::steady_clock;
  RecoveryStats rec;
  RunConfig cfg = config;
  // The dimension a rank death shrinks: hybrid's MiniMPI ranks are groups;
  // the dist backends' are workers. Other backends run no world and can only
  // fail through a rethrown WorldFailure (never shrink).
  const bool shrink_groups = backend.name() == "hybrid";
  const std::uint64_t total = config.photons;

  // Leg size aligned down to whole batch windows: hybrid's resume is bitwise
  // only at window boundaries, and the alignment costs the other backends
  // nothing.
  std::uint64_t leg = config.checkpoint_photons;
  if (leg > 0) {
    const std::uint64_t window = std::max<std::uint64_t>(cfg.batch, 1);
    leg = std::max(window, leg - leg % window);
  }

  RunResult state;
  bool have_state = resume != nullptr;
  if (resume) state = *resume;
  // Guards `state`/`have_state` against the watchdog's emergency callback,
  // which reads them from the monitor thread while the loop thread writes
  // them between legs.
  std::mutex state_m;

  // Stuck-run watchdog (engine/governor.hpp): monitors the Progress beacon
  // for the whole elastic run. On a wedge it flushes the last completed leg
  // as an emergency checkpoint, then poisons every MiniMPI world so blocked
  // waits throw — the WorldFailure that surfaces here is converted to a
  // typed WedgedError below instead of retrying forever.
  std::unique_ptr<Watchdog> wd;
  if (config.watchdog_s > 0.0) {
    // A scoped run's watchdog watches its own beacon: another job's ticks
    // must not keep a wedged job looking alive.
    Progress* beacon = config.control ? &config.control->progress() : nullptr;
    wd = std::make_unique<Watchdog>(config.watchdog_s, config.watchdog_grace_s, beacon);
    wd->set_exit_on_wedge(config.watchdog_exit);
    if (!config.emergency_checkpoint_path.empty()) {
      wd->set_emergency([&](const ProgressSnapshot&) {
        std::lock_guard<std::mutex> lock(state_m);
        if (have_state) save_checkpoint(state, config.emergency_checkpoint_path);
      });
    }
  }

  std::uint64_t done = 0;
  bool ran_any = false;
  int recoveries_left = config.max_recoveries;
  while (!ran_any || done < total) {
    const std::uint64_t n = leg > 0 ? std::min(leg, total - done) : total - done;
    cfg.photons = n;
    const Clock::time_point t0 = Clock::now();
    try {
      RunResult r = backend.run(scene, cfg, have_state ? &state : nullptr);
      {
        std::lock_guard<std::mutex> lock(state_m);
        state = std::move(r);
        have_state = true;
      }
      done += n;
      ran_any = true;
      ++rec.legs;
      // A governed stop ended this leg early at a window boundary. Do not
      // start another leg: the partial result is the caller's resumable
      // checkpoint (counters.emitted says how far it got).
      if (state.status != RunStatus::kComplete) break;
    } catch (const WorldFailure& failure) {
      if (wd && wd->fired()) {
        // Not a rank failure: the watchdog poisoned the world. Shrinking and
        // retrying would re-wedge; surface the typed abort instead.
        const ProgressSnapshot snap = wd->wedged_snapshot();
        if (stats) *stats = rec;
        throw WedgedError(
            "run declared wedged by the watchdog (no progress for " +
                std::to_string(config.watchdog_s + (config.watchdog_grace_s > 0.0
                                                        ? config.watchdog_grace_s
                                                        : config.watchdog_s)) +
                "s); world poisoned",
            snap.to_string());
      }
      rec.lost_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
      ++rec.failures;
      rec.photons_retraced += n;
      rec.ranks_lost += static_cast<int>(failure.dead_ranks.size());
      for (const int r : failure.dead_ranks) rec.dead_ranks.push_back(r);
      int& width = shrink_groups ? cfg.groups : cfg.workers;
      width -= static_cast<int>(failure.dead_ranks.size());
      if (width < 1 || recoveries_left-- <= 0) {
        if (stats) *stats = rec;
        throw;
      }
      // Rewind: `state` still holds the last completed leg; the loop re-runs
      // the open leg from it at the survivor shape. A pure timeout (no
      // deaths) retries at the same shape — the consumed fault plan entries
      // will not re-fire.
    }
  }

  rec.final_width = shrink_groups ? cfg.groups : cfg.workers;
  state.recovery = rec;
  if (stats) *stats = rec;
  return state;
}

}  // namespace photon
