// BufferedForestSink — batched, contention-light tallying for the shared
// backend (and any future backend that funnels BounceRecords into a locked
// BinForest).
//
// The seed's LockedForestSink took one mutex acquisition per recorded bounce;
// at millions of bounces/sec across threads that lock traffic dominates the
// hot path. This sink accumulates records in a thread-private buffer and, at
// a configurable threshold (RunConfig::sink_buffer), groups them by target
// tree and applies each tree's batch under that tree's mutex — one lock per
// distinct tree per flush instead of one per record.
//
// Ordering guarantee: within one sink, records bound for the same tree are
// applied in the order they were recorded (the grouping sort is stable).
// Trees are independent histograms, so reordering *across* trees cannot
// change any tree's final state — at one worker the flushed forest is bitwise
// identical to the serial ForestSink result.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/wire.hpp"
#include "hist/binforest.hpp"
#include "sim/tracer.hpp"

namespace photon {

class BufferedForestSink final : public BinSink {
 public:
  // `flush_threshold` is clamped to >= 1; 1 degenerates to lock-per-record.
  // Buffer capacity is reserved up front, so the record path never allocates.
  BufferedForestSink(BinForest& forest, std::vector<std::mutex>& tree_mutexes,
                     std::size_t flush_threshold);
  ~BufferedForestSink() override;

  BufferedForestSink(const BufferedForestSink&) = delete;
  BufferedForestSink& operator=(const BufferedForestSink&) = delete;

  void record(const BounceRecord& rec) override {
    buffer_.push_back(rec);
    if (buffer_.size() >= threshold_) flush();
  }

  // Applies every buffered record; must be (and is, via the destructor)
  // called before the forest is read.
  void flush();

  std::size_t threshold() const { return threshold_; }

 private:
  BinForest* forest_;
  std::vector<std::mutex>* mutexes_;
  std::vector<BounceRecord> buffer_;
  // Scratch for the per-tree grouping sort: (tree_index << 32) | position.
  std::vector<std::uint64_t> order_;
  std::size_t threshold_;
};

// RouterSink — the distributed backends' record router (EnQueue of Fig 5.3),
// in the same engine-service family as BufferedForestSink. A record whose
// patch this rank owns is tallied into the local forest immediately; a
// foreign record is serialized in place into the per-destination WireBuffer
// (one copy, straight into the bytes the exchange will send). Both par/dist
// and par/spatial previously hand-rolled this with per-destination
// std::vector<WireRecord> queues re-packed every batch.
//
// The sink holds no queue of its own: WireBuffer::take() surrenders batch k's
// bytes to the split-phase exchange and leaves the same buffer refillable, so
// the sink keeps serializing batch k+1 while batch k drains.
class RouterSink final : public BinSink {
 public:
  // `owner[p]` is the rank owning patch p's trees; `applied` counts records
  // tallied locally by this rank (the Table 5.2 "processed" metric).
  RouterSink(BinForest& forest, const std::vector<int>& owner, int rank, WireBuffer& wire,
             std::uint64_t& applied)
      : forest_(&forest), owner_(&owner), rank_(rank), wire_(&wire), applied_(&applied) {}

  void record(const BounceRecord& rec) override {
    const int owner_rank = (*owner_)[static_cast<std::size_t>(rec.patch)];
    if (owner_rank == rank_) {
      forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
      ++(*applied_);
    } else {
      wire_->append(owner_rank, to_wire(rec));
    }
  }

  // Tallies every WireRecord in an incoming exchange buffer. Records arriving
  // here were routed by their producer, so they are applied unconditionally.
  void apply_incoming(const Bytes& buf);

 private:
  BinForest* forest_;
  const std::vector<int>* owner_;
  int rank_;
  WireBuffer* wire_;
  std::uint64_t* applied_;
};

// OrderedRouterSink — RouterSink's canonically-ordered sibling, used by the
// backends that promise a *reproducible interleaving* of local and foreign
// records (dist-particle's bitwise resume, hybrid's shape invariance).
//
// RouterSink tallies owned records the instant they are traced, so a tree's
// record order interleaves "my trace position" with "whenever a drain ran" —
// reproducible run to run, but dependent on the batch pipeline's phase.
// This sink instead *holds* owned records per batch and applies one batch
// window atomically in source-rank order: rank 0's slice, rank 1's slice, …
// (its own held slice in place of incoming[rank]). Per-tree record order is
// then a pure function of the batch schedule — independent of pipeline depth,
// and, when ranks trace contiguous id slices, equal to global photon-id
// order.
class OrderedRouterSink final : public BinSink {
 public:
  OrderedRouterSink(BinForest& forest, const std::vector<int>& owner, int rank,
                    WireBuffer& wire, std::uint64_t& applied)
      : forest_(&forest), owner_(&owner), rank_(rank), wire_(&wire), applied_(&applied) {}

  // Owned records are held for apply_batch; foreign records serialize in
  // place into the outgoing wire (same zero-copy path as RouterSink).
  void record(const BounceRecord& rec) override {
    const int owner_rank = (*owner_)[static_cast<std::size_t>(rec.patch)];
    if (owner_rank == rank_) {
      held_.push_back(rec);
    } else {
      wire_->append(owner_rank, to_wire(rec));
    }
  }

  // Surrenders the records held since the last take (the WireBuffer::take
  // idiom): batch k's held slice stays applicable while batch k+1 records
  // into the same sink.
  std::vector<BounceRecord> take_held() { return std::move(held_); }

  // Applies one batch window in canonical source order: for each source rank
  // s, incoming[s]'s records — except s == rank, whose slot is `held` (this
  // rank's own records for the window, taken via take_held). incoming[rank]
  // is ignored (self-delivery is empty on the record tag).
  void apply_batch(const std::vector<BounceRecord>& held, const std::vector<Bytes>& incoming);

 private:
  void apply_record(const BounceRecord& rec) {
    forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
    ++(*applied_);
  }

  BinForest* forest_;
  const std::vector<int>* owner_;
  int rank_;
  WireBuffer* wire_;
  std::uint64_t* applied_;
  std::vector<BounceRecord> held_;
};

}  // namespace photon
