// BufferedForestSink — batched, contention-light tallying for the shared
// backend (and any future backend that funnels BounceRecords into a locked
// BinForest).
//
// The seed's LockedForestSink took one mutex acquisition per recorded bounce;
// at millions of bounces/sec across threads that lock traffic dominates the
// hot path. This sink accumulates records in a thread-private buffer and, at
// a configurable threshold (RunConfig::sink_buffer), groups them by target
// tree and applies each tree's batch under that tree's mutex — one lock per
// distinct tree per flush instead of one per record.
//
// Ordering guarantee: within one sink, records bound for the same tree are
// applied in the order they were recorded (the grouping sort is stable).
// Trees are independent histograms, so reordering *across* trees cannot
// change any tree's final state — at one worker the flushed forest is bitwise
// identical to the serial ForestSink result.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/wire.hpp"
#include "hist/binforest.hpp"
#include "sim/tracer.hpp"

namespace photon {

class BufferedForestSink final : public BinSink {
 public:
  // `flush_threshold` is clamped to >= 1; 1 degenerates to lock-per-record.
  // Buffer capacity is reserved up front, so the record path never allocates.
  BufferedForestSink(BinForest& forest, std::vector<std::mutex>& tree_mutexes,
                     std::size_t flush_threshold);
  ~BufferedForestSink() override;

  BufferedForestSink(const BufferedForestSink&) = delete;
  BufferedForestSink& operator=(const BufferedForestSink&) = delete;

  void record(const BounceRecord& rec) override {
    buffer_.push_back(rec);
    if (buffer_.size() >= threshold_) flush();
  }

  // Applies every buffered record; must be (and is, via the destructor)
  // called before the forest is read.
  void flush();

  std::size_t threshold() const { return threshold_; }

 private:
  BinForest* forest_;
  std::vector<std::mutex>* mutexes_;
  std::vector<BounceRecord> buffer_;
  // Scratch for the per-tree grouping sort: (tree_index << 32) | position.
  std::vector<std::uint64_t> order_;
  std::size_t threshold_;
};

// RouterSink — the distributed backends' record router (EnQueue of Fig 5.3),
// in the same engine-service family as BufferedForestSink. A record whose
// patch this rank owns is tallied into the local forest immediately; a
// foreign record is serialized in place into the per-destination WireBuffer
// (one copy, straight into the bytes the exchange will send). Both par/dist
// and par/spatial previously hand-rolled this with per-destination
// std::vector<WireRecord> queues re-packed every batch.
//
// The sink holds no queue of its own: WireBuffer::take() surrenders batch k's
// bytes to the split-phase exchange and leaves the same buffer refillable, so
// the sink keeps serializing batch k+1 while batch k drains.
class RouterSink final : public BinSink {
 public:
  // `owner[p]` is the rank owning patch p's trees; `applied` counts records
  // tallied locally by this rank (the Table 5.2 "processed" metric).
  RouterSink(BinForest& forest, const std::vector<int>& owner, int rank, WireBuffer& wire,
             std::uint64_t& applied)
      : forest_(&forest), owner_(&owner), rank_(rank), wire_(&wire), applied_(&applied) {}

  void record(const BounceRecord& rec) override {
    const int owner_rank = (*owner_)[static_cast<std::size_t>(rec.patch)];
    if (owner_rank == rank_) {
      forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
      ++(*applied_);
    } else {
      wire_->append(owner_rank, to_wire(rec));
    }
  }

  // Tallies every WireRecord in an incoming exchange buffer. Records arriving
  // here were routed by their producer, so they are applied unconditionally.
  void apply_incoming(const Bytes& buf);

 private:
  BinForest* forest_;
  const std::vector<int>* owner_;
  int rank_;
  WireBuffer* wire_;
  std::uint64_t* applied_;
};

}  // namespace photon
