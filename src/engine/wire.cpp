#include "engine/wire.hpp"

#include <cstring>

namespace photon {

namespace {

template <typename T>
Bytes pack_vector(const std::vector<T>& v) {
  Bytes out(v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

template <typename T>
std::vector<T> unpack_vector(const Bytes& b) {
  std::vector<T> out(b.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), b.data(), out.size() * sizeof(T));
  return out;
}

}  // namespace

WireRecord to_wire(const BounceRecord& rec) {
  return make_wire_record(rec.patch, rec.coords, rec.channel, rec.front);
}

BounceRecord from_wire(const WireRecord& wire) {
  BounceRecord rec;
  rec.patch = wire.patch;
  rec.front = wire.front != 0;
  rec.coords.s = wire.s;
  rec.coords.t = wire.t;
  rec.coords.u = wire.u;
  rec.coords.theta = wire.theta;
  rec.channel = wire.channel;
  return rec;
}

WireRecord make_wire_record(int patch, const BinCoords& coords, int channel, bool front) {
  WireRecord wire;
  wire.patch = patch;
  wire.s = static_cast<float>(coords.s);
  wire.t = static_cast<float>(coords.t);
  wire.u = static_cast<float>(coords.u);
  wire.theta = static_cast<float>(coords.theta);
  wire.channel = static_cast<std::uint8_t>(channel);
  wire.front = front ? 1 : 0;
  return wire;
}

FlightWire to_wire(const PhotonFlight& flight) {
  FlightWire w{};
  w.px = flight.pos.x;
  w.py = flight.pos.y;
  w.pz = flight.pos.z;
  w.dx = flight.dir.x;
  w.dy = flight.dir.y;
  w.dz = flight.dir.z;
  w.rng_state = flight.rng.state();
  w.bounces = flight.bounces;
  w.channel = static_cast<std::uint8_t>(flight.channel);
  w.pol_s = static_cast<float>(flight.pol.s);
  return w;
}

PhotonFlight from_wire(const FlightWire& wire) {
  PhotonFlight flight;
  flight.pos = {wire.px, wire.py, wire.pz};
  flight.dir = {wire.dx, wire.dy, wire.dz};
  flight.rng.reset(wire.rng_state);
  flight.bounces = wire.bounces;
  flight.channel = wire.channel;
  flight.pol = {wire.pol_s, 1.0 - wire.pol_s};
  return flight;
}

Bytes pack_records(const std::vector<WireRecord>& records) { return pack_vector(records); }
std::vector<WireRecord> unpack_records(const Bytes& buf) { return unpack_vector<WireRecord>(buf); }
Bytes pack_flights(const std::vector<FlightWire>& flights) { return pack_vector(flights); }
std::vector<FlightWire> unpack_flights(const Bytes& buf) { return unpack_vector<FlightWire>(buf); }

WireBuffer::WireBuffer(int destinations)
    : bufs_(static_cast<std::size_t>(destinations > 0 ? destinations : 0)) {}

bool WireBuffer::empty() const {
  for (const Bytes& b : bufs_) {
    if (!b.empty()) return false;
  }
  return true;
}

std::size_t WireBuffer::total_bytes() const {
  std::size_t n = 0;
  for (const Bytes& b : bufs_) n += b.size();
  return n;
}

std::vector<Bytes> WireBuffer::take() {
  std::vector<Bytes> out(bufs_.size());
  out.swap(bufs_);
  return out;
}

}  // namespace photon
