// Run governance: graceful preemption, the stuck-run watchdog, and the
// memory budget — the robustness layer every backend runs under.
//
// Four services (DESIGN.md "Run governance"):
//
//   Preemption   An async-signal-safe SIGTERM/SIGINT/SIGUSR1 handler sets a
//                lock-free flag; governed backend loops poll it at window
//                boundaries and stop cleanly with RunStatus::kPreempted —
//                the partial RunResult is a valid window-aligned checkpoint,
//                so rerunning with the same --checkpoint continues bitwise.
//                The distributed backends agree on the stop window with one
//                allreduce of a packed stop word (below), so every rank
//                breaks at the same window and the in-flight exchange drains
//                through the existing end-of-loop path.
//
//   Progress     A process-global liveness beacon generalizing MiniMPI's
//                per-batch heartbeat counters to every backend: serial and
//                shared batch loops, each distributed rank, the worker pool's
//                chunk claims and the accel builds all tick it. Ticking is an
//                atomic bump (no lock on the hot path); labeled slots carry
//                the last batch/window index per participant for the
//                watchdog's snapshot.
//
//   Watchdog     A monitor thread that reads the beacon: no tick for
//                deadline_s seconds makes the run suspect, none for a
//                further grace_s declares it wedged — emergency checkpoint
//                (via callback), progress snapshot, then poison_all_worlds()
//                so every blocked MiniMPI wait throws a typed CommError
//                instead of hanging; run_elastic converts that WorldFailure
//                into a WedgedError (exit 6). A typed abort, never a hang.
//
//   MemoryBudget govern_admission applies the documented degradation ladder
//                to an over-budget run before it starts: shrink the sink
//                buffers, then coarsen the accel leaf parameters (both
//                bitwise-neutral by contract), then refuse admission with a
//                typed ResourceError. At run time the governed loops fold
//                the forest footprint into the same stop word and stop with
//                RunStatus::kOverBudget — a resumable graceful stop, not an
//                OOM kill. Batch/window size is deliberately NOT a rung:
//                record order feeds the adaptive split decisions, so
//                changing it would change results.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "geom/scene.hpp"

namespace photon {

// How a governed run ended. Not serialized into checkpoints — a checkpoint
// is the same bytes whether the leg ended by count or by preemption.
enum class RunStatus {
  kComplete,    // ran to the configured photon count
  kPreempted,   // stopped at a window boundary on the preempt flag
  kOverBudget,  // stopped at a window boundary on the memory budget
};
const char* run_status_name(RunStatus status);

// ---- Preemption ------------------------------------------------------------

// Installs SIGTERM/SIGINT/SIGUSR1 handlers that call request_preempt().
// Idempotent. The handler writes one lock-free atomic flag and nothing else
// (the async-signal-safety argument in DESIGN.md); everything slow —
// checkpoint flush, telemetry — happens on the polling thread at the next
// window boundary.
void install_preempt_handlers();

// Sets the preempt flag. Async-signal-safe; also callable directly (tests
// preempt deterministically by setting it before the run starts).
void request_preempt();
bool preempt_requested();
void clear_preempt();

// ---- The distributed stop word --------------------------------------------
//
// One allreduce_sum_u64 per window lets every rank derive the same stop
// decision from the same sum: the low 13 bits count preempt votes (world
// width is capped at 4096 ranks), the high bits carry the rank's forest
// footprint in 64 KiB units. The encoding keeps the world-wide sum below
// 2^53 — MiniMPI's allreduce reduces in double, so anything bigger would
// round the vote bits away.
std::uint64_t encode_stop_word(bool preempt, std::uint64_t forest_bytes);
bool stop_word_preempted(std::uint64_t sum);
// True when the summed forest footprint exceeds budget_bytes (0 = unlimited).
bool stop_word_over_budget(std::uint64_t sum, std::uint64_t budget_bytes);

// ---- Progress beacon -------------------------------------------------------

struct ProgressSlot {
  std::string label;         // "serial", "hybrid-rank0", "pool", "accel-build"
  std::uint64_t ticks = 0;   // times this slot ticked
  std::uint64_t detail = 0;  // last batch/window/chunk index reported
  double age_s = 0.0;        // seconds since this slot last ticked
};

struct ProgressSnapshot {
  std::uint64_t total_ticks = 0;
  double stalled_s = 0.0;  // seconds since ANY slot ticked
  std::vector<ProgressSlot> slots;
  std::string to_string() const;  // one line per slot, for diagnostics
};

// A liveness beacon. tick() is the labeled per-batch heartbeat (one
// mutex-free atomic bump plus a short slot update); pulse() is the label-free
// fast path for fine-grained callers (the pool's per-chunk claims). The
// watchdog reads only the atomic total and timestamp, so a beacon tick never
// blocks on the monitor.
//
// instance() is the process-global beacon every unscoped run ticks; beacons
// are also directly constructible so a RunControl can scope one per run (the
// photon service runs one per job — a job's watchdog and tick telemetry must
// not see another job's, or a previous run's, heartbeats).
class Progress {
 public:
  Progress();
  ~Progress();
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  static Progress& instance();

  void tick(const char* label, std::uint64_t detail = 0);
  void pulse();  // liveness only; no slot bookkeeping

  std::uint64_t total_ticks() const;
  double seconds_since_tick() const;  // +inf when nothing ever ticked
  ProgressSnapshot snapshot() const;

  // Drops all slots and zeroes the counters (test isolation).
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- Per-run scope ---------------------------------------------------------
//
// The preempt flag and the Progress beacon above are process-global — the
// right scope for one CLI run per process, and the wrong one the moment a
// process hosts several runs (the photon service) or runs jobs back to back:
// a stale preempt vote or beacon ticks from a preempted job must not leak
// into the next. A RunControl instances both per run. Attach one via
// RunConfig::control and the governed loops poll/tick it instead of the
// globals; cancelling THIS run is control->request_preempt(), which no other
// job observes. Runs without a control keep the historical global behavior.
class RunControl {
 public:
  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  void request_preempt() { preempt_.store(true, std::memory_order_release); }
  bool preempt_requested() const { return preempt_.load(std::memory_order_acquire); }
  void clear_preempt() { preempt_.store(false, std::memory_order_release); }

  Progress& progress() { return beacon_; }
  const Progress& progress() const { return beacon_; }

 private:
  std::atomic<bool> preempt_{false};
  Progress beacon_;
};

// Scope-aware polling, used by every governed backend loop: the run's own
// control when config.control is set, the process globals otherwise.
bool preempt_requested(const RunConfig& config);

// Consumes the preempt vote the run just honored: called once by the backend
// at the moment it commits to RunStatus::kPreempted, so a SECOND governed
// run in the same process starts with a clean flag instead of inheriting the
// stale vote (the back-to-back-runs bug). Scoped runs clear their own
// control; unscoped runs clear the process flag.
void acknowledge_preempt(const RunConfig& config);

// The beacon a run ticks and its watchdog watches: config.control's
// instance, or the process-global.
Progress& run_progress(const RunConfig& config);

// Labeled per-window tick on the run's beacon. A scoped tick also pulses the
// process-global beacon, so a process-wide watchdog still sees liveness from
// jobs governed by their own controls.
void progress_tick(const RunConfig& config, const char* label, std::uint64_t detail = 0);

// ---- Watchdog --------------------------------------------------------------

// Monitors the Progress beacon from a dedicated thread. State machine:
// HEALTHY --(no tick for deadline_s)--> SUSPECT --(no tick for a further
// grace_s)--> WEDGED (one-way); any tick before the grace expires returns to
// HEALTHY. On WEDGED: capture the snapshot, invoke the emergency callback
// (run_elastic registers the checkpoint flush), poison every MiniMPI world
// so blocked comm waits throw, and — only when exit_on_wedge is set (the CLI
// fallback for a wedge poison cannot reach, e.g. a stuck compute loop) —
// _Exit with the wedged code after one more grace period with no ticks.
class Watchdog {
 public:
  // Monitors `beacon` (the process-global Progress when null). A service
  // passes each job's RunControl beacon so one job's watchdog cannot be fed
  // by another job's ticks.
  Watchdog(double deadline_s, double grace_s, Progress* beacon = nullptr);
  ~Watchdog();  // stops and joins the monitor thread

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Called exactly once when the run is declared wedged, from the monitor
  // thread, before the worlds are poisoned. Set before the run starts.
  void set_emergency(std::function<void(const ProgressSnapshot&)> fn);
  void set_exit_on_wedge(bool enabled);

  bool fired() const;
  // The snapshot captured at firing (empty when !fired()).
  ProgressSnapshot wedged_snapshot() const;

 private:
  struct Impl;
  Impl* impl_;
};

// ---- Memory budget ---------------------------------------------------------

// What govern_admission decided: the (possibly degraded) knobs to run with
// and what each rung changed. estimate_bytes is the planning-time footprint
// — accel + virgin forest + buffer high-water estimate — not a promise.
struct AdmissionPlan {
  std::uint64_t estimated_bytes = 0;
  std::uint64_t sink_buffer = 0;       // records per worker buffer (rung 1)
  AccelBuildParams accel_params{};     // leaf params (rung 2)
  bool shrank_buffers = false;
  bool coarsened_accel = false;
};

// Applies the degradation ladder for config.memory_budget (0 = unlimited:
// returns the config's own knobs untouched). Rung 2 rebuilds the scene's
// accel with coarser leaf parameters and re-measures the real footprint —
// bitwise-neutral by the AccelStructure contract. Throws ResourceError when
// even the coarsest plan exceeds the budget (refused admission).
AdmissionPlan govern_admission(Scene& scene, const RunConfig& config);

// The planning-time footprint govern_admission scores, without the ladder:
// const, never rebuilds anything. The photon service admits jobs against a
// shared budget with this — rung 2 (rebuild the accel) is off the table for
// a resident scene other jobs are reading.
std::uint64_t admission_estimate_bytes(const Scene& scene, const RunConfig& config,
                                       std::uint64_t sink_buffer);

}  // namespace photon
