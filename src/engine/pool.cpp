#include "engine/pool.hpp"

#include "engine/governor.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace photon {

namespace {

// Process-global test knob (set_test_schedule). Tests set it from one thread
// before launching work; workers only read it at job setup.
std::atomic<int> g_test_schedule{static_cast<int>(WorkerPool::TestSchedule::kNone)};
std::atomic<std::uint64_t> g_test_seed{0};

// Marks threads currently executing a pool chunk, so a nested run() from
// inside a task executes inline instead of deadlocking on the job slot.
thread_local bool tls_in_pool_task = false;

// One in-flight job. Chunk ownership is a per-slot [head, tail) range; claims
// take the range's mutex (chunks are coarse — hundreds of photons or a whole
// subtree — so a mutex per claim is noise next to the chunk body and keeps
// the steal protocol obviously correct). head/tail are atomics so the
// victim-selection scan may read them without the lock.
struct Job {
  std::uint64_t chunks = 0;
  int width = 0;
  const std::function<void(std::uint64_t, int)>* body = nullptr;

  struct alignas(kCacheLineBytes) Range {
    std::mutex m;
    std::atomic<std::uint64_t> head{0};  // owner claims here
    std::atomic<std::uint64_t> tail{0};  // thieves claim here (one past the end)
  };
  std::vector<Range> ranges;  // width entries; empty in kShuffle mode

  // kShuffle: claim order is this permutation walked by one shared cursor.
  std::vector<std::uint64_t> shuffled;
  std::atomic<std::uint64_t> shuffle_next{0};

  int next_slot = 1;  // next helper slot to hand out; guarded by the pool mutex

  // Chunks claimed AND finished (executed or abort-drained). The dispatching
  // caller waits on this reaching `chunks`, not on helper exit: under a
  // no-steal schedule a lagging helper's range can only be run by that
  // helper, so "no active helpers" alone does not mean "all chunks ran".
  std::atomic<std::uint64_t> completed{0};

  std::atomic<bool> abort{false};
  std::exception_ptr error;
  std::mutex error_m;

  // Padded per-slot telemetry: workers bump only their own cache line.
  struct Counts {
    std::uint64_t chunks = 0;
    std::uint64_t steals = 0;
  };
  std::vector<CachePadded<Counts>> counts;
  std::vector<std::int32_t> chunk_worker;

  WorkerPool::TestSchedule schedule = WorkerPool::TestSchedule::kNone;
};

// Claims one chunk for `slot`, or returns false when nothing is claimable.
// Production order: own range front first; when empty, steal one chunk from
// the tail of the victim with the most remaining work. kStaticOnly never
// steals; kShuffle ignores ranges entirely.
bool claim_chunk(Job& job, int slot, std::uint64_t& chunk, bool& stolen) {
  if (job.schedule == WorkerPool::TestSchedule::kShuffle) {
    const std::uint64_t i = job.shuffle_next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.chunks) return false;
    chunk = job.shuffled[i];
    // Against the static grid every shuffled claim may land foreign; count
    // the ones outside this slot's contiguous share as steals.
    const std::uint64_t per = job.chunks / static_cast<std::uint64_t>(job.width);
    const std::uint64_t own_lo = per * static_cast<std::uint64_t>(slot);
    const std::uint64_t own_hi = slot + 1 == job.width ? job.chunks : own_lo + per;
    stolen = chunk < own_lo || chunk >= own_hi;
    return true;
  }

  {
    Job::Range& own = job.ranges[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lock(own.m);
    const std::uint64_t head = own.head.load(std::memory_order_relaxed);
    if (head < own.tail.load(std::memory_order_relaxed)) {
      own.head.store(head + 1, std::memory_order_relaxed);
      chunk = head;
      stolen = false;
      return true;
    }
  }
  if (job.schedule == WorkerPool::TestSchedule::kStaticOnly) return false;

  // Steal: scan for the richest victim, take one chunk off its tail. The
  // unlocked scan is a heuristic — the locked re-check makes the claim
  // sound; a victim drained in between just means another scan.
  for (;;) {
    int victim = -1;
    std::uint64_t best_remaining = 0;
    for (int v = 0; v < job.width; ++v) {
      if (v == slot) continue;
      Job::Range& r = job.ranges[static_cast<std::size_t>(v)];
      const std::uint64_t head = r.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
      const std::uint64_t remaining = tail > head ? tail - head : 0;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        victim = v;
      }
    }
    if (victim < 0) return false;
    Job::Range& r = job.ranges[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(r.m);
    const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
    if (r.head.load(std::memory_order_relaxed) < tail) {
      r.tail.store(tail - 1, std::memory_order_relaxed);
      chunk = tail - 1;
      stolen = true;
      return true;
    }
  }
}

// One worker's participation in a job: claim until dry. Saves and restores
// the nesting flag so an inline nested run leaves the outer task marked.
void work(Job& job, int slot) {
  const bool was_nested = tls_in_pool_task;
  tls_in_pool_task = true;
  std::uint64_t chunk = 0;
  bool stolen = false;
  while (claim_chunk(job, slot, chunk, stolen)) {
    // Liveness pulse for the stuck-run watchdog: one lock-free atomic bump
    // per chunk claim, the finest-grained beacon the engine ticks.
    Progress::instance().pulse();
    Job::Counts& mine = job.counts[static_cast<std::size_t>(slot)].value;
    ++mine.chunks;
    if (stolen) ++mine.steals;
    job.chunk_worker[static_cast<std::size_t>(chunk)] = slot;
    if (!job.abort.load(std::memory_order_acquire)) {  // on abort: drain, don't run
      try {
        (*job.body)(chunk, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_m);
        if (!job.error) job.error = std::current_exception();
        job.abort.store(true, std::memory_order_release);
      }
    }
    job.completed.fetch_add(1, std::memory_order_release);
  }
  tls_in_pool_task = was_nested;
}

// SplitMix64 — mixes the claim permutation for kShuffle.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

struct WorkerPool::Impl {
  mutable std::mutex m;
  std::condition_variable cv;       // helpers park here
  std::condition_variable done_cv;  // the dispatching caller parks here
  std::vector<std::thread> helpers;
  Job* job = nullptr;            // non-null while a job is being handed out
  std::uint64_t generation = 0;  // bumped per dispatched job
  int active = 0;                // helpers currently inside work()
  bool stop = false;

  // One job at a time; external callers queue here in STRICT ARRIVAL ORDER
  // (a FIFO ticket lock, not a bare mutex — mutex wakeup order is
  // unspecified, and a service multiplexing several jobs' batch windows onto
  // this pool needs round-robin interleaving, not starvation by lock luck).
  // Helpers never take a ticket (nested run() goes inline), so it cannot
  // deadlock.
  std::mutex ticket_m;
  std::condition_variable ticket_cv;
  std::uint64_t ticket_tail = 0;  // next ticket handed to an arriving caller
  std::uint64_t ticket_head = 0;  // ticket currently allowed to dispatch

  void acquire_turn() {
    std::unique_lock<std::mutex> lock(ticket_m);
    const std::uint64_t mine = ticket_tail++;
    ticket_cv.wait(lock, [&] { return ticket_head == mine; });
  }

  void release_turn() {
    {
      std::lock_guard<std::mutex> lock(ticket_m);
      ++ticket_head;
    }
    ticket_cv.notify_all();
  }

  void helper_main() {
    std::unique_lock<std::mutex> lock(m);
    std::uint64_t seen = 0;
    for (;;) {
      cv.wait(lock, [&] { return stop || (job != nullptr && generation != seen); });
      if (stop) return;
      seen = generation;
      Job* j = job;
      if (j->next_slot >= j->width) continue;  // job already fully crewed
      const int slot = j->next_slot++;
      ++active;
      lock.unlock();
      work(*j, slot);
      lock.lock();
      --active;
      // Every exit may complete either caller wait (all chunks done, or all
      // adopted helpers drained) — always wake it to re-check.
      done_cv.notify_all();
    }
  }

  // Caller must hold `m`.
  void ensure_helpers(int n) {
    while (static_cast<int>(helpers.size()) < n) {
      helpers.emplace_back([this] { helper_main(); });
    }
  }
};

WorkerPool::WorkerPool(int helpers) : impl_(new Impl) {
  if (helpers < 0) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    helpers = hw > 1 ? hw - 1 : 0;
  }
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->ensure_helpers(helpers);
}

WorkerPool::~WorkerPool() {
  shutdown();
  delete impl_;
}

void WorkerPool::shutdown() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
    impl_->cv.notify_all();
    joinable.swap(impl_->helpers);  // empty on repeated calls — idempotent
  }
  for (std::thread& t : joinable) t.join();
}

int WorkerPool::helper_count() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return static_cast<int>(impl_->helpers.size());
}

void WorkerPool::run(std::uint64_t chunks, int width,
                     const std::function<void(std::uint64_t, int)>& body, PoolRunStats* stats) {
  if (chunks == 0) {
    if (stats) *stats = PoolRunStats{};
    return;
  }
  if (width < 1) width = 1;
  if (static_cast<std::uint64_t>(width) > chunks) width = static_cast<int>(chunks);

  Job job;
  job.chunks = chunks;
  job.width = width;
  job.body = &body;
  job.schedule = static_cast<TestSchedule>(g_test_schedule.load(std::memory_order_relaxed));
  job.counts.resize(static_cast<std::size_t>(width));
  job.chunk_worker.assign(static_cast<std::size_t>(chunks), -1);

  if (job.schedule == TestSchedule::kShuffle) {
    job.shuffled.resize(static_cast<std::size_t>(chunks));
    for (std::uint64_t i = 0; i < chunks; ++i) job.shuffled[i] = i;
    // Fisher–Yates on SplitMix64 — any permutation must leave outputs alone.
    std::uint64_t state = g_test_seed.load(std::memory_order_relaxed) ^ chunks;
    for (std::uint64_t i = chunks - 1; i > 0; --i) {
      state = mix64(state);
      std::swap(job.shuffled[static_cast<std::size_t>(i)],
                job.shuffled[static_cast<std::size_t>(state % (i + 1))]);
    }
  } else {
    job.ranges = std::vector<Job::Range>(static_cast<std::size_t>(width));
    if (job.schedule == TestSchedule::kForceSteal) {
      // Everything on slot 0: the other width-1 workers start destitute.
      job.ranges[0].tail.store(chunks, std::memory_order_relaxed);
    } else {
      // Contiguous even split, remainder to the low slots — the same grid
      // the static baseline uses, so steals measure true rebalancing.
      const std::uint64_t base = chunks / static_cast<std::uint64_t>(width);
      const std::uint64_t extra = chunks % static_cast<std::uint64_t>(width);
      std::uint64_t at = 0;
      for (int s = 0; s < width; ++s) {
        const std::uint64_t n = base + (static_cast<std::uint64_t>(s) < extra ? 1 : 0);
        job.ranges[static_cast<std::size_t>(s)].head.store(at, std::memory_order_relaxed);
        job.ranges[static_cast<std::size_t>(s)].tail.store(at + n, std::memory_order_relaxed);
        at += n;
      }
    }
  }

  // Nested calls (a pool task invoking run) and width-1 jobs execute inline
  // on this thread; the determinism contract makes that output-equivalent.
  bool dispatched = false;
  if (!tls_in_pool_task && width > 1) {
    impl_->acquire_turn();
    {
      std::unique_lock<std::mutex> lock(impl_->m);
      if (!impl_->stop) {
        impl_->ensure_helpers(width - 1);
        impl_->job = &job;
        ++impl_->generation;
        impl_->cv.notify_all();
        lock.unlock();

        work(job, 0);  // the caller is slot 0

        // Retire the job in two steps. First wait for every chunk to finish —
        // under a no-steal schedule only a slot's adopting helper can run its
        // range, so the job must stay adoptable until the count is full. Then
        // clear it (no NEW helper can adopt a dying frame) and drain the
        // helpers already inside it.
        lock.lock();
        impl_->done_cv.wait(lock, [&] {
          return job.completed.load(std::memory_order_acquire) == chunks;
        });
        impl_->job = nullptr;
        impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
        dispatched = true;
      }
    }
    impl_->release_turn();
  }
  if (!dispatched) {
    // Inline execution walks every slot's share from this one thread (slot 0
    // also steals the others' leftovers under kNone, matching the protocol).
    for (int s = 0; s < width; ++s) work(job, s);
  }

  if (stats) {
    stats->chunks = chunks;
    stats->steals = 0;
    stats->worker_chunks.assign(static_cast<std::size_t>(width), 0);
    stats->worker_steals.assign(static_cast<std::size_t>(width), 0);
    for (int s = 0; s < width; ++s) {
      const Job::Counts& c = job.counts[static_cast<std::size_t>(s)].value;
      stats->worker_chunks[static_cast<std::size_t>(s)] = c.chunks;
      stats->worker_steals[static_cast<std::size_t>(s)] = c.steals;
      stats->steals += c.steals;
    }
    stats->chunk_worker = std::move(job.chunk_worker);
  }
  if (job.error) std::rethrow_exception(job.error);
}

WorkerPool& WorkerPool::instance() {
  // Meyers singleton: spawned on first use, parked between runs, joined
  // cleanly at static destruction (sanitizer runs see no leaked threads).
  static WorkerPool pool;
  return pool;
}

void WorkerPool::set_test_schedule(TestSchedule schedule, std::uint64_t seed) {
  g_test_schedule.store(static_cast<int>(schedule), std::memory_order_relaxed);
  g_test_seed.store(seed, std::memory_order_relaxed);
}

}  // namespace photon
