#include "engine/backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "par/dist.hpp"
#include "par/hybrid.hpp"
#include "par/shared.hpp"
#include "par/spatial.hpp"
#include "sim/simulator.hpp"

namespace photon {

namespace {

class SerialBackend final : public Backend {
 public:
  std::string name() const override { return "serial"; }
  bool supports_resume() const override { return true; }
  RunResult run(const Scene& scene, const RunConfig& config,
                const RunResult* resume) override {
    return run_serial(scene, config, resume);
  }
};

class SharedBackend final : public Backend {
 public:
  std::string name() const override { return "shared"; }
  bool supports_resume() const override { return true; }
  RunResult run(const Scene& scene, const RunConfig& config,
                const RunResult* resume) override {
    return run_shared(scene, config, resume);
  }
};

class DistParticleBackend final : public Backend {
 public:
  std::string name() const override { return "dist-particle"; }
  // Resume folds the checkpoint into the partitioned trees (BinForest merge)
  // and continues on a disjoint RNG block — statistically independent, not
  // the bitwise continuation serial guarantees.
  bool supports_resume() const override { return true; }
  RunResult run(const Scene& scene, const RunConfig& config,
                const RunResult* resume) override {
    return run_distributed(scene, config, resume);
  }
};

class DistSpatialBackend final : public Backend {
 public:
  std::string name() const override { return "dist-spatial"; }
  // Resume folds the checkpoint into the partitioned trees and continues the
  // per-photon id sequence where the checkpoint stopped.
  bool supports_resume() const override { return true; }
  RunResult run(const Scene& scene, const RunConfig& config,
                const RunResult* resume) override {
    return run_spatial(scene, config, resume);
  }
};

class HybridBackend final : public Backend {
 public:
  std::string name() const override { return "hybrid"; }
  // Resume folds the checkpoint into the partitioned trees and continues the
  // per-photon id sequence; when the first leg ended on a batch-window
  // boundary the continuation is bitwise identical to an uninterrupted run.
  bool supports_resume() const override { return true; }
  RunResult run(const Scene& scene, const RunConfig& config,
                const RunResult* resume) override {
    return run_hybrid(scene, config, resume);
  }
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, BackendFactory>& factory_map() {
  static std::map<std::string, BackendFactory> factories = {
      {"serial", [] { return std::make_unique<SerialBackend>(); }},
      {"shared", [] { return std::make_unique<SharedBackend>(); }},
      {"dist-particle", [] { return std::make_unique<DistParticleBackend>(); }},
      {"dist-spatial", [] { return std::make_unique<DistSpatialBackend>(); }},
      {"hybrid", [] { return std::make_unique<HybridBackend>(); }},
  };
  return factories;
}

}  // namespace

bool register_backend(const std::string& name, BackendFactory factory) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return factory_map().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Backend> make_backend(const std::string& name) {
  // Copy the factory out before invoking it: a registered factory may itself
  // call back into the registry (e.g. a decorator wrapping another backend),
  // which would deadlock on the non-recursive mutex if still held.
  BackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = factory_map().find(name);
    if (it == factory_map().end()) return nullptr;
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> backend_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(factory_map().size());
  for (const auto& [name, factory] : factory_map()) names.push_back(name);
  return names;
}

}  // namespace photon
