// Run telemetry shared by every backend: the speed trace of chapter 5 (one
// photons-per-second point per sample), the bin-forest memory curve of
// Fig 5.4, and counter merging. The seed carried a hand-rolled copy of this
// collection loop in each substrate; this is the single implementation.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace photon {

struct SpeedPoint {
  double time_s = 0.0;       // wall time at end of batch
  std::uint64_t photons = 0; // cumulative photons simulated
  double rate = 0.0;         // photons/second over the whole run so far
};

struct SpeedTrace {
  std::vector<SpeedPoint> points;
  double total_time_s = 0.0;
  std::uint64_t total_photons = 0;

  double final_rate() const {
    return total_time_s > 0.0 ? static_cast<double>(total_photons) / total_time_s : 0.0;
  }
};

struct MemoryPoint {
  std::uint64_t photons = 0;
  std::uint64_t bytes = 0;
};

// Append-per-point trace writer: streams SpeedPoints and MemoryPoints to one
// JSONL file ({"t": ..., "photons": ..., "rate": ...} and
// {"photons": ..., "mem_bytes": ...} lines, doubles at full %.17g round-trip
// precision) so long runs stop accumulating telemetry in RAM. The two line
// shapes interleave freely; each parse() overload skips the other's lines.
// Opened by SpeedSampler when RunConfig::trace_path is set.
//
// `base_photons` is the resume boundary: 0 (a fresh run) truncates any stale
// file; a resumed/continued leg instead keeps the existing rows at or below
// the boundary and appends after them. Rows ABOVE the boundary are dropped —
// they are windows the previous (preempted or failed) leg traced past the
// checkpoint, which this leg is about to replay; keeping them would duplicate
// every replayed window in the file and break the round-trip parse.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path, std::uint64_t base_photons = 0);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  void write(const SpeedPoint& p);
  void write(const MemoryPoint& p);

  // Parses one JSONL line previously produced by write(); returns false when
  // the line is not a point of the requested kind. Lives here so the
  // round-trip (write -> parse reproduces the in-memory point bitwise) has
  // one owner.
  static bool parse(const std::string& line, SpeedPoint& out);
  static bool parse(const std::string& line, MemoryPoint& out);

 private:
  std::FILE* file_ = nullptr;
};

// Wall-clock speed-trace collector. Construction starts the clock; sample()
// appends one point; finish() closes the trace, appending the final point
// only when the last sample did not already record the terminal photon count
// (the seed's shared-memory loop pushed that point twice).
//
// Constructed with a non-empty `trace_path`, every point streams to that file
// through a TraceWriter instead of accumulating in the in-memory trace; the
// returned SpeedTrace then carries only the totals.
// The sampler's points are leg-relative (photon counts since this run/resume
// started) — that is what RunResult::trace reports. The FILE rows are
// absolute: on a resumed leg, pass the checkpoint's photon count as
// `base_photons` and every streamed row is offset by it, continuing the
// previous leg's rows monotonically instead of resetting (or duplicating
// replayed windows) mid-file.
class SpeedSampler {
 public:
  SpeedSampler() : start_(std::chrono::steady_clock::now()) {}
  explicit SpeedSampler(const std::string& trace_path, std::uint64_t base_photons = 0)
      : SpeedSampler() {
    base_photons_ = base_photons;
    if (!trace_path.empty()) {
      writer_ = std::make_unique<TraceWriter>(trace_path, base_photons);
    }
  }

  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  // Appends a point at the current wall time.
  void sample(std::uint64_t done) { sample_at(elapsed(), done); }

  // Appends a point at an externally agreed time (the distributed backends
  // allreduce the elapsed time so every rank sees the same trace).
  void sample_at(double t, std::uint64_t done) {
    const SpeedPoint p{t, done, t > 0.0 ? static_cast<double>(done) / t : 0.0};
    last_photons_ = done;
    have_points_ = true;
    if (writer_) {
      writer_->write(SpeedPoint{p.time_s, base_photons_ + done, p.rate});
    } else {
      trace_.points.push_back(p);
    }
  }

  // Appends one bin-forest memory point (the Fig 5.4 curve). Streamed to the
  // trace file when one is open — a multi-hour run's memory curve no longer
  // grows resident memory either — otherwise accumulated for take_memory().
  void sample_memory(std::uint64_t photons, std::uint64_t bytes) {
    if (writer_) {
      writer_->write(MemoryPoint{base_photons_ + photons, bytes});
    } else {
      memory_.push_back(MemoryPoint{photons, bytes});
    }
  }

  // The accumulated memory curve (empty when it streamed to disk); callers
  // move it into RunResult::memory after the run.
  std::vector<MemoryPoint> take_memory() { return std::move(memory_); }

  // Seals the trace: records totals and guarantees exactly one terminal point.
  SpeedTrace finish(std::uint64_t total_photons) {
    trace_.total_photons = total_photons;
    trace_.total_time_s = elapsed();
    if (!have_points_ || last_photons_ != total_photons) {
      sample_at(trace_.total_time_s, total_photons);
    }
    return std::move(trace_);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  SpeedTrace trace_;
  std::vector<MemoryPoint> memory_;
  std::unique_ptr<TraceWriter> writer_;
  std::uint64_t base_photons_ = 0;
  std::uint64_t last_photons_ = 0;
  bool have_points_ = false;
};

}  // namespace photon
