// Run telemetry shared by every backend: the speed trace of chapter 5 (one
// photons-per-second point per sample), the bin-forest memory curve of
// Fig 5.4, and counter merging. The seed carried a hand-rolled copy of this
// collection loop in each substrate; this is the single implementation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace photon {

struct SpeedPoint {
  double time_s = 0.0;       // wall time at end of batch
  std::uint64_t photons = 0; // cumulative photons simulated
  double rate = 0.0;         // photons/second over the whole run so far
};

struct SpeedTrace {
  std::vector<SpeedPoint> points;
  double total_time_s = 0.0;
  std::uint64_t total_photons = 0;

  double final_rate() const {
    return total_time_s > 0.0 ? static_cast<double>(total_photons) / total_time_s : 0.0;
  }
};

struct MemoryPoint {
  std::uint64_t photons = 0;
  std::uint64_t bytes = 0;
};

// Wall-clock speed-trace collector. Construction starts the clock; sample()
// appends one point; finish() closes the trace, appending the final point
// only when the last sample did not already record the terminal photon count
// (the seed's shared-memory loop pushed that point twice).
class SpeedSampler {
 public:
  SpeedSampler() : start_(std::chrono::steady_clock::now()) {}

  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  // Appends a point at the current wall time.
  void sample(std::uint64_t done) { sample_at(elapsed(), done); }

  // Appends a point at an externally agreed time (the distributed backends
  // allreduce the elapsed time so every rank sees the same trace).
  void sample_at(double t, std::uint64_t done) {
    trace_.points.push_back({t, done, t > 0.0 ? static_cast<double>(done) / t : 0.0});
  }

  // Seals the trace: records totals and guarantees exactly one terminal point.
  SpeedTrace finish(std::uint64_t total_photons) {
    trace_.total_photons = total_photons;
    trace_.total_time_s = elapsed();
    if (trace_.points.empty() || trace_.points.back().photons != total_photons) {
      trace_.points.push_back({trace_.total_time_s, total_photons, trace_.final_rate()});
    }
    return std::move(trace_);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  SpeedTrace trace_;
};

// Polls `progress` every `interval_s` seconds until it reaches `total`,
// appending one speed point per poll. Returns immediately when total == 0 (a
// zero-photon run must not spin waiting for progress that will never come).
void sample_progress(SpeedSampler& sampler, const std::atomic<std::uint64_t>& progress,
                     std::uint64_t total, double interval_s);

}  // namespace photon
