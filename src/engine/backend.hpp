// The pluggable execution layer: one photon pipeline, four decompositions.
//
// Every backend runs the same hierarchical-histogram simulation — emit,
// trace, tally into the adaptive bin forest — and differs only in how the
// work and the forest are decomposed:
//
//   serial        one thread, the paper's "best serial version" baseline
//   shared        shared-memory forall loop with per-tree locks (Fig 5.2)
//   dist-particle replicated geometry, partitioned forest, batched
//                 all-to-all record exchange (Fig 5.3)
//   dist-spatial  partitioned geometry; photons migrate between region
//                 owners (chapter 6, "Massive Parallelism")
//   hybrid        message passing between groups, shared memory within them
//                 (the paper's cluster-of-multiprocessors target): groups ×
//                 workers threads, bitwise shape-invariant (par/hybrid.hpp)
//
// Backends are selected by name through make_backend(); additional backends
// can be registered at runtime with register_backend(). Every registered
// backend is exercised by the cross-backend conformance suite
// (tests/test_conformance.cpp): determinism, conservation, and — where the
// backend contracts it — bitwise equality with the serial reference.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/aabb.hpp"
#include "engine/config.hpp"
#include "engine/governor.hpp"
#include "engine/telemetry.hpp"
#include "hist/binforest.hpp"
#include "par/loadbalance.hpp"
#include "sim/tracer.hpp"

namespace photon {

// Per-worker report. The first block is filled by the particle
// decompositions, the second by the spatial decomposition; unused fields stay
// zero.
struct RankReport {
  std::uint64_t traced = 0;     // photons generated and traced by this rank
  std::uint64_t processed = 0;  // tally updates performed (Table 5.2 metric)
  std::uint64_t sent_bytes = 0;
  std::uint64_t sent_messages = 0;
  std::uint64_t rounds = 0;     // exchange rounds executed
  // Wall time blocked in recv on the overlapped record exchange only (the
  // overlap metric) — synchronous photon migration and the tree gather ride
  // other tags, and collective skew lives in the allreduce barriers.
  double wait_seconds = 0.0;
  std::vector<std::uint64_t> batch_sizes;
  TraceCounters counters;

  // Exact generator state of this rank's leapfrogged stream at the end of
  // the run (dist-particle). Checkpointed so a resume at the same rank count
  // restores each stream in place — the bitwise continuation. Zero when the
  // backend has no per-rank stream (spatial/hybrid photons carry their own
  // disjoint blocks and need no state).
  std::uint64_t rng_state = 0;
  std::uint64_t rng_mul = 0;
  std::uint64_t rng_add = 0;

  // Spatial decomposition (chapter 6).
  std::uint64_t local_patches = 0;    // patches overlapping this rank's region
  std::uint64_t octree_nodes = 0;     // local octree size (the memory win)
  std::uint64_t photons_in = 0;       // in-flight photons received
  std::uint64_t photons_out = 0;      // in-flight photons forwarded
  std::uint64_t segments_traced = 0;  // trace segments executed
  std::uint64_t tallies = 0;          // records applied by this rank

  // Deadline expiries this rank retried through under the CommPolicy
  // (mp/fault.hpp) — slack the policy absorbed without declaring anything.
  std::uint64_t deadline_retries = 0;
};

// Outcome of an elastic run (engine/recovery.hpp): how many checkpoint legs
// executed, what failed, and what the failures cost. All zeros for an
// undisturbed single-leg run.
struct RecoveryStats {
  int legs = 0;                          // legs that completed
  int failures = 0;                      // WorldFailures recovered from
  int ranks_lost = 0;                    // ranks removed across all failures
  int final_width = 0;                   // surviving parallel width at the end
  std::uint64_t photons_retraced = 0;    // open-leg photons re-traced after failures
  double lost_seconds = 0.0;             // wall time inside failed legs
  std::vector<int> dead_ranks;           // per-failure rank ids (world-local)
};

// Scheduler telemetry from the persistent worker pool (engine/pool.hpp):
// how the chunk grid actually landed on the workers. Supersedes the bare
// `per_thread_traced` vector as the Table 5.2 imbalance observable — with
// dynamic stealing, *chunks executed* and *steals performed* per worker are
// the interesting skew numbers, not just photon totals. For `shared` the
// slots are worker threads; for `hybrid` slot group*workers+tid is thread
// tid of group `group` (the group×thread extension ROADMAP asks for).
struct PoolTelemetry {
  std::uint64_t chunk_size = 0;  // photons per scheduling chunk
  std::uint64_t chunks = 0;      // chunks executed across the run
  std::uint64_t steals = 0;      // claims outside the claimer's static range
  std::vector<std::uint64_t> worker_photons;  // photons traced per worker slot
  std::vector<std::uint64_t> worker_chunks;   // chunks executed per worker slot
  std::vector<std::uint64_t> worker_steals;   // steals performed per worker slot
};

// The unified result: the populated forest (the "answer file") plus the
// telemetry every backend collects. Backend-specific detail (per-rank
// reports, the ownership map, the region partition) rides along where the
// backend produces it.
struct RunResult {
  BinForest forest;
  SpeedTrace trace;
  TraceCounters counters;
  std::vector<MemoryPoint> memory;

  // Exact generator state at the end of a serial run; with the forest and
  // counters this is everything needed to resume (sim/checkpoint.hpp).
  std::uint64_t rng_state = 0;
  std::uint64_t rng_mul = 0;
  std::uint64_t rng_add = 0;

  std::vector<std::uint64_t> per_thread_traced;  // shared (== pool.worker_photons)
  PoolTelemetry pool;                            // shared, hybrid
  std::vector<RankReport> ranks;                 // dist-particle, dist-spatial
  LoadBalance balance;                           // dist-particle
  std::vector<Aabb> regions;                     // dist-spatial
  RecoveryStats recovery;                        // filled by run_elastic

  // How a governed run ended (engine/governor.hpp). kComplete unless
  // config.governed and the run stopped early at a window boundary; a
  // non-complete result is still a valid resume point — counters.emitted
  // photons are done, rerunning with the same checkpoint continues bitwise.
  RunStatus status = RunStatus::kComplete;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  // Whether run() honors `resume`: adopting the forest, counters and RNG
  // state of a previous result and simulating config.photons *additional*
  // photons. `serial` and the photon-stream backends (`shared`, `hybrid` at
  // window boundaries) guarantee the continuation is bitwise identical to an
  // uninterrupted run.
  virtual bool supports_resume() const { return false; }

  virtual RunResult run(const Scene& scene, const RunConfig& config,
                        const RunResult* resume = nullptr) = 0;
};

using BackendFactory = std::function<std::unique_ptr<Backend>()>;

// Registers a backend under `name`; returns false (and leaves the existing
// entry) when the name is taken.
bool register_backend(const std::string& name, BackendFactory factory);

// Instantiates a backend by name; nullptr for unknown names.
std::unique_ptr<Backend> make_backend(const std::string& name);

// Registered names, sorted; always includes the five built-ins.
std::vector<std::string> backend_names();

}  // namespace photon
