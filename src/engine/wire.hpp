// Wire formats exchanged between ranks, defined once for every
// message-passing backend (the seed duplicated these structs in
// par/dist.cpp and par/spatial.cpp "to keep the two substrates independent").
//
// Two record kinds travel on the wire:
//  - WireRecord: a packed tally destined for the bin-tree owner (the EnQueue
//    payload of Fig 5.3).
//  - FlightWire: an in-flight photon crossing a region boundary in the
//    distributed-geometry decomposition (chapter 6). It carries its full RNG
//    state so any rank can continue the path deterministically.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/rng.hpp"
#include "core/vec3.hpp"
#include "material/polarization.hpp"
#include "sim/tracer.hpp"

namespace photon {

using Bytes = std::vector<std::uint8_t>;

// Packed bounce record as exchanged on the wire.
struct WireRecord {
  std::int32_t patch = -1;
  float s = 0, t = 0, u = 0, theta = 0;
  std::uint8_t channel = 0;
  std::uint8_t front = 1;
  std::uint16_t pad = 0;
};
static_assert(sizeof(WireRecord) == 24, "wire format is part of the protocol");

WireRecord to_wire(const BounceRecord& rec);
BounceRecord from_wire(const WireRecord& wire);
WireRecord make_wire_record(int patch, const BinCoords& coords, int channel, bool front);

// In-flight photon as exchanged between region owners.
struct FlightWire {
  double px, py, pz;
  double dx, dy, dz;
  std::uint64_t rng_state;
  std::int32_t bounces;
  std::uint8_t channel;
  std::uint8_t pad[3];
  float pol_s;
};
static_assert(sizeof(FlightWire) == 72, "wire format is part of the protocol");

// Unpacked in-flight photon: position, heading, private RNG stream and
// polarization state — everything a rank needs to continue the path.
struct PhotonFlight {
  Vec3 pos;
  Vec3 dir;
  Lcg48 rng;
  int bounces = 0;
  int channel = 0;
  Polarization pol = Polarization::unpolarized();
};

FlightWire to_wire(const PhotonFlight& flight);
PhotonFlight from_wire(const FlightWire& wire);

// Byte-buffer (de)serialization for the all-to-all exchanges.
Bytes pack_records(const std::vector<WireRecord>& records);
std::vector<WireRecord> unpack_records(const Bytes& buf);
Bytes pack_flights(const std::vector<FlightWire>& flights);
std::vector<FlightWire> unpack_flights(const Bytes& buf);

// Number of `T`-sized wire records held by a byte buffer.
template <typename T>
std::size_t wire_count(const Bytes& buf) {
  return buf.size() / sizeof(T);
}

// Zero-copy iteration over a packed byte buffer: invokes `fn(const T&)` once
// per record without materializing a std::vector<T>. Records are copied into
// a stack local (a fixed-size memcpy the compiler folds into plain loads), so
// the walk is alignment- and aliasing-safe regardless of the buffer origin.
template <typename T, typename Fn>
void for_each_wire(const Bytes& buf, Fn&& fn) {
  static_assert(std::is_trivially_copyable_v<T>, "wire records must be PODs");
  const std::size_t n = wire_count<T>(buf);
  for (std::size_t i = 0; i < n; ++i) {
    T rec;
    std::memcpy(&rec, buf.data() + i * sizeof(T), sizeof(T));
    fn(rec);
  }
}

// Per-destination wire serializer: records are appended straight into the
// byte buffer that will go on the wire, so the record path performs exactly
// one copy (struct -> outgoing Bytes). The seed staged every record through a
// std::vector<WireRecord> and re-packed the whole queue into a fresh Bytes
// every batch — two extra full copies plus two allocations per destination
// per round.
class WireBuffer {
 public:
  explicit WireBuffer(int destinations);

  int destinations() const { return static_cast<int>(bufs_.size()); }

  template <typename T>
  void append(int dest, const T& rec) {
    static_assert(std::is_trivially_copyable_v<T>, "wire records must be PODs");
    Bytes& b = bufs_[static_cast<std::size_t>(dest)];
    const std::size_t off = b.size();
    b.resize(off + sizeof(T));
    std::memcpy(b.data() + off, &rec, sizeof(T));
  }

  const Bytes& buffer(int dest) const { return bufs_[static_cast<std::size_t>(dest)]; }

  bool empty() const;
  std::size_t total_bytes() const;

  // Surrenders the per-destination buffers to the transport (they are moved
  // onward, never copied) and leaves this WireBuffer empty with the same
  // destination count — immediately refillable, so batch k+1 serializes here
  // while the surrendered batch-k bytes drain through the exchange (the two
  // batches never share a buffer).
  std::vector<Bytes> take();

 private:
  std::vector<Bytes> bufs_;
};

}  // namespace photon
