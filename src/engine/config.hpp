// The unified simulation configuration.
//
// One RunConfig drives every backend (serial, shared, dist-particle,
// dist-spatial); fields a backend does not use are simply ignored. This
// supersedes the seed's four per-substrate config structs, which had drifted
// copies of the same knobs.
//
// Unification note: defaults are now backend-independent, which changed two
// of them relative to the old DistConfig/SpatialConfig — the distributed
// backends previously defaulted to adaptive batching with a 2000-photon
// fixed fallback; RunConfig defaults to fixed 10000-photon batches
// everywhere. Callers that want the chapter-5 adaptive behavior must set
// adapt_batch (and usually a smaller `batch`) explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/stats.hpp"
#include "engine/batch.hpp"
#include "mp/fault.hpp"
#include "sim/tracer.hpp"

namespace photon {

class RunControl;  // engine/governor.hpp

struct RunConfig {
  std::uint64_t photons = 100000;  // total across all workers
  std::uint64_t seed = 0x1234ABCD330EULL;

  // Parallel width: threads for `shared`, ranks for `dist-particle` and
  // `dist-spatial`, threads per group for `hybrid`. Ignored by `serial`.
  int workers = 2;

  // Message-passing groups for the `hybrid` backend (groups × workers total
  // threads: each MiniMPI rank is one multiprocessor "box" running `workers`
  // shared-memory threads). Ignored by every other backend.
  int groups = 1;

  // serial: draw each photon from its own disjoint 4096-element RNG block
  // (par/spatial's photon_stream) instead of one continuous stream. This is
  // the bitwise reference the shape-invariant backends (`hybrid`,
  // `dist-spatial`@1) are pinned against: photon i's path no longer depends
  // on how many draws photons 0..i-1 consumed, so any decomposition of the
  // id space can reproduce it exactly.
  bool photon_streams = false;

  // Leapfrog substream for `serial` (rank of nranks); (0, 1) is the plain
  // serial stream. Lets a serial run reproduce one rank of a parallel run.
  int rank = 0;
  int nranks = 1;

  // Batching. `batch` is the fixed batch size: photons per batch for serial,
  // per rank per round for dist-particle/dist-spatial, and the GLOBAL ids
  // per window for hybrid (shared by all groups — shape-independent, which
  // is what makes hybrid's schedule, and so its result, bitwise invariant).
  // When `adapt_batch` is set, the engine's BatchController adapts the size
  // to the measured rate instead (chapter 5, "Communication vs.
  // Computation"); hybrid ignores adapt_batch (par/hybrid.hpp).
  std::uint64_t batch = 10000;
  bool adapt_batch = false;
  BatchPolicy batch_policy{};

  // Photons per scheduling chunk for the pool-backed threaded backends
  // (shared, hybrid): the photon-id range is cut into `chunk`-photon chunks
  // that idle workers claim/steal dynamically (engine/pool.hpp). Purely a
  // scheduling grain — per-chunk record buffers drain in ascending chunk
  // order, so the populated forest is bitwise identical for ANY chunk size,
  // worker count, or steal interleaving. Clamped to >= 1.
  std::uint64_t chunk = 64;

  double max_seconds = 0.0;         // serial: stop after this much wall time when > 0
  double sample_interval_s = 0.05;  // shared: speed-trace sampling period (legacy; the
                                    // pool-backed loop samples once per batch window)

  // When non-empty, every speed-trace point — and, for serial, every
  // bin-forest memory point — streams to this file (JSONL, one point per
  // line, appended as it is sampled) instead of accumulating in
  // RunResult::trace.points / RunResult::memory — a multi-hour run's
  // telemetry no longer grows resident memory. Totals
  // (total_photons/total_time_s/final_rate) are still filled in the returned
  // trace.
  std::string trace_path;

  // shared: BounceRecords buffered per worker before a per-tree batched flush
  // (engine/sink.hpp). 1 collapses to one lock per record; values are clamped
  // to >= 1. Buffering never changes any single tree's record order, so
  // shared@1 stays bitwise identical to serial at any threshold.
  std::uint64_t sink_buffer = 256;

  // dist-particle load balancing: probe photons (k) and assignment strategy.
  std::uint64_t lb_photons = 2000;
  bool bestfit = true;  // false: naive contiguous ownership

  // Acceleration structure for every index the run builds: the scene's global
  // index (built by the caller via Scene::set_accel) and dist-spatial's
  // per-region local indexes. All structures answer queries bitwise
  // identically, so this is a performance knob, not a semantics one.
  AccelKind accel = AccelKind::kOctree;

  SplitPolicy policy{};
  TraceLimits limits{};

  // --- Fault tolerance (mp/fault.hpp; engine/recovery.hpp) ----------------
  // Scripted fault injection for the MiniMPI world the distributed backends
  // run in. Shared (not owned per run) so a consumed fault stays consumed
  // across the elastic runner's recovery legs. Null disables injection.
  std::shared_ptr<FaultPlan> fault_plan;
  // Deadline/heartbeat policy for every blocking MiniMPI path. The default
  // (deadline 0) is the historical block-forever behavior; setting a
  // deadline turns hangs into typed CommErrors and, with `heartbeats`,
  // arms the failure detector.
  CommPolicy comm{};
  // Elastic-runner leg size: run_elastic cuts the run into legs of this many
  // photons, holding the last completed leg's RunResult as the in-memory
  // checkpoint a recovery rewinds to. Rounded down to a whole number of
  // `batch` windows (hybrid resume is bitwise only at window boundaries).
  // 0 = one leg (no intermediate checkpoints: a failure re-traces the run).
  std::uint64_t checkpoint_photons = 0;
  // World failures tolerated before run_elastic gives up and rethrows.
  int max_recoveries = 8;

  // --- Run governance (engine/governor.hpp) -------------------------------
  // Governed runs poll the preempt flag and the memory budget at window
  // boundaries and stop gracefully with a non-kComplete RunStatus. Off by
  // default: governance adds one allreduce per window on the distributed
  // backends, and collectives must be unconditional across ranks — so the
  // flag must be identical on every rank of a world (the CLI always sets it;
  // library callers opt in).
  bool governed = false;
  // Watchdog deadline: no Progress tick for this many seconds makes the run
  // suspect; none for a further watchdog_grace_s declares it wedged
  // (emergency checkpoint + typed abort). 0 disables the watchdog.
  double watchdog_s = 0.0;
  double watchdog_grace_s = 0.0;  // 0 = same as watchdog_s
  // Planning + runtime memory budget in bytes (0 = unlimited). Admission
  // applies the degradation ladder (govern_admission); governed runs also
  // stop with RunStatus::kOverBudget when the summed forest footprint
  // crosses it mid-run.
  std::uint64_t memory_budget = 0;
  // Where the watchdog's emergency callback flushes the last completed leg
  // when a run is declared wedged (empty = no emergency checkpoint).
  std::string emergency_checkpoint_path;
  // Last-resort _Exit(6) when a wedge is unreachable by world poisoning
  // (e.g. a stuck compute loop). CLI-only; never set in library use.
  bool watchdog_exit = false;
  // Per-run governance scope (engine/governor.hpp). When set, the governed
  // loops poll THIS control's preempt flag and tick ITS Progress beacon
  // instead of the process globals — the photon service attaches one per job
  // so cancelling or watching one job never touches another. Null keeps the
  // historical process-global behavior (the CLI path).
  std::shared_ptr<RunControl> control;
};

}  // namespace photon
