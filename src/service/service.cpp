#include "service/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "core/error.hpp"
#include "engine/governor.hpp"
#include "engine/recovery.hpp"
#include "mp/minimpi.hpp"
#include "sim/checkpoint.hpp"

namespace photon {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kPreempted: return "preempted";
    case JobState::kOverBudget: return "over-budget";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRefused: return "refused";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  switch (state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return false;
    default:
      return true;
  }
}

namespace {

struct Job {
  JobSpec spec;
  JobInfo info;
  std::shared_ptr<RunControl> control = std::make_shared<RunControl>();
  bool cancel_requested = false;
};

}  // namespace

struct PhotonService::Impl {
  ServiceConfig config;
  SceneLoader loader;

  mutable std::mutex m;
  std::condition_variable cv;       // executors wait for work / admission here
  std::condition_variable done_cv;  // wait() parks here
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs;
  std::deque<std::uint64_t> pending;  // FIFO submission order
  std::uint64_t next_id = 1;
  std::uint64_t reserved_bytes = 0;  // admitted-but-unfinished estimates
  std::uint64_t loads = 0;           // scene cache misses
  bool stopping = false;

  // Resident scenes, keyed by "name/accel". shared_ptr<const Scene> because a
  // job may still hold the scene while a (future) eviction drops the cache
  // entry.
  std::map<std::string, std::shared_ptr<const Scene>> scenes;

  std::vector<std::thread> executors;

  static std::string scene_key(const std::string& name, AccelKind kind) {
    return name + "/" + accel_kind_name(kind);
  }

  // Caller holds `m`. Loads through the cache; throws SceneError on a loader
  // failure so the executor fails just this job.
  std::shared_ptr<const Scene> resident_scene(const JobSpec& spec) {
    const std::string key = scene_key(spec.scene, spec.config.accel);
    auto it = scenes.find(key);
    if (it != scenes.end()) return it->second;
    ++loads;
    std::shared_ptr<const Scene> scene = loader(spec.scene, spec.config.accel);
    if (!scene) throw SceneError("cannot load scene '" + spec.scene + "'");
    scenes.emplace(key, scene);
    return scene;
  }

  void finish(Job& job, JobState state, const std::string& error) {
    job.info.state = state;
    job.info.error = error;
    done_cv.notify_all();
    // Admission capacity freed: wake executors parked on the budget.
    cv.notify_all();
  }

  void run_job(Job& job, const std::shared_ptr<const Scene>& scene) {
    RunConfig cfg = job.spec.config;
    cfg.governed = true;
    cfg.control = job.control;
    cfg.watchdog_s = config.watchdog_s;
    cfg.watchdog_grace_s = config.watchdog_grace_s;
    cfg.watchdog_exit = false;  // a wedged job must never _Exit the service
    if (!job.spec.checkpoint_path.empty()) {
      cfg.emergency_checkpoint_path = job.spec.checkpoint_path;
    }

    const std::unique_ptr<Backend> backend = make_backend(job.spec.backend);
    RunResult result = run_elastic(*backend, *scene, cfg, nullptr);

    // Atomic tmp+rename save: a kill mid-write leaves any previous
    // checkpoint at the path loadable. Done before taking the lock — the
    // flush must not stall status queries.
    bool checkpoint_ok = true;
    if (!job.spec.checkpoint_path.empty()) {
      checkpoint_ok = save_checkpoint(result, job.spec.checkpoint_path);
    }

    std::lock_guard<std::mutex> lock(m);
    JobState state = JobState::kDone;
    std::string error;
    switch (result.status) {
      case RunStatus::kComplete: state = JobState::kDone; break;
      case RunStatus::kPreempted:
        // cancel_requested is read under `m`: cancel() writes it there.
        state = job.cancel_requested ? JobState::kCancelled : JobState::kPreempted;
        break;
      case RunStatus::kOverBudget: state = JobState::kOverBudget; break;
    }
    if (!checkpoint_ok) {
      state = JobState::kFailed;
      error = "cannot write checkpoint '" + job.spec.checkpoint_path + "'";
    }
    job.info.emitted = result.counters.emitted;
    job.info.bounces = result.counters.bounces;
    job.info.wall_s = result.trace.total_time_s;
    job.info.rate = result.trace.final_rate();
    job.info.progress_ticks = job.control->progress().total_ticks();
    finish(job, state, error);
  }

  void executor_main() {
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      cv.wait(lock, [&] { return stopping || !pending.empty(); });
      if (pending.empty()) {
        if (stopping) return;
        continue;
      }
      Job& job = *jobs.at(pending.front());
      pending.pop_front();
      if (job.cancel_requested || stopping) {
        finish(job, JobState::kCancelled, "");
        continue;
      }

      // Resolve the resident scene and score admission. Refuse only when the
      // job can NEVER fit; an admissible job waits for reserved capacity.
      std::shared_ptr<const Scene> scene;
      std::uint64_t estimate = 0;
      try {
        scene = resident_scene(job.spec);
        estimate = admission_estimate_bytes(*scene, job.spec.config,
                                            job.spec.config.sink_buffer);
        if (config.memory_budget != 0 && estimate > config.memory_budget) {
          // Rung 1 of the ladder (bitwise-neutral); rung 2 would rebuild the
          // shared accel and is off the table for a resident scene.
          job.spec.config.sink_buffer =
              std::min<std::uint64_t>(std::max<std::uint64_t>(job.spec.config.sink_buffer, 1), 16);
          estimate = admission_estimate_bytes(*scene, job.spec.config,
                                              job.spec.config.sink_buffer);
        }
      } catch (const EngineError& e) {
        finish(job, JobState::kFailed, e.what());
        continue;
      }
      if (config.memory_budget != 0 && estimate > config.memory_budget) {
        finish(job, JobState::kRefused,
               "admission refused: coarsest plan needs ~" + std::to_string(estimate) +
                   " bytes against a " + std::to_string(config.memory_budget) +
                   "-byte service budget");
        continue;
      }
      // Admissible: wait for capacity. FIFO is preserved — this executor
      // holds the job while it waits, and submissions behind it queue for
      // the other executors.
      cv.wait(lock, [&] {
        return stopping || job.cancel_requested || config.memory_budget == 0 ||
               reserved_bytes + estimate <= config.memory_budget;
      });
      if (stopping || job.cancel_requested) {
        finish(job, JobState::kCancelled, "");
        continue;
      }
      reserved_bytes += estimate;
      job.info.estimated_bytes = estimate;
      job.info.state = JobState::kRunning;

      lock.unlock();
      try {
        run_job(job, scene);
      } catch (const EngineError& e) {
        std::lock_guard<std::mutex> relock(m);
        finish(job, JobState::kFailed, e.what());
      } catch (const WorldFailure& e) {
        std::lock_guard<std::mutex> relock(m);
        finish(job, JobState::kFailed,
               std::string("run failed beyond recovery: ") + e.what());
      }
      lock.lock();
      reserved_bytes -= estimate;
      cv.notify_all();
    }
  }
};

PhotonService::PhotonService(ServiceConfig config, SceneLoader loader)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  impl_->config.max_active = std::max(config.max_active, 1);
  impl_->loader = std::move(loader);
  for (int i = 0; i < impl_->config.max_active; ++i) {
    impl_->executors.emplace_back([this] { impl_->executor_main(); });
  }
}

PhotonService::~PhotonService() { shutdown(); }

std::uint64_t PhotonService::submit(const JobSpec& spec) {
  if (spec.config.photons == 0) throw ConfigError("job needs photons >= 1");
  if (spec.config.workers < 1 || spec.config.workers > 4096 || spec.config.groups < 1 ||
      spec.config.groups > 4096) {
    throw ConfigError("workers and groups must be in [1, 4096]");
  }
  if (!make_backend(spec.backend)) {
    throw ConfigError("unknown backend '" + spec.backend + "'");
  }

  std::lock_guard<std::mutex> lock(impl_->m);
  if (impl_->stopping) throw ConfigError("service is shutting down");
  const std::uint64_t id = impl_->next_id++;
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->info.id = id;
  job->info.scene = spec.scene;
  job->info.backend = spec.backend;
  job->info.photons_requested = spec.config.photons;
  impl_->jobs.emplace(id, std::move(job));
  impl_->pending.push_back(id);
  // notify_all: an executor parked on the admission budget shares this cv
  // with executors parked on the queue — notify_one could wake only the
  // former (whose predicate is still false) and strand the new job.
  impl_->cv.notify_all();
  return id;
}

bool PhotonService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->m);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return false;
  Job& job = *it->second;
  if (job_state_terminal(job.info.state)) return false;
  job.cancel_requested = true;
  // Still in the pending deque: no executor holds it, so nothing will look
  // at cancel_requested until one frees up — finish it here instead of
  // leaving it queued behind the active jobs.
  auto p = std::find(impl_->pending.begin(), impl_->pending.end(), id);
  if (p != impl_->pending.end()) {
    impl_->pending.erase(p);
    impl_->finish(job, JobState::kCancelled, "");
    return true;
  }
  // Held by an executor: either parked on the admission cv (the wait
  // predicate reads cancel_requested) or running (scoped preempt — exactly
  // this job's loops see the vote; the process flag and every other job are
  // untouched).
  job.control->request_preempt();
  impl_->cv.notify_all();
  return true;
}

JobInfo PhotonService::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(impl_->m);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw ConfigError("unknown job " + std::to_string(id));
  }
  return it->second->info;
}

std::vector<JobInfo> PhotonService::jobs() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  std::vector<JobInfo> out;
  out.reserve(impl_->jobs.size());
  for (const auto& [id, job] : impl_->jobs) out.push_back(job->info);
  return out;
}

JobInfo PhotonService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(impl_->m);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw ConfigError("unknown job " + std::to_string(id));
  }
  Job& job = *it->second;
  impl_->done_cv.wait(lock, [&] { return job_state_terminal(job.info.state); });
  return job.info;
}

void PhotonService::shutdown() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stopping = true;
    // Fan preemption out per job: each active run stops at its next window
    // boundary with a resumable partial result.
    for (auto& [id, job] : impl_->jobs) {
      if (!job_state_terminal(job->info.state)) job->control->request_preempt();
    }
    impl_->cv.notify_all();
    joinable.swap(impl_->executors);
  }
  for (std::thread& t : joinable) t.join();
}

std::uint64_t PhotonService::scene_loads() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->loads;
}

}  // namespace photon
