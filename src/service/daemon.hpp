// The AF_UNIX front door of the photon service: accepts local connections on
// a socket path and speaks the line protocol (service/protocol.hpp). One
// thread per connection — `wait` blocks its own client, never the accept
// loop or another client's `status`.
#pragma once

#include <functional>
#include <string>

#include "service/service.hpp"

namespace photon {

// Serves `service` on `socket_path` until should_stop() returns true or a
// client sends `shutdown`. Removes a stale socket file at the path before
// binding and removes its own on exit. Returns false when the socket cannot
// be set up (diagnostic on stderr); true after a clean stop.
//
// should_stop is polled a few times per second from the accept loop — the
// CLI passes the process preempt flag so SIGTERM stops the daemon, which
// then preempts every active job via PhotonService::shutdown() (the caller's
// responsibility, typically via the service's destructor).
bool run_daemon(PhotonService& service, const std::string& socket_path,
                const std::function<bool()>& should_stop);

}  // namespace photon
