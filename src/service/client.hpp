// A minimal blocking client for the service socket: connect, send one
// request line, read one JSON response line. Used by the CLI's
// submit/status/cancel commands and the service tests; error handling is
// return-code style because a client failure is an I/O condition to report,
// not an engine invariant to throw over.
#pragma once

#include <string>

namespace photon {

class ServiceClient {
 public:
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  // Sends `line` (newline appended) and fills `response` with the
  // newline-stripped reply. False on I/O failure; error() says why.
  bool request(const std::string& line, std::string& response);

 private:
  int fd_ = -1;
  std::string error_;
};

}  // namespace photon
