#include "service/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/error.hpp"

namespace photon {

namespace {

// Keys a submit request may carry; anything else is rejected up front so a
// typo (photon=) errors instead of silently running the default.
bool known_submit_key(const std::string& key) {
  return key == "scene" || key == "backend" || key == "photons" || key == "seed" ||
         key == "workers" || key == "groups" || key == "batch" || key == "chunk" ||
         key == "accel" || key == "checkpoint" || key == "trace";
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  if (value.empty()) throw ConfigError(key + " needs a value");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || value[0] == '-') {
    throw ConfigError("bad " + key + " '" + value + "' (want an unsigned integer)");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

Request parse_request(const std::string& line) {
  Request req;
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) {
    req.error = "empty request";
    return req;
  }

  if (verb == "submit") req.kind = Request::Kind::kSubmit;
  else if (verb == "status") req.kind = Request::Kind::kStatus;
  else if (verb == "wait") req.kind = Request::Kind::kWait;
  else if (verb == "cancel") req.kind = Request::Kind::kCancel;
  else if (verb == "ping") req.kind = Request::Kind::kPing;
  else if (verb == "shutdown") req.kind = Request::Kind::kShutdown;
  else {
    req.error = "unknown request '" + verb + "'";
    return req;
  }

  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      req.kind = Request::Kind::kBad;
      req.error = "bad argument '" + token + "' (want key=value)";
      return req;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const bool ok = req.kind == Request::Kind::kSubmit ? known_submit_key(key)
                    : (req.kind == Request::Kind::kStatus || req.kind == Request::Kind::kWait ||
                       req.kind == Request::Kind::kCancel)
                        ? key == "job"
                        : false;
    if (!ok) {
      req.kind = Request::Kind::kBad;
      req.error = "unknown key '" + key + "' for '" + verb + "'";
      return req;
    }
    if (!req.kv.emplace(key, value).second) {
      req.kind = Request::Kind::kBad;
      req.error = "duplicate key '" + key + "'";
      return req;
    }
  }

  if (req.kind == Request::Kind::kSubmit && req.kv.find("scene") == req.kv.end()) {
    req.kind = Request::Kind::kBad;
    req.error = "submit needs scene=<name>";
  }
  if ((req.kind == Request::Kind::kWait || req.kind == Request::Kind::kCancel) &&
      req.kv.find("job") == req.kv.end()) {
    req.kind = Request::Kind::kBad;
    req.error = std::string(verb) + " needs job=<id>";
  }
  return req;
}

JobSpec job_spec_from_request(const Request& request) {
  JobSpec spec;
  for (const auto& [key, value] : request.kv) {
    if (key == "scene") {
      spec.scene = value;
    } else if (key == "backend") {
      spec.backend = value;
    } else if (key == "photons") {
      spec.config.photons = parse_u64(key, value);
    } else if (key == "seed") {
      spec.config.seed = parse_u64(key, value);
    } else if (key == "workers") {
      spec.config.workers = static_cast<int>(parse_u64(key, value));
    } else if (key == "groups") {
      spec.config.groups = static_cast<int>(parse_u64(key, value));
    } else if (key == "batch") {
      spec.config.batch = parse_u64(key, value);
    } else if (key == "chunk") {
      spec.config.chunk = parse_u64(key, value);
    } else if (key == "accel") {
      if (!accel_kind_from_string(value, spec.config.accel)) {
        throw ConfigError("unknown accel '" + value + "' (supported: octree | bvh | grid)");
      }
    } else if (key == "checkpoint") {
      spec.checkpoint_path = value;
    } else if (key == "trace") {
      spec.config.trace_path = value;
    }
  }
  return spec;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string job_info_json(const JobInfo& info) {
  // A stream, not a fixed snprintf buffer: error strings (paths, diagnostics)
  // have no length bound and a truncated response would be invalid JSON.
  std::ostringstream out;
  char num[64];
  out << "{\"job\": " << info.id << ", \"state\": \"" << job_state_name(info.state)
      << "\", \"scene\": \"" << json_escape(info.scene) << "\", \"backend\": \""
      << json_escape(info.backend) << "\", \"photons_requested\": " << info.photons_requested
      << ", \"emitted\": " << info.emitted << ", \"bounces\": " << info.bounces;
  std::snprintf(num, sizeof num, "%.6f", info.wall_s);
  out << ", \"wall_s\": " << num;
  std::snprintf(num, sizeof num, "%.1f", info.rate);
  out << ", \"photons_per_sec\": " << num;
  out << ", \"progress_ticks\": " << info.progress_ticks
      << ", \"estimated_bytes\": " << info.estimated_bytes << ", \"error\": \""
      << json_escape(info.error) << "\"}";
  return out.str();
}

}  // namespace photon
