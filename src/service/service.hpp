// The photon service: many governed runs multiplexed onto one process
// (DESIGN.md "Photon service").
//
// The session/scheduler split the service is built around:
//
//   Sessions     Scenes are RESIDENT: loaded and built once per (name, accel)
//                key, then shared by reference across every job that names
//                them. Backend::run takes `const Scene&` and the accel
//                snapshot and SoA patch arenas are immutable after build(),
//                so concurrent jobs read one copy — the Iray-style session
//                model from PAPERS.md, without per-job load/build cost.
//
//   Scheduler    A FIFO job queue drained by `max_active` executor threads.
//                Each executor runs its job through the ordinary elastic
//                runner; the jobs' batch windows interleave on the
//                process-lifetime WorkerPool, whose ticket queue grants the
//                dispatch slot in strict arrival order — fair-share at window
//                granularity, no job starves another (engine/pool.cpp).
//
//   Governance   Per job, not per process: every job gets its own RunControl
//                (preempt flag + Progress beacon) via RunConfig::control, so
//                cancel(id) stops exactly one job at its next window boundary
//                and a job's watchdog never sees another job's heartbeats.
//                The process-global flag (SIGTERM) stays the daemon's: on
//                shutdown the service fans preemption out to every active
//                job's control.
//
//   Admission    Each job is admitted against the service-wide memory budget
//                before it starts: shrink the sink buffers (bitwise-neutral),
//                then refuse jobs whose coarsest plan alone exceeds the
//                budget; admissible jobs WAIT until enough reserved bytes
//                free up. The accel-coarsening rung of govern_admission is
//                deliberately not applied — it would rebuild a resident
//                scene other jobs are reading.
//
// Determinism contract: a job's result is bitwise identical to the same
// RunConfig executed solo via the CLI — scheduling (ticket order, steals,
// concurrency) never reaches the record order any backend feeds its forest.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/config.hpp"
#include "geom/scene.hpp"

namespace photon {

// One submitted run. `config` carries the usual knobs (photons, seed,
// workers, batch, trace_path, ...); the service forces `governed` on and
// attaches its own RunControl.
struct JobSpec {
  std::string scene;             // resident-scene key, resolved by the loader
  std::string backend = "serial";
  RunConfig config;
  std::string checkpoint_path;   // non-empty: save the final result here (atomic)
};

enum class JobState {
  kQueued,     // accepted, waiting for an executor + admission
  kRunning,    // tracing photons
  kDone,       // ran to the requested count
  kPreempted,  // governed stop (service shutdown) — partial, resumable
  kOverBudget, // governed stop on the runtime memory budget
  kCancelled,  // cancel(id) — dequeued, or preempted at a window boundary
  kRefused,    // admission refused (coarsest plan exceeds the budget)
  kFailed,     // typed engine error; see `error`
};
const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

// The queryable snapshot of a job. Result fields are zero until the job
// reaches a terminal state.
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string scene;
  std::string backend;
  std::uint64_t photons_requested = 0;
  std::uint64_t emitted = 0;
  std::uint64_t bounces = 0;
  double wall_s = 0.0;
  double rate = 0.0;              // photons per second over the run
  std::uint64_t estimated_bytes = 0;  // admission estimate (0 until admitted)
  std::uint64_t progress_ticks = 0;   // the job's own beacon, not the process's
  std::string error;              // non-empty for kRefused / kFailed
};

struct ServiceConfig {
  int max_active = 2;                // concurrent executor threads
  std::uint64_t memory_budget = 0;   // service-wide bytes; 0 = unlimited
  double watchdog_s = 0.0;           // per-job watchdog deadline (0 = off)
  double watchdog_grace_s = 0.0;
};

// Resolves a resident-scene key to a built scene. Called once per (name,
// accel) pair; the service caches the result for every later job. Returning
// null (or throwing SceneError) fails the job, not the service.
using SceneLoader =
    std::function<std::shared_ptr<const Scene>(const std::string& name, AccelKind kind)>;

class PhotonService {
 public:
  PhotonService(ServiceConfig config, SceneLoader loader);
  ~PhotonService();  // shutdown(): preempts active jobs and joins
  PhotonService(const PhotonService&) = delete;
  PhotonService& operator=(const PhotonService&) = delete;

  // Enqueues a job and returns its id. Throws ConfigError on a bad spec
  // (unknown backend, zero photons, out-of-range width).
  std::uint64_t submit(const JobSpec& spec);

  // Requests a graceful stop of one job: dequeues it if still queued,
  // preempts its control if running (it stops at the next window boundary,
  // result resumable). False when the id is unknown or already terminal.
  bool cancel(std::uint64_t id);

  // Snapshot of one job / all jobs. status() throws ConfigError on an
  // unknown id.
  JobInfo status(std::uint64_t id) const;
  std::vector<JobInfo> jobs() const;

  // Blocks until the job reaches a terminal state and returns its info.
  JobInfo wait(std::uint64_t id);

  // Stops accepting submissions, preempts every queued/active job, joins the
  // executors. Idempotent; the destructor calls it.
  void shutdown();

  // Resident-scene cache misses — N jobs on one scene must report 1 (the
  // residency test pins this).
  std::uint64_t scene_loads() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace photon
