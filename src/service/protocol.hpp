// The service wire protocol: newline-delimited text requests, one-line JSON
// responses — greppable with nc/socat, no framing library, and the JSON side
// reuses the CLI's --report=json field names so supervisors parse one shape.
//
// Requests (one per line; values must not contain spaces):
//
//   submit scene=<name> [backend=<b>] [photons=<n>] [seed=<n>] [workers=<n>]
//          [groups=<n>] [batch=<n>] [chunk=<n>] [accel=octree|bvh|grid]
//          [checkpoint=<path>] [trace=<path>]
//   status [job=<id>]
//   wait job=<id>
//   cancel job=<id>
//   ping
//   shutdown
//
// Responses: submit -> {"job": N, "state": "queued"}; status/wait -> the job
// JSON below (status without job= -> {"jobs": [...]}); cancel ->
// {"job": N, "cancelled": true|false}; ping/shutdown -> {"ok": true};
// any error -> {"error": "..."}.
#pragma once

#include <map>
#include <string>

#include "service/service.hpp"

namespace photon {

struct Request {
  enum class Kind { kSubmit, kStatus, kWait, kCancel, kPing, kShutdown, kBad };
  Kind kind = Kind::kBad;
  std::map<std::string, std::string> kv;
  std::string error;  // set when kind == kBad
};

// Parses one request line. Never throws: malformed input yields kBad with a
// diagnostic (the daemon answers it with an error response, not a dropped
// connection).
Request parse_request(const std::string& line);

// Builds the JobSpec a `submit` request describes. Throws ConfigError on bad
// values (non-numeric counts, unknown accel); the service's own submit()
// validates backend and ranges.
JobSpec job_spec_from_request(const Request& request);

// One job as a single JSON line:
//   {"job": 1, "state": "done", "scene": "cornell", "backend": "shared",
//    "photons_requested": 10000, "emitted": 10000, "bounces": 38000,
//    "wall_s": 0.12, "photons_per_sec": 83000.0, "progress_ticks": 5,
//    "estimated_bytes": 123456, "error": ""}
std::string job_info_json(const JobInfo& info);

// JSON string escaping shared by every response builder.
std::string json_escape(const std::string& raw);

}  // namespace photon
