#include "service/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace photon {

ServiceClient::ServiceClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    return;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("cannot create socket: ") + std::strerror(errno);
    return;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "cannot connect to '" + socket_path + "': " + std::strerror(errno);
    close(fd);
    return;
  }
  fd_ = fd;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) close(fd_);
}

bool ServiceClient::request(const std::string& line, std::string& response) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = write(fd_, out.data() + off, out.size() - off);
    if (n <= 0) {
      error_ = std::string("write failed: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }

  response.clear();
  char c;
  for (;;) {
    const ssize_t n = read(fd_, &c, 1);
    if (n <= 0) {
      if (!response.empty()) return true;  // reply without trailing newline
      error_ = n == 0 ? "connection closed by the service"
                      : std::string("read failed: ") + std::strerror(errno);
      return false;
    }
    if (c == '\n') return true;
    response.push_back(c);
  }
}

}  // namespace photon
