#include "service/daemon.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/error.hpp"
#include "service/protocol.hpp"

namespace photon {

namespace {

// Reads one '\n'-terminated line. False on EOF/error before any byte of a
// line arrives; a final unterminated line is served (netcat -q style).
// Polls so a client that holds its connection open without sending cannot
// block the daemon's shutdown join — once `stop` is raised the read gives
// up at the next poll tick.
bool read_line(int fd, std::string& line, const std::atomic<bool>& stop) {
  line.clear();
  char c;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 200);  // stop-flag poll cadence
    if (ready <= 0) {
      if (stop.load(std::memory_order_acquire)) return false;
      continue;
    }
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
  }
}

bool write_line(int fd, const std::string& response) {
  std::string out = response;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = write(fd, out.data() + off, out.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string error_json(const std::string& message) {
  return "{\"error\": \"" + json_escape(message) + "\"}";
}

std::string handle_request(PhotonService& service, const Request& req, bool& shutdown_seen) {
  try {
    switch (req.kind) {
      case Request::Kind::kSubmit: {
        const std::uint64_t id = service.submit(job_spec_from_request(req));
        return "{\"job\": " + std::to_string(id) + ", \"state\": \"queued\"}";
      }
      case Request::Kind::kStatus: {
        const auto it = req.kv.find("job");
        if (it != req.kv.end()) {
          return job_info_json(service.status(std::stoull(it->second)));
        }
        std::string out = "{\"jobs\": [";
        bool first = true;
        for (const JobInfo& info : service.jobs()) {
          if (!first) out += ", ";
          out += job_info_json(info);
          first = false;
        }
        return out + "]}";
      }
      case Request::Kind::kWait:
        return job_info_json(service.wait(std::stoull(req.kv.at("job"))));
      case Request::Kind::kCancel: {
        const bool cancelled = service.cancel(std::stoull(req.kv.at("job")));
        return "{\"job\": " + req.kv.at("job") +
               ", \"cancelled\": " + (cancelled ? "true" : "false") + "}";
      }
      case Request::Kind::kPing:
        return "{\"ok\": true}";
      case Request::Kind::kShutdown:
        shutdown_seen = true;
        return "{\"ok\": true}";
      case Request::Kind::kBad:
        return error_json(req.error);
    }
  } catch (const EngineError& e) {
    return error_json(e.what());
  } catch (const std::exception& e) {  // std::stoull on a mangled id
    return error_json(std::string("bad request: ") + e.what());
  }
  return error_json("unhandled request");
}

}  // namespace

bool run_daemon(PhotonService& service, const std::string& socket_path,
                const std::function<bool()>& should_stop) {
  const int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "service: cannot create socket: %s\n", std::strerror(errno));
    return false;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "service: socket path too long: %s\n", socket_path.c_str());
    close(listener);
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  unlink(socket_path.c_str());  // a stale socket from a dead daemon
  if (bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listener, 16) != 0) {
    std::fprintf(stderr, "service: cannot bind/listen on '%s': %s\n", socket_path.c_str(),
                 std::strerror(errno));
    close(listener);
    return false;
  }

  // shutdown_flag is written by connection threads (the `shutdown` request)
  // and read by the accept loop; joined before return, so a plain bool under
  // the thread vector's mutex would also do — the atomic is simpler.
  std::atomic<bool> shutdown_flag{false};
  std::vector<std::thread> connections;
  std::mutex connections_m;

  while (!should_stop() && !shutdown_flag.load(std::memory_order_acquire)) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = poll(&pfd, 1, 200);  // stop-flag poll cadence
    if (ready <= 0) continue;
    const int client = accept(listener, nullptr, nullptr);
    if (client < 0) continue;

    std::lock_guard<std::mutex> lock(connections_m);
    connections.emplace_back([&service, &shutdown_flag, client] {
      std::string line;
      while (read_line(client, line, shutdown_flag)) {
        if (line.empty()) continue;
        bool shutdown_seen = false;
        const std::string response = handle_request(service, parse_request(line), shutdown_seen);
        if (!write_line(client, response)) break;
        if (shutdown_seen) {
          shutdown_flag.store(true, std::memory_order_release);
          break;
        }
      }
      close(client);
    });
  }

  close(listener);
  // Raise the flag even when the exit came from should_stop() (a signal),
  // so connection threads parked in read_line on idle clients wake up.
  shutdown_flag.store(true, std::memory_order_release);
  // Stop the service FIRST: a connection thread blocked in wait() only
  // returns once its job reaches a terminal state, which shutdown() forces
  // by preempting every active job.
  service.shutdown();
  {
    std::lock_guard<std::mutex> lock(connections_m);
    for (std::thread& t : connections) t.join();
    connections.clear();
  }
  unlink(socket_path.c_str());
  return true;
}

}  // namespace photon
