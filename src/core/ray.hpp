// Ray with precomputed reciprocal direction for slab tests.
#pragma once

#include <limits>

#include "core/vec3.hpp"

namespace photon {

struct Ray {
  Vec3 origin;
  Vec3 dir;      // unit length by convention
  Vec3 inv_dir;  // 1/dir componentwise; +-inf where dir component is 0

  Ray() = default;
  Ray(const Vec3& o, const Vec3& d) : origin(o), dir(d) {
    inv_dir = Vec3{1.0 / d.x, 1.0 / d.y, 1.0 / d.z};
  }

  constexpr Vec3 at(double t) const { return origin + dir * t; }
};

// Minimum hit distance: keeps reflected photons from re-hitting the surface
// they just left due to floating-point noise.
inline constexpr double kRayEpsilon = 1e-9;
inline constexpr double kNoHit = std::numeric_limits<double>::infinity();

}  // namespace photon
