// 3-D vector arithmetic used throughout Photon.
//
// Everything here is constexpr-friendly and kept deliberately small: photon
// tracing spends its time in intersection tests, and the compiler inlines all
// of these into the hot loops.
#pragma once

#include <cmath>
#include <iosfwd>

namespace photon {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr double length_squared() const { return x * x + y * y + z * z; }
  double length() const { return std::sqrt(length_squared()); }

  Vec3 normalized() const {
    const double len = length();
    return len > 0.0 ? Vec3{x / len, y / len, z / len} : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

constexpr double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

// Mirror reflection of incident direction `d` (pointing into the surface)
// about unit normal `n`.
constexpr Vec3 reflect(const Vec3& d, const Vec3& n) { return d - 2.0 * dot(d, n) * n; }

constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).length(); }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace photon
