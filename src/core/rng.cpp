#include "core/rng.hpp"

namespace photon {

void Lcg48::stride_constants(std::uint64_t k, std::uint64_t& mul_out, std::uint64_t& add_out) {
  // Computes A = a^k mod 2^48 and C = c * (a^{k-1} + ... + 1) mod 2^48 by
  // square-and-multiply on the pair (A, C): composing two affine maps
  // (A1,C1) then (A2,C2) gives (A2*A1, A2*C1 + C2).
  std::uint64_t amul = kA;
  std::uint64_t aadd = kC;
  std::uint64_t rmul = 1;
  std::uint64_t radd = 0;
  while (k > 0) {
    if (k & 1) {
      radd = (amul * radd + aadd) & kModMask;
      rmul = (rmul * amul) & kModMask;
    }
    aadd = ((amul + 1) * aadd) & kModMask;  // compose (amul,aadd) with itself
    amul = (amul * amul) & kModMask;
    k >>= 1;
  }
  mul_out = rmul;
  add_out = radd;
}

namespace {
// Multiplicative inverse of an odd number modulo 2^48 (Newton iteration:
// each step doubles the number of correct low bits).
std::uint64_t modinv_pow2(std::uint64_t a) {
  std::uint64_t x = a;  // correct to 3 bits
  for (int i = 0; i < 6; ++i) x = (x * (2 - a * x)) & Lcg48::kModMask;
  return x & Lcg48::kModMask;
}
}  // namespace

Lcg48::Lcg48(std::uint64_t seed, int rank, int nranks) {
  reset(seed);
  // Rank r's k-th draw must be global element k*nranks + r + 1, so that the
  // per-rank streams exactly interleave the serial sequence. next_bits()
  // advances before returning, so position the state one stride *before*
  // element rank+1: advance to it, then apply the stride's inverse map.
  skip(static_cast<std::uint64_t>(rank) + 1);
  stride_constants(static_cast<std::uint64_t>(nranks), mul_, add_);
  const std::uint64_t inv = modinv_pow2(mul_);
  state_ = (inv * ((state_ - add_) & kModMask)) & kModMask;
}

void Lcg48::skip(std::uint64_t n) {
  std::uint64_t smul = 0;
  std::uint64_t sadd = 0;
  stride_constants(n, smul, sadd);
  state_ = (smul * state_ + sadd) & kModMask;
}

}  // namespace photon
