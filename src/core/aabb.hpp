// Axis-aligned bounding box used by the octree geometry index.
#pragma once

#include <algorithm>
#include <limits>

#include "core/ray.hpp"
#include "core/vec3.hpp"

namespace photon {

struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& l, const Vec3& h) : lo(l), hi(h) {}

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

  constexpr Vec3 center() const { return (lo + hi) * 0.5; }
  constexpr Vec3 extent() const { return hi - lo; }

  void expand(const Vec3& p) {
    lo = min(lo, p);
    hi = max(hi, p);
  }
  void expand(const Aabb& b) {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  // Grows the box by `eps` on every side; guards against zero-thickness boxes
  // around axis-aligned patches.
  Aabb padded(double eps) const {
    return {lo - Vec3{eps, eps, eps}, hi + Vec3{eps, eps, eps}};
  }

  constexpr bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z && p.z <= hi.z;
  }

  constexpr bool overlaps(const Aabb& b) const {
    return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y && hi.y >= b.lo.y &&
           lo.z <= b.hi.z && hi.z >= b.lo.z;
  }

  // Slab test. Returns true when the ray intersects [tmin_out, tmax_out]
  // clipped against [0, tmax]; robust to +-inf in inv_dir.
  bool hit(const Ray& r, double tmax, double& tmin_out, double& tmax_out) const {
    double t0 = 0.0;
    double t1 = tmax;
    for (int axis = 0; axis < 3; ++axis) {
      const double inv = axis == 0 ? r.inv_dir.x : (axis == 1 ? r.inv_dir.y : r.inv_dir.z);
      const double o = r.origin[axis];
      double tn = (lo[axis] - o) * inv;
      double tf = (hi[axis] - o) * inv;
      if (tn > tf) std::swap(tn, tf);
      t0 = tn > t0 ? tn : t0;
      t1 = tf < t1 ? tf : t1;
      if (t0 > t1) return false;
    }
    tmin_out = t0;
    tmax_out = t1;
    return true;
  }

  // Index (0..7) of the octant of `center()` containing `p`.
  constexpr int octant_of(const Vec3& p) const {
    const Vec3 c = center();
    return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
  }

  // Child box for octant index as produced by octant_of().
  constexpr Aabb octant(int idx) const {
    const Vec3 c = center();
    return {{(idx & 1) ? c.x : lo.x, (idx & 2) ? c.y : lo.y, (idx & 4) ? c.z : lo.z},
            {(idx & 1) ? hi.x : c.x, (idx & 2) ? hi.y : c.y, (idx & 4) ? hi.z : c.z}};
  }
};

}  // namespace photon
