// Minimal HDR image buffer with PPM export for the viewing stage.
#pragma once

#include <string>
#include <vector>

#include "core/spectrum.hpp"

namespace photon {

class Image {
 public:
  Image(int width, int height) : width_(width), height_(height), pixels_(static_cast<size_t>(width) * height) {}

  int width() const { return width_; }
  int height() const { return height_; }

  Rgb& at(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  const Rgb& at(int x, int y) const { return pixels_[static_cast<size_t>(y) * width_ + x]; }

  // Largest channel value over all pixels; used for auto-exposure.
  double max_value() const;

  // Simple exposure + gamma tone map into 8-bit and write binary PPM (P6).
  // `exposure <= 0` auto-exposes to the 95th percentile luminance.
  bool write_ppm(const std::string& path, double exposure = -1.0, double gamma = 2.2) const;

  // Mean luminance, used by tests to compare renders without pixel-exact data.
  double mean_luminance() const;

 private:
  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

}  // namespace photon
