// Orthonormal basis around a surface normal.
//
// Photon parameterizes exitant directions in the *local* frame of each patch
// (chapter 4: cylindrical coordinates r, theta of the projected direction), so
// every reflection needs a stable tangent frame. We use the branchless
// Duff et al. construction, which is continuous except at n.z == -1.
#pragma once

#include "core/vec3.hpp"

namespace photon {

struct Onb {
  Vec3 u;  // tangent
  Vec3 v;  // bitangent
  Vec3 w;  // normal

  // Builds a right-handed frame with `w = normal` (normal must be unit length).
  static Onb from_normal(const Vec3& n) {
    Onb b;
    b.w = n;
    const double sign = std::copysign(1.0, n.z);
    const double a = -1.0 / (sign + n.z);
    const double c = n.x * n.y * a;
    b.u = Vec3{1.0 + sign * n.x * n.x * a, sign * c, -sign * n.x};
    b.v = Vec3{c, sign + n.y * n.y * a, -n.y};
    return b;
  }

  // Local (x,y,z) -> world.
  constexpr Vec3 to_world(const Vec3& local) const {
    return u * local.x + v * local.y + w * local.z;
  }

  // World direction -> local coordinates.
  constexpr Vec3 to_local(const Vec3& world) const {
    return {dot(world, u), dot(world, v), dot(world, w)};
  }
};

}  // namespace photon
