#include "core/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <ostream>

#include "core/vec3.hpp"

namespace photon {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

double Image::max_value() const {
  double m = 0.0;
  for (const Rgb& p : pixels_) m = std::max(m, p.max_component());
  return m;
}

double Image::mean_luminance() const {
  double sum = 0.0;
  for (const Rgb& p : pixels_) sum += 0.2126 * p.r + 0.7152 * p.g + 0.0722 * p.b;
  return pixels_.empty() ? 0.0 : sum / static_cast<double>(pixels_.size());
}

bool Image::write_ppm(const std::string& path, double exposure, double gamma) const {
  if (exposure <= 0.0) {
    // Auto-expose: map the 95th percentile pixel value to ~0.9.
    std::vector<double> values;
    values.reserve(pixels_.size());
    for (const Rgb& p : pixels_) values.push_back(p.max_component());
    std::sort(values.begin(), values.end());
    const double ref = values.empty() ? 1.0 : values[static_cast<size_t>(0.95 * (values.size() - 1))];
    exposure = ref > 0.0 ? 0.9 / ref : 1.0;
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  const double inv_gamma = 1.0 / gamma;
  std::vector<std::uint8_t> row(static_cast<size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Rgb& p = at(x, y);
      for (int c = 0; c < 3; ++c) {
        const double v = std::clamp(std::pow(std::clamp(p[c] * exposure, 0.0, 1.0), inv_gamma), 0.0, 1.0);
        row[static_cast<size_t>(x) * 3 + c] = static_cast<std::uint8_t>(std::lround(v * 255.0));
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(out);
}

}  // namespace photon
