// Parallel pseudo-random number generation (chapter 5, "Random Number
// Generation").
//
// Photon uses a single linear congruential sequence of period 2^48 that is
// *leapfrogged* across processors: rank r of P starts at element r of the
// sequence and advances by P elements per draw, so the P per-rank streams are
// disjoint interleavings of one global stream. This is the scheme the paper
// describes ("the basic idea is to split the pseudo random sequence into
// subsequences... yielding individual periods of 2^48/P") and it scales to
// any ensemble of 2^k processors.
//
// The recurrence is the classic 48-bit drand48 LCG:
//   x_{n+1} = (a x_n + c) mod 2^48,  a = 0x5DEECE66D, c = 0xB.
// Leapfrogging uses the closed form for k steps:
//   x_{n+k} = (A x_n + C) mod 2^48, A = a^k, C = c (a^{k-1} + ... + a + 1).
#pragma once

#include <cstdint>

namespace photon {

class Lcg48 {
 public:
  static constexpr std::uint64_t kModMask = (1ULL << 48) - 1;
  static constexpr std::uint64_t kA = 0x5DEECE66DULL;
  static constexpr std::uint64_t kC = 0xBULL;

  // Serial stream: every draw advances by one element.
  explicit Lcg48(std::uint64_t seed = 0x1234ABCD330EULL) { reset(seed); }

  // Leapfrogged stream for `rank` of `nranks`: starts at element `rank` of the
  // global sequence defined by `seed` and strides by `nranks`.
  Lcg48(std::uint64_t seed, int rank, int nranks);

  void reset(std::uint64_t seed) {
    state_ = seed & kModMask;
    mul_ = kA;
    add_ = kC;
  }

  // Advances the underlying *global* sequence by n elements (not n draws of
  // this stream). Used by tests and by block-splitting.
  void skip(std::uint64_t n);

  // Next raw 48-bit state.
  std::uint64_t next_bits() {
    state_ = (mul_ * state_ + add_) & kModMask;
    return state_;
  }

  // Uniform double in [0, 1) with 48 bits of resolution.
  double uniform() {
    return static_cast<double>(next_bits()) * 0x1.0p-48;
  }

  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  std::uint64_t state() const { return state_; }
  std::uint64_t stride_mul() const { return mul_; }
  std::uint64_t stride_add() const { return add_; }

  // Restores an exact generator state (checkpoint/restart support).
  void set_raw(std::uint64_t state, std::uint64_t mul, std::uint64_t add) {
    state_ = state & kModMask;
    mul_ = mul & kModMask;
    add_ = add & kModMask;
  }

  // (A, C) such that one application advances the global sequence k steps.
  static void stride_constants(std::uint64_t k, std::uint64_t& mul_out, std::uint64_t& add_out);

 private:
  std::uint64_t state_ = 0;
  std::uint64_t mul_ = kA;  // per-draw multiplier (a^stride)
  std::uint64_t add_ = kC;  // per-draw increment
};

// Number of global-sequence elements reserved per photon by the block-split
// scheme below; exceeds the worst-case draws of one photon path (photon_cli
// caps --max-bounces at 512 to preserve this).
inline constexpr std::uint64_t kPhotonStreamBlock = 4096;

// Per-photon RNG stream: photon `photon_index` owns the disjoint
// 4096-element block starting at element photon_index * 4096 of the global
// sequence. A photon's draws are then independent of every other photon's
// draw count, so its path is identical no matter which rank, thread, or
// batch executes it — the foundation of the shape-invariant backends
// (dist-spatial, hybrid) and of the serial `photon_streams` reference mode.
inline Lcg48 photon_stream(std::uint64_t seed, std::uint64_t photon_index) {
  Lcg48 rng(seed);
  rng.skip(photon_index * kPhotonStreamBlock);
  return rng;
}

}  // namespace photon
