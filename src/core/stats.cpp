#include "core/stats.hpp"

#include <cmath>

namespace photon {

double binomial_sigma(std::uint64_t n, double p) {
  return std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

double split_significance(std::uint64_t n, std::uint64_t left) {
  if (n == 0) return 0.0;
  const std::uint64_t right = n - left;
  // Paper: "to improve accuracy, p is calculated based on the daughter bin
  // with the most photons."
  const std::uint64_t larger = left > right ? left : right;
  const double p = static_cast<double>(larger) / static_cast<double>(n);
  const double sigma = binomial_sigma(n, p);
  const double diff = static_cast<double>(larger) - static_cast<double>(n - larger);
  if (sigma <= 0.0) {
    // Degenerate: every photon in one half. Any nonzero difference is then
    // infinitely significant; report the raw difference so callers can still
    // rank axes.
    return diff;
  }
  // left - right = 2*left - n has standard deviation 2*sigma under the null
  // hypothesis; normalizing by it makes z = 3 the paper's claimed 99.7%
  // confidence level.
  return diff / (2.0 * sigma);
}

bool should_split(std::uint64_t n, std::uint64_t left, const SplitPolicy& policy) {
  if (n < policy.min_count) return false;
  return split_significance(n, left) > policy.z;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace photon
