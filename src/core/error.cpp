#include "core/error.hpp"

namespace photon {

const char* engine_error_code(EngineErrorKind kind) {
  switch (kind) {
    case EngineErrorKind::kConfig: return "config";
    case EngineErrorKind::kScene: return "scene";
    case EngineErrorKind::kResource: return "resource";
    case EngineErrorKind::kComm: return "comm";
    case EngineErrorKind::kCheckpoint: return "checkpoint";
    case EngineErrorKind::kPreempted: return "preempted";
    case EngineErrorKind::kWedged: return "wedged";
  }
  return "?";
}

int engine_error_exit_code(EngineErrorKind kind) {
  switch (kind) {
    case EngineErrorKind::kCheckpoint: return 3;
    case EngineErrorKind::kComm: return 4;
    case EngineErrorKind::kPreempted: return 5;
    case EngineErrorKind::kWedged: return 6;
    case EngineErrorKind::kConfig: return 7;
    case EngineErrorKind::kScene: return 8;
    case EngineErrorKind::kResource: return 9;
  }
  return 1;
}

}  // namespace photon
