// Hemisphere direction sampling — the photon generation kernels of chapter 4.
//
// Both kernels draw cosine-distributed directions (ideal diffuse emission /
// reflection) by picking a point in the unit disk and projecting up to the
// hemisphere (Malley's construction):
//
//  * sample_hemisphere_formula — the Shirley/Sillion closed form
//      (x,y,z) = (cos(2 pi e1) sqrt(e2), sin(2 pi e1) sqrt(e2), sqrt(1-e2)),
//    34 FLOPs under the LLNL counting convention;
//  * sample_hemisphere_rejection — the Gustafson kernel used by Photon:
//    rejection-sample the disk (13 FLOPs/iteration, pi/4 acceptance) then
//    z = sqrt(1 - x^2 - y^2), ~22 FLOPs expected and roughly twice as fast
//    in practice (no trigonometry).
//
// `scale` in (0, 1] shrinks the disk, which limits the polar angle to
// asin(scale) and produces directional ("sun") emission: scale 0.005 gives
// the paper's quarter-degree solar cone and correctly blurs shadows with
// occluder distance (Fig 4.4).
#pragma once

#include "core/rng.hpp"
#include "core/vec3.hpp"

namespace photon {

// Local-frame direction (z up). Cosine-weighted over the cone sin(theta) <= scale.
Vec3 sample_hemisphere_rejection(Lcg48& rng, double scale = 1.0);

// Same distribution via the closed form; reference implementation.
Vec3 sample_hemisphere_formula(Lcg48& rng, double scale = 1.0);

// Rejection kernel variant that also reports how many candidate pairs were
// drawn (for the operation-count experiment).
Vec3 sample_hemisphere_rejection_counted(Lcg48& rng, double scale, int& iterations);

}  // namespace photon
