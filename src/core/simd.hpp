// Portable fixed-width double-precision SIMD shim for the octree leaf kernel.
//
// Exactly one backend is selected at compile time:
//
//   AVX    4 doubles/step (__AVX2__ or __AVX__; the build system compiles
//          geom/octree.cpp with -mavx2 when the configure machine can run it)
//   SSE2   2 doubles/step (baseline x86-64, no extra flags needed)
//   scalar 4 doubles/step in plain arrays (non-x86 targets, or forced with
//          -DPHOTON_SIMD=OFF at configure time -> PHOTON_SIMD_SCALAR)
//
// Every backend performs the same IEEE-754 double operations per lane in the
// same order, so a kernel written against this shim produces bit-identical
// results on all three — the octree equivalence suite relies on that. Fused
// multiply-add is deliberately absent from the API (and the build passes
// -ffp-contract=off on the kernel TU): contraction would change rounding and
// break the bitwise contract with the scalar reference in Patch::intersect.
//
// The API is the minimal set the leaf kernel needs: load/splat/store,
// +,-,*,/, ordered comparisons producing an opaque Mask, mask AND, and
// select(mask, a, b). Horizontal reductions are left to the caller (store to
// a stack array and loop over kLanes — width is 2 or 4, a scalar tail is both
// simpler and deterministic across widths).
#pragma once

#include <cstdint>

#if !defined(PHOTON_SIMD_SCALAR) && (defined(__AVX2__) || defined(__AVX__))
#define PHOTON_SIMD_BACKEND_AVX 1
#include <immintrin.h>
#elif !defined(PHOTON_SIMD_SCALAR) && defined(__SSE2__)
#define PHOTON_SIMD_BACKEND_SSE2 1
#include <emmintrin.h>
#else
#define PHOTON_SIMD_BACKEND_SCALAR 1
#endif

namespace photon::simd {

#if defined(PHOTON_SIMD_BACKEND_AVX)

inline constexpr int kLanes = 4;
inline constexpr const char* kBackendName = "avx";

struct Vd {
  __m256d v;
};
struct Mask {
  __m256d v;  // all-ones / all-zeros per lane
};

inline Vd load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline Vd splat(double x) { return {_mm256_set1_pd(x)}; }
inline void store(double* p, Vd a) { _mm256_storeu_pd(p, a.v); }

inline Vd operator+(Vd a, Vd b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vd operator-(Vd a, Vd b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vd operator*(Vd a, Vd b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline Vd operator/(Vd a, Vd b) { return {_mm256_div_pd(a.v, b.v)}; }

// Ordered, non-signaling compares: a lane holding NaN (e.g. 0/0 from a
// padding sentinel) compares false, exactly like the scalar `<` it mirrors.
inline Mask lt(Vd a, Vd b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
inline Mask gt(Vd a, Vd b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
inline Mask le(Vd a, Vd b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
inline Mask ge(Vd a, Vd b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
inline Mask neq(Vd a, Vd b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_OQ)}; }

inline Mask operator&(Mask a, Mask b) { return {_mm256_and_pd(a.v, b.v)}; }
inline Vd select(Mask m, Vd a, Vd b) { return {_mm256_blendv_pd(b.v, a.v, m.v)}; }
inline bool any(Mask m) { return _mm256_movemask_pd(m.v) != 0; }

#elif defined(PHOTON_SIMD_BACKEND_SSE2)

inline constexpr int kLanes = 2;
inline constexpr const char* kBackendName = "sse2";

struct Vd {
  __m128d v;
};
struct Mask {
  __m128d v;
};

inline Vd load(const double* p) { return {_mm_loadu_pd(p)}; }
inline Vd splat(double x) { return {_mm_set1_pd(x)}; }
inline void store(double* p, Vd a) { _mm_storeu_pd(p, a.v); }

inline Vd operator+(Vd a, Vd b) { return {_mm_add_pd(a.v, b.v)}; }
inline Vd operator-(Vd a, Vd b) { return {_mm_sub_pd(a.v, b.v)}; }
inline Vd operator*(Vd a, Vd b) { return {_mm_mul_pd(a.v, b.v)}; }
inline Vd operator/(Vd a, Vd b) { return {_mm_div_pd(a.v, b.v)}; }

inline Mask lt(Vd a, Vd b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline Mask gt(Vd a, Vd b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
inline Mask le(Vd a, Vd b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline Mask ge(Vd a, Vd b) { return {_mm_cmpge_pd(a.v, b.v)}; }
// _mm_cmpneq_pd is unordered (true when NaN); mirror the ordered scalar `!=`
// by also requiring both operands ordered.
inline Mask neq(Vd a, Vd b) {
  return {_mm_and_pd(_mm_cmpneq_pd(a.v, b.v), _mm_cmpord_pd(a.v, b.v))};
}

inline Mask operator&(Mask a, Mask b) { return {_mm_and_pd(a.v, b.v)}; }
inline Vd select(Mask m, Vd a, Vd b) {
  return {_mm_or_pd(_mm_and_pd(m.v, a.v), _mm_andnot_pd(m.v, b.v))};
}
inline bool any(Mask m) { return _mm_movemask_pd(m.v) != 0; }

#else  // PHOTON_SIMD_BACKEND_SCALAR

inline constexpr int kLanes = 4;
inline constexpr const char* kBackendName = "scalar";

struct Vd {
  double v[kLanes];
};
struct Mask {
  bool v[kLanes];
};

inline Vd load(const double* p) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = p[l];
  return r;
}
inline Vd splat(double x) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = x;
  return r;
}
inline void store(double* p, Vd a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.v[l];
}

inline Vd operator+(Vd a, Vd b) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline Vd operator-(Vd a, Vd b) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline Vd operator*(Vd a, Vd b) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline Vd operator/(Vd a, Vd b) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] / b.v[l];
  return r;
}

inline Mask lt(Vd a, Vd b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] < b.v[l];
  return r;
}
inline Mask gt(Vd a, Vd b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] > b.v[l];
  return r;
}
inline Mask le(Vd a, Vd b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] <= b.v[l];
  return r;
}
inline Mask ge(Vd a, Vd b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] >= b.v[l];
  return r;
}
// C++ `!=` on doubles is unordered-true for NaN; require both operands
// ordered to mirror the AVX _CMP_NEQ_OQ / SSE2 ordered-neq semantics.
inline Mask neq(Vd a, Vd b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) {
    r.v[l] = a.v[l] == a.v[l] && b.v[l] == b.v[l] && a.v[l] != b.v[l];
  }
  return r;
}

inline Mask operator&(Mask a, Mask b) {
  Mask r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] && b.v[l];
  return r;
}
inline Vd select(Mask m, Vd a, Vd b) {
  Vd r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = m.v[l] ? a.v[l] : b.v[l];
  return r;
}
inline bool any(Mask m) {
  for (int l = 0; l < kLanes; ++l) {
    if (m.v[l]) return true;
  }
  return false;
}

#endif

}  // namespace photon::simd
