#include "core/sampling.hpp"

#include <cmath>

namespace photon {

Vec3 sample_hemisphere_rejection_counted(Lcg48& rng, double scale, int& iterations) {
  // Figure 4.3: draw (x, y) uniformly in [-1,1]^2 until it lands in the unit
  // circle; the projected point is cosine-distributed on the hemisphere.
  double x, y, tmp;
  iterations = 0;
  do {
    x = rng.uniform() * 2.0 - 1.0;
    y = rng.uniform() * 2.0 - 1.0;
    tmp = x * x + y * y;
    ++iterations;
  } while (tmp > 1.0);
  x *= scale;
  y *= scale;
  tmp *= scale * scale;
  return {x, y, std::sqrt(1.0 - tmp)};
}

Vec3 sample_hemisphere_rejection(Lcg48& rng, double scale) {
  int ignored = 0;
  return sample_hemisphere_rejection_counted(rng, scale, ignored);
}

Vec3 sample_hemisphere_formula(Lcg48& rng, double scale) {
  const double tmp1 = 2.0 * 3.14159265358979323846 * rng.uniform();
  const double tmp2 = rng.uniform();
  const double tmp3 = std::sqrt(tmp2) * scale;
  const double x = std::cos(tmp1) * tmp3;
  const double y = std::sin(tmp1) * tmp3;
  return {x, y, std::sqrt(1.0 - tmp2 * scale * scale)};
}

}  // namespace photon
