// The engine's typed error taxonomy.
//
// Every failure the run-governance layer (engine/governor.hpp) can surface —
// bad configuration, degenerate scene input, an exhausted memory budget, a
// communication failure, a rejected checkpoint, a graceful preemption, a
// wedged run — is an EngineError with a stable machine-readable code and a
// documented process exit code. This replaces the ad-hoc mix of bare
// std::runtime_error throws and printf-plus-magic-return sites that had
// accumulated across engine/mp/sim/geom: photon_cli maps the kind straight to
// its exit-code table and to the structured `error` block of --report=json,
// so a supervisor can tell "retry later" (preempted, code 5) from "fix the
// input" (config/scene, codes 7/8) without parsing prose. See DESIGN.md,
// "Run governance".
//
// This header lives in core/ — the bottom layer — so geom, mp, sim and
// engine can all throw typed errors without dependency cycles (mp/fault.hpp
// rebases CommError onto this hierarchy).
#pragma once

#include <stdexcept>
#include <string>

namespace photon {

enum class EngineErrorKind {
  kConfig,      // malformed flags / parameters; fix the invocation
  kScene,       // degenerate or unloadable scene input; fix the scene
  kResource,    // memory budget refused or exceeded; shrink the job or raise it
  kComm,        // communication failure beyond recovery
  kCheckpoint,  // checkpoint rejected (damaged, wrong version, ...)
  kPreempted,   // graceful stop on SIGTERM/SIGINT/SIGUSR1 — resumable
  kWedged,      // watchdog declared the run stuck — typed abort, not a hang
};

// Stable lower-case slug for a kind ("config", "scene", ...): the machine
// identity of an error, independent of the human message.
const char* engine_error_code(EngineErrorKind kind);

// The documented photon_cli exit code for a kind. The full table (including
// the non-error codes) lives in DESIGN.md "Run governance":
//   0 success            5 preempted (resumable — rerun with --checkpoint)
//   1 generic I/O        6 wedged (watchdog abort; emergency checkpoint)
//   2 usage              7 config rejected
//   3 checkpoint         8 scene rejected
//   4 comm failure       9 resource budget refused/exceeded (resumable)
int engine_error_exit_code(EngineErrorKind kind);

class EngineError : public std::runtime_error {
 public:
  EngineError(EngineErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  // Named engine_kind (not kind) so subclasses keep their historical
  // fine-grained accessors — CommError::kind() still answers CommErrorKind.
  EngineErrorKind engine_kind() const { return kind_; }
  const char* code() const { return engine_error_code(kind_); }
  int exit_code() const { return engine_error_exit_code(kind_); }

 private:
  EngineErrorKind kind_;
};

class ConfigError : public EngineError {
 public:
  explicit ConfigError(const std::string& what)
      : EngineError(EngineErrorKind::kConfig, what) {}
};

// `patch` names the offending patch index when the diagnostic is about one
// (-1 otherwise) — a 2000-polygon scene rejection must say which polygon.
class SceneError : public EngineError {
 public:
  explicit SceneError(const std::string& what, int patch_index = -1)
      : EngineError(EngineErrorKind::kScene, what), patch(patch_index) {}
  int patch;
};

class ResourceError : public EngineError {
 public:
  explicit ResourceError(const std::string& what)
      : EngineError(EngineErrorKind::kResource, what) {}
};

class CheckpointError : public EngineError {
 public:
  explicit CheckpointError(const std::string& what)
      : EngineError(EngineErrorKind::kCheckpoint, what) {}
};

class PreemptedError : public EngineError {
 public:
  explicit PreemptedError(const std::string& what)
      : EngineError(EngineErrorKind::kPreempted, what) {}
};

// Carries the watchdog's progress snapshot (engine/governor.hpp) rendered as
// text: per-slot last-tick ages and indices — what the run was doing when it
// stopped ticking.
class WedgedError : public EngineError {
 public:
  WedgedError(const std::string& what, std::string snapshot_text)
      : EngineError(EngineErrorKind::kWedged, what),
        snapshot(std::move(snapshot_text)) {}
  std::string snapshot;
};

}  // namespace photon
