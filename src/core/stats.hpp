// Statistics behind adaptive histogram splitting (chapter 3, "Adaptive
// Histogramming"; chapter 4, "Four-Dimensional Histograms").
//
// A bin is hypothesized to receive photons uniformly, so the count landing in
// its left half is binomial. Once enough photons have arrived the binomial is
// approximated as normal with mu = n p and sigma = sqrt(n p q); the bin is
// split when the two halves differ by more than `z` sigma (the paper uses
// z = 3, i.e. 99.7% confidence). Following the paper, p is estimated from the
// fuller daughter.
#pragma once

#include <cstdint>

namespace photon {

struct SplitPolicy {
  double z = 3.0;            // significance threshold in standard deviations
  std::uint64_t min_count = 32;  // minimum photons before the normal approx holds

  // Count-driven refinement: a leaf at depth d also splits once it has
  // tallied max_leaf_count * count_growth^d photons, even with balanced
  // halves. The significance test alone cannot refine a distribution that is
  // symmetric about the midpoints (e.g. a centered light beam), yet such
  // bins carry real structure; bounding the per-leaf count concentrates
  // resolution where light actually arrives. Growing the threshold with
  // depth keeps the total node count sublinear in photons (Fig 5.4);
  // count_growth = 1 gives maximum image detail at linear storage cost.
  std::uint64_t max_leaf_count = 1024;
  double count_growth = 2.0;
};

// Returns |left - right| expressed in standard deviations of the binomial
// null hypothesis; 0 when too few photons have arrived to say anything.
double split_significance(std::uint64_t n, std::uint64_t left);

// True when a bin with `n` tallies since its creation, `left` of them in the
// candidate left half, should split under `policy`.
bool should_split(std::uint64_t n, std::uint64_t left, const SplitPolicy& policy = {});

// Mean and standard deviation of a binomial(n, p) — exposed for tests.
double binomial_sigma(std::uint64_t n, double p);

// Incremental mean/variance accumulator (Welford). Used by the performance
// harness to report stable photons-per-second rates.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace photon
