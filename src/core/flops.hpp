// Floating-point operation accounting, used to reproduce the chapter 4
// analysis of the photon generation kernel.
//
// The paper adopts "the Lawrence Livermore National Laboratory convention
// that sin and cos count as 8 operations, and square root as 4", and charges
// 3 operations per random number generation.
#pragma once

namespace photon {

struct FlopConvention {
  int add = 1;
  int mul = 1;
  int sincos = 8;
  int sqrt = 4;
  int rng = 3;
};

inline constexpr FlopConvention kLlnlConvention{};

// Operation count of one evaluation of the Shirley/Sillion closed-form
// direction formula:
//   (x,y,z) = (cos(2*pi*e1)*sqrt(e2), sin(2*pi*e1)*sqrt(e2), sqrt(1-e2))
// computed with temporaries as in chapter 4: 2 RNG draws, one 2*pi multiply,
// one sqrt(e2), cos*mul, sin*mul, 1-e2 then sqrt. Total 34 under the LLNL
// convention.
constexpr int shirley_formula_flops(const FlopConvention& c = kLlnlConvention) {
  return 2 * c.rng            // two random draws
         + c.mul              // 2*pi * e1
         + c.sqrt             // sqrt(e2)
         + (c.sincos + c.mul) // cos * tmp3
         + (c.sincos + c.mul) // sin * tmp3
         + c.add              // 1 - e2
         + c.sqrt;            // sqrt(1 - e2)
}
static_assert(shirley_formula_flops() == 34);

// Operation count of one rejection-loop iteration of the Gustafson kernel:
// 2 RNG draws, 2 scale-and-shift (*2-1 = mul+add each), x*x + y*y (2 mul +
// 1 add), and the comparison is free. Total 13.
constexpr int rejection_iteration_flops(const FlopConvention& c = kLlnlConvention) {
  return 2 * c.rng + 2 * (c.mul + c.add) + 2 * c.mul + c.add;
}
static_assert(rejection_iteration_flops() == 13);

// Expected total for the rejection kernel: the loop body runs 1/(pi/4) times
// in expectation (geometric series 13/(1-q), q = 1 - pi/4), plus 5 ops for
// z = sqrt(1 - tmp). The paper rounds the expectation to 16.55 and the total
// to 22 (integer ops of the typical path).
inline double rejection_expected_flops(const FlopConvention& c = kLlnlConvention) {
  const double accept = 0.7853981633974483;  // pi/4
  return rejection_iteration_flops(c) / accept + c.add + c.sqrt;
}

}  // namespace photon
