// Tristimulus color. Chapter 4: "Color is actually a fifth dimension, but one
// not subject to hierarchical subdivision in this model" — each bin keeps one
// tally per channel, and each photon carries a single channel chosen at
// emission from the luminaire's spectrum.
#pragma once

#include <array>
#include <cstdint>

namespace photon {

inline constexpr int kNumChannels = 3;

enum class Channel : std::uint8_t { kRed = 0, kGreen = 1, kBlue = 2 };

struct Rgb {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;

  constexpr Rgb() = default;
  constexpr Rgb(double rr, double gg, double bb) : r(rr), g(gg), b(bb) {}
  static constexpr Rgb splat(double v) { return {v, v, v}; }

  constexpr double operator[](int c) const { return c == 0 ? r : (c == 1 ? g : b); }
  constexpr double channel(Channel c) const { return (*this)[static_cast<int>(c)]; }

  constexpr Rgb operator+(const Rgb& o) const { return {r + o.r, g + o.g, b + o.b}; }
  constexpr Rgb operator-(const Rgb& o) const { return {r - o.r, g - o.g, b - o.b}; }
  constexpr Rgb operator*(const Rgb& o) const { return {r * o.r, g * o.g, b * o.b}; }
  constexpr Rgb operator*(double s) const { return {r * s, g * s, b * s}; }
  constexpr Rgb operator/(double s) const { return {r / s, g / s, b / s}; }
  constexpr Rgb& operator+=(const Rgb& o) {
    r += o.r; g += o.g; b += o.b;
    return *this;
  }
  constexpr bool operator==(const Rgb& o) const = default;

  constexpr double sum() const { return r + g + b; }
  constexpr double max_component() const {
    return r > g ? (r > b ? r : b) : (g > b ? g : b);
  }
  constexpr bool is_black() const { return r == 0.0 && g == 0.0 && b == 0.0; }
};

constexpr Rgb operator*(double s, const Rgb& c) { return c * s; }

// Per-channel tally container for histogram bins.
using ChannelCounts = std::array<std::uint64_t, kNumChannels>;

}  // namespace photon
