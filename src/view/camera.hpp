// Pinhole camera for the viewing stage (Fig 4.9): rays go to the first
// visible surface only; radiance comes from the bin forest.
#pragma once

#include "core/ray.hpp"
#include "core/vec3.hpp"

namespace photon {

class Camera {
 public:
  Camera(const Vec3& eye, const Vec3& look_at, const Vec3& up, double vertical_fov_deg,
         int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  const Vec3& eye() const { return eye_; }

  // Ray through pixel center (px + 0.5, py + 0.5); px in [0, width).
  Ray ray_through(double px, double py) const;

 private:
  Vec3 eye_;
  Vec3 right_, up_, forward_;  // orthonormal camera basis
  double tan_half_fov_;
  double aspect_;
  int width_, height_;
};

}  // namespace photon
