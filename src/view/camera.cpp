#include "view/camera.hpp"

#include <cmath>

namespace photon {

Camera::Camera(const Vec3& eye, const Vec3& look_at, const Vec3& up, double vertical_fov_deg,
               int width, int height)
    : eye_(eye), width_(width), height_(height) {
  forward_ = (look_at - eye).normalized();
  right_ = cross(forward_, up).normalized();
  up_ = cross(right_, forward_);
  tan_half_fov_ = std::tan(vertical_fov_deg * 3.14159265358979323846 / 360.0);
  aspect_ = static_cast<double>(width) / static_cast<double>(height);
}

Ray Camera::ray_through(double px, double py) const {
  const double ndc_x = (2.0 * (px + 0.5) / static_cast<double>(width_) - 1.0) * aspect_;
  const double ndc_y = 1.0 - 2.0 * (py + 0.5) / static_cast<double>(height_);
  const Vec3 dir =
      (forward_ + right_ * (ndc_x * tan_half_fov_) + up_ * (ndc_y * tan_half_fov_)).normalized();
  return Ray(eye_, dir);
}

}  // namespace photon
