// Viewing stage (chapter 4, "Viewing Simulation Results").
//
// "Once the simulation is finished, all that remains is to determine what is
// displayed... This can be reduced to a single-step ray trace." For each
// pixel we find the closest patch, compute the bin parameters of a photon
// that would have traveled from the surface to the eye, and look the
// radiance up in the bin tree — the same DetermineIntersection/DetermineBin
// routines the simulator uses. No recomputation is needed to move the
// viewpoint (Fig 4.10); mirrors read straight out of their angular bins.
#pragma once

#include "core/image.hpp"
#include "geom/scene.hpp"
#include "hist/binforest.hpp"
#include "view/camera.hpp"

namespace photon {

struct ViewOptions {
  Rgb background{0.0, 0.0, 0.0};
  // Jittered supersampling: >1 softens the histogram's patch boundaries.
  int samples_per_pixel = 1;
  std::uint64_t jitter_seed = 1;
  // Worker width for the render loop: rows are scheduled as chunks on the
  // persistent WorkerPool (engine/pool.hpp); per-pixel deterministic seeding
  // makes the image identical for every width and steal order.
  int threads = 1;
};

// Renders `scene` from `camera` using the radiance stored in `forest`.
Image render(const Scene& scene, const BinForest& forest, const Camera& camera,
             const ViewOptions& options = {});

// Radiance seen along a single ray (the per-pixel core of render(), exposed
// for tests).
Rgb radiance_along(const Scene& scene, const BinForest& forest, const Ray& ray,
                   const ViewOptions& options = {});

}  // namespace photon
