#include "view/viewer.hpp"

#include "core/onb.hpp"
#include "core/rng.hpp"
#include "engine/pool.hpp"

namespace photon {

Rgb radiance_along(const Scene& scene, const BinForest& forest, const Ray& ray,
                   const ViewOptions& options) {
  const auto hit = scene.intersect(ray);
  if (!hit) return options.background;

  const Patch& patch = scene.patch(hit->patch);
  const Vec3 side_normal = hit->front ? patch.normal() : -patch.normal();
  const Onb frame = Onb::from_normal(side_normal);
  // Direction a photon would travel surface -> eye.
  const Vec3 to_eye_local = frame.to_local(-ray.dir);
  if (to_eye_local.z <= 0.0) return options.background;

  const BinCoords coords = BinCoords::from_local_dir(hit->s, hit->t, to_eye_local);
  Rgb out;
  out.r = forest.radiance(hit->patch, hit->front, coords, 0, patch.area());
  out.g = forest.radiance(hit->patch, hit->front, coords, 1, patch.area());
  out.b = forest.radiance(hit->patch, hit->front, coords, 2, patch.area());
  return out;
}

namespace {
// One pixel, deterministically jittered: the RNG is seeded per pixel so the
// image is identical regardless of the thread count.
Rgb shade_pixel(const Scene& scene, const BinForest& forest, const Camera& camera, int x, int y,
                const ViewOptions& options) {
  if (options.samples_per_pixel <= 1) {
    return radiance_along(scene, forest, camera.ray_through(x, y), options);
  }
  Lcg48 rng(options.jitter_seed ^
            (static_cast<std::uint64_t>(y) * 0x9E3779B9ULL + static_cast<std::uint64_t>(x)));
  Rgb sum;
  for (int s = 0; s < options.samples_per_pixel; ++s) {
    const double jx = rng.uniform() - 0.5;
    const double jy = rng.uniform() - 0.5;
    sum += radiance_along(scene, forest, camera.ray_through(x + jx, y + jy), options);
  }
  return sum / static_cast<double>(options.samples_per_pixel);
}
}  // namespace

Image render(const Scene& scene, const BinForest& forest, const Camera& camera,
             const ViewOptions& options) {
  Image img(camera.width(), camera.height());
  const int threads = options.threads > 1 ? options.threads : 1;
  // Rows are the pool's chunk grid: each pixel is already deterministically
  // seeded, and no two rows touch the same pixels, so any claim/steal order
  // yields the identical image. threads == 1 runs inline on this thread.
  WorkerPool::instance().run(
      static_cast<std::uint64_t>(camera.height()), threads, [&](std::uint64_t row, int) {
        const int y = static_cast<int>(row);
        for (int x = 0; x < camera.width(); ++x) {
          img.at(x, y) = shade_pixel(scene, forest, camera, x, y, options);
        }
      });
  return img;
}

}  // namespace photon
