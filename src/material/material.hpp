// Surface description. The reflection model (brdf.hpp) follows the structure
// of the He et al. comprehensive physical model the paper adopts: a Fresnel
// specular component attenuated by roughness, plus a diffuse component, with
// probabilistic absorption (russian roulette) making photon counts unbiased.
#pragma once

#include "core/spectrum.hpp"

namespace photon {

struct Material {
  Rgb diffuse;            // Lambertian albedo per channel, each in [0,1]
  Rgb specular;           // specular reflectance at normal incidence (F0)
  double roughness = 0.0; // RMS slope of the microsurface; 0 = perfect mirror lobe
  Rgb emission;           // radiant exitance; nonzero marks a luminaire surface
  bool two_sided = false; // reflect photons arriving from the back side too

  // Fluorescence (the paper's chapter 6 extension): fluorescence[in][out] is
  // the probability that a photon of channel `in`, having failed the regular
  // reflection roulette, is re-radiated diffusely in channel `out` instead of
  // being absorbed. Row sums must stay <= 1 - diffuse[in] for energy
  // conservation (checked by the test suite for the built-in materials).
  std::array<Rgb, kNumChannels> fluorescence{};

  bool fluorescent() const {
    for (const Rgb& row : fluorescence) {
      if (!row.is_black()) return true;
    }
    return false;
  }

  bool emissive() const { return !emission.is_black(); }

  // Upper bound on total reflectance; used by energy-conservation checks.
  double max_albedo() const {
    double m = 0.0;
    for (int c = 0; c < kNumChannels; ++c) {
      const double a = diffuse[c] + specular[c];
      if (a > m) m = a;
    }
    return m;
  }

  static Material lambertian(const Rgb& albedo) {
    Material m;
    m.diffuse = albedo;
    return m;
  }
  static Material mirror(const Rgb& f0 = Rgb::splat(0.95)) {
    Material m;
    m.specular = f0;
    m.roughness = 0.0;
    return m;
  }
  static Material glossy(const Rgb& albedo, const Rgb& f0, double roughness) {
    Material m;
    m.diffuse = albedo;
    m.specular = f0;
    m.roughness = roughness;
    return m;
  }
  static Material emitter(const Rgb& radiant_exitance) {
    Material m;
    m.emission = radiant_exitance;
    return m;
  }
  static Material black() { return Material{}; }

  // A fluorescent paint: `base` diffuse albedo plus a channel-shift where a
  // blue photon re-emerges green with probability `blue_to_green` (the
  // classic optical-brightener / day-glo behaviour).
  static Material fluorescent_paint(const Rgb& base, double blue_to_green) {
    Material m;
    m.diffuse = base;
    m.fluorescence[static_cast<int>(Channel::kBlue)] = {0.0, blue_to_green, 0.0};
    return m;
  }
};

}  // namespace photon
