#include "material/fresnel.hpp"

#include <algorithm>
#include <cmath>

namespace photon {

namespace {
// Cosine of the transmitted angle via Snell's law; returns -1 on total
// internal reflection (cannot happen entering a denser medium).
double cos_transmitted(double cos_i, double ior) {
  const double sin2_i = std::max(0.0, 1.0 - cos_i * cos_i);
  const double sin2_t = sin2_i / (ior * ior);
  if (sin2_t >= 1.0) return -1.0;
  return std::sqrt(1.0 - sin2_t);
}
}  // namespace

double fresnel_rs(double cos_i, double ior) {
  cos_i = std::clamp(cos_i, 0.0, 1.0);
  const double cos_t = cos_transmitted(cos_i, ior);
  if (cos_t < 0.0) return 1.0;
  const double r = (cos_i - ior * cos_t) / (cos_i + ior * cos_t);
  return r * r;
}

double fresnel_rp(double cos_i, double ior) {
  cos_i = std::clamp(cos_i, 0.0, 1.0);
  const double cos_t = cos_transmitted(cos_i, ior);
  if (cos_t < 0.0) return 1.0;
  const double r = (ior * cos_i - cos_t) / (ior * cos_i + cos_t);
  return r * r;
}

double fresnel_unpolarized(double cos_i, double ior) {
  return 0.5 * (fresnel_rs(cos_i, ior) + fresnel_rp(cos_i, ior));
}

double schlick(double cos_i, double f0) {
  cos_i = std::clamp(cos_i, 0.0, 1.0);
  const double m = 1.0 - cos_i;
  const double m2 = m * m;
  return f0 + (1.0 - f0) * m2 * m2 * m;
}

double ior_from_f0(double f0) {
  f0 = std::clamp(f0, 0.0, 0.999);
  const double s = std::sqrt(f0);
  return (1.0 + s) / (1.0 - s);
}

double brewster_angle(double ior) { return std::atan(ior); }

}  // namespace photon
