// Fresnel reflectance. The reflection model in Photon follows He et al. in
// grounding specular reflection in physical optics: reflectance magnitude and
// its s/p polarization split both come from the Fresnel equations.
#pragma once

namespace photon {

// Reflectance of s-polarized (perpendicular) light at a dielectric boundary.
// `cos_i` is the cosine of the incidence angle (>= 0), `ior` the relative
// index of refraction (outside -> inside).
double fresnel_rs(double cos_i, double ior);

// Reflectance of p-polarized (parallel) light. Vanishes at Brewster's angle.
double fresnel_rp(double cos_i, double ior);

// Unpolarized reflectance: (Rs + Rp) / 2.
double fresnel_unpolarized(double cos_i, double ior);

// Schlick's approximation from normal-incidence reflectance f0.
double schlick(double cos_i, double f0);

// Index of refraction whose normal-incidence Fresnel reflectance equals f0:
// ior = (1 + sqrt(f0)) / (1 - sqrt(f0)).
double ior_from_f0(double f0);

// Brewster's angle (radians) for the given relative ior.
double brewster_angle(double ior);

}  // namespace photon
