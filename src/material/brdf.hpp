// Probabilistic reflection (the `Reflect` routine of Fig 4.1).
//
// The model follows the structure of He et al.'s comprehensive physical
// model as adopted by Photon: a Fresnel specular lobe broadened by surface
// roughness plus an ideal diffuse lobe, with polarization tracked across
// specular bounces. Photon survival is decided by russian roulette, so
// tallied photon counts are unbiased estimates of reflected flux:
//
//   P(specular) = polarization-weighted Fresnel reflectance F(theta_i)
//   P(diffuse)  = (1 - P(specular)) * diffuse albedo
//   P(absorbed) = remainder
//
// Energy conservation holds by construction (probabilities sum to <= 1 when
// the material's albedos are <= 1), which the test suite verifies.
#pragma once

#include "core/rng.hpp"
#include "core/vec3.hpp"
#include "material/material.hpp"
#include "material/polarization.hpp"

namespace photon {

enum class ScatterKind { kAbsorbed, kDiffuse, kSpecular, kFluoresced };

struct ScatterSample {
  ScatterKind kind = ScatterKind::kAbsorbed;
  Vec3 dir;  // local-frame outgoing direction (z > 0); valid unless absorbed
  // Channel after the event; differs from the incident channel only for
  // kFluoresced (wavelength-shifting re-radiation, chapter 6).
  int channel = 0;
};

// Scatters a photon of color channel `channel` arriving along `wi_local`
// (local frame, wi_local.z < 0) off material `m`. Updates `pol` in place:
// specular bounces reweight by (Rs, Rp), diffuse scattering depolarizes.
ScatterSample sample_scatter(const Material& m, const Vec3& wi_local, int channel,
                             Polarization& pol, Lcg48& rng);

// Probability that a photon in state `pol` reflects specularly — exposed for
// the energy-conservation property tests.
double specular_probability(const Material& m, double cos_i, int channel,
                            const Polarization& pol);

}  // namespace photon
