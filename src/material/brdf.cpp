#include "material/brdf.hpp"

#include <algorithm>
#include <cmath>

#include "core/onb.hpp"
#include "core/sampling.hpp"
#include "material/fresnel.hpp"

namespace photon {

namespace {
// Fresnel component reflectances for a material with normal-incidence
// reflectance f0, using the dielectric equations at the equivalent ior.
void component_reflectances(double f0, double cos_i, double& rs, double& rp) {
  if (f0 <= 0.0) {
    rs = rp = 0.0;
    return;
  }
  const double ior = ior_from_f0(f0);
  rs = fresnel_rs(cos_i, ior);
  rp = fresnel_rp(cos_i, ior);
}
}  // namespace

double specular_probability(const Material& m, double cos_i, int channel,
                            const Polarization& pol) {
  double rs = 0.0, rp = 0.0;
  component_reflectances(m.specular[channel], cos_i, rs, rp);
  return pol.effective_reflectance(rs, rp);
}

ScatterSample sample_scatter(const Material& m, const Vec3& wi_local, int channel,
                             Polarization& pol, Lcg48& rng) {
  const double cos_i = std::clamp(-wi_local.z, 0.0, 1.0);

  double rs = 0.0, rp = 0.0;
  component_reflectances(m.specular[channel], cos_i, rs, rp);
  const double p_spec = pol.effective_reflectance(rs, rp);
  const double p_diff = (1.0 - p_spec) * std::clamp(m.diffuse[channel], 0.0, 1.0);

  const double u = rng.uniform();
  ScatterSample out;
  out.channel = channel;
  if (u < p_spec) {
    out.kind = ScatterKind::kSpecular;
    pol = pol.after_specular(rs, rp);
    // Mirror direction in the local frame.
    Vec3 dir{wi_local.x, wi_local.y, -wi_local.z};
    if (m.roughness > 0.0) {
      // Broaden the lobe: cosine-perturb around the mirror direction inside a
      // cone of half-angle asin(roughness) — the same scaled-disk construction
      // the emitter uses for directional sources.
      const Onb lobe = Onb::from_normal(dir.normalized());
      Vec3 perturbed = lobe.to_world(sample_hemisphere_rejection(rng, std::min(m.roughness, 1.0)));
      // Keep the photon above the surface.
      if (perturbed.z < 1e-9) perturbed.z = -perturbed.z;
      if (perturbed.z < 1e-9) perturbed.z = 1e-9;
      dir = perturbed.normalized();
    }
    out.dir = dir;
  } else if (u < p_spec + p_diff) {
    out.kind = ScatterKind::kDiffuse;
    pol = Polarization::unpolarized();
    out.dir = sample_hemisphere_rejection(rng);
  } else {
    // Fluorescence: a photon that failed the reflection roulette may be
    // re-radiated diffusely in a different channel instead of disappearing.
    const Rgb& shift = m.fluorescence[static_cast<std::size_t>(channel)];
    const double p_fluor = (1.0 - p_spec - p_diff) * std::clamp(shift.sum(), 0.0, 1.0);
    if (p_fluor > 0.0 && u < p_spec + p_diff + p_fluor) {
      out.kind = ScatterKind::kFluoresced;
      pol = Polarization::unpolarized();
      out.dir = sample_hemisphere_rejection(rng);
      // Pick the outgoing channel proportionally to the shift row.
      const double pick = rng.uniform() * shift.sum();
      out.channel = pick < shift.r ? 0 : (pick < shift.r + shift.g ? 1 : 2);
    } else {
      out.kind = ScatterKind::kAbsorbed;
    }
  }
  return out;
}

}  // namespace photon
