// Per-photon polarization state.
//
// Chapter 6: "At this time polarization is being added, and we foresee the
// ability to add fluorescence." This reproduction implements that extension:
// each photon carries the fractional weight of its s- and p-polarized
// components. Specular bounces reweight the components by the Fresnel
// reflectances Rs and Rp (and the effective survival probability is the
// polarization-weighted reflectance), while diffuse scattering depolarizes.
#pragma once

namespace photon {

struct Polarization {
  double s = 0.5;  // fraction of energy in the s (perpendicular) component
  double p = 0.5;  // fraction in the p (parallel) component; s + p == 1

  static constexpr Polarization unpolarized() { return {0.5, 0.5}; }

  // Degree of polarization in [0, 1].
  constexpr double degree() const {
    const double d = s - p;
    return d < 0 ? -d : d;
  }

  // Effective reflectance of this state for component reflectances (rs, rp).
  constexpr double effective_reflectance(double rs, double rp) const {
    return s * rs + p * rp;
  }

  // State after a specular bounce with component reflectances (rs, rp).
  // Undefined (returns unpolarized) when both reflectances are zero.
  Polarization after_specular(double rs, double rp) const {
    const double total = s * rs + p * rp;
    if (total <= 0.0) return unpolarized();
    return {s * rs / total, p * rp / total};
  }
};

}  // namespace photon
