// Load balancing (chapter 5): ownership of bin trees is decided before the
// main simulation by tracing k probe photons — identically on every rank,
// with no tallying until all are traced — then packing the per-patch photon
// counts onto processors.
//
// Finding the optimal assignment is bin packing (NP-complete); the paper uses
// the greedy Best-Fit approximation: each tree, heaviest first, goes to the
// processor with the smallest photon count so far. The naive alternative
// (contiguous blocks of patches, ignoring load) is kept for Table 5.2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/scene.hpp"

namespace photon {

struct LoadBalance {
  std::vector<int> owner;                  // patch index -> owning rank
  std::vector<std::uint64_t> rank_load;    // probe tallies assigned to each rank
};

// Traces `k` photons serially (seed-deterministic, so every rank that runs
// this produces the identical result) and returns per-patch record counts —
// emission tallies included, exactly what the main loop will forward.
std::vector<std::uint64_t> measure_patch_loads(const Scene& scene, std::uint64_t k,
                                               std::uint64_t seed);

// Round-robin by patch index, ignoring load.
LoadBalance assign_naive(std::span<const std::uint64_t> loads, int nranks);

// Best-Fit decreasing: heaviest tree to the least-loaded rank. Deterministic
// (ties break toward lower patch index / lower rank).
LoadBalance assign_bestfit(std::span<const std::uint64_t> loads, int nranks);

// max(rank_load) / mean(rank_load); 1.0 is a perfect balance.
double imbalance(const LoadBalance& lb);

}  // namespace photon
