// End-of-run gather shared by the partitioned-forest backends
// (dist-particle, hybrid, dist-spatial): emission totals agree via
// allreduce, every non-root rank sends its owned trees to rank 0 as binary
// frames, and rank 0 folds the totals (plus a resumed checkpoint's) into the
// gathered forest. Extracted so the three backends' gather semantics —
// including the easy-to-miss resume-emitted re-add — stay provably
// identical.
#pragma once

#include <vector>

#include "core/spectrum.hpp"
#include "hist/binforest.hpp"
#include "mp/minimpi.hpp"

namespace photon {

// Runs the collective gather on `comm`. `owner[p]` maps patch p to its
// owning rank; `local_emitted` is this rank's per-channel emission count;
// `resume_forest` (rank 0 only consults it) contributes a checkpoint's
// emission totals. Returns the allreduced per-channel totals (every rank).
// On rank 0 `forest` ends as the complete answer; elsewhere it is spent.
ChannelCounts gather_partitioned_forest(Comm& comm, BinForest& forest,
                                        const std::vector<int>& owner,
                                        const ChannelCounts& local_emitted,
                                        const BinForest* resume_forest, int tag);

}  // namespace photon
