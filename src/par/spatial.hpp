// Distributed geometry (chapter 6, "Massive Parallelism") — the engine's
// `dist-spatial` backend, implementing the paper's future-work design:
// "Currently, the octree representation of the geometry is replicated on all
// nodes. This could limit the size of the input geometry. Distribution of the
// geometry would allow computation of a global illumination solution for very
// complex scenes... a photon is then only passed to those processors that are
// responsible for the space the photon is traveling through. The photons can
// then be queued and sent in a batch to the appropriate processors."
//
// Space is partitioned into one axis-aligned region per rank (recursive
// bisection balancing patch counts). Each rank builds an octree over only the
// patches overlapping its region. A photon traces inside the current region
// until it is absorbed or crosses a region face, at which point it is queued
// for the neighbouring owner and exchanged in the next batched all-to-all
// (engine/wire.hpp defines the shared codec). `config.workers` sets the rank
// count.
//
// Every photon carries its own RNG stream (a disjoint 4096-element block of
// the global sequence), so its path is identical no matter which ranks
// execute its segments — the partition cannot change the answer, which the
// test suite verifies against a single-octree reference run.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/backend.hpp"
#include "geom/scene.hpp"

namespace photon {

// Splits the scene bounds into `nranks` boxes by recursive bisection along
// the longest axis, balancing patch-centroid counts. The boxes tile the
// padded scene bounds exactly.
std::vector<Aabb> partition_space(const Scene& scene, int nranks);

// Index of the region containing `p` (half-open on shared faces so boundary
// points resolve to exactly one region); -1 when outside all regions.
int region_of(const std::vector<Aabb>& regions, const Vec3& p);

// The per-photon RNG stream (a disjoint block of the global LCG sequence)
// lives in core/rng.hpp as photon_stream(): it is now shared by this backend,
// the hybrid backend, and the serial `photon_streams` reference mode.

// Runs the distributed-geometry simulation on `config.workers` MiniMPI ranks.
// A `resume` result (a loaded checkpoint) is folded into the partitioned
// trees, and photon ids continue where the checkpoint stopped — the resumed
// leg draws the exact continuation of the same global per-photon streams.
RunResult run_spatial(const Scene& scene, const RunConfig& config,
                      const RunResult* resume = nullptr);

// Reference implementation: traces the same per-photon streams against the
// full (replicated) octree. run_spatial must reproduce its per-patch tallies.
// Delegates to run_serial's photon_streams mode, so the spatial and hybrid
// backends are pinned against one reference implementation.
RunResult run_photon_streams(const Scene& scene, const RunConfig& config);

}  // namespace photon
