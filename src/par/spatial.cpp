#include "par/spatial.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "core/onb.hpp"
#include "engine/governor.hpp"
#include "engine/sink.hpp"
#include "engine/wire.hpp"
#include "material/brdf.hpp"
#include "mp/minimpi.hpp"
#include "par/gather.hpp"
#include "sim/emitter.hpp"
#include "sim/simulator.hpp"

namespace photon {

namespace {

enum class SegmentEnd { kAbsorbed, kEscaped, kExitedRegion, kTerminated };

// Message channels of the spatial exchange: photon migration is synchronous
// (next round's tracing depends on it); record tallies ride one round behind
// on their own tag so they drain while the next round traces; the tree
// gather gets a third tag so its recv waits stay out of the record-path
// overlap telemetry.
constexpr int kTagPhotons = 0;
constexpr int kTagRecords = 1;
constexpr int kTagGather = 2;

}  // namespace

std::vector<Aabb> partition_space(const Scene& scene, int nranks) {
  const Aabb root = scene.bounds().padded(1e-5 * (1.0 + scene.bounds().extent().length()));
  std::vector<Vec3> centroids;
  centroids.reserve(scene.patch_count());
  for (const Patch& p : scene.patches()) centroids.push_back(p.point_at(0.5, 0.5));

  // Recursive bisection: split the box with the most patches along its
  // longest axis at the median centroid until we have nranks boxes.
  struct Cell {
    Aabb box;
    std::vector<Vec3> pts;
  };
  std::vector<Cell> cells{{root, centroids}};
  while (static_cast<int>(cells.size()) < nranks) {
    // Split the most populated cell.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cells.size(); ++i) {
      if (cells[i].pts.size() > cells[victim].pts.size()) victim = i;
    }
    Cell cell = std::move(cells[victim]);
    const Vec3 e = cell.box.extent();
    const int axis = e.x >= e.y ? (e.x >= e.z ? 0 : 2) : (e.y >= e.z ? 1 : 2);
    double split;
    if (cell.pts.empty()) {
      split = 0.5 * (cell.box.lo[axis] + cell.box.hi[axis]);
    } else {
      std::vector<double> coords;
      coords.reserve(cell.pts.size());
      for (const Vec3& p : cell.pts) coords.push_back(p[axis]);
      std::nth_element(coords.begin(), coords.begin() + static_cast<std::ptrdiff_t>(coords.size() / 2), coords.end());
      split = coords[coords.size() / 2];
      // Guard against degenerate splits at the box face.
      const double lo = cell.box.lo[axis], hi = cell.box.hi[axis];
      if (split <= lo || split >= hi) split = 0.5 * (lo + hi);
    }
    Cell a, b;
    a.box = cell.box;
    b.box = cell.box;
    if (axis == 0) {
      a.box.hi.x = split;
      b.box.lo.x = split;
    } else if (axis == 1) {
      a.box.hi.y = split;
      b.box.lo.y = split;
    } else {
      a.box.hi.z = split;
      b.box.lo.z = split;
    }
    for (const Vec3& p : cell.pts) {
      (p[axis] < split ? a.pts : b.pts).push_back(p);
    }
    cells[victim] = std::move(a);
    cells.push_back(std::move(b));
  }

  std::vector<Aabb> regions;
  regions.reserve(cells.size());
  for (const Cell& c : cells) regions.push_back(c.box);
  return regions;
}

int region_of(const std::vector<Aabb>& regions, const Vec3& p) {
  // Half-open test against shared faces: a point on a face belongs to the
  // region whose *low* face it is, except on the outer boundary.
  int fallback = -1;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const Aabb& b = regions[i];
    if (!b.contains(p)) continue;
    if (fallback < 0) fallback = static_cast<int>(i);
    const bool interior_hi =
        (p.x < b.hi.x) && (p.y < b.hi.y) && (p.z < b.hi.z);
    if (interior_hi) return static_cast<int>(i);
  }
  return fallback;
}

RunResult run_photon_streams(const Scene& scene, const RunConfig& config) {
  // One owner for the per-photon-stream reference: this is run_serial's
  // photon_streams mode (the same loop the conformance suite pins hybrid and
  // spatial against), kept under its historical name for the spatial tests.
  RunConfig reference = config;
  reference.photon_streams = true;
  reference.rank = 0;
  reference.nranks = 1;
  return run_serial(scene, reference);
}

namespace {

// Traces `flight` inside `region` against the local octree until it is
// absorbed, escapes the scene, exits the region, or trips the bounce guard.
// Bounce records go straight into `sink` (a RouterSink: owned tallies apply
// immediately, foreign ones serialize into the outgoing wire bytes).
// `epsilon` is the tracer's scene-scaled surface nudge: paths must match the
// full-octree reference bit for bit.
SegmentEnd trace_segment(const Scene& scene, const AccelStructure& local_tree,
                         const std::vector<std::int32_t>& local_to_global, const Aabb& region,
                         const Aabb& root, const TraceLimits& limits, double epsilon,
                         PhotonFlight& flight, BinSink& sink, TraceCounters& counters) {
  while (true) {
    if (flight.bounces >= limits.max_bounces) {
      ++counters.terminated;
      return SegmentEnd::kTerminated;
    }
    const Ray ray(flight.pos, flight.dir);
    double t_enter = 0.0, t_exit = kNoHit;
    if (!region.hit(ray, kNoHit, t_enter, t_exit)) {
      // Numerical corner: the photon sits on the region face pointing out.
      t_exit = 0.0;
    }

    SceneHit hit;
    const bool have_hit = local_tree.intersect(ray, kNoHit, hit);
    // A hit beyond the region exit belongs to some other rank's region (it
    // may not even be the globally closest hit — a closer patch may exist in
    // the neighbouring region's octree). The tolerance is a fraction of the
    // surface nudge so both scale with the scene.
    if (!have_hit || hit.dist > t_exit + 0.01 * epsilon) {
      const Vec3 boundary = ray.at(t_exit + epsilon);
      if (!root.contains(boundary)) {
        ++counters.escaped;
        return SegmentEnd::kEscaped;
      }
      flight.pos = boundary;
      return SegmentEnd::kExitedRegion;
    }

    const int global_patch = local_to_global[static_cast<std::size_t>(hit.patch)];
    const Patch& patch = scene.patch(global_patch);
    const Material& mat = scene.material_of(patch);
    if (!hit.front && !mat.two_sided) {
      ++counters.absorbed;
      return SegmentEnd::kAbsorbed;
    }

    const Vec3 side_normal = hit.front ? patch.normal() : -patch.normal();
    const Onb frame = Onb::from_normal(side_normal);
    const Vec3 wi_local = frame.to_local(flight.dir);
    const ScatterSample scatter =
        sample_scatter(mat, wi_local, flight.channel, flight.pol, flight.rng);
    if (scatter.kind == ScatterKind::kAbsorbed) {
      ++counters.absorbed;
      return SegmentEnd::kAbsorbed;
    }
    flight.channel = scatter.channel;

    BounceRecord rec;
    rec.patch = global_patch;
    rec.front = hit.front;
    rec.coords = BinCoords::from_local_dir(hit.s, hit.t, scatter.dir);
    rec.channel = static_cast<std::uint8_t>(flight.channel);
    sink.record(rec);
    ++counters.bounces;
    ++flight.bounces;

    const Vec3 hit_point = ray.at(hit.dist);
    flight.dir = frame.to_world(scatter.dir).normalized();
    flight.pos = hit_point + side_normal * epsilon;
  }
}

}  // namespace

RunResult run_spatial(const Scene& scene, const RunConfig& config, const RunResult* resume) {
  const int nranks = std::max(config.workers, 1);
  const std::uint64_t resume_emitted = resume ? resume->counters.emitted : 0;
  // Photon ids continue where the checkpoint stopped: ids index disjoint RNG
  // blocks, so the resumed leg is the exact continuation of the same global
  // photon sequence.
  const std::uint64_t first_photon = resume_emitted;
  const std::uint64_t last_photon = resume_emitted + config.photons;
  RunResult result;
  result.regions = partition_space(scene, nranks);
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::mutex result_mutex;

  const Aabb root = [&] {
    Aabb b;
    for (const Aabb& r : result.regions) b.expand(r);
    return b;
  }();
  const double epsilon = surface_epsilon(scene.bounds());

  // Fault plan and deadline/heartbeat policy ride in from the config; the
  // defaults are a no-fault, block-forever world (mp/fault.hpp).
  WorldOptions world_options;
  world_options.plan = config.fault_plan.get();
  world_options.policy = config.comm;

  run_world(nranks, world_options, [&](Comm& comm) {
    const int rank = comm.rank();
    const int P = comm.size();
    SpeedSampler sampler(rank == 0 ? config.trace_path : std::string(), resume_emitted);
    const Aabb my_region = result.regions[static_cast<std::size_t>(rank)];

    // Local geometry: only the patches overlapping this region get indexed.
    std::vector<Patch> local_patches;
    std::vector<std::int32_t> local_to_global;
    for (std::size_t i = 0; i < scene.patch_count(); ++i) {
      if (my_region.overlaps(scene.patch(static_cast<int>(i)).bounds())) {
        local_patches.push_back(scene.patch(static_cast<int>(i)));
        local_to_global.push_back(static_cast<std::int32_t>(i));
      }
    }
    // The local index honors the run's structure choice (config.accel); every
    // structure is bitwise-equivalent, so region handoffs stay exact.
    const std::unique_ptr<AccelStructure> local_tree = make_accel(config.accel);
    local_tree->build(local_patches);
    progress_tick(config, "accel-build", local_patches.size());

    // Tree ownership by patch centroid region.
    std::vector<int> tree_owner(scene.patch_count());
    for (std::size_t i = 0; i < scene.patch_count(); ++i) {
      tree_owner[i] = region_of(result.regions, scene.patch(static_cast<int>(i)).point_at(0.5, 0.5));
    }

    BinForest forest(scene.patch_count(), config.policy);
    const Emitter emitter(scene);
    forest.set_total_power(emitter.total_power());
    if (resume) {
      // Fold the checkpoint's owned trees into this rank's virgin partition
      // (lossless — virgin trees adopt the checkpoint structure wholesale).
      forest.merge_owned_trees(resume->forest, tree_owner, rank);
    }

    RankReport report;
    report.local_patches = local_patches.size();
    report.octree_nodes = local_tree->node_count();

    TraceCounters counters;
    ChannelCounts emitted{};
    std::vector<PhotonFlight> inbox;
    std::uint64_t next_emission = first_photon + static_cast<std::uint64_t>(rank);
    std::uint64_t global_injected = 0;  // rank 0's running emission total

    // Owned records are tallied as they are produced; foreign records
    // serialize straight into the outgoing bytes and ride one round behind
    // the photon migration on their own tag (take() surrenders each round's
    // bytes to the exchange and leaves the buffer refillable).
    WireBuffer record_wire(P);
    RouterSink sink(forest, tree_owner, rank, record_wire, report.tallies);
    WireBuffer photon_wire(P);
    std::optional<PendingExchange> pending_records;
    // Governed stop: once voted, every rank stops injecting fresh emissions
    // on the same round and the loop runs on until the in-flight photons
    // drain (active == 0) — the emitted id set stays the contiguous prefix
    // the lockstep striping guarantees, so the partial result resumes
    // exactly like a count-bounded one.
    bool stopping = false;
    RunStatus local_status = RunStatus::kComplete;

    const auto drain_records = [&](PendingExchange& exchange) {
      const std::vector<Bytes> in_records = exchange.finish();
      for (int s = 0; s < P; ++s) {
        if (s == rank) continue;
        sink.apply_incoming(in_records[static_cast<std::size_t>(s)]);
      }
    };

    // Round indices label the whole run, not one leg (emission rounds inject
    // batch photons per rank), so a scripted fault can name a mid-run round
    // regardless of checkpoint legs.
    std::uint64_t round_index =
        first_photon /
        (std::max<std::uint64_t>(config.batch, 1) * static_cast<std::uint64_t>(P));
    while (true) {
      // Liveness tick (the heartbeat the failure detector reads) and the
      // scripted before-batch kill point.
      comm.batch_tick(round_index);
      auto run_flight = [&](PhotonFlight flight) {
        ++report.segments_traced;
        const SegmentEnd end =
            trace_segment(scene, *local_tree, local_to_global, my_region, root,
                          config.limits, epsilon, flight, sink, counters);
        if (end == SegmentEnd::kExitedRegion) {
          const int dest = region_of(result.regions, flight.pos);
          if (dest < 0) {
            ++counters.escaped;
          } else if (dest == rank) {
            // Boundary rounding resolved back to us: nudge forward and retry
            // next round to guarantee progress.
            flight.pos += flight.dir * (10.0 * epsilon);
            const int retry = region_of(result.regions, flight.pos);
            if (retry >= 0 && retry != rank) {
              photon_wire.append(retry, to_wire(flight));
              ++report.photons_out;
            } else {
              ++counters.escaped;
            }
          } else {
            photon_wire.append(dest, to_wire(flight));
            ++report.photons_out;
          }
        }
      };

      // Inject a batch of fresh emissions (ids striped by rank so the union
      // over ranks is exactly [first_photon, last_photon)).
      std::uint64_t injected = 0;
      while (!stopping && injected < config.batch && next_emission < last_photon) {
        PhotonFlight flight;
        flight.rng = photon_stream(config.seed, next_emission);
        const EmissionSample emission = emitter.emit(flight.rng);
        ++emitted[static_cast<std::size_t>(emission.channel)];
        ++counters.emitted;
        flight.pos = emission.origin;
        flight.dir = emission.dir;
        flight.channel = emission.channel;

        BounceRecord birth;
        birth.patch = emission.patch;
        birth.front = true;
        birth.coords = BinCoords::from_local_dir(emission.s, emission.t, emission.dir_local);
        birth.channel = static_cast<std::uint8_t>(emission.channel);
        sink.record(birth);

        // The emission point may not even be in our region; route it like any
        // in-flight photon.
        const int start_region = region_of(result.regions, flight.pos);
        if (start_region == rank) {
          run_flight(std::move(flight));
        } else if (start_region >= 0) {
          photon_wire.append(start_region, to_wire(flight));
          ++report.photons_out;
        } else {
          ++counters.escaped;
        }
        next_emission += static_cast<std::uint64_t>(P);
        ++injected;
      }

      // Work the photons received last round.
      for (const PhotonFlight& f : inbox) run_flight(f);
      inbox.clear();

      // Photon migration is synchronous: next round's tracing needs it.
      const std::vector<Bytes> in_photons =
          comm.alltoall(photon_wire.take(), kTagPhotons);
      for (int s = 0; s < P; ++s) {
        for_each_wire<FlightWire>(in_photons[static_cast<std::size_t>(s)],
                                  [&](const FlightWire& w) {
                                    inbox.push_back(from_wire(w));
                                    ++report.photons_in;
                                  });
      }

      // Records overlap one full round: the batch posted last round drained
      // while this round traced — tally it now, then post this round's batch.
      if (pending_records) drain_records(*pending_records);
      pending_records.emplace(comm.alltoall_start(record_wire.take(), kTagRecords));
      // Mid-exchange kill point: record sends posted, finish outstanding.
      comm.fault_point(FaultPoint::kMidExchange, round_index);
      ++report.rounds;

      // Terminate when no photons are in flight and all emissions are done
      // (or abandoned to a governed stop).
      const std::uint64_t remaining =
          !stopping && next_emission < last_photon
              ? (last_photon - next_emission + static_cast<std::uint64_t>(P) - 1) /
                    static_cast<std::uint64_t>(P)
              : 0;
      const std::uint64_t active =
          comm.allreduce_sum_u64(static_cast<std::uint64_t>(inbox.size()) + remaining);
      // Governed stop agreement: one more unconditional allreduce per round
      // (collectives pair anonymously, so every rank must run it) — all
      // ranks flip `stopping` on the same round.
      if (config.governed && !stopping) {
        const std::uint64_t sum = comm.allreduce_sum_u64(
            encode_stop_word(preempt_requested(config), forest.memory_bytes()));
        if (stop_word_preempted(sum)) {
          acknowledge_preempt(config);  // idempotent across ranks
          stopping = true;
          local_status = RunStatus::kPreempted;
        } else if (stop_word_over_budget(sum, config.memory_budget)) {
          stopping = true;
          local_status = RunStatus::kOverBudget;
        }
      } else if (config.governed) {
        // Keep the collective schedule identical on every rank while the
        // in-flight photons drain.
        comm.allreduce_sum_u64(0);
      }
      // One speed point per exchange round. Injection runs in lockstep (every
      // rank drains its id stripe at `batch` per round), so rank 0 derives
      // the global emission count locally instead of paying an extra
      // collective; the sampler time is rank-0 local for the same reason.
      if (rank == 0) {
        global_injected =
            std::min(global_injected + config.batch * static_cast<std::uint64_t>(P),
                     config.photons);
        sampler.sample(global_injected);
      }
      comm.fault_point(FaultPoint::kAfterBatch, round_index);
      progress_tick(config, "dist-spatial", round_index);
      ++round_index;
      if (active == 0) break;
    }
    // One more liveness tick so the gather below is not instantly stale to
    // a peer's failure detector.
    comm.heartbeat(round_index + 1);

    // The last round's records are still in flight; every rank left the loop
    // on the same round, so the drain matches the pending sends exactly.
    if (pending_records) drain_records(*pending_records);

    // Gather owned trees and totals on rank 0 (binary frames; par/gather.hpp,
    // shared with the other partitioned-forest backends).
    const ChannelCounts total_emitted = gather_partitioned_forest(
        comm, forest, tree_owner, emitted, resume ? &resume->forest : nullptr, kTagGather);

    report.sent_bytes = comm.bytes_sent();
    report.sent_messages = comm.messages_sent();
    report.deadline_retries = comm.deadline_retries();
    // Record-exchange waits only (the overlap metric): photon migration is
    // synchronous by design and the gather rides its own tag.
    report.wait_seconds = comm.wait_seconds(kTagRecords);

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.ranks[static_cast<std::size_t>(rank)] = std::move(report);
      result.counters += counters;
      if (rank == 0) {
        result.forest = std::move(forest);
        std::uint64_t total = 0;
        for (int c = 0; c < kNumChannels; ++c) {
          total += total_emitted[static_cast<std::size_t>(c)];
        }
        result.trace = sampler.finish(total);
        result.status = local_status;  // identical on every rank (same sum)
      }
    }
  });

  if (resume) result.counters += resume->counters;
  return result;
}

}  // namespace photon
