#include "par/gather.hpp"

namespace photon {

ChannelCounts gather_partitioned_forest(Comm& comm, BinForest& forest,
                                        const std::vector<int>& owner,
                                        const ChannelCounts& local_emitted,
                                        const BinForest* resume_forest, int tag) {
  const int rank = comm.rank();
  const int P = comm.size();

  ChannelCounts total_emitted{};
  for (int c = 0; c < kNumChannels; ++c) {
    total_emitted[static_cast<std::size_t>(c)] =
        comm.allreduce_sum_u64(local_emitted[static_cast<std::size_t>(c)]);
  }

  if (rank != 0) {
    comm.send(0, forest.pack_owned_trees(owner, rank), tag);
  } else {
    for (int src = 1; src < P; ++src) {
      forest.replace_framed_trees(comm.recv(src, tag));
    }
    for (int c = 0; c < kNumChannels; ++c) {
      forest.add_emitted(c, total_emitted[static_cast<std::size_t>(c)]);
      if (resume_forest) forest.add_emitted(c, resume_forest->emitted(c));
    }
  }
  return total_emitted;
}

}  // namespace photon
