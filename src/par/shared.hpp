// Shared-memory parallel Photon (Fig 5.2) — the engine's `shared` backend.
//
// All threads share the geometry and the bin forest; tallies are buffered
// per worker and flushed in per-tree batches under the owning tree's lock
// (engine/sink.hpp — the paper's multiple-reader/single-writer protocol
// collapses to per-tree mutual exclusion because every record may split its
// bin; batching amortizes it). Each thread draws from its own leapfrogged substream
// and traces a static share of the photons, exactly the forall loop of the
// paper. `config.workers` sets the thread count.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// When `resume_from` is non-null its forest and counters are adopted and
// `config.photons` additional photons are traced on top, drawn from fresh
// leapfrog streams offset past everything the first leg can have touched (so
// nothing is replayed). Unlike `serial` the continuation is not bitwise
// identical to an uninterrupted run.
RunResult run_shared(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from = nullptr);

}  // namespace photon
