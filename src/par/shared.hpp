// Shared-memory parallel Photon (Fig 5.2) — the engine's `shared` backend.
//
// All threads share the geometry and the bin forest. Work is scheduled
// through the persistent WorkerPool (engine/pool.hpp): the photon-id range
// is cut into `config.chunk`-photon chunks that idle workers claim/steal
// dynamically — the paper's static nphot/nprocessors split (whose Table 5.2
// imbalance the static schedule bakes in) survives only as the pool's
// initial chunk distribution, which stealing then rebalances.
//
// Determinism contract (strictly stronger than the old leapfrog version):
// every photon draws from its own disjoint RNG block (photon_stream), each
// chunk traces into a chunk-private record buffer, and buffers drain into
// the forest in ascending chunk order on the coordinating thread. The
// populated forest is therefore bitwise identical to the serial
// photon-stream reference (RunConfig::photon_streams) at EVERY worker
// count, chunk size, and steal interleaving — pinned by the conformance
// suite at workers {1, 2, 4, 8} and under forced-steal schedules.
//
// `config.workers` sets the worker width; `config.batch` windows bound the
// record-buffer memory; both are scheduling knobs with no effect on the
// result.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// When `resume_from` is non-null its forest and counters are adopted and
// `config.photons` additional photons are traced on top, continuing the
// photon-id sequence where the checkpoint stopped. Ids index disjoint RNG
// blocks, so the continuation is bitwise identical to an uninterrupted run
// (the same guarantee as the serial photon-stream mode).
RunResult run_shared(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from = nullptr);

}  // namespace photon
