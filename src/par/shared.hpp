// Shared-memory parallel Photon (Fig 5.2).
//
// All threads share the geometry and the bin forest; every tally or split
// takes the owning tree's lock (the paper's multiple-reader/single-writer
// protocol collapses to per-tree mutual exclusion here because every record
// may split its bin). Each thread draws from its own leapfrogged substream
// and traces a static share of the photons, exactly the forall loop of the
// paper.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace photon {

struct SharedConfig {
  std::uint64_t photons = 100000;
  int nthreads = 2;
  std::uint64_t seed = 0x1234ABCD330EULL;
  double sample_interval_s = 0.05;  // speed-trace sampling period
  SplitPolicy policy{};
  TraceLimits limits{};
};

struct SharedResult {
  BinForest forest;
  SpeedTrace trace;
  TraceCounters counters;
  std::vector<std::uint64_t> per_thread_traced;
};

SharedResult run_shared(const Scene& scene, const SharedConfig& config);

}  // namespace photon
