#include "par/hybrid.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "engine/governor.hpp"
#include "engine/pool.hpp"
#include "engine/sink.hpp"
#include "engine/wire.hpp"
#include "mp/minimpi.hpp"
#include "par/gather.hpp"
#include "sim/emitter.hpp"

namespace photon {

namespace {

// Message channels, same convention as par/dist: records ride the overlapped
// tag, the end-of-run tree gather its own so gather waits stay out of the
// record-path overlap telemetry.
constexpr int kTagRecords = 0;
constexpr int kTagGather = 1;

// Start of part `i` when `n` items are split into `parts` contiguous slices
// (floor partition: slice i is [begin(i), begin(i+1)), sizes differ by at
// most one, concatenation covers [0, n) in order).
std::uint64_t slice_begin(std::uint64_t n, int parts, int i) {
  return n * static_cast<std::uint64_t>(i) / static_cast<std::uint64_t>(parts);
}

// Chunk-private record buffer: traced records accumulate in trace order and
// are drained on the group thread in ascending chunk order, so a group's
// window records reassemble in ascending photon-id order no matter which
// worker claimed (or stole) which chunk.
class BufferSink final : public BinSink {
 public:
  explicit BufferSink(std::vector<BounceRecord>& out) : out_(&out) {}
  void record(const BounceRecord& rec) override { out_->push_back(rec); }

 private:
  std::vector<BounceRecord>* out_;
};

}  // namespace

RunResult run_hybrid(const Scene& scene, const RunConfig& config, const RunResult* resume) {
  const int G = std::max(config.groups, 1);
  const int T = std::max(config.workers, 1);
  const std::uint64_t window = std::max<std::uint64_t>(config.batch, 1);
  // Photon ids continue where the checkpoint stopped (ids index disjoint RNG
  // blocks, exactly like dist-spatial): the resumed leg traces the same
  // photons an uninterrupted run would have traced next.
  const std::uint64_t first_photon = resume ? resume->counters.emitted : 0;
  const std::uint64_t last_photon = first_photon + config.photons;

  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(G));
  std::mutex result_mutex;  // harness-side collection only

  // Ownership is a pure function of (scene, config) — computed once and
  // shared, same setup-phase treatment as par/dist (on MPI the G replicated
  // probes run concurrently and cost one probe of wall time).
  const std::vector<std::uint64_t> loads =
      measure_patch_loads(scene, config.lb_photons, config.seed ^ 0x9E3779B97F4A7C15ULL);
  const LoadBalance balance =
      config.bestfit ? assign_bestfit(loads, G) : assign_naive(loads, G);

  // Fault plan and deadline/heartbeat policy ride in from the config; the
  // defaults are a no-fault, block-forever world (mp/fault.hpp).
  WorldOptions world_options;
  world_options.plan = config.fault_plan.get();
  world_options.policy = config.comm;

  run_world(G, world_options, [&](Comm& comm) {
    const int rank = comm.rank();
    const int P = comm.size();
    SpeedSampler sampler(rank == 0 ? config.trace_path : std::string(), first_photon);

    BinForest forest(scene.patch_count(), config.policy);
    const Emitter emitter(scene);
    forest.set_total_power(emitter.total_power());
    const Tracer tracer(scene, config.limits);
    if (resume) {
      // Fold the checkpoint's owned trees into this group's virgin partition
      // (lossless — virgin trees adopt the checkpoint structure wholesale).
      forest.merge_owned_trees(resume->forest, balance.owner, rank);
    }

    RankReport report;
    WireBuffer wire(P);
    OrderedRouterSink sink(forest, balance.owner, rank, wire, report.processed);

    // This group's worker team: spawned ONCE here, parked between windows,
    // reused for every window of the run. The seed version paid a full
    // thread create/join cycle per window — the overhead bench_pool puts a
    // number on. One private pool per group so the G groups' windows
    // schedule concurrently instead of serializing on a shared job slot.
    const std::uint64_t chunk_size = std::max<std::uint64_t>(config.chunk, 1);
    WorkerPool pool(T - 1);

    // Per-worker hot counters in cache-line-padded slots (workers bump only
    // their own line); per-chunk record buffers are drained (and so emptied)
    // every window.
    std::vector<std::vector<BounceRecord>> buffers;
    std::vector<CachePadded<TraceCounters>> counters(static_cast<std::size_t>(T));
    std::vector<CachePadded<ChannelCounts>> emitted(static_cast<std::size_t>(T));
    PoolTelemetry pool_stats;
    pool_stats.chunk_size = chunk_size;
    pool_stats.worker_chunks.assign(static_cast<std::size_t>(T), 0);
    pool_stats.worker_steals.assign(static_cast<std::size_t>(T), 0);
    pool_stats.worker_photons.assign(static_cast<std::size_t>(T), 0);

    std::vector<BounceRecord> held_prev;             // window k-1's owned records
    std::optional<PendingExchange> pending;          // window k-1's wire bytes in flight
    RunStatus local_status = RunStatus::kComplete;
    std::uint64_t window_start = first_photon;
    // Window indices label the whole run, not one leg: a resumed leg
    // continues the numbering, so a scripted fault can name a mid-run window
    // regardless of how the elastic runner cut the checkpoint legs.
    std::uint64_t window_index = first_photon / window;

    while (window_start < last_photon) {
      // Liveness tick (the heartbeat the failure detector reads) and the
      // scripted before-batch kill point. None of the fault hooks touch RNG
      // or record order, so the bitwise shape-invariance contract holds.
      comm.batch_tick(window_index);
      const std::uint64_t window_end = std::min(window_start + window, last_photon);
      const std::uint64_t n = window_end - window_start;
      // This group's contiguous id slice of the window, split contiguously
      // across its threads.
      const std::uint64_t group_lo = window_start + slice_begin(n, P, rank);
      const std::uint64_t group_hi = window_start + slice_begin(n, P, rank + 1);
      const std::uint64_t group_n = group_hi - group_lo;

      const std::uint64_t chunks = chunk_count(group_n, chunk_size);
      if (buffers.size() < chunks) buffers.resize(chunks);

      PoolRunStats stats;
      pool.run(
          chunks, T,
          [&](std::uint64_t c, int slot) {
            const std::uint64_t lo = group_lo + c * chunk_size;
            const std::uint64_t hi = std::min(lo + chunk_size, group_hi);
            BufferSink chunk_sink(buffers[static_cast<std::size_t>(c)]);
            TraceCounters& mine = counters[static_cast<std::size_t>(slot)].value;
            ChannelCounts& mine_emitted = emitted[static_cast<std::size_t>(slot)].value;
            for (std::uint64_t id = lo; id < hi; ++id) {
              Lcg48 rng = photon_stream(config.seed, id);
              const EmissionSample emission = emitter.emit(rng);
              ++mine_emitted[static_cast<std::size_t>(emission.channel)];
              tracer.trace(emission, rng, chunk_sink, &mine);
            }
          },
          &stats);

      // Ascending-chunk drain: chunks tile the group's contiguous id slice
      // in order, so the group's records route in global photon-id order no
      // matter which worker claimed (or stole) which chunk — owned ones into
      // the held slice, foreign ones straight into the wire bytes.
      for (std::uint64_t c = 0; c < chunks; ++c) {
        std::vector<BounceRecord>& records = buffers[static_cast<std::size_t>(c)];
        for (const BounceRecord& rec : records) sink.record(rec);
        records.clear();
      }
      pool_stats.chunks += stats.chunks;
      pool_stats.steals += stats.steals;
      for (std::size_t s = 0; s < stats.worker_chunks.size(); ++s) {
        pool_stats.worker_chunks[s] += stats.worker_chunks[s];
        pool_stats.worker_steals[s] += stats.worker_steals[s];
      }
      report.traced += group_n;
      report.batch_sizes.push_back(group_n);

      // Window k-1 drained while this window traced; apply it in canonical
      // source-group order, then post this window's bytes. Tracing never
      // reads the forest, so the deferral cannot change any path.
      if (pending) {
        const std::vector<Bytes> incoming = pending->finish();
        sink.apply_batch(held_prev, incoming);
      }
      held_prev = sink.take_held();
      pending.emplace(comm.alltoall_start(wire.take(), kTagRecords));
      // Mid-exchange kill point: sends posted, finish outstanding.
      comm.fault_point(FaultPoint::kMidExchange, window_index);
      ++report.rounds;

      // One speed point per window on the agreed clock (as in par/dist).
      const double agreed = comm.allreduce_max(sampler.elapsed());
      if (rank == 0) sampler.sample_at(agreed, window_end - first_photon);

      comm.fault_point(FaultPoint::kAfterBatch, window_index);
      progress_tick(config, "hybrid", window_index);
      ++window_index;
      window_start = window_end;

      // Governed stop agreement: one unconditional allreduce of the packed
      // stop word per window — every rank derives the same decision from the
      // same sum and breaks at the same window boundary, so the in-flight
      // exchange drains through the ordinary end-of-loop path below.
      // Unconditional because MiniMPI collectives pair anonymously: a rank
      // skipping it would mispair another rank's barrier.
      if (config.governed) {
        const std::uint64_t sum = comm.allreduce_sum_u64(
            encode_stop_word(preempt_requested(config), forest.memory_bytes()));
        if (stop_word_preempted(sum)) {
          acknowledge_preempt(config);  // idempotent across ranks
          local_status = RunStatus::kPreempted;
          break;
        }
        if (stop_word_over_budget(sum, config.memory_budget)) {
          local_status = RunStatus::kOverBudget;
          break;
        }
      }
    }
    // One more liveness tick so the gather below is not instantly stale to
    // a peer's failure detector.
    comm.heartbeat(window_index + 1);

    // Every rank ran the same window count, so the final drain matches the
    // pending sends exactly.
    if (pending) {
      const std::vector<Bytes> incoming = pending->finish();
      sink.apply_batch(held_prev, incoming);
    }

    // Fold per-thread state, then gather: owned trees to rank 0 as binary
    // frames, emission totals via allreduce (par/gather.hpp — shared with
    // the other partitioned-forest backends).
    ChannelCounts rank_emitted{};
    for (int tid = 0; tid < T; ++tid) {
      const auto ti = static_cast<std::size_t>(tid);
      report.counters += counters[ti].value;
      pool_stats.worker_photons[ti] = counters[ti].value.emitted;
      for (int c = 0; c < kNumChannels; ++c) {
        rank_emitted[static_cast<std::size_t>(c)] +=
            emitted[ti].value[static_cast<std::size_t>(c)];
      }
    }
    gather_partitioned_forest(comm, forest, balance.owner, rank_emitted,
                              resume ? &resume->forest : nullptr, kTagGather);

    report.sent_bytes = comm.bytes_sent();
    report.sent_messages = comm.messages_sent();
    report.deadline_retries = comm.deadline_retries();
    report.wait_seconds = comm.wait_seconds(kTagRecords);

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.ranks[static_cast<std::size_t>(rank)] = std::move(report);
      // Group-major pool telemetry: slot group*T+tid is thread tid of this
      // group (the group×thread per_thread_traced extension).
      if (result.pool.worker_photons.empty()) {
        result.pool.chunk_size = chunk_size;
        result.pool.worker_photons.assign(static_cast<std::size_t>(G) * T, 0);
        result.pool.worker_chunks.assign(static_cast<std::size_t>(G) * T, 0);
        result.pool.worker_steals.assign(static_cast<std::size_t>(G) * T, 0);
      }
      result.pool.chunks += pool_stats.chunks;
      result.pool.steals += pool_stats.steals;
      for (int tid = 0; tid < T; ++tid) {
        const auto slot = static_cast<std::size_t>(rank) * T + static_cast<std::size_t>(tid);
        const auto ti = static_cast<std::size_t>(tid);
        result.pool.worker_photons[slot] = pool_stats.worker_photons[ti];
        result.pool.worker_chunks[slot] = pool_stats.worker_chunks[ti];
        result.pool.worker_steals[slot] = pool_stats.worker_steals[ti];
      }
      if (rank == 0) {
        result.forest = std::move(forest);
        result.balance = balance;
        result.trace = sampler.finish(window_start - first_photon);
        result.status = local_status;  // identical on every rank (same sum)
      }
    }
  });

  for (const RankReport& report : result.ranks) result.counters += report.counters;
  if (resume) result.counters += resume->counters;
  return result;
}

}  // namespace photon
