#include "par/loadbalance.hpp"

#include <algorithm>
#include <numeric>

#include "sim/emitter.hpp"
#include "sim/tracer.hpp"

namespace photon {

namespace {
class CountSink final : public BinSink {
 public:
  explicit CountSink(std::vector<std::uint64_t>& counts) : counts_(&counts) {}
  void record(const BounceRecord& rec) override {
    ++(*counts_)[static_cast<std::size_t>(rec.patch)];
  }

 private:
  std::vector<std::uint64_t>* counts_;
};
}  // namespace

std::vector<std::uint64_t> measure_patch_loads(const Scene& scene, std::uint64_t k,
                                               std::uint64_t seed) {
  std::vector<std::uint64_t> counts(scene.patch_count(), 0);
  CountSink sink(counts);
  const Emitter emitter(scene);
  const Tracer tracer(scene);
  Lcg48 rng(seed);
  for (std::uint64_t i = 0; i < k; ++i) {
    tracer.trace(emitter.emit(rng), rng, sink);
  }
  return counts;
}

LoadBalance assign_naive(std::span<const std::uint64_t> loads, int nranks) {
  // Round-robin by patch index, ignoring load — the "naive" scheme of
  // Table 5.2. (Assigning contiguous blocks would be even worse: the paper's
  // dark-room-with-a-spotlight example, where one processor owns the floor
  // and does all the work.)
  LoadBalance lb;
  const std::size_t n = loads.size();
  lb.owner.resize(n);
  lb.rank_load.assign(static_cast<std::size_t>(nranks), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int r = static_cast<int>(i % static_cast<std::size_t>(nranks));
    lb.owner[i] = r;
    lb.rank_load[static_cast<std::size_t>(r)] += loads[i];
  }
  return lb;
}

LoadBalance assign_bestfit(std::span<const std::uint64_t> loads, int nranks) {
  LoadBalance lb;
  const std::size_t n = loads.size();
  lb.owner.resize(n);
  lb.rank_load.assign(static_cast<std::size_t>(nranks), 0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return loads[a] > loads[b]; });

  for (const std::size_t patch : order) {
    int best = 0;
    for (int r = 1; r < nranks; ++r) {
      if (lb.rank_load[static_cast<std::size_t>(r)] < lb.rank_load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    lb.owner[patch] = best;
    lb.rank_load[static_cast<std::size_t>(best)] += loads[patch];
  }
  return lb;
}

double imbalance(const LoadBalance& lb) {
  if (lb.rank_load.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (const std::uint64_t l : lb.rank_load) {
    total += l;
    worst = std::max(worst, l);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(lb.rank_load.size());
  return static_cast<double>(worst) / mean;
}

}  // namespace photon
