// Distributed-memory parallel Photon (Fig 5.3) — the engine's
// `dist-particle` backend.
//
// Geometry (and its octree) is replicated; the bin forest is partitioned by
// patch ownership. Every rank generates and traces its share of each batch;
// reflections landing on trees owned elsewhere are serialized in place into
// per-destination wire buffers (engine/sink.hpp's RouterSink) and exchanged
// with a split-phase all-to-all: batch k's bytes drain while batch k+1
// traces, and the incoming buffers are tallied by the owner one batch behind.
// Batch size adapts to the communication medium via the engine's
// BatchController, agreed across ranks with an allreduce so every rank stays
// in lockstep. `config.workers` sets the rank count.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// Runs the Fig 5.3 algorithm on `config.workers` MiniMPI ranks. A `resume`
// result (a loaded checkpoint from any backend) is folded into the
// partitioned trees before tracing `config.photons` additional photons.
// When the checkpoint carries per-rank RNG state for this rank count (a
// dist-particle checkpoint at the same `workers`), every stream continues in
// place: with a fixed batch size and a first leg ending on a batch boundary
// (photons % (batch*workers) == 0) the continuation is bitwise identical to
// an uninterrupted run. Otherwise the continuation runs on a disjoint block
// of the random sequence — statistically independent, never replaying paths.
RunResult run_distributed(const Scene& scene, const RunConfig& config,
                          const RunResult* resume = nullptr);

}  // namespace photon
