// Distributed-memory parallel Photon (Fig 5.3).
//
// Geometry (and its octree) is replicated; the bin forest is partitioned by
// patch ownership. Every rank generates and traces its share of each batch;
// reflections landing on trees owned elsewhere are queued per destination and
// exchanged in one all-to-all after the particle-tracing phase, then tallied
// (and split) by the owner. Batch size adapts to the communication medium via
// the shared BatchController, agreed across ranks with an allreduce so every
// rank stays in lockstep.
#pragma once

#include <cstdint>
#include <vector>

#include "par/batch.hpp"
#include "par/loadbalance.hpp"
#include "sim/simulator.hpp"

namespace photon {

// Packed bounce record as exchanged on the wire.
struct WireRecord {
  std::int32_t patch = -1;
  float s = 0, t = 0, u = 0, theta = 0;
  std::uint8_t channel = 0;
  std::uint8_t front = 1;
  std::uint16_t pad = 0;
};
static_assert(sizeof(WireRecord) == 24, "wire format is part of the protocol");

struct DistConfig {
  std::uint64_t photons = 100000;  // total across all ranks
  std::uint64_t lb_photons = 2000; // probe photons for load balancing (k)
  std::uint64_t seed = 0x1234ABCD330EULL;
  bool bestfit = true;             // false: naive contiguous ownership
  bool adapt_batch = true;
  BatchPolicy batch{};
  std::uint64_t fixed_batch = 2000;  // per-rank batch when !adapt_batch
  SplitPolicy policy{};
  TraceLimits limits{};
};

struct RankReport {
  std::uint64_t traced = 0;      // photons generated and traced by this rank
  std::uint64_t processed = 0;   // tally updates performed (Table 5.2 metric)
  std::uint64_t sent_bytes = 0;
  std::uint64_t sent_messages = 0;
  std::vector<std::uint64_t> batch_sizes;
  TraceCounters counters;
};

struct DistResult {
  BinForest forest;  // gathered on rank 0: complete answer
  std::vector<RankReport> ranks;
  SpeedTrace trace;
  LoadBalance balance;
};

// Runs the Fig 5.3 algorithm on `nranks` MiniMPI ranks.
DistResult run_distributed(const Scene& scene, const DistConfig& config, int nranks);

}  // namespace photon
