// Distributed-memory parallel Photon (Fig 5.3) — the engine's
// `dist-particle` backend.
//
// Geometry (and its octree) is replicated; the bin forest is partitioned by
// patch ownership. Every rank generates and traces its share of each batch;
// reflections landing on trees owned elsewhere are queued per destination and
// exchanged in one all-to-all after the particle-tracing phase, then tallied
// (and split) by the owner. Batch size adapts to the communication medium via
// the engine's BatchController, agreed across ranks with an allreduce so
// every rank stays in lockstep. `config.workers` sets the rank count.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// Runs the Fig 5.3 algorithm on `config.workers` MiniMPI ranks.
RunResult run_distributed(const Scene& scene, const RunConfig& config);

}  // namespace photon
