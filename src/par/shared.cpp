#include "par/shared.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "engine/sink.hpp"
#include "sim/emitter.hpp"

namespace photon {

RunResult run_shared(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from) {
  RunResult result;
  if (resume_from) {
    result.forest = resume_from->forest;
    result.counters = resume_from->counters;
  } else {
    result.forest = BinForest(scene.patch_count(), config.policy);
  }
  std::vector<std::mutex> tree_mutexes(scene.patch_count() * 2);

  const Emitter emitter(scene);
  result.forest.set_total_power(emitter.total_power());
  const Tracer tracer(scene, config.limits);

  // More threads than photons would leave the surplus idle; clamp so every
  // spawned thread has work (and guard against a nonpositive request).
  int T = std::max(config.workers, 1);
  if (config.photons > 0 && static_cast<std::uint64_t>(T) > config.photons) {
    T = static_cast<int>(config.photons);
  }

  std::vector<TraceCounters> counters(static_cast<std::size_t>(T));
  std::vector<ChannelCounts> emitted(static_cast<std::size_t>(T));
  result.per_thread_traced.assign(static_cast<std::size_t>(T), 0);
  std::atomic<std::uint64_t> progress{0};

  SpeedSampler sampler(config.trace_path);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(T));
  for (int tid = 0; tid < T; ++tid) {
    threads.emplace_back([&, tid] {
      const auto ti = static_cast<std::size_t>(tid);
      // Static split: nphot / nprocessors each, remainder to low threads.
      const std::uint64_t base = config.photons / static_cast<std::uint64_t>(T);
      const std::uint64_t extra = static_cast<std::uint64_t>(tid) <
                                          config.photons % static_cast<std::uint64_t>(T)
                                      ? 1
                                      : 0;
      const std::uint64_t quota = base + extra;

      // Batched tallying: records accumulate thread-locally and flush to each
      // tree under its mutex (engine/sink.hpp), killing per-bounce lock
      // traffic. Destruction at thread exit flushes the tail.
      BufferedForestSink sink(result.forest, tree_mutexes,
                              static_cast<std::size_t>(config.sink_buffer));
      Lcg48 rng(config.seed, tid, T);
      // On resume, shift every leapfrog stream onto a disjoint block of the
      // global sequence beyond the first leg's reach — otherwise a resumed
      // leg would replay the identical photons and silently double-count.
      if (resume_from) rng.skip(resume_from->counters.emitted * 4096);
      for (std::uint64_t i = 0; i < quota; ++i) {
        const EmissionSample emission = emitter.emit(rng);
        ++emitted[ti][static_cast<std::size_t>(emission.channel)];
        tracer.trace(emission, rng, sink, &counters[ti]);
        ++result.per_thread_traced[ti];
        progress.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Main thread samples the speed trace while workers run; the engine
  // sampler handles the zero-photon case and the terminal point.
  sample_progress(sampler, progress, config.photons, config.sample_interval_s);
  for (std::thread& t : threads) t.join();

  result.trace = sampler.finish(config.photons);

  for (int tid = 0; tid < T; ++tid) {
    const auto ti = static_cast<std::size_t>(tid);
    result.counters += counters[ti];
    for (int c = 0; c < kNumChannels; ++c) {
      result.forest.add_emitted(c, emitted[ti][static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace photon
