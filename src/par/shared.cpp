#include "par/shared.hpp"

#include <algorithm>
#include <vector>

#include "engine/governor.hpp"
#include "engine/pool.hpp"
#include "sim/emitter.hpp"

namespace photon {

namespace {

// Chunk-private record buffer: one per chunk, filled in trace order by
// whichever worker claims the chunk, drained on the coordinating thread in
// ascending chunk order — which IS ascending photon-id order.
class BufferSink final : public BinSink {
 public:
  explicit BufferSink(std::vector<BounceRecord>& out) : out_(&out) {}
  void record(const BounceRecord& rec) override { out_->push_back(rec); }

 private:
  std::vector<BounceRecord>* out_;
};

}  // namespace

RunResult run_shared(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from) {
  RunResult result;
  // Photon ids continue where the checkpoint stopped: ids index disjoint RNG
  // blocks (photon_stream), so the resumed leg traces exactly the photons an
  // uninterrupted run would have traced next — a bitwise continuation.
  const std::uint64_t first_photon = resume_from ? resume_from->counters.emitted : 0;
  const std::uint64_t last_photon = first_photon + config.photons;
  if (resume_from) {
    result.forest = resume_from->forest;
    result.counters = resume_from->counters;
  } else {
    result.forest = BinForest(scene.patch_count(), config.policy);
  }

  const Emitter emitter(scene);
  result.forest.set_total_power(emitter.total_power());
  const Tracer tracer(scene, config.limits);

  const int T = std::max(config.workers, 1);
  const std::uint64_t chunk_size = std::max<std::uint64_t>(config.chunk, 1);
  const std::uint64_t window = std::max<std::uint64_t>(config.batch, 1);

  // Per-worker hot counters live in cache-line-padded slots: workers bump
  // only their own line during the trace, and the totals publish once after
  // the run — no cross-thread line bouncing, no shared increments.
  std::vector<CachePadded<TraceCounters>> counters(static_cast<std::size_t>(T));
  std::vector<CachePadded<ChannelCounts>> emitted(static_cast<std::size_t>(T));

  result.pool.chunk_size = chunk_size;
  result.pool.worker_chunks.assign(static_cast<std::size_t>(T), 0);
  result.pool.worker_steals.assign(static_cast<std::size_t>(T), 0);

  WorkerPool& pool = WorkerPool::instance();
  SpeedSampler sampler(config.trace_path, first_photon);

  // Batch windows bound the record-buffer footprint (and give the speed
  // trace one point per window); the drain order makes the forest identical
  // for every window size, so this is memory policy, not semantics.
  std::vector<std::vector<BounceRecord>> chunk_records;
  std::uint64_t window_start = first_photon;
  while (window_start < last_photon) {
    const std::uint64_t window_end = std::min(window_start + window, last_photon);
    const std::uint64_t chunks = chunk_count(window_end - window_start, chunk_size);
    if (chunk_records.size() < chunks) chunk_records.resize(chunks);

    PoolRunStats stats;
    pool.run(
        chunks, T,
        [&](std::uint64_t c, int slot) {
          const std::uint64_t lo = window_start + c * chunk_size;
          const std::uint64_t hi = std::min(lo + chunk_size, window_end);
          BufferSink sink(chunk_records[static_cast<std::size_t>(c)]);
          TraceCounters& mine = counters[static_cast<std::size_t>(slot)].value;
          ChannelCounts& mine_emitted = emitted[static_cast<std::size_t>(slot)].value;
          for (std::uint64_t id = lo; id < hi; ++id) {
            Lcg48 rng = photon_stream(config.seed, id);
            const EmissionSample emission = emitter.emit(rng);
            ++mine_emitted[static_cast<std::size_t>(emission.channel)];
            tracer.trace(emission, rng, sink, &mine);
          }
        },
        &stats);

    // Ascending-chunk drain == ascending photon-id order: the forest sees
    // exactly the record sequence the serial photon-stream reference feeds
    // it, regardless of which worker traced which chunk when. Tracing never
    // reads the forest, so no lock is needed anywhere.
    for (std::uint64_t c = 0; c < chunks; ++c) {
      std::vector<BounceRecord>& records = chunk_records[static_cast<std::size_t>(c)];
      for (const BounceRecord& rec : records) {
        result.forest.record(rec.patch, rec.front, rec.coords, rec.channel);
      }
      records.clear();
    }

    result.pool.chunks += stats.chunks;
    result.pool.steals += stats.steals;
    for (std::size_t s = 0; s < stats.worker_chunks.size(); ++s) {
      result.pool.worker_chunks[s] += stats.worker_chunks[s];
      result.pool.worker_steals[s] += stats.worker_steals[s];
    }

    sampler.sample(window_end - first_photon);
    window_start = window_end;
    progress_tick(config, "shared", window_end);
    if (config.governed) {
      // Stop at the window boundary: every id below window_end is traced and
      // drained, so the partial result is the same window-aligned checkpoint
      // a count-bounded run would have produced.
      if (preempt_requested(config)) {
        acknowledge_preempt(config);
        result.status = RunStatus::kPreempted;
        break;
      }
      if (config.memory_budget != 0 &&
          result.forest.memory_bytes() > config.memory_budget) {
        result.status = RunStatus::kOverBudget;
        break;
      }
    }
  }

  // Finish at the count actually traced: a governed stop ends the leg early,
  // and the terminal trace point must not claim photons never traced.
  result.trace = sampler.finish(window_start - first_photon);

  result.per_thread_traced.assign(static_cast<std::size_t>(T), 0);
  result.pool.worker_photons.assign(static_cast<std::size_t>(T), 0);
  for (int t = 0; t < T; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    result.counters += counters[ti].value;
    result.per_thread_traced[ti] = counters[ti].value.emitted;
    result.pool.worker_photons[ti] = counters[ti].value.emitted;
    for (int c = 0; c < kNumChannels; ++c) {
      result.forest.add_emitted(c, emitted[ti].value[static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace photon
