#include "par/shared.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace photon {

namespace {
// Sink that serializes access per tree: Lock(bin); Split(bin); UnLock(bin).
class LockedForestSink final : public BinSink {
 public:
  LockedForestSink(BinForest& forest, std::vector<std::mutex>& tree_mutexes)
      : forest_(&forest), mutexes_(&tree_mutexes) {}

  void record(const BounceRecord& rec) override {
    const int idx = BinForest::tree_index(rec.patch, rec.front);
    std::lock_guard<std::mutex> lock((*mutexes_)[static_cast<std::size_t>(idx)]);
    forest_->tree_at(idx).record(rec.coords, rec.channel);
  }

 private:
  BinForest* forest_;
  std::vector<std::mutex>* mutexes_;
};
}  // namespace

SharedResult run_shared(const Scene& scene, const SharedConfig& config) {
  SharedResult result;
  result.forest = BinForest(scene.patch_count(), config.policy);
  std::vector<std::mutex> tree_mutexes(scene.patch_count() * 2);

  const Emitter emitter(scene);
  result.forest.set_total_power(emitter.total_power());
  const Tracer tracer(scene, config.limits);

  const int T = config.nthreads;
  std::vector<TraceCounters> counters(static_cast<std::size_t>(T));
  std::vector<ChannelCounts> emitted(static_cast<std::size_t>(T));
  result.per_thread_traced.assign(static_cast<std::size_t>(T), 0);
  std::atomic<std::uint64_t> progress{0};

  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(T));
  for (int tid = 0; tid < T; ++tid) {
    threads.emplace_back([&, tid] {
      const auto ti = static_cast<std::size_t>(tid);
      // Static split: nphot / nprocessors each, remainder to low threads.
      const std::uint64_t base = config.photons / static_cast<std::uint64_t>(T);
      const std::uint64_t extra = static_cast<std::uint64_t>(tid) <
                                          config.photons % static_cast<std::uint64_t>(T)
                                      ? 1
                                      : 0;
      const std::uint64_t quota = base + extra;

      LockedForestSink sink(result.forest, tree_mutexes);
      Lcg48 rng(config.seed, tid, T);
      for (std::uint64_t i = 0; i < quota; ++i) {
        const EmissionSample emission = emitter.emit(rng);
        ++emitted[ti][static_cast<std::size_t>(emission.channel)];
        tracer.trace(emission, rng, sink, &counters[ti]);
        ++result.per_thread_traced[ti];
        progress.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Main thread samples the speed trace while workers run.
  while (progress.load(std::memory_order_relaxed) < config.photons) {
    std::this_thread::sleep_for(std::chrono::duration<double>(config.sample_interval_s));
    const double t =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const std::uint64_t done = progress.load(std::memory_order_relaxed);
    result.trace.points.push_back({t, done, t > 0.0 ? static_cast<double>(done) / t : 0.0});
    if (done >= config.photons) break;
  }
  for (std::thread& t : threads) t.join();

  result.trace.total_photons = config.photons;
  result.trace.total_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.trace.points.push_back({result.trace.total_time_s, config.photons,
                                 result.trace.final_rate()});

  for (int tid = 0; tid < T; ++tid) {
    const auto ti = static_cast<std::size_t>(tid);
    result.counters.emitted += counters[ti].emitted;
    result.counters.bounces += counters[ti].bounces;
    result.counters.absorbed += counters[ti].absorbed;
    result.counters.escaped += counters[ti].escaped;
    result.counters.terminated += counters[ti].terminated;
    for (int c = 0; c < kNumChannels; ++c) {
      result.forest.add_emitted(c, emitted[ti][static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace photon
