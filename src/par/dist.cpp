#include "par/dist.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "engine/wire.hpp"
#include "mp/minimpi.hpp"
#include "sim/emitter.hpp"

namespace photon {

namespace {

// Sink used during particle tracing: owned records are tallied immediately,
// foreign records are queued per owning rank (EnQueue in Fig 5.3).
class QueueSink final : public BinSink {
 public:
  QueueSink(BinForest& forest, const std::vector<int>& owner, int rank,
            std::vector<std::vector<WireRecord>>& queues, std::uint64_t& processed)
      : forest_(&forest), owner_(&owner), rank_(rank), queues_(&queues), processed_(&processed) {}

  void record(const BounceRecord& rec) override {
    const int owner_rank = (*owner_)[static_cast<std::size_t>(rec.patch)];
    if (owner_rank == rank_) {
      forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
      ++(*processed_);
    } else {
      (*queues_)[static_cast<std::size_t>(owner_rank)].push_back(to_wire(rec));
    }
  }

 private:
  BinForest* forest_;
  const std::vector<int>* owner_;
  int rank_;
  std::vector<std::vector<WireRecord>>* queues_;
  std::uint64_t* processed_;
};

void apply_records(const Bytes& buf, BinForest& forest, std::uint64_t& processed) {
  for (const WireRecord& wire : unpack_records(buf)) {
    const BounceRecord rec = from_wire(wire);
    forest.record(rec.patch, rec.front, rec.coords, rec.channel);
    ++processed;
  }
}

}  // namespace

RunResult run_distributed(const Scene& scene, const RunConfig& config) {
  const int nranks = std::max(config.workers, 1);
  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::mutex result_mutex;  // harness-side collection only

  run_world(nranks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int P = comm.size();
    SpeedSampler sampler;

    // --- Load balancing phase: every rank traces the same k photons with the
    // same stream and derives the identical ownership map (chapter 5).
    const std::vector<std::uint64_t> loads =
        measure_patch_loads(scene, config.lb_photons, config.seed ^ 0x9E3779B97F4A7C15ULL);
    const LoadBalance balance =
        config.bestfit ? assign_bestfit(loads, P) : assign_naive(loads, P);

    BinForest forest(scene.patch_count(), config.policy);
    const Emitter emitter(scene);
    forest.set_total_power(emitter.total_power());
    const Tracer tracer(scene, config.limits);
    Lcg48 rng(config.seed, rank, P);

    RankReport report;
    std::vector<std::vector<WireRecord>> queues(static_cast<std::size_t>(P));
    QueueSink sink(forest, balance.owner, rank, queues, report.processed);
    ChannelCounts emitted{};

    BatchController controller(config.batch_policy);
    std::uint64_t global_done = 0;
    double prev_agreed = 0.0;

    while (global_done < config.photons) {
      std::uint64_t B = config.adapt_batch ? controller.size() : config.batch;
      // Do not overshoot the global budget; every rank computes the same cap.
      const std::uint64_t remaining = config.photons - global_done;
      const std::uint64_t cap = (remaining + static_cast<std::uint64_t>(P) - 1) /
                                static_cast<std::uint64_t>(P);
      if (B > cap) B = cap;

      // Particle tracing phase.
      for (std::uint64_t i = 0; i < B; ++i) {
        const EmissionSample emission = emitter.emit(rng);
        ++emitted[static_cast<std::size_t>(emission.channel)];
        tracer.trace(emission, rng, sink, &report.counters);
      }
      report.traced += B;
      report.batch_sizes.push_back(B);

      // All-to-all photon exchange.
      std::vector<Bytes> outgoing(static_cast<std::size_t>(P));
      for (int d = 0; d < P; ++d) {
        outgoing[static_cast<std::size_t>(d)] = pack_records(queues[static_cast<std::size_t>(d)]);
        queues[static_cast<std::size_t>(d)].clear();
      }
      const std::vector<Bytes> incoming = comm.alltoall(std::move(outgoing));
      for (int s = 0; s < P; ++s) {
        if (s == rank) continue;
        apply_records(incoming[static_cast<std::size_t>(s)], forest, report.processed);
      }

      global_done += B * static_cast<std::uint64_t>(P);

      // Agree on elapsed time so every rank derives the same rate and hence
      // the same next batch size. The controller is fed the *per-batch* rate
      // (what Photon measures after each batch); the trace keeps the
      // cumulative rate.
      const double agreed = comm.allreduce_max(sampler.elapsed());
      if (rank == 0) sampler.sample_at(agreed, global_done);
      if (config.adapt_batch) {
        const double batch_time = agreed - prev_agreed;
        const double batch_rate =
            batch_time > 0.0
                ? static_cast<double>(B * static_cast<std::uint64_t>(P)) / batch_time
                : 0.0;
        controller.update(batch_rate);
      }
      prev_agreed = agreed;
    }

    // --- Gather: owned trees to rank 0, emission totals via allreduce.
    ChannelCounts total_emitted{};
    for (int c = 0; c < kNumChannels; ++c) {
      total_emitted[static_cast<std::size_t>(c)] =
          comm.allreduce_sum_u64(emitted[static_cast<std::size_t>(c)]);
    }

    if (rank != 0) {
      std::ostringstream buf(std::ios::binary);
      for (std::size_t p = 0; p < scene.patch_count(); ++p) {
        if (balance.owner[p] != rank) continue;
        for (int side = 0; side < 2; ++side) {
          const std::int32_t idx = static_cast<std::int32_t>(2 * p) + side;
          buf.write(reinterpret_cast<const char*>(&idx), sizeof(idx));
          forest.tree_at(idx).save(buf);
        }
      }
      const std::string str = buf.str();
      comm.send(0, Bytes(str.begin(), str.end()));
    } else {
      for (int src = 1; src < P; ++src) {
        const Bytes buf = comm.recv(src);
        std::istringstream in(std::string(buf.begin(), buf.end()), std::ios::binary);
        std::int32_t idx = 0;
        while (in.read(reinterpret_cast<char*>(&idx), sizeof(idx))) {
          forest.replace_tree(idx, BinTree::load(in));
        }
      }
      for (int c = 0; c < kNumChannels; ++c) {
        forest.add_emitted(c, total_emitted[static_cast<std::size_t>(c)]);
      }
    }

    report.sent_bytes = comm.bytes_sent();
    report.sent_messages = comm.messages_sent();

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.ranks[static_cast<std::size_t>(rank)] = std::move(report);
      if (rank == 0) {
        result.forest = std::move(forest);
        result.balance = balance;
        result.trace = sampler.finish(global_done);
      }
    }
  });

  for (const RankReport& report : result.ranks) result.counters += report.counters;
  return result;
}

}  // namespace photon
