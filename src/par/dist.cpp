#include "par/dist.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "engine/sink.hpp"
#include "engine/wire.hpp"
#include "mp/minimpi.hpp"
#include "sim/emitter.hpp"

namespace photon {

namespace {

// Message channels: batched records ride tag 0 (overlapped exchange); the
// end-of-run tree gather uses its own tag so its recv waits do not pollute
// the record-path overlap telemetry.
constexpr int kTagRecords = 0;
constexpr int kTagGather = 1;

}  // namespace

RunResult run_distributed(const Scene& scene, const RunConfig& config,
                          const RunResult* resume) {
  const int nranks = std::max(config.workers, 1);
  const std::uint64_t resume_emitted = resume ? resume->counters.emitted : 0;
  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::mutex result_mutex;  // harness-side collection only

  // --- Load balancing phase (chapter 5): every rank derives the identical
  // ownership map from the same probe stream, so the map is a pure function
  // of (scene, config). On MPI the P copies of this trace run concurrently on
  // P processors and cost one probe of wall time; on the threaded substrate
  // they would serialize into P redundant copies, so it is computed once and
  // shared — same setup-phase treatment as partition_space in par/spatial.
  const std::vector<std::uint64_t> loads =
      measure_patch_loads(scene, config.lb_photons, config.seed ^ 0x9E3779B97F4A7C15ULL);
  const LoadBalance balance =
      config.bestfit ? assign_bestfit(loads, nranks) : assign_naive(loads, nranks);

  run_world(nranks, [&](Comm& comm) {
    const int rank = comm.rank();
    const int P = comm.size();
    SpeedSampler sampler;

    BinForest forest(scene.patch_count(), config.policy);
    const Emitter emitter(scene);
    forest.set_total_power(emitter.total_power());
    const Tracer tracer(scene, config.limits);
    Lcg48 rng(config.seed, rank, P);
    if (resume) {
      // Continue on a disjoint block of the global sequence, past anything
      // the first leg can have drawn (same 4096-element budget as the
      // per-photon streams), and fold the checkpoint's owned trees into this
      // rank's virgin partition (lossless — virgin trees adopt wholesale).
      rng.skip(resume_emitted * 4096);
      forest.merge_owned_trees(resume->forest, balance.owner, rank);
    }

    RankReport report;
    // One outgoing WireBuffer suffices for the overlap: take() surrenders
    // batch k's bytes to the exchange and leaves the buffer refillable, so
    // the sink serializes batch k+1 while batch k drains.
    WireBuffer wire(P);
    RouterSink sink(forest, balance.owner, rank, wire, report.processed);
    ChannelCounts emitted{};

    BatchController controller(config.batch_policy);
    std::uint64_t global_done = 0;
    double prev_agreed = 0.0;
    std::optional<PendingExchange> pending;  // batch k-1's records in flight

    const auto drain = [&](PendingExchange& exchange) {
      const std::vector<Bytes> incoming = exchange.finish();
      for (int s = 0; s < P; ++s) {
        if (s == rank) continue;
        sink.apply_incoming(incoming[static_cast<std::size_t>(s)]);
      }
    };

    while (global_done < config.photons) {
      std::uint64_t B = config.adapt_batch ? controller.size() : config.batch;
      // Do not overshoot the global budget; every rank computes the same cap.
      const std::uint64_t remaining = config.photons - global_done;
      const std::uint64_t cap = (remaining + static_cast<std::uint64_t>(P) - 1) /
                                static_cast<std::uint64_t>(P);
      if (B > cap) B = cap;

      // Particle tracing phase. Records owned here are tallied immediately;
      // foreign records are serialized straight into the outgoing bytes.
      for (std::uint64_t i = 0; i < B; ++i) {
        const EmissionSample emission = emitter.emit(rng);
        ++emitted[static_cast<std::size_t>(emission.channel)];
        tracer.trace(emission, rng, sink, &report.counters);
      }
      report.traced += B;
      report.batch_sizes.push_back(B);

      // Overlapped all-to-all: the previous batch's records crossed the wire
      // while this batch was tracing — drain them now, then post this batch.
      if (pending) drain(*pending);
      pending.emplace(comm.alltoall_start(wire.take(), kTagRecords));
      ++report.rounds;

      global_done += B * static_cast<std::uint64_t>(P);

      // Agree on elapsed time so every rank derives the same rate and hence
      // the same next batch size. The controller is fed the *per-batch* rate
      // (what Photon measures after each batch); the trace keeps the
      // cumulative rate.
      const double agreed = comm.allreduce_max(sampler.elapsed());
      if (rank == 0) sampler.sample_at(agreed, global_done);
      if (config.adapt_batch) {
        const double batch_time = agreed - prev_agreed;
        const double batch_rate =
            batch_time > 0.0
                ? static_cast<double>(B * static_cast<std::uint64_t>(P)) / batch_time
                : 0.0;
        controller.update(batch_rate);
      }
      prev_agreed = agreed;
    }

    // Final batch's records are still in flight; every rank ran the same
    // number of rounds, so the drain matches pending sends exactly.
    if (pending) drain(*pending);

    // --- Gather: owned trees to rank 0 (binary frames, no stream staging),
    // emission totals via allreduce.
    ChannelCounts total_emitted{};
    for (int c = 0; c < kNumChannels; ++c) {
      total_emitted[static_cast<std::size_t>(c)] =
          comm.allreduce_sum_u64(emitted[static_cast<std::size_t>(c)]);
    }

    if (rank != 0) {
      comm.send(0, forest.pack_owned_trees(balance.owner, rank), kTagGather);
    } else {
      for (int src = 1; src < P; ++src) {
        forest.replace_framed_trees(comm.recv(src, kTagGather));
      }
      for (int c = 0; c < kNumChannels; ++c) {
        forest.add_emitted(c, total_emitted[static_cast<std::size_t>(c)]);
        if (resume) forest.add_emitted(c, resume->forest.emitted(c));
      }
    }

    report.sent_bytes = comm.bytes_sent();
    report.sent_messages = comm.messages_sent();
    // Record-exchange waits only: the overlap metric. Gather waits live on
    // their own tag and load skew lives in the allreduce barriers.
    report.wait_seconds = comm.wait_seconds(kTagRecords);

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.ranks[static_cast<std::size_t>(rank)] = std::move(report);
      if (rank == 0) {
        result.forest = std::move(forest);
        result.balance = balance;
        result.trace = sampler.finish(global_done);
      }
    }
  });

  for (const RankReport& report : result.ranks) result.counters += report.counters;
  if (resume) result.counters += resume->counters;
  return result;
}

}  // namespace photon
