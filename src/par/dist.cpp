#include "par/dist.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "engine/governor.hpp"
#include "engine/sink.hpp"
#include "engine/wire.hpp"
#include "mp/minimpi.hpp"
#include "par/gather.hpp"
#include "sim/emitter.hpp"

namespace photon {

namespace {

// Message channels: batched records ride tag 0 (overlapped exchange); the
// end-of-run tree gather uses its own tag so its recv waits do not pollute
// the record-path overlap telemetry.
constexpr int kTagRecords = 0;
constexpr int kTagGather = 1;

}  // namespace

RunResult run_distributed(const Scene& scene, const RunConfig& config,
                          const RunResult* resume) {
  const int nranks = std::max(config.workers, 1);
  const std::uint64_t resume_emitted = resume ? resume->counters.emitted : 0;
  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::mutex result_mutex;  // harness-side collection only

  // --- Load balancing phase (chapter 5): every rank derives the identical
  // ownership map from the same probe stream, so the map is a pure function
  // of (scene, config). On MPI the P copies of this trace run concurrently on
  // P processors and cost one probe of wall time; on the threaded substrate
  // they would serialize into P redundant copies, so it is computed once and
  // shared — same setup-phase treatment as partition_space in par/spatial.
  const std::vector<std::uint64_t> loads =
      measure_patch_loads(scene, config.lb_photons, config.seed ^ 0x9E3779B97F4A7C15ULL);
  const LoadBalance balance =
      config.bestfit ? assign_bestfit(loads, nranks) : assign_naive(loads, nranks);

  // Fault plan and deadline/heartbeat policy ride in from the config; the
  // defaults are a no-fault, block-forever world (mp/fault.hpp).
  WorldOptions world_options;
  world_options.plan = config.fault_plan.get();
  world_options.policy = config.comm;

  run_world(nranks, world_options, [&](Comm& comm) {
    const int rank = comm.rank();
    const int P = comm.size();
    SpeedSampler sampler(rank == 0 ? config.trace_path : std::string(), resume_emitted);

    BinForest forest(scene.patch_count(), config.policy);
    const Emitter emitter(scene);
    forest.set_total_power(emitter.total_power());
    const Tracer tracer(scene, config.limits);
    Lcg48 rng(config.seed, rank, P);
    if (resume) {
      // Fold the checkpoint's owned trees into this rank's virgin partition
      // (lossless — virgin trees adopt wholesale), then restore the stream.
      // A checkpoint taken at the same rank count carries each rank's exact
      // generator state, so every stream continues in place — with a fixed
      // batch size and a first leg that ended on a batch boundary, the
      // continuation is bitwise identical to an uninterrupted run. A
      // checkpoint from another shape (or another backend) has no state for
      // this stream: continue on a disjoint block of the global sequence,
      // past anything the first leg can have drawn (same 4096-element budget
      // as the per-photon streams) — statistically independent.
      forest.merge_owned_trees(resume->forest, balance.owner, rank);
      if (resume->ranks.size() == static_cast<std::size_t>(P) &&
          resume->ranks[static_cast<std::size_t>(rank)].rng_mul != 0) {
        const RankReport& prev = resume->ranks[static_cast<std::size_t>(rank)];
        rng.set_raw(prev.rng_state, prev.rng_mul, prev.rng_add);
      } else {
        rng.skip(resume_emitted * kPhotonStreamBlock);
      }
    }

    RankReport report;
    // One outgoing WireBuffer suffices for the overlap: take() surrenders
    // batch k's bytes to the exchange and leaves the buffer refillable, so
    // the sink serializes batch k+1 while batch k drains.
    WireBuffer wire(P);
    // Owned records are held per batch and applied with the batch's incoming
    // records in canonical source-rank order: per-tree record order is then
    // a pure function of the batch schedule (not of the pipeline phase),
    // which is what makes the checkpoint continuation above reproducible.
    OrderedRouterSink sink(forest, balance.owner, rank, wire, report.processed);
    ChannelCounts emitted{};

    BatchController controller(config.batch_policy);
    std::uint64_t global_done = 0;
    double prev_agreed = 0.0;
    std::vector<BounceRecord> held_prev;     // batch k-1's owned records
    std::optional<PendingExchange> pending;  // batch k-1's records in flight
    RunStatus local_status = RunStatus::kComplete;

    // Batch indices label the whole run, not one leg: a resumed leg continues
    // the numbering (approximately, under --adapt) so a scripted fault can
    // name a mid-run batch regardless of checkpoint legs.
    std::uint64_t batch_index =
        resume_emitted /
        (std::max<std::uint64_t>(config.batch, 1) * static_cast<std::uint64_t>(P));
    while (global_done < config.photons) {
      // Liveness tick (the heartbeat the failure detector reads) and the
      // scripted before-batch kill point.
      comm.batch_tick(batch_index);
      std::uint64_t B = config.adapt_batch ? controller.size() : config.batch;
      // Do not overshoot the global budget; every rank computes the same cap.
      const std::uint64_t remaining = config.photons - global_done;
      const std::uint64_t cap = (remaining + static_cast<std::uint64_t>(P) - 1) /
                                static_cast<std::uint64_t>(P);
      if (B > cap) B = cap;

      // Particle tracing phase. Records owned here are held for the batch
      // apply; foreign records are serialized straight into the outgoing
      // bytes. Tracing never reads the forest, so deferring the owned
      // tallies cannot change any path.
      for (std::uint64_t i = 0; i < B; ++i) {
        const EmissionSample emission = emitter.emit(rng);
        ++emitted[static_cast<std::size_t>(emission.channel)];
        tracer.trace(emission, rng, sink, &report.counters);
      }
      report.traced += B;
      report.batch_sizes.push_back(B);

      // Overlapped all-to-all: the previous batch's records crossed the wire
      // while this batch was tracing — apply that batch now (own slice plus
      // incoming, in source-rank order), then post this batch.
      if (pending) sink.apply_batch(held_prev, pending->finish());
      held_prev = sink.take_held();
      pending.emplace(comm.alltoall_start(wire.take(), kTagRecords));
      // Mid-exchange kill point: this batch's sends are on the wire but the
      // matching finish has not run — the pipeline state recovery must
      // handle by re-tracing the open leg.
      comm.fault_point(FaultPoint::kMidExchange, batch_index);
      ++report.rounds;

      global_done += B * static_cast<std::uint64_t>(P);

      // Agree on elapsed time so every rank derives the same rate and hence
      // the same next batch size. The controller is fed the *per-batch* rate
      // (what Photon measures after each batch); the trace keeps the
      // cumulative rate.
      const double agreed = comm.allreduce_max(sampler.elapsed());
      if (rank == 0) sampler.sample_at(agreed, global_done);
      if (config.adapt_batch) {
        const double batch_time = agreed - prev_agreed;
        const double batch_rate =
            batch_time > 0.0
                ? static_cast<double>(B * static_cast<std::uint64_t>(P)) / batch_time
                : 0.0;
        controller.update(batch_rate);
      }
      prev_agreed = agreed;
      comm.fault_point(FaultPoint::kAfterBatch, batch_index);
      progress_tick(config, "dist-particle", batch_index);
      ++batch_index;

      // Governed stop agreement: one unconditional allreduce of the packed
      // stop word per batch — every rank derives the same decision from the
      // same sum and breaks after the same round, so the in-flight exchange
      // drains through the ordinary end-of-loop path below. Unconditional
      // because MiniMPI collectives pair anonymously across ranks.
      if (config.governed) {
        const std::uint64_t sum = comm.allreduce_sum_u64(
            encode_stop_word(preempt_requested(config), forest.memory_bytes()));
        if (stop_word_preempted(sum)) {
          acknowledge_preempt(config);  // idempotent across ranks
          local_status = RunStatus::kPreempted;
          break;
        }
        if (stop_word_over_budget(sum, config.memory_budget)) {
          local_status = RunStatus::kOverBudget;
          break;
        }
      }
    }
    // One more liveness tick so the gather below is not instantly stale to
    // a peer's failure detector.
    comm.heartbeat(batch_index + 1);

    // Final batch's records are still in flight; every rank ran the same
    // number of rounds, so the drain matches pending sends exactly.
    if (pending) sink.apply_batch(held_prev, pending->finish());

    // Gather: owned trees to rank 0 as binary frames, emission totals via
    // allreduce (par/gather.hpp — shared with hybrid and dist-spatial).
    gather_partitioned_forest(comm, forest, balance.owner, emitted,
                              resume ? &resume->forest : nullptr, kTagGather);

    report.sent_bytes = comm.bytes_sent();
    report.sent_messages = comm.messages_sent();
    report.deadline_retries = comm.deadline_retries();
    // Record-exchange waits only: the overlap metric. Gather waits live on
    // their own tag and load skew lives in the allreduce barriers.
    report.wait_seconds = comm.wait_seconds(kTagRecords);
    // Exact end-of-run stream state — what a checkpoint needs for the
    // bitwise continuation above.
    report.rng_state = rng.state();
    report.rng_mul = rng.stride_mul();
    report.rng_add = rng.stride_add();

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.ranks[static_cast<std::size_t>(rank)] = std::move(report);
      if (rank == 0) {
        result.forest = std::move(forest);
        result.balance = balance;
        result.trace = sampler.finish(global_done);
        result.status = local_status;  // identical on every rank (same sum)
      }
    }
  });

  for (const RankReport& report : result.ranks) result.counters += report.counters;
  if (resume) result.counters += resume->counters;
  return result;
}

}  // namespace photon
