// Hybrid decomposition — the engine's `hybrid` backend: message passing
// between groups, shared memory within them.
//
// The paper's target machine is a cluster of multiprocessor nodes: MPI
// between boxes, threads inside each box. This backend composes the existing
// decompositions the same way — `config.groups` MiniMPI ranks ("boxes"),
// each running `config.workers` shared-memory threads — on top of the
// dist-particle substrate: geometry replicated, bin forest partitioned
// across groups by the probe-driven load balancer, foreign records routed
// through RouterSink/WireBuffer into the split-phase all-to-all, trees
// gathered to rank 0 as binary frames.
//
// Determinism contract (the reason this backend exists beyond throughput):
// the populated forest is bitwise identical for EVERY (groups × threads)
// shape, chunk size, and steal interleaving, and equal to the serial
// photon-stream reference (RunConfig::photon_streams). Three mechanisms
// compose to guarantee it:
//
//   1. Per-photon RNG streams (core/rng.hpp photon_stream): photon i's path
//      is a pure function of (scene, seed, i), whoever traces it.
//   2. Contiguous id slices, chunked scheduling: each batch window of ids is
//      split contiguously across groups; each group cuts its slice into a
//      `config.chunk`-photon chunk grid that its persistent WorkerPool
//      (engine/pool.hpp, one pool per group, spawned once per run) schedules
//      dynamically — idle workers claim and steal chunks. Chunk-private
//      record buffers are drained in ascending chunk order, so a group emits
//      its window's records in ascending photon-id order regardless of which
//      worker traced which chunk when.
//   3. Canonical batch application (OrderedRouterSink::apply_batch): a
//      window's records apply to the owner trees in source-group order —
//      which, with contiguous slices, IS global photon-id order. Tracing
//      never reads the forest, so the one-batch-deep exchange overlap
//      cannot perturb any path.
//
// Resume folds a checkpoint into the partitioned trees (BinForest::merge)
// and continues the photon-id sequence — a bitwise continuation of an
// uninterrupted run whenever the first leg ended on a batch-window boundary
// (photons % batch == 0), and an exact id-sequence continuation otherwise.
//
// `config.adapt_batch` is deliberately ignored: adaptive windows are sized
// from wall-clock rates, which would make the batch schedule — and with it
// the forest's split timing — irreproducible. Hybrid always uses fixed
// `config.batch`-photon global windows.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// Runs the hybrid simulation on `config.groups` MiniMPI ranks, each tracing
// its id slices with `config.workers` threads. `config.batch` is the GLOBAL
// ids-per-window size (not per rank), so the batch schedule — and hence the
// bitwise result — is independent of the shape.
RunResult run_hybrid(const Scene& scene, const RunConfig& config,
                     const RunResult* resume = nullptr);

}  // namespace photon
