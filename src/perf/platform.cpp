#include "perf/platform.hpp"

namespace photon {

Platform Platform::power_onyx() {
  Platform p;
  p.name = "SGI Power Onyx";
  p.cpu_scale = 0.012;
  p.lock_s = 2.0e-6;
  p.mem_contention = 0.035;
  p.startup_s = 0.05;
  p.max_procs = 8;
  return p;
}

Platform Platform::indy_cluster() {
  Platform p;
  p.name = "SGI Indy Cluster";
  p.cpu_scale = 0.006;  // slower workstations than the Onyx
  p.latency_s = 1.2e-3;  // 10 Mb/s Ethernet + TCP stack
  p.bandwidth_Bps = 1.0e6;
  p.copy_overhead_s_per_B = 0.0;
  p.congestion_bytes = 48e3;  // shared-medium collisions bite past ~48 KB/batch
  p.overlap_when_pairwise = false;
  p.startup_s = 1.5;  // process launch + geometry distribution over Ethernet
  p.max_procs = 8;
  return p;
}

Platform Platform::sp2() {
  Platform p;
  p.name = "IBM SP-2";
  p.cpu_scale = 0.016;
  p.latency_s = 6.0e-5;  // high-performance switch
  p.bandwidth_Bps = 3.5e7;
  // Asynchronous messages must be buffered: an extra memory copy plus buffer
  // management on every byte once more than one message per batch is in
  // flight (chapter 5, "Results" / IBM SP-2). Calibrated to reproduce the
  // magnitude of the 2 -> 4 processor performance shift in Figs 5.12-5.14.
  p.copy_overhead_s_per_B = 4.0e-6;
  p.congestion_bytes = 256e3;  // finite message buffers: oversized batches stall
  p.overlap_when_pairwise = true;
  p.startup_s = 0.8;
  p.max_procs = 64;
  return p;
}

Platform Platform::calibration_host() {
  Platform p;
  p.name = "calibration host";
  p.cpu_scale = 1.0;
  p.latency_s = 5.0e-6;
  p.bandwidth_Bps = 2.0e9;
  p.startup_s = 0.01;
  p.max_procs = 64;
  return p;
}

}  // namespace photon
