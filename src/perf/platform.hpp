// Machine models for the paper's three testbeds (see DESIGN.md,
// "Substitutions"). The 1997 hardware is simulated: each platform is a small
// set of parameters — CPU throughput relative to the calibration host,
// message latency/bandwidth, the SP-2's buffered-copy overhead, and
// shared-memory contention coefficients. The discrete-event model in
// model.hpp replays the real algorithm's batch/exchange schedule against
// these parameters to regenerate the speedup figures.
#pragma once

#include <string>

namespace photon {

struct Platform {
  std::string name;

  // Throughput of one processor relative to the calibration host (the box
  // that measured WorkloadProfile::serial_rate). ~0.01 puts a mid-90s CPU at
  // a few thousand photons/sec on the paper's scenes, matching the figures'
  // absolute scale.
  double cpu_scale = 1.0;

  // Point-to-point message cost: latency (s) + bytes / bandwidth (B/s).
  double latency_s = 0.0;
  double bandwidth_Bps = 1e9;

  // Extra per-byte cost of buffered asynchronous messaging (the SP-2's extra
  // memory copy + buffer management, chapter 5). Zero on the Indy cluster.
  double copy_overhead_s_per_B = 0.0;

  // Shared-medium congestion: the effective bandwidth of a batch exchange
  // degrades as bw / (1 + bytes / congestion_bytes). Models 10 Mb/s Ethernet
  // collisions growing with message size; effectively infinite on switched
  // fabrics.
  double congestion_bytes = 1e18;

  // When true, communication overlaps with computation in 2-rank
  // configurations (each rank sends a single message per batch, which the
  // SP-2 hides); the overlap disappears beyond 2 ranks.
  bool overlap_when_pairwise = false;

  // Shared-memory model: per-tally lock cost (s) and the per-extra-processor
  // memory-contention coefficient.
  double lock_s = 0.0;
  double mem_contention = 0.0;

  // One-time parallel startup (data distribution etc.); pushes the first
  // trace point to the right on loosely coupled machines.
  double startup_s = 0.0;

  int max_procs = 8;

  // 8-processor SGI Power Onyx: shared memory, no messages.
  static Platform power_onyx();
  // Cluster of SGI Indy workstations on 10 Mb/s Ethernet: slow CPUs, high
  // latency, no asynchronous buffering overhead.
  static Platform indy_cluster();
  // IBM SP-2, 64 nodes: fast switch, but asynchronous messaging is buffered
  // (extra copy) — the source of the paper's 2 -> 4 processor dip.
  static Platform sp2();
  // The machine this reproduction runs on, for end-to-end sanity checks.
  static Platform calibration_host();
};

}  // namespace photon
