#include "perf/model.hpp"

#include <algorithm>
#include <cmath>

#include "par/loadbalance.hpp"

namespace photon {

namespace {

// Extra per-photon work early in a run while the histogram is still being
// carved up (bins split frequently, then settle — Fig 5.4's initial buildup).
double split_ramp(double photons_done, double tau) {
  if (tau <= 0.0) return 1.0;
  return 1.0 + 0.6 * tau / (photons_done + tau);
}

double herfindahl(const std::vector<std::uint64_t>& loads) {
  std::uint64_t total = 0;
  for (const std::uint64_t l : loads) total += l;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::uint64_t l : loads) {
    const double share = static_cast<double>(l) / static_cast<double>(total);
    h += share * share;
  }
  return h;
}

}  // namespace

WorkloadProfile profile_scene(const Scene& scene, std::uint64_t probe_photons,
                              std::uint64_t seed) {
  WorkloadProfile p;
  p.scene_name = scene.name();
  p.defining_polygons = scene.patch_count();

  RunConfig cfg;
  cfg.photons = probe_photons;
  cfg.batch = std::max<std::uint64_t>(1, probe_photons / 16);
  cfg.seed = seed;
  const RunResult run = run_serial(scene, cfg);

  p.serial_rate = run.trace.final_rate();
  // Records per photon = emission record + reflections.
  p.bounces_per_photon = 1.0 + run.counters.bounces_per_photon();
  p.patch_loads = measure_patch_loads(scene, std::max<std::uint64_t>(probe_photons / 4, 500), seed);
  p.concentration = herfindahl(p.patch_loads);
  // Splitting settles once most leaves hold ~min_count photons; use the probe
  // run's node count as a proxy for the carve-up size.
  p.tau_photons = static_cast<double>(run.forest.total_nodes()) *
                  static_cast<double>(cfg.policy.min_count) * 0.5;
  return p;
}

double model_serial_rate(const WorkloadProfile& profile, const Platform& platform) {
  return profile.serial_rate * platform.cpu_scale;
}

std::vector<SpeedPoint> model_shared(const WorkloadProfile& profile, const Platform& platform,
                                     int nprocs, double duration_s) {
  std::vector<SpeedPoint> out;
  const double serial_rate = model_serial_rate(profile, platform);
  const double cost = 1.0 / serial_rate;  // s per photon, one processor, no overhead

  // Lock conflicts: two processors tallying into the same tree serialize.
  // The probability a record collides scales with the Herfindahl
  // concentration of the tally distribution and with the number of peers.
  const double lock_cost_per_photon = profile.bounces_per_photon * platform.lock_s *
                                      platform.cpu_scale / 0.012;  // locks scale with CPU era
  const double contention =
      static_cast<double>(nprocs - 1) *
      (platform.mem_contention + 12.0 * profile.concentration * lock_cost_per_photon / cost);

  double t = platform.startup_s * (nprocs > 1 ? 1.0 : 0.0);
  double photons = 0.0;
  const double step_photons = serial_rate * static_cast<double>(nprocs) * 0.25;
  while (t < duration_s) {
    const double eff_cost =
        cost * split_ramp(photons, profile.tau_photons) * (1.0 + contention) /
        static_cast<double>(nprocs);
    t += step_photons * eff_cost;
    photons += step_photons;
    out.push_back({t, static_cast<std::uint64_t>(photons), photons / t});
  }
  return out;
}

std::vector<SpeedPoint> model_distributed(const WorkloadProfile& profile,
                                          const Platform& platform, int nprocs,
                                          double duration_s,
                                          std::vector<std::uint64_t>* batch_sizes,
                                          bool bestfit) {
  std::vector<SpeedPoint> out;
  const double serial_rate = model_serial_rate(profile, platform);
  const double cost = 1.0 / serial_rate;

  if (nprocs == 1) {
    // The serial program: no batching, no exchange.
    double t = 0.0, photons = 0.0;
    const double step = serial_rate * 0.25;
    while (t < duration_s) {
      t += step * cost * split_ramp(photons, profile.tau_photons);
      photons += step;
      out.push_back({t, static_cast<std::uint64_t>(photons), photons / t});
    }
    return out;
  }

  // Ownership from the real load balancer determines tally imbalance.
  const LoadBalance lb = bestfit ? assign_bestfit(profile.patch_loads, nprocs)
                                 : assign_naive(profile.patch_loads, nprocs);
  const double imbal = imbalance(lb);  // max rank load / mean rank load

  // Fraction of records a rank must forward: everything owned by others.
  const double forward_fraction = 1.0 - 1.0 / static_cast<double>(nprocs);

  // Tallying a received record costs a small fraction of tracing a photon.
  const double tally_cost = 0.12 * cost / std::max(1.0, profile.bounces_per_photon);

  BatchController controller;
  double t = platform.startup_s;  // data distribution + process launch
  // Load balancing phase: every rank traces k probe photons redundantly.
  const double k = 2000.0;
  t += k * cost * split_ramp(0, profile.tau_photons);

  double photons = 0.0;
  while (t < duration_s) {
    const double B = static_cast<double>(controller.size());
    const double records = B * profile.bounces_per_photon;

    // Particle tracing phase: every rank traces B photons.
    const double trace_time = B * cost * split_ramp(photons, profile.tau_photons);
    // Tally phase: records distributed by ownership; the most loaded rank
    // gates the batch.
    const double tally_time =
        records * static_cast<double>(nprocs) * tally_cost * imbal / static_cast<double>(nprocs);

    // Exchange: P-1 messages per rank, forwarded records spread across them.
    // On a shared medium (Indy Ethernet) the effective bandwidth degrades
    // with the batch's byte volume, which is what eventually punishes large
    // batches and makes the controller oscillate (Table 5.3).
    const double fwd_bytes = records * forward_fraction * profile.record_bytes;
    const double eff_bw =
        platform.bandwidth_Bps /
        (1.0 + fwd_bytes * static_cast<double>(nprocs) / platform.congestion_bytes);
    double comm_time = platform.latency_s * static_cast<double>(nprocs - 1) +
                       fwd_bytes / eff_bw;
    // Buffered asynchronous messaging (SP-2): extra copy on every byte —
    // hidden when each rank exchanges a single message per batch (P == 2),
    // exposed beyond that.
    if (platform.copy_overhead_s_per_B > 0.0) {
      const double copy_time = fwd_bytes * platform.copy_overhead_s_per_B;
      if (nprocs == 2 && platform.overlap_when_pairwise) {
        comm_time = std::max(comm_time + copy_time - trace_time, 0.0) + 0.1 * copy_time;
      } else {
        comm_time += copy_time;
      }
    }

    const double batch_time = trace_time + tally_time + comm_time;
    t += batch_time;
    photons += B * static_cast<double>(nprocs);
    const double rate = photons / t;
    out.push_back({t, static_cast<std::uint64_t>(photons), rate});
    // The controller sees the *per-batch* rate — the quantity Photon measures
    // after each batch — so it can detect when growth starts to hurt.
    controller.update(B * static_cast<double>(nprocs) / batch_time);
  }
  if (batch_sizes) *batch_sizes = controller.history();
  return out;
}

}  // namespace photon
