// Speedup metrics (chapter 5, "Performance").
//
// The paper is careful about what "speedup" means: "One can consider a
// time-based measure of speed by measuring how long it takes to complete a
// fixed task. We will term this fixed-size speedup. Another approach is to
// consider a work based approach, i.e. how much work can be done in a given
// amount of time. We will term this fixed-time speedup... Examination of a
// program at different execution durations can, and often does, yield
// different speedup results," which is why the figures plot full speed-vs-
// time traces. These helpers extract both metrics from such traces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace photon {

// Rate (photons/sec) reported by the last trace point at or before `t`;
// 0 before the first point (the run had produced no measurement yet).
double rate_at_time(const std::vector<SpeedPoint>& trace, double t);

// Photons completed by time `t` (same convention).
std::uint64_t photons_at_time(const std::vector<SpeedPoint>& trace, double t);

// Wall time of the first trace point reaching `photons`; +inf if the trace
// never gets there.
double time_to_photons(const std::vector<SpeedPoint>& trace, std::uint64_t photons);

// Fixed-time speedup: work completed by the parallel run in `t` seconds over
// work completed by the serial run in the same time.
double fixed_time_speedup(const std::vector<SpeedPoint>& parallel,
                          const std::vector<SpeedPoint>& serial, double t);

// Fixed-size speedup: serial time over parallel time to complete `photons`.
// 0 when either trace never completes the task.
double fixed_size_speedup(const std::vector<SpeedPoint>& parallel,
                          const std::vector<SpeedPoint>& serial, std::uint64_t photons);

}  // namespace photon
