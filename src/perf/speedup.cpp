#include "perf/speedup.hpp"

#include <limits>

namespace photon {

double rate_at_time(const std::vector<SpeedPoint>& trace, double t) {
  double rate = 0.0;
  for (const SpeedPoint& p : trace) {
    if (p.time_s > t) break;
    rate = p.rate;
  }
  return rate;
}

std::uint64_t photons_at_time(const std::vector<SpeedPoint>& trace, double t) {
  std::uint64_t photons = 0;
  for (const SpeedPoint& p : trace) {
    if (p.time_s > t) break;
    photons = p.photons;
  }
  return photons;
}

double time_to_photons(const std::vector<SpeedPoint>& trace, std::uint64_t photons) {
  for (const SpeedPoint& p : trace) {
    if (p.photons >= photons) return p.time_s;
  }
  return std::numeric_limits<double>::infinity();
}

double fixed_time_speedup(const std::vector<SpeedPoint>& parallel,
                          const std::vector<SpeedPoint>& serial, double t) {
  const std::uint64_t serial_work = photons_at_time(serial, t);
  if (serial_work == 0) return 0.0;
  return static_cast<double>(photons_at_time(parallel, t)) /
         static_cast<double>(serial_work);
}

double fixed_size_speedup(const std::vector<SpeedPoint>& parallel,
                          const std::vector<SpeedPoint>& serial, std::uint64_t photons) {
  const double tp = time_to_photons(parallel, photons);
  const double ts = time_to_photons(serial, photons);
  if (!(tp > 0.0) || tp == std::numeric_limits<double>::infinity() ||
      ts == std::numeric_limits<double>::infinity()) {
    return 0.0;
  }
  return ts / tp;
}

}  // namespace photon
