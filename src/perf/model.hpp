// Discrete-event performance model.
//
// The speedup figures of chapter 5 were measured on machines that no longer
// exist; this model regenerates them by replaying the *reproduced
// algorithm's* schedule — the same batch-size controller, the same per-rank
// ownership produced by the real load balancer, the same per-photon record
// volume measured from the real simulator — against a Platform's cost
// parameters. Nothing here fits curves to the paper: the shapes (saturation
// of small scenes, scaling of large ones, the SP-2 2->4 dip, startup shifting
// loosely coupled traces right) all emerge from the modeled mechanism.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/scene.hpp"
#include "engine/batch.hpp"
#include "perf/platform.hpp"
#include "sim/simulator.hpp"

namespace photon {

// Workload characterization extracted from a real (serial) simulation.
struct WorkloadProfile {
  std::string scene_name;
  std::size_t defining_polygons = 0;
  double serial_rate = 0.0;         // photons/s of the real simulator on this host
  double bounces_per_photon = 0.0;  // records generated per emitted photon
  double record_bytes = 24.0;       // wire size of one forwarded record
  std::vector<std::uint64_t> patch_loads;  // per-patch record counts (probe run)
  double concentration = 0.0;       // Herfindahl index of patch_loads (0..1)
  double tau_photons = 0.0;         // photons until bin splitting settles
};

// Runs a short real simulation to measure rate, path length, per-patch load
// distribution and split ramp.
WorkloadProfile profile_scene(const Scene& scene, std::uint64_t probe_photons,
                              std::uint64_t seed);

// Modeled speed-vs-time trace for the shared-memory algorithm (Fig 5.2) on
// `nprocs` processors of `platform`, for `duration_s` of modeled wall time.
std::vector<SpeedPoint> model_shared(const WorkloadProfile& profile, const Platform& platform,
                                     int nprocs, double duration_s);

// Modeled trace for the distributed algorithm (Fig 5.3), including the load
// balancing phase, adaptive batch growth, all-to-all exchange cost and the
// platform's buffering behaviour. Also returns (via out-param when non-null)
// the batch-size sequence the controller produced (Table 5.3).
std::vector<SpeedPoint> model_distributed(const WorkloadProfile& profile,
                                          const Platform& platform, int nprocs,
                                          double duration_s,
                                          std::vector<std::uint64_t>* batch_sizes = nullptr,
                                          bool bestfit = true);

// Rate of the best *serial* version on `platform` (the paper's speedup
// denominator): no locks, no batching, no communication.
double model_serial_rate(const WorkloadProfile& profile, const Platform& platform);

}  // namespace photon
