// The 4-dimensional histogram bin (chapter 4, "Four-Dimensional Histograms").
//
// Radiance is a function of position and exitant direction; a bin is a box in
//   (s, t)      bilinear position on the patch, each in [0, 1];
//   u = r^2     squared radial distance of the direction projected into the
//               patch's tangent disk (u = sin^2 of the polar angle), in [0,1];
//   theta       azimuth of the projected direction, in [0, 2 pi).
//
// The coordinates are chosen so a Lambertian (cosine) flux distribution is
// *uniform* in this 4-volume: splitting any axis at its midpoint halves the
// expected count. That is exactly why the paper bins the squared projected
// radius instead of the spherical elevation angle. Color is a fifth dimension
// that is tallied per channel but never subdivided.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "core/vec3.hpp"

namespace photon {

inline constexpr int kBinDims = 4;
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

enum class BinAxis : std::int8_t { kS = 0, kT = 1, kU = 2, kTheta = 3 };

struct BinCoords {
  float s = 0.0f;
  float t = 0.0f;
  float u = 0.0f;      // r^2
  float theta = 0.0f;  // [0, 2 pi)

  float operator[](int axis) const {
    return axis == 0 ? s : (axis == 1 ? t : (axis == 2 ? u : theta));
  }

  // Builds coordinates from a hit position (s, t) and the outgoing direction
  // in the local tangent frame (z > 0 on the reflecting side).
  static BinCoords from_local_dir(double s, double t, const Vec3& dir_local) {
    BinCoords c;
    c.s = static_cast<float>(s);
    c.t = static_cast<float>(t);
    const double u = dir_local.x * dir_local.x + dir_local.y * dir_local.y;
    c.u = static_cast<float>(u < 1.0 ? u : 1.0);
    double th = std::atan2(dir_local.y, dir_local.x);
    if (th < 0.0) th += kTwoPi;
    c.theta = static_cast<float>(th);
    // Theta is periodic on the half-open [0, 2pi). A tiny negative atan2
    // result makes th + 2pi round to exactly float(2pi), which would land on
    // (or, after region midpoint arithmetic, beyond) the closed upper edge of
    // the root bin region; wrap it back to the equivalent 0.
    if (c.theta >= static_cast<float>(kTwoPi)) c.theta = 0.0f;
    return c;
  }
};

struct BinRegion {
  std::array<float, kBinDims> lo{};
  std::array<float, kBinDims> hi{};

  static BinRegion full() {
    BinRegion r;
    r.lo = {0.0f, 0.0f, 0.0f, 0.0f};
    r.hi = {1.0f, 1.0f, 1.0f, static_cast<float>(kTwoPi)};
    return r;
  }

  float mid(int axis) const { return 0.5f * (lo[static_cast<std::size_t>(axis)] + hi[static_cast<std::size_t>(axis)]); }
  float extent(int axis) const { return hi[static_cast<std::size_t>(axis)] - lo[static_cast<std::size_t>(axis)]; }

  bool contains(const BinCoords& c) const {
    for (int a = 0; a < kBinDims; ++a) {
      const auto ai = static_cast<std::size_t>(a);
      if (c[a] < lo[ai] || c[a] > hi[ai]) return false;
    }
    return true;
  }

  // 0 when the coordinate falls in the lower half along `axis`, 1 otherwise.
  int half_of(int axis, float x) const { return x < mid(axis) ? 0 : 1; }

  BinRegion child(int axis, int half) const {
    BinRegion r = *this;
    const auto ai = static_cast<std::size_t>(axis);
    if (half == 0) {
      r.hi[ai] = mid(axis);
    } else {
      r.lo[ai] = mid(axis);
    }
    return r;
  }

  // 4-volume of the region. Under the cosine-weighted direction measure the
  // expected Lambertian photon count of a bin is proportional to this.
  double measure() const {
    double m = 1.0;
    for (int a = 0; a < kBinDims; ++a) m *= static_cast<double>(extent(a));
    return m;
  }
};

// One node of a bin tree. Leaves carry tallies; interior nodes remember the
// split axis. `split_n`/`split_left` implement the paper's "speculative
// binning": counts since the node's creation, per candidate axis, that would
// have fallen in the lower daughter.
struct BinNode {
  BinRegion region;
  std::array<std::uint32_t, 3> tally{};       // lifetime count per color channel
  std::uint32_t split_n = 0;                  // photons since creation (all channels)
  std::array<std::uint32_t, kBinDims> split_left{};
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int8_t axis = -1;
  std::uint8_t depth = 0;

  bool is_leaf() const { return left < 0; }
  std::uint64_t total_tally() const {
    return std::uint64_t{tally[0]} + tally[1] + tally[2];
  }
};

}  // namespace photon
