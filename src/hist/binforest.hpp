// The bin forest: one adaptive 4-D histogram per patch *side* plus the
// normalization totals needed to turn tallies into radiance. This is the
// "answer file" of chapter 4 — once saved, any viewpoint can be rendered
// from it without re-simulation (Fig 4.10).
//
// Photon records radiance per geometric side (front = the side the patch
// normal points at), so two-sided surfaces such as the floating mirror keep
// the two hemispheres of exitant light separate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/spectrum.hpp"
#include "hist/bintree.hpp"

namespace photon {

class BinForest {
 public:
  BinForest() = default;
  explicit BinForest(std::size_t n_patches, SplitPolicy policy = {});

  std::size_t patch_count() const { return trees_.size() / 2; }
  std::size_t tree_count() const { return trees_.size(); }

  static int tree_index(int patch, bool front) { return 2 * patch + (front ? 0 : 1); }

  BinTree& tree(int patch, bool front) { return trees_[static_cast<std::size_t>(tree_index(patch, front))]; }
  const BinTree& tree(int patch, bool front) const {
    return trees_[static_cast<std::size_t>(tree_index(patch, front))];
  }
  BinTree& tree_at(int idx) { return trees_[static_cast<std::size_t>(idx)]; }
  const BinTree& tree_at(int idx) const { return trees_[static_cast<std::size_t>(idx)]; }

  // Records one reflected (or emitted) photon.
  void record(int patch, bool front, const BinCoords& c, int channel) {
    tree(patch, front).record(c, channel);
  }

  // Emission bookkeeping: total photons launched per channel and the total
  // luminaire flux they carry. Both are required by the radiance estimator.
  void add_emitted(int channel, std::uint64_t n = 1) {
    emitted_[static_cast<std::size_t>(channel)] += n;
  }
  std::uint64_t emitted(int channel) const { return emitted_[static_cast<std::size_t>(channel)]; }
  std::uint64_t emitted_total() const { return emitted_[0] + emitted_[1] + emitted_[2]; }
  void set_total_power(const Rgb& power) { total_power_ = power; }
  const Rgb& total_power() const { return total_power_; }

  // Exitant radiance estimate at (patch, side, coords) for one channel, given
  // `patch_area` (the estimator is geometry-independent otherwise).
  double radiance(int patch, bool front, const BinCoords& c, int channel,
                  double patch_area) const;

  // Aggregates for the memory experiment (Fig 5.4) and Table 5.1.
  std::uint64_t memory_bytes() const;
  std::uint64_t total_nodes() const;
  std::uint64_t total_leaves() const;
  std::uint64_t total_tally(int channel) const;
  std::uint64_t total_tally_all() const;
  // Per-patch tallies summed over both sides and all channels — the load
  // measure used by the bin-packing balancer.
  std::vector<std::uint64_t> patch_tallies() const;

  // Answer-file (de)serialization.
  void save(std::ostream& out) const;
  bool save(const std::string& path) const;
  static BinForest load(std::istream& in);
  static bool load(const std::string& path, BinForest& forest);

  // Replaces tree `idx` (used when gathering distributed results).
  void replace_tree(int idx, BinTree&& tree) { trees_[static_cast<std::size_t>(idx)] = std::move(tree); }

  // Binary tree transport for the distributed gather: appends one framed tree
  // ([int32 idx][BinTree bytes]) to `out`, and replaces every framed tree
  // found in `buf`. Frames with an out-of-range index are rejected
  // (std::runtime_error), as are truncated buffers.
  void append_framed_tree(Bytes& out, int idx) const;
  void replace_framed_trees(const Bytes& buf);

  // Both sides (2p, 2p+1) of every patch p with owner[p] == rank — the
  // distributed backends' per-rank tree selection, shared so the
  // patch-to-tree convention lives in one place.
  //
  // Frames this rank's owned trees for the gather to rank 0:
  Bytes pack_owned_trees(const std::vector<int>& owner, int rank) const;
  // Folds `other`'s owned trees into this forest's (tally-conserving
  // BinTree::merge; a virgin tree adopts the source wholesale) — the
  // checkpoint-resume fold into a fresh partition:
  void merge_owned_trees(const BinForest& other, const std::vector<int>& owner, int rank);

  // Whole-forest additive fold: every tree is merged (BinTree::merge —
  // tally-conserving), emission counts add, and the total power is adopted
  // from `other` when unset here. Tree counts must match. Note the
  // distributed backends' resume path is merge_owned_trees above (each rank
  // folds only its owned trees; emission totals travel separately through the
  // gather's allreduce) — this full fold is for single-forest consumers
  // combining independent answer files.
  void merge(const BinForest& other);

  bool operator==(const BinForest& other) const;

 private:
  std::vector<BinTree> trees_;
  ChannelCounts emitted_{};
  Rgb total_power_;
};

}  // namespace photon
