// Adaptive 4-D bin tree: one per patch side, forming the "forest of bin
// trees" of Fig 4.6.
//
// Recording a photon descends to the leaf containing its coordinates, updates
// the per-channel tally and the speculative half-counts, and splits the leaf
// when the halves along some axis differ by more than 3 sigma (chapter 3).
// On a split, the lifetime tallies are redistributed to the daughters in the
// observed left/right proportion — the quantity the speculative counts exist
// to provide.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/stats.hpp"
#include "hist/bin.hpp"

namespace photon {

using Bytes = std::vector<std::uint8_t>;

class BinTree {
 public:
  explicit BinTree(SplitPolicy policy = {}, std::uint32_t max_nodes = 1u << 22);

  // Records one photon; returns the index of the leaf that tallied it (after
  // any split triggered by this photon).
  int record(const BinCoords& c, int channel);

  // Leaf lookup without modification (the viewing stage's DetermineBin).
  int find_leaf(const BinCoords& c) const;

  // Estimated photon count of channel `channel` in the leaf containing `c`,
  // together with that leaf's 4-volume. Radiance follows as
  //   L = 2 * count * Phi_c / (N_c * A_patch * measure).
  struct Estimate {
    double count = 0.0;
    double measure = 1.0;
  };
  Estimate count_estimate(const BinCoords& c, int channel) const;

  const BinNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  const std::vector<BinNode>& nodes() const { return nodes_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  int depth() const;
  std::uint64_t total_tally(int channel) const;
  std::uint64_t memory_bytes() const;

  const SplitPolicy& policy() const { return policy_; }

  // Binary (de)serialization; format is private to BinForest answer files.
  void save(std::ostream& out) const;
  static BinTree load(std::istream& in);

  // Same binary format, but appended to / consumed from a raw byte buffer —
  // the distributed gather path frames trees this way so a rank's owned trees
  // go on the wire without any std::ostringstream/std::string staging.
  void save(Bytes& out) const;
  // Advances `p` past the consumed frame; throws std::runtime_error on a
  // truncated buffer.
  static BinTree load(const std::uint8_t*& p, const std::uint8_t* end);

  // Additive fold of `other` into this tree (the distributed-resume
  // primitive). Every tally of `other` is conserved: each of other's leaves
  // is deposited into this tree's structure, splitting counts between
  // daughters in proportion to region overlap when other's leaf straddles one
  // of our splits (integer apportioning, remainder to the right daughter).
  // Speculative split counters fold the same way, so a merged leaf keeps
  // refining with the combined evidence. As a special case, merging into a
  // virgin tree (a single untouched root leaf) adopts `other`'s structure
  // wholesale — a checkpoint folded into a fresh partitioned forest loses
  // nothing. This tree's structure is otherwise preserved (merge never
  // splits).
  void merge(const BinTree& other);

  bool operator==(const BinTree& other) const;

 private:
  void maybe_split(int leaf);
  void deposit(const BinRegion& region, const BinNode& counts);

  std::vector<BinNode> nodes_;
  SplitPolicy policy_;
  std::uint32_t max_nodes_;
};

}  // namespace photon
