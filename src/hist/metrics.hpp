// Diagnostics over a bin forest: how the adaptive histogram spent its
// storage. Backs the analysis benches and gives downstream users a way to
// judge convergence ("are my specular surfaces still splitting?").
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hist/binforest.hpp"

namespace photon {

struct ForestMetrics {
  std::uint64_t trees = 0;
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  int max_depth = 0;
  double mean_leaf_depth = 0.0;

  // Split axes chosen across the forest: s, t (planar) vs u, theta (angular).
  std::array<std::uint64_t, kBinDims> splits_by_axis{};
  double angular_split_fraction = 0.0;

  // Tally distribution over leaves.
  std::uint64_t total_tallies = 0;
  double mean_tally_per_leaf = 0.0;
  double max_tally_share = 0.0;   // heaviest leaf / total
  double concentration = 0.0;     // Herfindahl index over per-tree tallies

  // Per-tree tallies (summed over sides and channels), for load analysis.
  std::vector<std::uint64_t> patch_tallies;
};

ForestMetrics compute_metrics(const BinForest& forest);

// Metrics for one tree only (e.g. "how angular is the mirror?").
struct TreeMetrics {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  int depth = 0;
  std::array<std::uint64_t, kBinDims> splits_by_axis{};
  double angular_split_fraction = 0.0;
};

TreeMetrics compute_tree_metrics(const BinTree& tree);

}  // namespace photon
