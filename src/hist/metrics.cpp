#include "hist/metrics.hpp"

namespace photon {

TreeMetrics compute_tree_metrics(const BinTree& tree) {
  TreeMetrics m;
  m.nodes = tree.node_count();
  m.depth = tree.depth();
  std::uint64_t splits = 0;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (n.is_leaf()) {
      ++m.leaves;
    } else {
      ++splits;
      ++m.splits_by_axis[static_cast<std::size_t>(n.axis)];
    }
  }
  if (splits > 0) {
    m.angular_split_fraction =
        static_cast<double>(m.splits_by_axis[2] + m.splits_by_axis[3]) /
        static_cast<double>(splits);
  }
  return m;
}

ForestMetrics compute_metrics(const BinForest& forest) {
  ForestMetrics m;
  m.trees = forest.tree_count();
  m.patch_tallies = forest.patch_tallies();

  std::uint64_t splits = 0;
  std::uint64_t depth_sum = 0;
  std::uint64_t max_leaf_tally = 0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const BinTree& tree = forest.tree_at(static_cast<int>(t));
    m.nodes += tree.node_count();
    const int d = tree.depth();
    if (d > m.max_depth) m.max_depth = d;
    for (std::size_t i = 0; i < tree.node_count(); ++i) {
      const BinNode& n = tree.node(static_cast<int>(i));
      if (n.is_leaf()) {
        ++m.leaves;
        depth_sum += n.depth;
        m.total_tallies += n.total_tally();
        if (n.total_tally() > max_leaf_tally) max_leaf_tally = n.total_tally();
      } else {
        ++splits;
        ++m.splits_by_axis[static_cast<std::size_t>(n.axis)];
      }
    }
  }
  if (m.leaves > 0) {
    m.mean_leaf_depth = static_cast<double>(depth_sum) / static_cast<double>(m.leaves);
    m.mean_tally_per_leaf =
        static_cast<double>(m.total_tallies) / static_cast<double>(m.leaves);
  }
  if (splits > 0) {
    m.angular_split_fraction =
        static_cast<double>(m.splits_by_axis[2] + m.splits_by_axis[3]) /
        static_cast<double>(splits);
  }
  if (m.total_tallies > 0) {
    m.max_tally_share =
        static_cast<double>(max_leaf_tally) / static_cast<double>(m.total_tallies);
    double h = 0.0;
    for (const std::uint64_t t : m.patch_tallies) {
      const double share = static_cast<double>(t) / static_cast<double>(m.total_tallies);
      h += share * share;
    }
    m.concentration = h;
  }
  return m;
}

}  // namespace photon
