#include "hist/binforest.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace photon {

namespace {
constexpr std::uint64_t kAnswerMagic = 0x50484F544F4E4146ULL;  // "PHOTONAF"
}

BinForest::BinForest(std::size_t n_patches, SplitPolicy policy) {
  trees_.reserve(n_patches * 2);
  for (std::size_t i = 0; i < n_patches * 2; ++i) trees_.emplace_back(policy);
}

double BinForest::radiance(int patch, bool front, const BinCoords& c, int channel,
                           double patch_area) const {
  const std::uint64_t n_c = emitted(channel);
  if (n_c == 0 || patch_area <= 0.0) return 0.0;
  const BinTree::Estimate est = tree(patch, front).count_estimate(c, channel);
  if (est.measure <= 0.0) return 0.0;
  // Each photon of channel ch carries Phi_ch / N_ch of flux. A bin covers
  // area A * ds * dt and projected solid angle (du * dtheta) / 2, hence
  //   L = (count / N) * Phi * 2 / (A * measure).
  const double phi = total_power_[channel];
  return 2.0 * est.count * phi /
         (static_cast<double>(n_c) * patch_area * est.measure);
}

std::uint64_t BinForest::memory_bytes() const {
  std::uint64_t total = sizeof(BinForest);
  for (const BinTree& t : trees_) total += t.memory_bytes();
  return total;
}

std::uint64_t BinForest::total_nodes() const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.node_count();
  return total;
}

std::uint64_t BinForest::total_leaves() const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.leaf_count();
  return total;
}

std::uint64_t BinForest::total_tally(int channel) const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.total_tally(channel);
  return total;
}

std::uint64_t BinForest::total_tally_all() const {
  return total_tally(0) + total_tally(1) + total_tally(2);
}

std::vector<std::uint64_t> BinForest::patch_tallies() const {
  std::vector<std::uint64_t> out(patch_count(), 0);
  for (std::size_t p = 0; p < patch_count(); ++p) {
    for (int side = 0; side < 2; ++side) {
      const BinTree& t = trees_[2 * p + static_cast<std::size_t>(side)];
      for (int ch = 0; ch < 3; ++ch) out[p] += t.total_tally(ch);
    }
  }
  return out;
}

void BinForest::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&kAnswerMagic), sizeof(kAnswerMagic));
  const auto n = static_cast<std::uint64_t>(trees_.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(emitted_.data()), sizeof(emitted_));
  out.write(reinterpret_cast<const char*>(&total_power_), sizeof(total_power_));
  for (const BinTree& t : trees_) t.save(out);
}

bool BinForest::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

BinForest BinForest::load(std::istream& in) {
  BinForest forest;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kAnswerMagic) return forest;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(forest.emitted_.data()), sizeof(forest.emitted_));
  in.read(reinterpret_cast<char*>(&forest.total_power_), sizeof(forest.total_power_));
  forest.trees_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) forest.trees_.push_back(BinTree::load(in));
  return forest;
}

bool BinForest::load(const std::string& path, BinForest& forest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  forest = load(in);
  return forest.tree_count() > 0;
}

bool BinForest::operator==(const BinForest& other) const {
  if (trees_.size() != other.trees_.size() || emitted_ != other.emitted_) return false;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    if (!(trees_[i] == other.trees_[i])) return false;
  }
  return true;
}

}  // namespace photon
