#include "hist/binforest.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace photon {

namespace {
constexpr std::uint64_t kAnswerMagic = 0x50484F544F4E4146ULL;  // "PHOTONAF"
}

BinForest::BinForest(std::size_t n_patches, SplitPolicy policy) {
  trees_.reserve(n_patches * 2);
  for (std::size_t i = 0; i < n_patches * 2; ++i) trees_.emplace_back(policy);
}

double BinForest::radiance(int patch, bool front, const BinCoords& c, int channel,
                           double patch_area) const {
  const std::uint64_t n_c = emitted(channel);
  if (n_c == 0 || patch_area <= 0.0) return 0.0;
  const BinTree::Estimate est = tree(patch, front).count_estimate(c, channel);
  if (est.measure <= 0.0) return 0.0;
  // Each photon of channel ch carries Phi_ch / N_ch of flux. A bin covers
  // area A * ds * dt and projected solid angle (du * dtheta) / 2, hence
  //   L = (count / N) * Phi * 2 / (A * measure).
  const double phi = total_power_[channel];
  return 2.0 * est.count * phi /
         (static_cast<double>(n_c) * patch_area * est.measure);
}

std::uint64_t BinForest::memory_bytes() const {
  std::uint64_t total = sizeof(BinForest);
  for (const BinTree& t : trees_) total += t.memory_bytes();
  return total;
}

std::uint64_t BinForest::total_nodes() const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.node_count();
  return total;
}

std::uint64_t BinForest::total_leaves() const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.leaf_count();
  return total;
}

std::uint64_t BinForest::total_tally(int channel) const {
  std::uint64_t total = 0;
  for (const BinTree& t : trees_) total += t.total_tally(channel);
  return total;
}

std::uint64_t BinForest::total_tally_all() const {
  return total_tally(0) + total_tally(1) + total_tally(2);
}

std::vector<std::uint64_t> BinForest::patch_tallies() const {
  std::vector<std::uint64_t> out(patch_count(), 0);
  for (std::size_t p = 0; p < patch_count(); ++p) {
    for (int side = 0; side < 2; ++side) {
      const BinTree& t = trees_[2 * p + static_cast<std::size_t>(side)];
      for (int ch = 0; ch < 3; ++ch) out[p] += t.total_tally(ch);
    }
  }
  return out;
}

void BinForest::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&kAnswerMagic), sizeof(kAnswerMagic));
  const auto n = static_cast<std::uint64_t>(trees_.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(emitted_.data()), sizeof(emitted_));
  out.write(reinterpret_cast<const char*>(&total_power_), sizeof(total_power_));
  for (const BinTree& t : trees_) t.save(out);
}

bool BinForest::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

BinForest BinForest::load(std::istream& in) {
  BinForest forest;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kAnswerMagic) return forest;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(forest.emitted_.data()), sizeof(forest.emitted_));
  in.read(reinterpret_cast<char*>(&forest.total_power_), sizeof(forest.total_power_));
  // Cap the tree count (two trees per patch; 2^24 exceeds any bundled or
  // plausible scene) and bail on the first malformed tree: a corrupt file
  // must come back as the empty forest (tree_count() == 0), not crash. No
  // up-front reserve — the count is untrusted, and the first bad tree stops
  // the loop long before growth costs anything.
  if (!in || n > (1ULL << 24)) return BinForest{};
  for (std::uint64_t i = 0; i < n; ++i) {
    forest.trees_.push_back(BinTree::load(in));
    if (!in) return BinForest{};
  }
  return forest;
}

bool BinForest::load(const std::string& path, BinForest& forest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  forest = load(in);
  return forest.tree_count() > 0;
}

void BinForest::append_framed_tree(Bytes& out, int idx) const {
  const auto frame_idx = static_cast<std::int32_t>(idx);
  const std::size_t off = out.size();
  out.resize(off + sizeof(frame_idx));
  std::memcpy(out.data() + off, &frame_idx, sizeof(frame_idx));
  trees_[static_cast<std::size_t>(idx)].save(out);
}

void BinForest::replace_framed_trees(const Bytes& buf) {
  const std::uint8_t* p = buf.data();
  const std::uint8_t* const end = p + buf.size();
  while (p != end) {
    if (static_cast<std::size_t>(end - p) < sizeof(std::int32_t)) {
      throw std::runtime_error("BinForest: truncated tree frame");
    }
    std::int32_t idx = 0;
    std::memcpy(&idx, p, sizeof(idx));
    p += sizeof(idx);
    if (idx < 0 || static_cast<std::size_t>(idx) >= trees_.size()) {
      throw std::runtime_error("BinForest: tree frame index out of range");
    }
    trees_[static_cast<std::size_t>(idx)] = BinTree::load(p, end);
  }
}

Bytes BinForest::pack_owned_trees(const std::vector<int>& owner, int rank) const {
  Bytes out;
  for (std::size_t p = 0; p < patch_count(); ++p) {
    if (owner[p] != rank) continue;
    for (int side = 0; side < 2; ++side) {
      append_framed_tree(out, static_cast<int>(2 * p) + side);
    }
  }
  return out;
}

void BinForest::merge_owned_trees(const BinForest& other, const std::vector<int>& owner,
                                  int rank) {
  if (trees_.size() != other.trees_.size()) {
    throw std::invalid_argument("BinForest::merge_owned_trees: tree counts differ");
  }
  for (std::size_t p = 0; p < patch_count(); ++p) {
    if (owner[p] != rank) continue;
    for (int side = 0; side < 2; ++side) {
      const int idx = static_cast<int>(2 * p) + side;
      trees_[static_cast<std::size_t>(idx)].merge(other.tree_at(idx));
    }
  }
}

void BinForest::merge(const BinForest& other) {
  if (trees_.size() != other.trees_.size()) {
    throw std::invalid_argument("BinForest::merge: tree counts differ");
  }
  for (std::size_t i = 0; i < trees_.size(); ++i) trees_[i].merge(other.trees_[i]);
  for (std::size_t c = 0; c < emitted_.size(); ++c) emitted_[c] += other.emitted_[c];
  if (total_power_.r == 0.0 && total_power_.g == 0.0 && total_power_.b == 0.0) {
    total_power_ = other.total_power_;
  }
}

bool BinForest::operator==(const BinForest& other) const {
  if (trees_.size() != other.trees_.size() || emitted_ != other.emitted_) return false;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    if (!(trees_[i] == other.trees_[i])) return false;
  }
  return true;
}

}  // namespace photon
