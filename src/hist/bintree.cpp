#include "hist/bintree.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace photon {

namespace {
// Axes whose extent has collapsed below this are no longer split candidates.
constexpr float kMinExtent = 1.0f / (1u << 16);
}  // namespace

BinTree::BinTree(SplitPolicy policy, std::uint32_t max_nodes)
    : policy_(policy), max_nodes_(max_nodes) {
  BinNode root;
  root.region = BinRegion::full();
  nodes_.push_back(root);
}

int BinTree::find_leaf(const BinCoords& c) const {
  int idx = 0;
  while (!nodes_[static_cast<std::size_t>(idx)].is_leaf()) {
    const BinNode& n = nodes_[static_cast<std::size_t>(idx)];
    const int half = n.region.half_of(n.axis, c[n.axis]);
    idx = half == 0 ? n.left : n.right;
  }
  return idx;
}

int BinTree::record(const BinCoords& c, int channel) {
  int idx = find_leaf(c);
  BinNode& leaf = nodes_[static_cast<std::size_t>(idx)];
  ++leaf.tally[static_cast<std::size_t>(channel)];
  ++leaf.split_n;
  for (int a = 0; a < kBinDims; ++a) {
    if (leaf.region.half_of(a, c[a]) == 0) ++leaf.split_left[static_cast<std::size_t>(a)];
  }
  maybe_split(idx);
  // The leaf may have split; re-resolve so the caller gets the final bin.
  return nodes_[static_cast<std::size_t>(idx)].is_leaf() ? idx : find_leaf(c);
}

void BinTree::maybe_split(int leaf_idx) {
  if (nodes_.size() + 2 > max_nodes_) return;
  BinNode& leaf = nodes_[static_cast<std::size_t>(leaf_idx)];
  // The == 0 guard matters when min_count is (mis)configured to 0: an empty
  // leaf would otherwise pass every gate and divide 0/0 below.
  if (leaf.split_n == 0 || leaf.split_n < policy_.min_count) return;
  // Evaluate the significance test only when the count doubles (n a power of
  // two): testing after every photon is a sequential test whose cumulative
  // false-positive rate grows without bound; geometric checkpoints keep it
  // at ~log2(n) * 0.3%.
  if ((leaf.split_n & (leaf.split_n - 1)) != 0) return;

  // Choose the axis with the most significant left/right imbalance
  // ("we split where there is the largest gradient").
  int best_axis = -1;
  double best_sig = policy_.z;
  for (int a = 0; a < kBinDims; ++a) {
    if (leaf.region.extent(a) < kMinExtent) continue;
    const double sig = split_significance(leaf.split_n, leaf.split_left[static_cast<std::size_t>(a)]);
    if (sig > best_sig) {
      best_sig = sig;
      best_axis = a;
    }
  }

  // Count-driven refinement (see SplitPolicy::max_leaf_count): a heavily
  // trafficked but balanced leaf still refines so radiance detail can
  // develop. Diffuse radiance only needs planar subdivision (chapter 4), so
  // prefer the wider of the positional axes; fall back to the angular axes
  // when position has collapsed.
  const double count_threshold =
      static_cast<double>(policy_.max_leaf_count) *
      std::pow(policy_.count_growth, std::min<int>(leaf.depth, 40));
  if (best_axis < 0 && static_cast<double>(leaf.split_n) >= count_threshold) {
    const double rel_s = leaf.region.extent(0);
    const double rel_t = leaf.region.extent(1);
    if (rel_s >= kMinExtent || rel_t >= kMinExtent) {
      best_axis = rel_s >= rel_t ? 0 : 1;
    } else {
      const double rel_u = leaf.region.extent(2);
      const double rel_th = leaf.region.extent(3) / static_cast<float>(kTwoPi);
      if (rel_u >= kMinExtent || rel_th >= kMinExtent) {
        best_axis = rel_u >= rel_th ? 2 : 3;
      }
    }
  }
  if (best_axis < 0) return;

  // Split: daughters inherit the lifetime tallies in the observed proportion.
  const double frac_left = static_cast<double>(leaf.split_left[static_cast<std::size_t>(best_axis)]) /
                           static_cast<double>(leaf.split_n);
  BinNode lo, hi;
  lo.region = leaf.region.child(best_axis, 0);
  hi.region = leaf.region.child(best_axis, 1);
  lo.depth = hi.depth =
      static_cast<std::uint8_t>(leaf.depth < 255 ? leaf.depth + 1 : 255);
  for (int ch = 0; ch < 3; ++ch) {
    const auto chi = static_cast<std::size_t>(ch);
    const auto l = static_cast<std::uint32_t>(std::lround(frac_left * leaf.tally[chi]));
    lo.tally[chi] = l;
    hi.tally[chi] = leaf.tally[chi] - l;
  }
  const auto left_idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(lo);
  nodes_.push_back(hi);
  // `leaf` reference may be dangling after push_back; reindex.
  BinNode& parent = nodes_[static_cast<std::size_t>(leaf_idx)];
  parent.left = left_idx;
  parent.right = left_idx + 1;
  parent.axis = static_cast<std::int8_t>(best_axis);
}

BinTree::Estimate BinTree::count_estimate(const BinCoords& c, int channel) const {
  const int idx = find_leaf(c);
  const BinNode& leaf = nodes_[static_cast<std::size_t>(idx)];
  return {static_cast<double>(leaf.tally[static_cast<std::size_t>(channel)]),
          leaf.region.measure()};
}

std::size_t BinTree::leaf_count() const {
  std::size_t n = 0;
  for (const BinNode& node : nodes_) {
    if (node.is_leaf()) ++n;
  }
  return n;
}

int BinTree::depth() const {
  // Iterative depth: walk nodes with an explicit stack of (index, depth).
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const BinNode& n = nodes_[static_cast<std::size_t>(idx)];
    if (!n.is_leaf()) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

std::uint64_t BinTree::total_tally(int channel) const {
  // Tallies at leaves are authoritative (splits redistribute, conserving
  // counts up to rounding).
  std::uint64_t sum = 0;
  for (const BinNode& node : nodes_) {
    if (node.is_leaf()) sum += node.tally[static_cast<std::size_t>(channel)];
  }
  return sum;
}

std::uint64_t BinTree::memory_bytes() const {
  return nodes_.capacity() * sizeof(BinNode) + sizeof(BinTree);
}

void BinTree::save(std::ostream& out) const {
  const auto n = static_cast<std::uint64_t>(nodes_.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&policy_.z), sizeof(policy_.z));
  out.write(reinterpret_cast<const char*>(&policy_.min_count), sizeof(policy_.min_count));
  out.write(reinterpret_cast<const char*>(nodes_.data()),
            static_cast<std::streamsize>(n * sizeof(BinNode)));
}

namespace {

// Hard cap on serialized node counts: well above any tree the recorder can
// grow (max_nodes defaults to 2^22) and small enough that a corrupt count
// cannot force a giant allocation before validation rejects it.
constexpr std::uint64_t kMaxSerializedNodes = 1ULL << 26;

// Structural sanity of a deserialized node array: children must point
// strictly forward (construction appends daughters after their parent, so
// this also guarantees acyclicity — every traversal terminates), interior
// nodes need a valid split axis, leaves must have no dangling child.
bool nodes_are_sane(const std::vector<BinNode>& nodes) {
  if (nodes.empty()) return false;
  const auto n = static_cast<std::int32_t>(nodes.size());
  for (std::int32_t i = 0; i < n; ++i) {
    const BinNode& node = nodes[static_cast<std::size_t>(i)];
    if (node.is_leaf()) {
      if (node.right >= 0) return false;
    } else {
      if (node.left <= i || node.left >= n || node.right <= i || node.right >= n) return false;
      if (node.axis < 0 || node.axis >= kBinDims) return false;
    }
  }
  return true;
}

}  // namespace

BinTree BinTree::load(std::istream& in) {
  BinTree tree;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&tree.policy_.z), sizeof(tree.policy_.z));
  in.read(reinterpret_cast<char*>(&tree.policy_.min_count), sizeof(tree.policy_.min_count));
  if (!in || n == 0 || n > kMaxSerializedNodes) {
    in.setstate(std::ios::failbit);
    return BinTree{};
  }
  // Chunked read: the count is untrusted, so a corrupt value must hit the
  // short-read check after at most one ~5 MB chunk of over-allocation — not
  // commit gigabytes up front.
  constexpr std::uint64_t kChunkNodes = 1ULL << 16;
  for (std::uint64_t got = 0; got < n; ) {
    const std::uint64_t take = std::min(kChunkNodes, n - got);
    tree.nodes_.resize(static_cast<std::size_t>(got + take));
    in.read(reinterpret_cast<char*>(tree.nodes_.data() + got),
            static_cast<std::streamsize>(take * sizeof(BinNode)));
    if (static_cast<std::uint64_t>(in.gcount()) != take * sizeof(BinNode)) {
      in.setstate(std::ios::failbit);
      return BinTree{};
    }
    got += take;
  }
  if (!in || !nodes_are_sane(tree.nodes_)) {
    in.setstate(std::ios::failbit);
    return BinTree{};
  }
  return tree;
}

namespace {

template <typename T>
void append_raw(Bytes& out, const T& v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(T));
  std::memcpy(out.data() + off, &v, sizeof(T));
}

template <typename T>
T read_raw(const std::uint8_t*& p, const std::uint8_t* end) {
  if (static_cast<std::size_t>(end - p) < sizeof(T)) {
    throw std::runtime_error("BinTree: truncated byte buffer");
  }
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

}  // namespace

void BinTree::save(Bytes& out) const {
  // Same layout as the stream form: count, policy scalars, raw node array.
  append_raw<std::uint64_t>(out, nodes_.size());
  append_raw(out, policy_.z);
  append_raw(out, policy_.min_count);
  const std::size_t off = out.size();
  out.resize(off + nodes_.size() * sizeof(BinNode));
  std::memcpy(out.data() + off, nodes_.data(), nodes_.size() * sizeof(BinNode));
}

BinTree BinTree::load(const std::uint8_t*& p, const std::uint8_t* end) {
  BinTree tree;
  const auto n = read_raw<std::uint64_t>(p, end);
  tree.policy_.z = read_raw<double>(p, end);
  tree.policy_.min_count = read_raw<std::uint64_t>(p, end);
  if (n == 0 || n > static_cast<std::size_t>(end - p) / sizeof(BinNode)) {
    throw std::runtime_error("BinTree: truncated byte buffer");
  }
  tree.nodes_.resize(n);
  std::memcpy(tree.nodes_.data(), p, n * sizeof(BinNode));
  p += n * sizeof(BinNode);
  if (!nodes_are_sane(tree.nodes_)) {
    throw std::runtime_error("BinTree: corrupt node array");
  }
  return tree;
}

namespace {

// Integer share of `c` proportional to `f`, never exceeding `c`.
std::uint32_t apportion(std::uint32_t c, double f) {
  const auto share = static_cast<std::uint32_t>(std::llround(f * static_cast<double>(c)));
  return share > c ? c : share;
}

}  // namespace

void BinTree::merge(const BinTree& other) {
  const BinNode& root = nodes_[0];
  if (nodes_.size() == 1 && root.split_n == 0 && root.total_tally() == 0) {
    // Virgin tree: adopt the other structure wholesale (the checkpoint-into-
    // fresh-partition case must be lossless).
    nodes_ = other.nodes_;
    return;
  }
  for (const BinNode& node : other.nodes_) {
    if (!node.is_leaf()) continue;
    if (node.total_tally() == 0 && node.split_n == 0) continue;
    deposit(node.region, node);
  }
}

void BinTree::deposit(const BinRegion& region, const BinNode& counts) {
  struct Item {
    int idx;
    BinRegion r;
    BinNode c;  // only the count fields are read
  };
  std::vector<Item> stack{{0, region, counts}};
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    BinNode& n = nodes_[static_cast<std::size_t>(item.idx)];
    if (n.is_leaf()) {
      for (std::size_t ch = 0; ch < n.tally.size(); ++ch) n.tally[ch] += item.c.tally[ch];
      n.split_n += item.c.split_n;
      for (std::size_t a = 0; a < n.split_left.size(); ++a) {
        n.split_left[a] = std::min(n.split_left[a] + item.c.split_left[a], n.split_n);
      }
      continue;
    }
    const int axis = n.axis;
    const auto ai = static_cast<std::size_t>(axis);
    const double mid = n.region.mid(axis);
    const double lo = item.r.lo[ai], hi = item.r.hi[ai];
    const double extent = hi - lo;
    // Fraction of the deposited region in the lower daughter along the node's
    // split axis.
    const double f = extent <= 0.0 ? (lo < mid ? 1.0 : 0.0)
                                   : std::clamp((mid - lo) / extent, 0.0, 1.0);
    if (f >= 1.0) {
      item.idx = n.left;
      stack.push_back(std::move(item));
      continue;
    }
    if (f <= 0.0) {
      item.idx = n.right;
      stack.push_back(std::move(item));
      continue;
    }
    // The region straddles the split: apportion every counter by overlap,
    // remainder to the right daughter, and clip the region at the midplane.
    BinNode cl{}, cr{};
    for (std::size_t ch = 0; ch < item.c.tally.size(); ++ch) {
      cl.tally[ch] = apportion(item.c.tally[ch], f);
      cr.tally[ch] = item.c.tally[ch] - cl.tally[ch];
    }
    cl.split_n = apportion(item.c.split_n, f);
    cr.split_n = item.c.split_n - cl.split_n;
    for (std::size_t a = 0; a < item.c.split_left.size(); ++a) {
      cl.split_left[a] = std::min(apportion(item.c.split_left[a], f), cl.split_n);
      cr.split_left[a] = std::min(item.c.split_left[a] - cl.split_left[a], cr.split_n);
    }
    BinRegion rl = item.r, rr = item.r;
    rl.hi[ai] = static_cast<float>(mid);
    rr.lo[ai] = static_cast<float>(mid);
    if (cl.total_tally() > 0 || cl.split_n > 0) stack.push_back({n.left, rl, cl});
    if (cr.total_tally() > 0 || cr.split_n > 0) stack.push_back({n.right, rr, cr});
  }
}

bool BinTree::operator==(const BinTree& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const BinNode& a = nodes_[i];
    const BinNode& b = other.nodes_[i];
    if (a.tally != b.tally || a.left != b.left || a.right != b.right || a.axis != b.axis ||
        a.split_n != b.split_n || a.split_left != b.split_left ||
        a.region.lo != b.region.lo || a.region.hi != b.region.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace photon
