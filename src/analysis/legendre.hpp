// Legendre-series analysis (Fig 2.4).
//
// Chapter 2 argues against spherical-harmonic radiance representations by
// expanding a specular reflection spike in 30 basis terms and exhibiting the
// ringing near the spike. For a function of the deviation angle alone the
// spherical-harmonic expansion reduces to a Legendre series; this module
// reproduces that experiment.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace photon {

// Legendre polynomial P_n(x) by the three-term recurrence.
double legendre_p(int n, double x);

// Series coefficients c_n = (2n+1)/2 * integral f(x) P_n(x) dx over [-1, 1],
// by composite Simpson quadrature with `quad_points` intervals.
std::vector<double> legendre_series(const std::function<double(double)>& f, int terms,
                                    int quad_points = 4096);

double eval_legendre_series(std::span<const double> coeffs, double x);

// The specular spike of Fig 2.4: a narrow lobe at zero deviation angle.
// `width` is the angular half-width (radians).
double specular_spike(double deviation_rad, double width = 0.05);

}  // namespace photon
