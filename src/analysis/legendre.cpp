#include "analysis/legendre.hpp"

#include <cmath>

namespace photon {

double legendre_p(int n, double x) {
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double p0 = 1.0, p1 = x;
  for (int k = 2; k <= n; ++k) {
    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = p2;
  }
  return p1;
}

std::vector<double> legendre_series(const std::function<double(double)>& f, int terms,
                                    int quad_points) {
  // Composite Simpson; quad_points is forced even.
  const int n = quad_points % 2 == 0 ? quad_points : quad_points + 1;
  const double h = 2.0 / n;
  std::vector<double> coeffs(static_cast<std::size_t>(terms), 0.0);
  for (int l = 0; l < terms; ++l) {
    double sum = 0.0;
    for (int i = 0; i <= n; ++i) {
      const double x = -1.0 + h * i;
      const double w = (i == 0 || i == n) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
      sum += w * f(x) * legendre_p(l, x);
    }
    coeffs[static_cast<std::size_t>(l)] = (2.0 * l + 1.0) / 2.0 * sum * h / 3.0;
  }
  return coeffs;
}

double eval_legendre_series(std::span<const double> coeffs, double x) {
  // Evaluate with the same recurrence, accumulating on the fly.
  double acc = 0.0;
  double p0 = 1.0, p1 = x;
  for (std::size_t l = 0; l < coeffs.size(); ++l) {
    double pl;
    if (l == 0) {
      pl = p0;
    } else if (l == 1) {
      pl = p1;
    } else {
      pl = ((2.0 * l - 1.0) * x * p1 - (l - 1.0) * p0) / static_cast<double>(l);
      p0 = p1;
      p1 = pl;
    }
    acc += coeffs[l] * pl;
  }
  return acc;
}

double specular_spike(double deviation_rad, double width) {
  const double q = deviation_rad / width;
  return std::exp(-q * q);
}

}  // namespace photon
