#include "sim/emitter.hpp"

namespace photon {

Emitter::Emitter(const Scene& scene) : scene_(&scene) {
  double running = 0.0;
  for (const Luminaire& lum : scene.luminaires()) {
    const double p = lum.power.sum();
    if (p <= 0.0) continue;
    running += p;
    cdf_.push_back(running);

    LumInfo info;
    info.patch = lum.patch;
    info.angular_scale = lum.angular_scale;
    info.frame = scene.patch(lum.patch).frame();
    double acc = 0.0;
    for (int c = 0; c < kNumChannels; ++c) {
      acc += lum.power[c] / p;
      info.channel_cdf[c] = acc;
    }
    info.channel_cdf[kNumChannels - 1] = 1.0;  // guard against rounding
    infos_.push_back(info);
    total_power_ += lum.power;
  }
  // Normalize the luminaire CDF.
  for (double& v : cdf_) v /= running;
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

EmissionSample Emitter::emit(Lcg48& rng) const {
  EmissionSample out;
  if (cdf_.empty()) return out;

  // Luminaire selection proportional to power.
  const double u = rng.uniform();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const LumInfo& info = infos_[lo];

  out.patch = info.patch;
  out.s = rng.uniform();
  out.t = rng.uniform();
  out.origin = scene_->patch(info.patch).point_at(out.s, out.t);

  const double cu = rng.uniform();
  out.channel = cu < info.channel_cdf[0] ? 0 : (cu < info.channel_cdf[1] ? 1 : 2);

  out.dir_local = sample_hemisphere_rejection(rng, info.angular_scale);
  out.dir = info.frame.to_world(out.dir_local);
  return out;
}

}  // namespace photon
