// Serial Photon simulation driver — the paper's "best serial version" that
// every speedup in chapter 5 is measured against, and the reference
// implementation behind the engine's `serial` backend.
//
// The performance methodology breaks a simulation into batches and reports
// photons-per-second after each batch (the speed trace), sampling bin-forest
// memory per batch (Fig 5.4). Both collections come from engine/telemetry.
#pragma once

#include "engine/backend.hpp"

namespace photon {

// Runs the serial simulation of Fig 4.1 and returns the populated forest.
// When `resume_from` is non-null, continues that run: its forest, counters
// and RNG state are adopted and `config.photons` *additional* photons are
// simulated — bitwise identical to having run them in one go.
//
// With `config.photon_streams` set, each photon draws from its own disjoint
// RNG block (core/rng.hpp photon_stream) instead of one continuous stream:
// the conformance reference for the shape-invariant backends. Resume then
// continues the photon-id sequence — also a bitwise continuation.
RunResult run_serial(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from = nullptr);

}  // namespace photon
