// Serial Photon simulation driver.
//
// The paper's performance methodology (chapter 5) breaks a simulation into
// batches and reports photons-per-second after each batch, giving a speed
// trace over wall time; all speedups are measured against this "best serial
// version". The driver also samples bin-forest memory per batch (Fig 5.4).
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "hist/binforest.hpp"
#include "sim/emitter.hpp"
#include "sim/tracer.hpp"

namespace photon {

struct SpeedPoint {
  double time_s = 0.0;       // wall time at end of batch
  std::uint64_t photons = 0; // cumulative photons simulated
  double rate = 0.0;         // photons/second over the whole run so far
};

struct SpeedTrace {
  std::vector<SpeedPoint> points;
  double total_time_s = 0.0;
  std::uint64_t total_photons = 0;

  double final_rate() const {
    return total_time_s > 0.0 ? static_cast<double>(total_photons) / total_time_s : 0.0;
  }
};

struct MemoryPoint {
  std::uint64_t photons = 0;
  std::uint64_t bytes = 0;
};

struct SerialConfig {
  std::uint64_t photons = 100000;
  std::uint64_t batch = 10000;
  std::uint64_t seed = 0x1234ABCD330EULL;
  // Leapfrog substream (rank of nranks); (0, 1) is the plain serial stream.
  int rank = 0;
  int nranks = 1;
  double max_seconds = 0.0;  // stop after this much wall time when > 0
  SplitPolicy policy{};
  TraceLimits limits{};
};

struct SerialResult {
  BinForest forest;
  SpeedTrace trace;
  TraceCounters counters;
  std::vector<MemoryPoint> memory;
  // Exact generator state at the end of the run; with the forest and
  // counters this is everything needed to resume (sim/checkpoint.hpp).
  std::uint64_t rng_state = 0;
  std::uint64_t rng_mul = 0;
  std::uint64_t rng_add = 0;
};

// Runs the serial simulation of Fig 4.1 and returns the populated forest.
// When `resume_from` is non-null, continues that run: its forest, counters
// and RNG state are adopted and `config.photons` *additional* photons are
// simulated — bitwise identical to having run them in one go.
SerialResult run_serial(const Scene& scene, const SerialConfig& config,
                        const SerialResult* resume_from = nullptr);

}  // namespace photon
