// Checkpoint/restart for long simulations.
//
// The paper's production runs simulated billions of photons over hours; a
// checkpoint captures everything a serial run needs to continue exactly —
// the bin forest (already the "answer file"), the trace counters, and the
// raw RNG state — so a resumed run is bitwise identical to an uninterrupted
// one (verified by the test suite).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.hpp"

namespace photon {

void save_checkpoint(const SerialResult& result, std::ostream& out);
bool save_checkpoint(const SerialResult& result, const std::string& path);

// Returns false (leaving `result` unspecified) on a malformed stream.
bool load_checkpoint(std::istream& in, SerialResult& result);
bool load_checkpoint(const std::string& path, SerialResult& result);

}  // namespace photon
