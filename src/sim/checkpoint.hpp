// Checkpoint/restart for long simulations — an engine service that works on
// any backend's RunResult.
//
// The paper's production runs simulated billions of photons over hours; a
// checkpoint captures the bin forest (already the "answer file"), the trace
// counters, and the raw RNG state. Resuming through a backend that reports
// supports_resume() adopts all three; the `serial` backend's continuation is
// bitwise identical to an uninterrupted run (verified by the test suite).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.hpp"

namespace photon {

void save_checkpoint(const RunResult& result, std::ostream& out);
bool save_checkpoint(const RunResult& result, const std::string& path);

// Returns false (leaving `result` unspecified) on a malformed stream.
bool load_checkpoint(std::istream& in, RunResult& result);
bool load_checkpoint(const std::string& path, RunResult& result);

}  // namespace photon
