// Checkpoint/restart for long simulations — an engine service that works on
// any backend's RunResult.
//
// The paper's production runs simulated billions of photons over hours; a
// checkpoint captures the bin forest (already the "answer file"), the trace
// counters, the raw RNG state, and — since format v2 — each rank's generator
// state, so dist-particle resumes continue every stream in place. Resuming
// through a backend that reports supports_resume() adopts all of it; the
// `serial`, `hybrid` and (at matching rank count) `dist-particle`
// continuations are bitwise identical to an uninterrupted run (verified by
// the test suite).
//
// The v2 byte format is [magic][u64 payload length][payload][u64 FNV-1a-64
// of the payload]: a truncated or bit-flipped checkpoint fails the length or
// checksum test and load_checkpoint returns false — a multi-hour run must
// never silently resume from damaged state.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.hpp"

namespace photon {

// Which check a rejected checkpoint failed — a multi-hour run that refuses
// to resume should say *why* (and photon_cli prints exactly this).
enum class CheckpointStatus {
  kOk,
  kOpenFailed,         // path could not be opened
  kBadMagic,           // not a checkpoint at all
  kOldVersion,         // v1 magic: unverifiable format, rejected by design
  kBadLength,          // length field exceeds the payload cap
  kTruncated,          // stream ended before the declared payload length
  kChecksumMismatch,   // payload bytes fail the FNV-1a-64 check
  kBadHeader,          // verified payload too short for counters/rank count
  kBadRankSection,     // rank count implies more state than the payload holds
  kBadForest,          // forest section malformed or empty
};

// Stable lower-case name for a status ("ok", "bad-magic", ...).
const char* checkpoint_status_name(CheckpointStatus status);

void save_checkpoint(const RunResult& result, std::ostream& out);
bool save_checkpoint(const RunResult& result, const std::string& path);

// Returns the first failed check (leaving `result` unspecified on failure);
// never throws, never partially adopts state.
CheckpointStatus load_checkpoint_status(std::istream& in, RunResult& result);
CheckpointStatus load_checkpoint_status(const std::string& path, RunResult& result);

// Convenience wrappers: true iff the status is kOk.
bool load_checkpoint(std::istream& in, RunResult& result);
bool load_checkpoint(const std::string& path, RunResult& result);

}  // namespace photon
