// Checkpoint/restart for long simulations — an engine service that works on
// any backend's RunResult.
//
// The paper's production runs simulated billions of photons over hours; a
// checkpoint captures the bin forest (already the "answer file"), the trace
// counters, the raw RNG state, and — since format v2 — each rank's generator
// state, so dist-particle resumes continue every stream in place. Resuming
// through a backend that reports supports_resume() adopts all of it; the
// `serial`, `hybrid` and (at matching rank count) `dist-particle`
// continuations are bitwise identical to an uninterrupted run (verified by
// the test suite).
//
// The v2 byte format is [magic][u64 payload length][payload][u64 FNV-1a-64
// of the payload]: a truncated or bit-flipped checkpoint fails the length or
// checksum test and load_checkpoint returns false — a multi-hour run must
// never silently resume from damaged state.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.hpp"

namespace photon {

void save_checkpoint(const RunResult& result, std::ostream& out);
bool save_checkpoint(const RunResult& result, const std::string& path);

// Returns false (leaving `result` unspecified) on a malformed, truncated, or
// checksum-failing stream; never throws, never partially adopts state.
bool load_checkpoint(std::istream& in, RunResult& result);
bool load_checkpoint(const std::string& path, RunResult& result);

}  // namespace photon
