// Photon generation (chapter 4): picks a luminaire proportionally to its
// power, a point uniformly on it, a color channel from its spectrum, and a
// cosine-distributed direction — collimated by the luminaire's angular scale
// for directional sources such as the sun.
#pragma once

#include <vector>

#include "core/onb.hpp"
#include "core/rng.hpp"
#include "core/sampling.hpp"
#include "geom/scene.hpp"

namespace photon {

struct EmissionSample {
  Vec3 origin;
  Vec3 dir;        // world-space emission direction
  Vec3 dir_local;  // same direction in the luminaire's tangent frame (z > 0)
  int patch = -1;
  int channel = 0;
  double s = 0.0;  // bilinear coordinates of the emission point
  double t = 0.0;
};

class Emitter {
 public:
  explicit Emitter(const Scene& scene);

  bool has_luminaires() const { return !cdf_.empty(); }

  // Draws one photon. Uses a variable number of RNG draws (the rejection
  // kernel), which is fine: streams are private per rank.
  EmissionSample emit(Lcg48& rng) const;

  // Total flux the scene's luminaires emit, per channel.
  const Rgb& total_power() const { return total_power_; }

 private:
  struct LumInfo {
    Onb frame;
    double channel_cdf[3];  // cumulative channel probabilities
    double angular_scale;
    int patch;
  };

  const Scene* scene_;
  std::vector<double> cdf_;  // cumulative luminaire selection probabilities
  std::vector<LumInfo> infos_;
  Rgb total_power_;
};

}  // namespace photon
