// The light-transport loop of Fig 4.1: GeneratePhoton, DetermineIntersection,
// DetermineBin, Reflect — repeated until the photon is probabilistically
// absorbed (or escapes an open scene).
//
// Where the tallies *go* is abstracted behind BinSink: the serial simulator
// records straight into a BinForest, the shared-memory version goes through
// per-tree locks, and the distributed version enqueues records owned by other
// ranks for the batched all-to-all exchange (Fig 5.3).
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "geom/scene.hpp"
#include "hist/binforest.hpp"
#include "material/brdf.hpp"
#include "sim/emitter.hpp"

namespace photon {

struct BounceRecord {
  std::int32_t patch = -1;
  bool front = true;
  BinCoords coords;
  std::uint8_t channel = 0;
};

class BinSink {
 public:
  virtual ~BinSink() = default;
  virtual void record(const BounceRecord& rec) = 0;
};

// Records directly into a BinForest (the serial path).
class ForestSink final : public BinSink {
 public:
  explicit ForestSink(BinForest& forest) : forest_(&forest) {}
  void record(const BounceRecord& rec) override {
    forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
  }

 private:
  BinForest* forest_;
};

// Discards records; used when probing workloads (the load-balancing phase
// traces with "no tallying performed until the photons have been traced").
class NullSink final : public BinSink {
 public:
  void record(const BounceRecord&) override {}
};

struct TraceLimits {
  int max_bounces = 256;  // guard against pathological mirror corridors
};

struct TraceCounters {
  std::uint64_t emitted = 0;
  std::uint64_t bounces = 0;    // reflections recorded (excludes emission records)
  std::uint64_t absorbed = 0;
  std::uint64_t escaped = 0;    // left an open scene
  std::uint64_t terminated = 0; // hit the bounce limit

  double bounces_per_photon() const {
    return emitted > 0 ? static_cast<double>(bounces) / static_cast<double>(emitted) : 0.0;
  }
};

class Tracer {
 public:
  explicit Tracer(const Scene& scene, TraceLimits limits = {})
      : scene_(&scene), limits_(limits) {}

  // Traces one emitted photon to absorption. Emission is tallied on the
  // luminaire patch (UpdateBinCount directly after GeneratePhoton in
  // Fig 4.1), then every reflection is tallied on the reflecting patch.
  void trace(const EmissionSample& emission, Lcg48& rng, BinSink& sink,
             TraceCounters* counters = nullptr) const;

  const Scene& scene() const { return *scene_; }

 private:
  const Scene* scene_;
  TraceLimits limits_;
};

}  // namespace photon
