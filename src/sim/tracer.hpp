// The light-transport loop of Fig 4.1: GeneratePhoton, DetermineIntersection,
// DetermineBin, Reflect — repeated until the photon is probabilistically
// absorbed (or escapes an open scene).
//
// Where the tallies *go* is abstracted behind BinSink: the serial simulator
// records straight into a BinForest, the shared-memory version goes through
// per-tree locks, and the distributed version enqueues records owned by other
// ranks for the batched all-to-all exchange (Fig 5.3).
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "geom/scene.hpp"
#include "hist/binforest.hpp"
#include "material/brdf.hpp"
#include "sim/emitter.hpp"

namespace photon {

struct BounceRecord {
  std::int32_t patch = -1;
  bool front = true;
  BinCoords coords;
  std::uint8_t channel = 0;
};

class BinSink {
 public:
  virtual ~BinSink() = default;
  virtual void record(const BounceRecord& rec) = 0;
};

// Records directly into a BinForest (the serial path).
class ForestSink final : public BinSink {
 public:
  explicit ForestSink(BinForest& forest) : forest_(&forest) {}
  void record(const BounceRecord& rec) override {
    forest_->record(rec.patch, rec.front, rec.coords, rec.channel);
  }

 private:
  BinForest* forest_;
};

// Discards records; used when probing workloads (the load-balancing phase
// traces with "no tallying performed until the photons have been traced").
class NullSink final : public BinSink {
 public:
  void record(const BounceRecord&) override {}
};

struct TraceLimits {
  int max_bounces = 256;  // guard against pathological mirror corridors
};

struct TraceCounters {
  std::uint64_t emitted = 0;
  std::uint64_t bounces = 0;    // reflections recorded (excludes emission records)
  std::uint64_t absorbed = 0;
  std::uint64_t escaped = 0;    // left an open scene
  std::uint64_t terminated = 0; // hit the bounce limit

  double bounces_per_photon() const {
    return emitted > 0 ? static_cast<double>(bounces) / static_cast<double>(emitted) : 0.0;
  }
};

// Merges per-worker counters into a total; every backend uses this instead of
// hand-summing the fields.
inline TraceCounters& operator+=(TraceCounters& a, const TraceCounters& b) {
  a.emitted += b.emitted;
  a.bounces += b.bounces;
  a.absorbed += b.absorbed;
  a.escaped += b.escaped;
  a.terminated += b.terminated;
  return a;
}

// Self-intersection offset for a scene of the given bounds. An absolute
// nudge breaks at scale: too small for large scenes (the offset vanishes
// against the coordinate magnitude and rays re-hit the surface they left),
// needlessly coarse for tiny ones.
double surface_epsilon(const Aabb& bounds);

class Tracer {
 public:
  explicit Tracer(const Scene& scene, TraceLimits limits = {});

  // Traces one emitted photon to absorption. Emission is tallied on the
  // luminaire patch (UpdateBinCount directly after GeneratePhoton in
  // Fig 4.1), then every reflection is tallied on the reflecting patch.
  void trace(const EmissionSample& emission, Lcg48& rng, BinSink& sink,
             TraceCounters* counters = nullptr) const;

  const Scene& scene() const { return *scene_; }

  // The scene-scaled self-intersection nudge this tracer applies after every
  // bounce. Exposed so other trace loops (the spatial decomposition's
  // segment tracer) can reproduce photon paths exactly.
  double epsilon() const { return epsilon_; }

 private:
  const Scene* scene_;
  TraceLimits limits_;
  double epsilon_;
};

}  // namespace photon
