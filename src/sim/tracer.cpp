#include "sim/tracer.hpp"

#include <algorithm>

namespace photon {

double surface_epsilon(const Aabb& bounds) {
  return 1e-7 * std::max(1.0, bounds.extent().length());
}

Tracer::Tracer(const Scene& scene, TraceLimits limits)
    : scene_(&scene), limits_(limits), epsilon_(surface_epsilon(scene.bounds())) {}

void Tracer::trace(const EmissionSample& emission, Lcg48& rng, BinSink& sink,
                   TraceCounters* counters) const {
  if (counters) ++counters->emitted;

  // Emission tally on the luminaire itself.
  BounceRecord rec;
  rec.patch = emission.patch;
  rec.front = true;
  rec.coords = BinCoords::from_local_dir(emission.s, emission.t, emission.dir_local);
  rec.channel = static_cast<std::uint8_t>(emission.channel);
  sink.record(rec);

  Vec3 origin = emission.origin;
  Vec3 dir = emission.dir;
  int channel = emission.channel;  // may shift at fluorescent surfaces
  Polarization pol = Polarization::unpolarized();

  SceneHit hit;
  for (int bounce = 0; bounce < limits_.max_bounces; ++bounce) {
    if (!scene_->intersect(Ray(origin, dir), kNoHit, hit)) {
      if (counters) ++counters->escaped;
      return;
    }

    const Patch& patch = scene_->patch(hit.patch);
    const Material& mat = scene_->material_of(patch);
    if (!hit.front && !mat.two_sided) {
      // Back side of a one-sided surface: opaque, photon absorbed.
      if (counters) ++counters->absorbed;
      return;
    }

    // Local frame on the side that was hit.
    const Vec3 side_normal = hit.front ? patch.normal() : -patch.normal();
    const Onb frame = Onb::from_normal(side_normal);
    const Vec3 wi_local = frame.to_local(dir);  // z < 0: heading into the surface

    const ScatterSample scatter = sample_scatter(mat, wi_local, channel, pol, rng);
    if (scatter.kind == ScatterKind::kAbsorbed) {
      if (counters) ++counters->absorbed;
      return;
    }
    channel = scatter.channel;

    rec.patch = hit.patch;
    rec.front = hit.front;
    rec.coords = BinCoords::from_local_dir(hit.s, hit.t, scatter.dir);
    rec.channel = static_cast<std::uint8_t>(channel);
    sink.record(rec);
    if (counters) ++counters->bounces;

    const Vec3 hit_point = origin + dir * hit.dist;
    dir = frame.to_world(scatter.dir).normalized();
    // Nudge off the surface to avoid re-intersecting it.
    origin = hit_point + side_normal * epsilon_;
  }
  if (counters) ++counters->terminated;
}

}  // namespace photon
