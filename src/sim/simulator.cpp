#include "sim/simulator.hpp"

#include "engine/governor.hpp"
#include "sim/emitter.hpp"

namespace photon {

RunResult run_serial(const Scene& scene, const RunConfig& config,
                     const RunResult* resume_from) {
  RunResult result;
  // In photon-stream mode ids index disjoint RNG blocks; a resumed leg simply
  // continues the id sequence, which is inherently a bitwise continuation.
  std::uint64_t next_photon = resume_from ? resume_from->counters.emitted : 0;
  Lcg48 rng(config.seed, config.rank, config.nranks);
  if (resume_from) {
    result.forest = resume_from->forest;
    result.counters = resume_from->counters;
    if (config.photon_streams) {
      // next_photon carries the whole continuation state.
    } else if (resume_from->rng_mul != 0) {
      rng.set_raw(resume_from->rng_state, resume_from->rng_mul, resume_from->rng_add);
    } else {
      // Checkpoint from a backend with no single generator state (shared,
      // dist-*): adopting raw zeros would degenerate the LCG to a constant
      // stream. Continue on a disjoint block of the global sequence instead,
      // far past anything the first leg can have drawn (same 4096-element
      // blocks as the per-photon streams).
      rng.skip(resume_from->counters.emitted * kPhotonStreamBlock);
    }
  } else {
    result.forest = BinForest(scene.patch_count(), config.policy);
  }

  const Emitter emitter(scene);
  result.forest.set_total_power(emitter.total_power());
  const Tracer tracer(scene, config.limits);
  ForestSink sink(result.forest);

  SpeedSampler sampler(config.trace_path,
                       resume_from ? resume_from->counters.emitted : 0);
  BatchController controller(config.batch_policy);
  std::uint64_t done = 0;
  double prev_t = 0.0;
  while (done < config.photons) {
    std::uint64_t batch = config.adapt_batch ? controller.size() : config.batch;
    if (batch > config.photons - done) batch = config.photons - done;
    if (batch == 0) batch = 1;
    for (std::uint64_t i = 0; i < batch; ++i) {
      if (config.photon_streams) rng = photon_stream(config.seed, next_photon++);
      const EmissionSample emission = emitter.emit(rng);
      result.forest.add_emitted(emission.channel);
      tracer.trace(emission, rng, sink, &result.counters);
    }
    done += batch;

    const double t = sampler.elapsed();
    sampler.sample_at(t, done);
    sampler.sample_memory(done, result.forest.memory_bytes());
    if (config.adapt_batch) {
      const double batch_time = t - prev_t;
      controller.update(batch_time > 0.0 ? static_cast<double>(batch) / batch_time : 0.0);
    }
    prev_t = t;
    progress_tick(config, "serial", done);
    if (config.max_seconds > 0.0 && t >= config.max_seconds) break;
    if (config.governed) {
      if (preempt_requested(config)) {
        acknowledge_preempt(config);
        result.status = RunStatus::kPreempted;
        break;
      }
      if (config.memory_budget != 0 &&
          result.forest.memory_bytes() > config.memory_budget) {
        result.status = RunStatus::kOverBudget;
        break;
      }
    }
  }

  result.trace = sampler.finish(done);
  result.memory = sampler.take_memory();
  if (config.adapt_batch) {
    // Surface the controller's size sequence (the Table 5.3 telemetry) the
    // same way the distributed backends do, as rank 0's report.
    result.ranks.resize(1);
    result.ranks[0].traced = done;
    result.ranks[0].batch_sizes = controller.history();
  }
  result.rng_state = rng.state();
  result.rng_mul = rng.stride_mul();
  result.rng_add = rng.stride_add();
  return result;
}

}  // namespace photon
