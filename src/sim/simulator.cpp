#include "sim/simulator.hpp"

#include <chrono>

namespace photon {

SerialResult run_serial(const Scene& scene, const SerialConfig& config,
                        const SerialResult* resume_from) {
  SerialResult result;
  Lcg48 rng(config.seed, config.rank, config.nranks);
  if (resume_from) {
    result.forest = resume_from->forest;
    result.counters = resume_from->counters;
    rng.set_raw(resume_from->rng_state, resume_from->rng_mul, resume_from->rng_add);
  } else {
    result.forest = BinForest(scene.patch_count(), config.policy);
  }

  const Emitter emitter(scene);
  result.forest.set_total_power(emitter.total_power());
  const Tracer tracer(scene, config.limits);
  ForestSink sink(result.forest);

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  while (done < config.photons) {
    const std::uint64_t batch =
        config.batch < config.photons - done ? config.batch : config.photons - done;
    for (std::uint64_t i = 0; i < batch; ++i) {
      const EmissionSample emission = emitter.emit(rng);
      result.forest.add_emitted(emission.channel);
      tracer.trace(emission, rng, sink, &result.counters);
    }
    done += batch;

    const double t = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    result.trace.points.push_back(
        {t, done, t > 0.0 ? static_cast<double>(done) / t : 0.0});
    result.memory.push_back({done, result.forest.memory_bytes()});
    if (config.max_seconds > 0.0 && t >= config.max_seconds) break;
  }

  result.trace.total_photons = done;
  result.trace.total_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.rng_state = rng.state();
  result.rng_mul = rng.stride_mul();
  result.rng_add = rng.stride_add();
  return result;
}

}  // namespace photon
