#include "sim/checkpoint.hpp"

#include <fstream>

namespace photon {

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x50484F544F4E434BULL;  // "PHOTONCK"

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u64(std::istream& in, std::uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}
}  // namespace

void save_checkpoint(const RunResult& result, std::ostream& out) {
  write_u64(out, kCheckpointMagic);
  write_u64(out, result.rng_state);
  write_u64(out, result.rng_mul);
  write_u64(out, result.rng_add);
  write_u64(out, result.counters.emitted);
  write_u64(out, result.counters.bounces);
  write_u64(out, result.counters.absorbed);
  write_u64(out, result.counters.escaped);
  write_u64(out, result.counters.terminated);
  result.forest.save(out);
}

bool save_checkpoint(const RunResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_checkpoint(result, out);
  return static_cast<bool>(out);
}

bool load_checkpoint(std::istream& in, RunResult& result) {
  std::uint64_t magic = 0;
  if (!read_u64(in, magic) || magic != kCheckpointMagic) return false;
  if (!read_u64(in, result.rng_state) || !read_u64(in, result.rng_mul) ||
      !read_u64(in, result.rng_add) || !read_u64(in, result.counters.emitted) ||
      !read_u64(in, result.counters.bounces) || !read_u64(in, result.counters.absorbed) ||
      !read_u64(in, result.counters.escaped) || !read_u64(in, result.counters.terminated)) {
    return false;
  }
  result.forest = BinForest::load(in);
  return result.forest.tree_count() > 0;
}

bool load_checkpoint(const std::string& path, RunResult& result) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  return load_checkpoint(in, result);
}

}  // namespace photon
