#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <streambuf>

#include <unistd.h>

namespace photon {

namespace {
// Version 2 ("PHOTNCK2"): the payload is length-prefixed and FNV-1a-64
// checksummed, and carries a per-rank RNG section (dist-particle's bitwise
// resume) between the counters and the forest. Version-1 files ("PHOTONCK",
// no length, no checksum, no rank section) are rejected — a checkpoint that
// cannot be verified must not be resumed.
constexpr std::uint64_t kCheckpointMagic = 0x50484F544E434B32ULL;  // "PHOTNCK2"
constexpr std::uint64_t kCheckpointMagicV1 = 0x50484F544F4E434BULL;  // "PHOTONCK"

// Caps keep a corrupt length/count field from turning into a giant
// allocation before the checksum can reject it.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 33;  // 8 GiB
constexpr std::uint64_t kMaxRanks = 1ULL << 16;

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u64(std::istream& in, std::uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}
}  // namespace

void save_checkpoint(const RunResult& result, std::ostream& out) {
  // Stage the payload so it can be length-prefixed and checksummed; a
  // checkpoint is written once per leg, so the extra copy is irrelevant next
  // to the simulation it protects.
  std::ostringstream payload(std::ios::binary);
  write_u64(payload, result.rng_state);
  write_u64(payload, result.rng_mul);
  write_u64(payload, result.rng_add);
  write_u64(payload, result.counters.emitted);
  write_u64(payload, result.counters.bounces);
  write_u64(payload, result.counters.absorbed);
  write_u64(payload, result.counters.escaped);
  write_u64(payload, result.counters.terminated);
  // Per-rank generator states (zeros for backends without per-rank streams;
  // the resume path ignores entries with rng_mul == 0).
  write_u64(payload, result.ranks.size());
  for (const RankReport& rank : result.ranks) {
    write_u64(payload, rank.rng_state);
    write_u64(payload, rank.rng_mul);
    write_u64(payload, rank.rng_add);
  }
  result.forest.save(payload);

  const std::string bytes = payload.str();
  write_u64(out, kCheckpointMagic);
  write_u64(out, bytes.size());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  write_u64(out, fnv1a64(bytes.data(), bytes.size()));
}

// Atomic replace: serialize to <path>.tmp, flush + fsync, then rename over
// the target. The previous checkpoint stays loadable through any crash, kill,
// or watchdog emergency save mid-write — rename is the only step that touches
// the final path, and POSIX rename is atomic. A failure at any step removes
// the tmp file and leaves the target untouched.
bool save_checkpoint(const RunResult& result, const std::string& path) {
  std::ostringstream staged(std::ios::binary);
  save_checkpoint(result, staged);
  const std::string bytes = staged.str();

  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (!out) return false;
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size() &&
      std::fflush(out) == 0 && fsync(fileno(out)) == 0;
  if (std::fclose(out) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

const char* checkpoint_status_name(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::kOk: return "ok";
    case CheckpointStatus::kOpenFailed: return "open-failed";
    case CheckpointStatus::kBadMagic: return "bad-magic";
    case CheckpointStatus::kOldVersion: return "old-version";
    case CheckpointStatus::kBadLength: return "bad-length";
    case CheckpointStatus::kTruncated: return "truncated";
    case CheckpointStatus::kChecksumMismatch: return "checksum-mismatch";
    case CheckpointStatus::kBadHeader: return "bad-header";
    case CheckpointStatus::kBadRankSection: return "bad-rank-section";
    case CheckpointStatus::kBadForest: return "bad-forest";
  }
  return "unknown";
}

CheckpointStatus load_checkpoint_status(std::istream& in, RunResult& result) {
  std::uint64_t magic = 0, length = 0;
  if (!read_u64(in, magic) || magic != kCheckpointMagic) {
    return magic == kCheckpointMagicV1 ? CheckpointStatus::kOldVersion
                                       : CheckpointStatus::kBadMagic;
  }
  if (!read_u64(in, length)) return CheckpointStatus::kTruncated;
  if (length > kMaxPayloadBytes) return CheckpointStatus::kBadLength;

  // Read the payload in bounded chunks: the length field is untrusted, so a
  // corrupt value must hit the truncation check after at most one chunk of
  // over-allocation, not commit gigabytes up front.
  constexpr std::uint64_t kChunk = 1ULL << 24;  // 16 MiB
  std::string bytes;
  while (static_cast<std::uint64_t>(bytes.size()) < length) {
    const std::uint64_t want =
        std::min<std::uint64_t>(kChunk, length - static_cast<std::uint64_t>(bytes.size()));
    const std::size_t off = bytes.size();
    bytes.resize(off + static_cast<std::size_t>(want));
    in.read(bytes.data() + off, static_cast<std::streamsize>(want));
    if (static_cast<std::uint64_t>(in.gcount()) != want) {
      return CheckpointStatus::kTruncated;
    }
  }

  std::uint64_t checksum = 0;
  if (!read_u64(in, checksum)) return CheckpointStatus::kTruncated;
  if (checksum != fnv1a64(bytes.data(), bytes.size())) {
    // Corrupt — resuming silently-wrong state is worse than failing.
    return CheckpointStatus::kChecksumMismatch;
  }

  // Parse the verified payload in place (a streambuf view, not an
  // istringstream, which would copy the multi-GiB buffer a second time).
  struct MemBuf : std::streambuf {
    MemBuf(char* data, std::size_t n) { setg(data, data, data + n); }
  } membuf(bytes.data(), bytes.size());
  std::istream payload(&membuf);
  std::uint64_t nranks = 0;
  if (!read_u64(payload, result.rng_state) || !read_u64(payload, result.rng_mul) ||
      !read_u64(payload, result.rng_add) || !read_u64(payload, result.counters.emitted) ||
      !read_u64(payload, result.counters.bounces) ||
      !read_u64(payload, result.counters.absorbed) ||
      !read_u64(payload, result.counters.escaped) ||
      !read_u64(payload, result.counters.terminated) || !read_u64(payload, nranks) ||
      nranks > kMaxRanks) {
    return CheckpointStatus::kBadHeader;
  }
  result.ranks.assign(static_cast<std::size_t>(nranks), RankReport{});
  for (RankReport& rank : result.ranks) {
    if (!read_u64(payload, rank.rng_state) || !read_u64(payload, rank.rng_mul) ||
        !read_u64(payload, rank.rng_add)) {
      return CheckpointStatus::kBadRankSection;
    }
  }
  result.forest = BinForest::load(payload);
  if (!payload || result.forest.tree_count() == 0) return CheckpointStatus::kBadForest;
  return CheckpointStatus::kOk;
}

CheckpointStatus load_checkpoint_status(const std::string& path, RunResult& result) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointStatus::kOpenFailed;
  return load_checkpoint_status(in, result);
}

bool load_checkpoint(std::istream& in, RunResult& result) {
  return load_checkpoint_status(in, result) == CheckpointStatus::kOk;
}

bool load_checkpoint(const std::string& path, RunResult& result) {
  return load_checkpoint_status(path, result) == CheckpointStatus::kOk;
}

}  // namespace photon
