// The acceleration-structure seam.
//
// Every spatial index in Photon answers the same contract the octree
// established (PR 2/4): build() ingests the patch array and packs each leaf's
// hit-test constants into lane-padded SoA blocks (geom/leaf_kernel.hpp);
// intersect()/intersect_counted() run a front-to-back traversal whose
// accepted hit is bitwise-equal to the brute linear scan
// (Scene::intersect_brute) — the equivalence suite pins every implementation
// against that reference on all bundled scenes. Queries answer entirely from
// the packed snapshot taken at build() time, never from the Patch array.
//
// Three structures live behind the seam:
//
//   octree  flat pointer-free octree, XOR-octant front-to-back traversal
//           (geom/octree.hpp) — duplicated references, spatial partition
//   bvh     binned-SAH BVH, flat nodes in DFS order, CSR leaf ranges over an
//           object partition (geom/bvh.hpp) — each patch in exactly one leaf
//   grid    nested uniform grid, dense sub-grids in hot cells, DDA traversal
//           with first-confirmed-nearest early-out (geom/grid.hpp)
//
// All three reuse the one SIMD leaf kernel and contract a deterministic
// parallel build: the packed arrays are bitwise-identical for any
// BuildParams::workers value. Scene holds an AccelStructure by pointer, so
// dependents of geom/scene.hpp compile against this header alone —
// structure-specific headers are implementation detail.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/aabb.hpp"
#include "core/ray.hpp"
#include "geom/patch.hpp"

namespace photon {

// Closest-hit result over a whole structure (PatchHit plus the patch id).
struct SceneHit {
  int patch = -1;
  double dist = kNoHit;
  double s = 0.0;
  double t = 0.0;
  bool front = true;
};

// Deterministic traversal-work counters. Wall clocks are noisy; nodes (or
// cells) visited and patch tests per ray are not, so the bench/test layers
// use the counted traversal to pin query quality. patch_tests counts real
// patch references, not padded SoA lanes — identical across kernel backends.
struct TraversalStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t patch_tests = 0;
};

enum class AccelKind { kOctree, kBvh, kGrid };

// One knob bundle for every structure; each implementation reads the fields
// it understands and ignores the rest (the same deal RunConfig makes with
// the backends).
struct AccelBuildParams {
  // All structures: parallel-build width; <= 0 means one task slot per
  // hardware thread. The built arrays are bitwise-identical for any value.
  int workers = 0;

  // octree: subdivision limits (defaults tuned by bench sweeps, see
  // geom/octree.hpp).
  int max_depth = 12;
  int max_leaf_items = 12;

  // bvh: leaf capacity and SAH bin count. Object partitions keep leaves
  // single-copy, so smaller leaves pay off earlier than the octree's.
  int bvh_leaf_items = 4;
  int sah_bins = 16;

  // grid: coarse resolution scale (cells per axis ~ density * cbrt(n),
  // shaped by the box aspect), refinement threshold (a coarse cell holding
  // more references than this gets a dense sub-grid), and the sub-grid
  // resolution per axis.
  double grid_density = 2.0;
  int grid_refine_threshold = 24;
  int grid_sub_res = 4;
};

class AccelStructure {
 public:
  virtual ~AccelStructure() = default;

  virtual void build(std::span<const Patch> patches, const AccelBuildParams& params) = 0;
  void build(std::span<const Patch> patches) { build(patches, AccelBuildParams{}); }

  virtual AccelKind kind() const = 0;
  virtual bool built() const = 0;
  virtual const Aabb& bounds() const = 0;

  // Structure size in its native unit: octree/bvh nodes, grid cells
  // (coarse + sub). depth() is tree depth, or 1 + refined levels for the grid.
  virtual std::size_t node_count() const = 0;
  virtual int depth() const = 0;
  // Total patch references across all leaves (object-partitioned structures
  // reference each patch once; spatial partitions may duplicate).
  virtual std::size_t item_ref_count() const = 0;
  // Total SoA lanes including per-leaf padding to the kernel lane width.
  virtual std::size_t lane_count() const = 0;
  // Resident bytes of the packed arrays — the bench shootout's memory column.
  virtual std::size_t memory_bytes() const = 0;

  // Closest hit before tmax written to `best`; returns false and leaves
  // `best` cleared (patch < 0, dist = tmax) on a miss. The allocation-free
  // fast path the tracer uses.
  virtual bool intersect(const Ray& ray, double tmax, SceneHit& best) const = 0;
  virtual bool intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                                 TraversalStats& stats) const = 0;

  // Convenience wrapper over the fast path.
  std::optional<SceneHit> intersect(const Ray& ray, double tmax = kNoHit) const {
    SceneHit best;
    if (!intersect(ray, tmax, best)) return std::nullopt;
    return best;
  }

  // True when `other` is the same structure kind with bitwise-equal packed
  // arrays — the parallel-build determinism pin.
  virtual bool identical_to(const AccelStructure& other) const = 0;
};

// Factory over the registered structure kinds (the CLI's --accel values).
std::unique_ptr<AccelStructure> make_accel(AccelKind kind);
const char* accel_kind_name(AccelKind kind);
bool accel_kind_from_string(const std::string& name, AccelKind& kind);
// Every kind, in the canonical shootout order {octree, bvh, grid}.
std::vector<AccelKind> accel_kinds();

}  // namespace photon
