// Octree spatial index over patches (chapter 6, "Massive Parallelism"):
// "The octree data structure orders the intersection testing for a given
// photon such that we only test polygons in the space the photon is traveling
// through. When an intersection is detected, it is the closest intersection
// and further testing is not needed."
//
// Children are visited front-to-back along the ray; the traversal terminates
// as soon as a hit is found whose distance precedes the entry of every
// remaining node.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/patch.hpp"

namespace photon {

struct SceneHit {
  int patch = -1;
  double dist = kNoHit;
  double s = 0.0;
  double t = 0.0;
  bool front = true;
};

class Octree {
 public:
  struct BuildParams {
    int max_depth = 10;
    int max_leaf_items = 8;
  };

  Octree() = default;

  void build(std::span<const Patch> patches, const BuildParams& params);
  void build(std::span<const Patch> patches) { build(patches, BuildParams{}); }

  bool built() const { return !nodes_.empty(); }
  const Aabb& bounds() const { return bounds_; }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

  // Closest hit over all indexed patches, or nullopt.
  std::optional<SceneHit> intersect(std::span<const Patch> patches, const Ray& ray,
                                    double tmax = kNoHit) const;

 private:
  struct Node {
    Aabb box;
    std::int32_t first_child = -1;  // index of 8 consecutive children, -1 for leaf
    std::vector<std::int32_t> items;
  };

  std::int32_t build_node(std::span<const Patch> patches, const Aabb& box,
                          std::vector<std::int32_t> items, int depth, const BuildParams& params);
  void intersect_node(std::span<const Patch> patches, std::int32_t node_idx, const Ray& ray,
                      double tmin, double tmax, SceneHit& best) const;

  std::vector<Node> nodes_;
  Aabb bounds_;
  int depth_ = 0;
};

}  // namespace photon
