// Octree spatial index over patches (chapter 6, "Massive Parallelism"):
// "The octree data structure orders the intersection testing for a given
// photon such that we only test polygons in the space the photon is traveling
// through. When an intersection is detected, it is the closest intersection
// and further testing is not needed."
//
// The index is stored pointer-free for the hot path: nodes live in one flat
// array with their non-empty children packed consecutively (an octant bitmask
// plus a popcount locates a child), and leaf item lists are a CSR pair
// (`item_offsets`/`item_ids`) instead of a heap vector per node. Traversal is
// iterative with an explicit stack and visits children front-to-back in XOR
// octant order derived from the ray's direction signs — no per-node sort.
// Because children are axis-aligned octants of their parent, that order is a
// correct front-to-back sequence, so the first accepted hit that precedes
// every remaining node entry is the closest. The brute-force reference scan
// (Scene::intersect_brute) stays as the equivalence-test seam.
//
// Leaf hit tests are data-parallel: each leaf's patch hit-test constants live
// in structure-of-arrays blocks (one contiguous double array per constant,
// see LeafSoA) padded to the SIMD lane width with never-hit sentinels, and
// the kernel tests kernel_lane_width() patches per step with a branchless
// min-reduction (core/simd.hpp; AVX/SSE2/scalar selected at configure time).
// Every backend performs identical IEEE double operations per lane, so the
// accepted hit is bitwise-equal to the scalar Patch::intersect reference on
// all of them. Queries answer entirely from this packed snapshot — they do
// not read the Patch array the index was built from.
//
// build() decomposes per top-level octant across threads
// (BuildParams::workers); subtree arenas are stitched in octant order, so the
// flattened node/CSR/SoA arrays are bitwise-identical for any worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/patch.hpp"

namespace photon {

struct SceneHit {
  int patch = -1;
  double dist = kNoHit;
  double s = 0.0;
  double t = 0.0;
  bool front = true;
};

// Compile-time kernel selection of the leaf-intersection TU: lane width in
// doubles (4 for AVX, 2 for SSE2, 4 for the scalar fallback) and the backend
// name, for bench artifacts and diagnostics.
int kernel_lane_width();
const char* kernel_backend();

class Octree {
 public:
  // Defaults tuned against the bundled scenes (bench_octree_params sweeps
  // them): with the SoA lane-parallel leaf tests, patch tests are cheap and
  // node visits (random box reads + stack traffic) are the expensive unit, so
  // moderately fat leaves beat the classic small-leaf shape by ~2x.
  // Re-checked after the pool-backed parallel build (BENCH_octree_params.json):
  // leaf capacities 8-32 form one plateau within measurement noise, so the
  // defaults stand.
  struct BuildParams {
    int max_depth = 12;
    int max_leaf_items = 12;
    // Build threads for the per-octant task decomposition; <= 0 means one per
    // hardware thread. The built arrays are bitwise-identical for any value.
    int workers = 0;
  };

  // Explicit traversal stack bound: at most 7 siblings deferred per level on
  // the path down, so 8 * (max depth + 1) is comfortably safe. Build depth is
  // clamped to kMaxDepth.
  static constexpr int kMaxDepth = 24;

  Octree() = default;

  void build(std::span<const Patch> patches, const BuildParams& params);
  void build(std::span<const Patch> patches) { build(patches, BuildParams{}); }

  bool built() const { return !nodes_.empty(); }
  const Aabb& bounds() const { return bounds_; }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  // Total patch references across all leaves (a patch overlapping several
  // octants is referenced once per leaf).
  std::size_t item_ref_count() const { return item_ids_.size(); }
  // Total SoA lanes including the per-leaf padding to the kernel lane width.
  std::size_t lane_count() const { return soa_.id.size(); }

  // Closest hit over all indexed patches written to `best`; returns false and
  // leaves `best` cleared (patch < 0, dist = tmax) when nothing is hit before
  // tmax. This is the allocation-free fast path the tracer uses. Queries
  // answer from the packed SoA snapshot taken at build() time.
  bool intersect(const Ray& ray, double tmax, SceneHit& best) const;

  // Deterministic traversal-work counters. Wall clocks are noisy; nodes
  // visited and patch tests per ray are not, so the bench/test layers use the
  // counted variant to pin traversal quality. patch_tests counts real patch
  // references, not padded lanes — the numbers are identical across kernel
  // backends and lane widths.
  struct TraversalStats {
    std::uint64_t nodes_visited = 0;
    std::uint64_t patch_tests = 0;
  };
  bool intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                         TraversalStats& stats) const;

  // Convenience wrapper over the fast path.
  std::optional<SceneHit> intersect(const Ray& ray, double tmax = kNoHit) const {
    SceneHit best;
    if (!intersect(ray, tmax, best)) return std::nullopt;
    return best;
  }

  // Structure-of-arrays leaf storage: lane k of a leaf's block holds a
  // sequential copy of one referenced patch's precomputed hit-test constants
  // (Patch::hit_constants()), one contiguous array per scalar so the kernel
  // loads a full vector of each with a single unit-stride read. Blocks are
  // padded to the kernel lane width with sentinel lanes (all-zero constants:
  // denom == 0 rejects them exactly like the scalar parallel-plane test;
  // id == -1). The duplication (one copy per referencing leaf) buys
  // coherence, same trade the previous AoS packed array made.
  struct LeafSoA {
    std::vector<double> nx, ny, nz, plane_d;
    std::vector<double> sx, sy, sz, s_base;
    std::vector<double> tx, ty, tz, t_base;
    std::vector<std::int32_t> id;  // global patch id; -1 in padding lanes

    void clear();
    void resize(std::size_t lanes);
  };

  // CSR views, exposed for the build-determinism tests and analysis tools.
  std::span<const std::uint32_t> item_offsets() const { return item_offsets_; }
  std::span<const std::int32_t> item_ids() const { return item_ids_; }

  // True when every flattened array (nodes, CSR item lists, lane offsets and
  // SoA constants) is bitwise-equal — the parallel-build determinism pin.
  bool identical_to(const Octree& other) const;

 private:
  struct Node {
    Aabb box;
    std::int32_t first_child = -1;  // base of the packed non-empty children; -1 for leaf
    std::uint8_t child_mask = 0;    // bit o set when octant o has a child
  };

  template <bool Count>
  bool intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                      TraversalStats* stats) const;

  std::vector<Node> nodes_;
  // CSR leaf item lists: node i's items are item_ids_[item_offsets_[i] ..
  // item_offsets_[i + 1]).
  std::vector<std::uint32_t> item_offsets_;
  std::vector<std::int32_t> item_ids_;
  // SoA leaf blocks: node i's lanes are [lane_offsets_[i], lane_offsets_[i+1])
  // in soa_, a multiple of the kernel lane width (items padded with
  // sentinels). Same item order as the CSR lists.
  std::vector<std::uint32_t> lane_offsets_;
  LeafSoA soa_;
  Aabb bounds_;
  int depth_ = 0;
};

}  // namespace photon
