// Octree spatial index over patches (chapter 6, "Massive Parallelism"):
// "The octree data structure orders the intersection testing for a given
// photon such that we only test polygons in the space the photon is traveling
// through. When an intersection is detected, it is the closest intersection
// and further testing is not needed."
//
// The index is stored pointer-free for the hot path: nodes live in one flat
// array with their non-empty children packed consecutively (an octant bitmask
// plus a popcount locates a child), and leaf item lists are a CSR pair
// (`item_offsets`/`item_ids`) instead of a heap vector per node. Traversal is
// iterative with an explicit stack and visits children front-to-back in XOR
// octant order derived from the ray's direction signs — no per-node sort.
// Because children are axis-aligned octants of their parent, that order is a
// correct front-to-back sequence, so the first accepted hit that precedes
// every remaining node entry is the closest. The brute-force reference scan
// (Scene::intersect_brute) stays as the equivalence-test seam.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/patch.hpp"

namespace photon {

struct SceneHit {
  int patch = -1;
  double dist = kNoHit;
  double s = 0.0;
  double t = 0.0;
  bool front = true;
};

class Octree {
 public:
  // Defaults tuned against the bundled scenes (bench_octree_params sweeps
  // them): with the packed streamed leaf tests, patch tests are cheap and
  // node visits (random box reads + stack traffic) are the expensive unit, so
  // moderately fat leaves beat the classic small-leaf shape by ~2x.
  struct BuildParams {
    int max_depth = 12;
    int max_leaf_items = 12;
  };

  // Explicit traversal stack bound: at most 7 siblings deferred per level on
  // the path down, so 8 * (max depth + 1) is comfortably safe. Build depth is
  // clamped to kMaxDepth.
  static constexpr int kMaxDepth = 24;

  Octree() = default;

  void build(std::span<const Patch> patches, const BuildParams& params);
  void build(std::span<const Patch> patches) { build(patches, BuildParams{}); }

  bool built() const { return !nodes_.empty(); }
  const Aabb& bounds() const { return bounds_; }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  // Total patch references across all leaves (a patch overlapping several
  // octants is referenced once per leaf).
  std::size_t item_ref_count() const { return item_ids_.size(); }

  // Closest hit over all indexed patches written to `best`; returns false and
  // leaves `best` cleared (patch < 0, dist = tmax) when nothing is hit before
  // tmax. This is the allocation-free fast path the tracer uses.
  bool intersect(std::span<const Patch> patches, const Ray& ray, double tmax,
                 SceneHit& best) const;

  // Deterministic traversal-work counters. Wall clocks are noisy; nodes
  // visited and patch tests per ray are not, so the bench/test layers use the
  // counted variant to pin traversal quality.
  struct TraversalStats {
    std::uint64_t nodes_visited = 0;
    std::uint64_t patch_tests = 0;
  };
  bool intersect_counted(std::span<const Patch> patches, const Ray& ray, double tmax,
                         SceneHit& best, TraversalStats& stats) const;

  // Convenience wrapper over the fast path.
  std::optional<SceneHit> intersect(std::span<const Patch> patches, const Ray& ray,
                                    double tmax = kNoHit) const {
    SceneHit best;
    if (!intersect(patches, ray, tmax, best)) return std::nullopt;
    return best;
  }

 private:
  struct Node {
    Aabb box;
    std::int32_t first_child = -1;  // base of the packed non-empty children; -1 for leaf
    std::uint8_t child_mask = 0;    // bit o set when octant o has a child
  };

  // Per leaf reference, a sequential copy of the patch's precomputed hit-test
  // constants (Patch::plane_d/s_axis/t_axis). Leaf tests stream through this
  // array line by line instead of chasing cold 136-byte Patch objects by
  // index — the duplication (one copy per referencing leaf) buys coherence.
  struct PackedPatch {
    Vec3 normal;
    double plane_d;
    Vec3 s_axis;
    double s_base;
    Vec3 t_axis;
    double t_base;
    std::int32_t id;
  };

  template <bool Count>
  bool intersect_impl(std::span<const Patch> patches, const Ray& ray, double tmax,
                      SceneHit& best, TraversalStats* stats) const;

  std::vector<Node> nodes_;
  // CSR leaf item lists: node i's items are item_ids_[item_offsets_[i] ..
  // item_offsets_[i + 1]), with packed_[k] holding the hit-test constants for
  // item_ids_[k].
  std::vector<std::uint32_t> item_offsets_;
  std::vector<std::int32_t> item_ids_;
  std::vector<PackedPatch> packed_;
  Aabb bounds_;
  int depth_ = 0;
};

}  // namespace photon
