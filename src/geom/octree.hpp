// Octree spatial index over patches (chapter 6, "Massive Parallelism"):
// "The octree data structure orders the intersection testing for a given
// photon such that we only test polygons in the space the photon is traveling
// through. When an intersection is detected, it is the closest intersection
// and further testing is not needed."
//
// One of the three structures behind the AccelStructure seam (geom/accel.hpp;
// the brute-force scan Scene::intersect_brute stays the equivalence-test
// reference for all of them). The index is stored pointer-free for the hot
// path: nodes live in one flat array with their non-empty children packed
// consecutively (an octant bitmask plus a popcount locates a child), and leaf
// item lists are a CSR pair (`item_offsets`/`item_ids`) instead of a heap
// vector per node. Traversal is iterative with an explicit stack and visits
// children front-to-back in XOR octant order derived from the ray's direction
// signs — no per-node sort. Because children are axis-aligned octants of
// their parent, that order is a correct front-to-back sequence, so the first
// accepted hit that precedes every remaining node entry is the closest.
//
// Leaf hit tests run on the shared SoA kernel (geom/leaf_kernel.hpp): each
// leaf's patch constants live in lane-padded structure-of-arrays blocks and
// the accepted hit is bitwise-equal to the scalar Patch::intersect reference.
// Queries answer entirely from this packed snapshot — they do not read the
// Patch array the index was built from.
//
// build() decomposes per top-level octant across threads
// (BuildParams::workers); subtree arenas are stitched in octant order, so the
// flattened node/CSR/SoA arrays are bitwise-identical for any worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/accel.hpp"
#include "geom/leaf_kernel.hpp"
#include "geom/patch.hpp"

namespace photon {

class Octree final : public AccelStructure {
 public:
  // Defaults tuned against the bundled scenes (bench_accel races them): with
  // the SoA lane-parallel leaf tests, patch tests are cheap and node visits
  // (random box reads + stack traffic) are the expensive unit, so moderately
  // fat leaves beat the classic small-leaf shape by ~2x. Re-checked after the
  // pool-backed parallel build: leaf capacities 8-32 form one plateau within
  // measurement noise, so the defaults stand (BENCH_accel.json).
  struct BuildParams {
    int max_depth = 12;
    int max_leaf_items = 12;
    // Build threads for the per-octant task decomposition; <= 0 means one per
    // hardware thread. The built arrays are bitwise-identical for any value.
    int workers = 0;
  };

  // Explicit traversal stack bound: at most 7 siblings deferred per level on
  // the path down, so 8 * (max depth + 1) is comfortably safe. Build depth is
  // clamped to kMaxDepth.
  static constexpr int kMaxDepth = 24;

  Octree() = default;

  void build(std::span<const Patch> patches, const BuildParams& params);
  void build(std::span<const Patch> patches) { build(patches, BuildParams{}); }
  // The seam entry point: maps the shared knob bundle onto BuildParams.
  void build(std::span<const Patch> patches, const AccelBuildParams& params) override {
    BuildParams p;
    p.max_depth = params.max_depth;
    p.max_leaf_items = params.max_leaf_items;
    p.workers = params.workers;
    build(patches, p);
  }

  AccelKind kind() const override { return AccelKind::kOctree; }
  bool built() const override { return !nodes_.empty(); }
  const Aabb& bounds() const override { return bounds_; }
  std::size_t node_count() const override { return nodes_.size(); }
  int depth() const override { return depth_; }
  // Total patch references across all leaves (a patch overlapping several
  // octants is referenced once per leaf).
  std::size_t item_ref_count() const override { return item_ids_.size(); }
  // Total SoA lanes including the per-leaf padding to the kernel lane width.
  std::size_t lane_count() const override { return soa_.size(); }
  std::size_t memory_bytes() const override;

  // Closest hit over all indexed patches written to `best`; returns false and
  // leaves `best` cleared (patch < 0, dist = tmax) when nothing is hit before
  // tmax. This is the allocation-free fast path the tracer uses.
  bool intersect(const Ray& ray, double tmax, SceneHit& best) const override;
  bool intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                         TraversalStats& stats) const override;
  using AccelStructure::intersect;  // the optional-returning wrapper

  // CSR views, exposed for the build-determinism tests and analysis tools.
  std::span<const std::uint32_t> item_offsets() const { return item_offsets_; }
  std::span<const std::int32_t> item_ids() const { return item_ids_; }

  // True when every flattened array (nodes, CSR item lists, lane offsets and
  // SoA constants) is bitwise-equal — the parallel-build determinism pin.
  bool identical_to(const Octree& other) const;
  bool identical_to(const AccelStructure& other) const override;

 private:
  struct Node {
    Aabb box;
    std::int32_t first_child = -1;  // base of the packed non-empty children; -1 for leaf
    std::uint8_t child_mask = 0;    // bit o set when octant o has a child
  };

  template <bool Count>
  bool intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                      TraversalStats* stats) const;

  std::vector<Node> nodes_;
  // CSR leaf item lists: node i's items are item_ids_[item_offsets_[i] ..
  // item_offsets_[i + 1]).
  std::vector<std::uint32_t> item_offsets_;
  std::vector<std::int32_t> item_ids_;
  // SoA leaf blocks: node i's lanes are [lane_offsets_[i], lane_offsets_[i+1])
  // in soa_, a multiple of the kernel lane width (items padded with
  // sentinels). Same item order as the CSR lists.
  std::vector<std::uint32_t> lane_offsets_;
  LeafSoA soa_;
  Aabb bounds_;
  int depth_ = 0;
};

}  // namespace photon
