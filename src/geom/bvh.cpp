#include "geom/bvh.hpp"

#include <algorithm>
#include <array>
#include <thread>
#include <utility>

#include "engine/pool.hpp"
#include "geom/leaf_kernel_inl.hpp"

namespace photon {

namespace {

// Build-time node in a per-task arena; child refs are local arena indices.
struct TempNode {
  Aabb box;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::uint32_t begin = 0;  // leaf item range into the shared id array
  std::uint32_t end = 0;
};

double half_area(const Aabb& b) {
  if (b.empty()) return 0.0;
  const Vec3 e = b.extent();
  return e.x * e.y + e.y * e.z + e.z * e.x;
}

struct BuildCtx {
  std::span<const Patch> patches;
  std::vector<std::int32_t>* ids = nullptr;  // mutable permutation, partitioned in place
  std::vector<Aabb> patch_box;               // per patch id
  std::vector<Vec3> centroid;                // per patch id
  int leaf_items = 4;
  int bins = 16;
};

Aabb range_box(const BuildCtx& ctx, std::uint32_t begin, std::uint32_t end) {
  Aabb box;
  for (std::uint32_t i = begin; i < end; ++i) {
    box.expand(ctx.patch_box[static_cast<std::size_t>((*ctx.ids)[i])]);
  }
  return box;
}

// Chooses a split point for [begin, end) and partitions the id array in
// place. Returns the mid index (strictly inside the range), or `begin` when
// the range should become a leaf (all centroids coincident). Deterministic:
// binning arithmetic is serial-identical, partitions are stable, the median
// fallback sorts with a full (centroid, id) key.
std::uint32_t split_range(BuildCtx& ctx, std::uint32_t begin, std::uint32_t end) {
  Aabb cb;
  for (std::uint32_t i = begin; i < end; ++i) {
    cb.expand(ctx.centroid[static_cast<std::size_t>((*ctx.ids)[i])]);
  }
  const Vec3 ce = cb.extent();
  int axis = 0;
  if (ce.y > ce[axis]) axis = 1;
  if (ce.z > ce[axis]) axis = 2;
  const double extent = ce[axis];
  if (!(extent > 0.0)) return begin;  // coincident centroids: no useful split

  const int B = std::clamp(ctx.bins, 2, 64);
  const double scale = static_cast<double>(B) / extent;
  const auto bin_of = [&](std::int32_t id) {
    const double c = ctx.centroid[static_cast<std::size_t>(id)][axis] - cb.lo[axis];
    return std::min(B - 1, static_cast<int>(c * scale));
  };

  std::array<std::uint32_t, 64> bin_count{};
  std::array<Aabb, 64> bin_box;
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::int32_t id = (*ctx.ids)[i];
    const int b = bin_of(id);
    ++bin_count[static_cast<std::size_t>(b)];
    bin_box[static_cast<std::size_t>(b)].expand(ctx.patch_box[static_cast<std::size_t>(id)]);
  }

  // Sweep: suffix areas right-to-left, then prefix left-to-right picking the
  // minimum SAH cost plane (ties to the lowest plane index).
  std::array<double, 64> right_area{};
  std::array<std::uint32_t, 64> right_count{};
  Aabb acc;
  std::uint32_t cnt = 0;
  for (int b = B - 1; b >= 1; --b) {
    acc.expand(bin_box[static_cast<std::size_t>(b)]);
    cnt += bin_count[static_cast<std::size_t>(b)];
    right_area[static_cast<std::size_t>(b)] = half_area(acc);
    right_count[static_cast<std::size_t>(b)] = cnt;
  }
  acc = Aabb{};
  cnt = 0;
  int best_plane = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int b = 0; b < B - 1; ++b) {
    acc.expand(bin_box[static_cast<std::size_t>(b)]);
    cnt += bin_count[static_cast<std::size_t>(b)];
    if (cnt == 0 || right_count[static_cast<std::size_t>(b + 1)] == 0) continue;
    const double cost = half_area(acc) * static_cast<double>(cnt) +
                        right_area[static_cast<std::size_t>(b + 1)] *
                            static_cast<double>(right_count[static_cast<std::size_t>(b + 1)]);
    if (cost < best_cost) {
      best_cost = cost;
      best_plane = b;
    }
  }

  if (best_plane < 0) {
    // Every centroid landed in one bin: sorted-median fallback with a total
    // (centroid, id) key so the permutation is worker-independent.
    std::stable_sort(ctx.ids->begin() + begin, ctx.ids->begin() + end,
                     [&](std::int32_t a, std::int32_t b) {
                       const double ca = ctx.centroid[static_cast<std::size_t>(a)][axis];
                       const double cb2 = ctx.centroid[static_cast<std::size_t>(b)][axis];
                       if (ca != cb2) return ca < cb2;
                       return a < b;
                     });
    return begin + (end - begin) / 2;
  }

  const auto mid_it = std::stable_partition(
      ctx.ids->begin() + begin, ctx.ids->begin() + end,
      [&](std::int32_t id) { return bin_of(id) <= best_plane; });
  return static_cast<std::uint32_t>(mid_it - ctx.ids->begin());
}

// Finalizes a leaf: items sorted ascending by patch id so the in-leaf scan
// order matches the brute reference's (equal-distance ties resolve the same
// way), regardless of how splits permuted the range.
std::int32_t make_leaf(BuildCtx& ctx, std::vector<TempNode>& arena, const Aabb& box,
                       std::uint32_t begin, std::uint32_t end) {
  std::sort(ctx.ids->begin() + begin, ctx.ids->begin() + end);
  const auto idx = static_cast<std::int32_t>(arena.size());
  arena.push_back(TempNode{box, -1, -1, begin, end});
  return idx;
}

std::int32_t build_range(BuildCtx& ctx, std::vector<TempNode>& arena, const Aabb& box,
                         std::uint32_t begin, std::uint32_t end, int depth, int& deepest) {
  deepest = std::max(deepest, depth);
  const std::uint32_t count = end - begin;
  if (static_cast<int>(count) <= ctx.leaf_items || depth >= Bvh::kMaxDepth) {
    return make_leaf(ctx, arena, box, begin, end);
  }
  const std::uint32_t mid = split_range(ctx, begin, end);
  if (mid <= begin || mid >= end) return make_leaf(ctx, arena, box, begin, end);

  const auto idx = static_cast<std::int32_t>(arena.size());
  arena.push_back(TempNode{box, -1, -1, 0, 0});
  const Aabb lbox = range_box(ctx, begin, mid);
  const Aabb rbox = range_box(ctx, mid, end);
  const std::int32_t l = build_range(ctx, arena, lbox, begin, mid, depth + 1, deepest);
  const std::int32_t r = build_range(ctx, arena, rbox, mid, end, depth + 1, deepest);
  arena[static_cast<std::size_t>(idx)].left = l;
  arena[static_cast<std::size_t>(idx)].right = r;
  return idx;
}

}  // namespace

void Bvh::build(std::span<const Patch> patches, const AccelBuildParams& params) {
  nodes_.clear();
  item_offsets_.clear();
  item_ids_.clear();
  lane_offsets_.clear();
  soa_.clear();
  depth_ = 0;
  bounds_ = Aabb{};
  if (patches.empty()) return;

  std::vector<std::int32_t> ids(patches.size());
  BuildCtx ctx;
  ctx.patches = patches;
  ctx.ids = &ids;
  ctx.patch_box.resize(patches.size());
  ctx.centroid.resize(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    ids[i] = static_cast<std::int32_t>(i);
    ctx.patch_box[i] = patches[i].bounds();
    ctx.centroid[i] = ctx.patch_box[i].center();
    bounds_.expand(ctx.patch_box[i]);
  }
  ctx.leaf_items = std::max(1, params.bvh_leaf_items);
  ctx.bins = params.sah_bins;

  int workers = params.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  constexpr std::size_t kParallelBuildMinItems = 2048;
  if (params.workers <= 0 && patches.size() < kParallelBuildMinItems) workers = 1;

  // Fixed task decomposition (independent of `workers`): expand the top of
  // the tree serially to depth kTopDepth, turning each frontier range into a
  // task. Child refs < -1 encode a task id as -(task + 2) until stitching.
  constexpr int kTopDepth = 3;  // up to 8 subtree tasks
  struct SubtreeTask {
    Aabb box;
    std::uint32_t begin = 0, end = 0;
    int depth = 0;
    std::vector<TempNode> arena;
    int deepest = 0;
  };
  std::vector<TempNode> top;
  std::vector<SubtreeTask> tasks;
  int top_deepest = 0;

  const auto expand_top = [&](auto&& self, const Aabb& box, std::uint32_t begin,
                              std::uint32_t end, int depth) -> std::int32_t {
    top_deepest = std::max(top_deepest, depth);
    const std::uint32_t count = end - begin;
    if (static_cast<int>(count) <= ctx.leaf_items || depth >= kMaxDepth) {
      return make_leaf(ctx, top, box, begin, end);
    }
    if (depth >= kTopDepth) {
      tasks.push_back(SubtreeTask{box, begin, end, depth, {}, depth});
      return -static_cast<std::int32_t>(tasks.size()) - 1;
    }
    const std::uint32_t mid = split_range(ctx, begin, end);
    if (mid <= begin || mid >= end) return make_leaf(ctx, top, box, begin, end);
    const auto idx = static_cast<std::int32_t>(top.size());
    top.push_back(TempNode{box, -1, -1, 0, 0});
    const Aabb lbox = range_box(ctx, begin, mid);
    const Aabb rbox = range_box(ctx, mid, end);
    const std::int32_t l = self(self, lbox, begin, mid, depth + 1);
    const std::int32_t r = self(self, rbox, mid, end, depth + 1);
    top[static_cast<std::size_t>(idx)].left = l;
    top[static_cast<std::size_t>(idx)].right = r;
    return idx;
  };
  const std::int32_t root_ref =
      expand_top(expand_top, bounds_, 0, static_cast<std::uint32_t>(ids.size()), 0);

  // Each task builds its own arena over a disjoint id subrange — in-place
  // partitions never touch another task's range, so the pool schedule cannot
  // perturb the result.
  const auto run_task = [&](std::size_t t) {
    SubtreeTask& s = tasks[t];
    build_range(ctx, s.arena, s.box, s.begin, s.end, s.depth, s.deepest);
  };
  const int T = std::min<int>(workers, static_cast<int>(tasks.size()));
  if (T <= 1) {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
  } else {
    WorkerPool::instance().run(tasks.size(), T, [&](std::uint64_t i, int) {
      run_task(static_cast<std::size_t>(i));
    });
  }

  // Stitch: append each task arena in task order, rebasing local child refs;
  // then patch the top arena's encoded task refs to the arenas' roots (local
  // index 0, i.e. the task's offset).
  std::vector<std::int32_t> task_offset(tasks.size(), -1);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const auto offset = static_cast<std::int32_t>(top.size());
    task_offset[t] = offset;
    for (TempNode& n : tasks[t].arena) {
      if (n.left >= 0) n.left += offset;
      if (n.right >= 0) n.right += offset;
      top.push_back(std::move(n));
    }
    depth_ = std::max(depth_, tasks[t].deepest);
  }
  depth_ = std::max(depth_, top_deepest);
  const auto resolve = [&](std::int32_t ref) {
    return ref < -1 ? task_offset[static_cast<std::size_t>(-ref - 2)] : ref;
  };
  for (TempNode& n : top) {
    n.left = resolve(n.left);
    n.right = resolve(n.right);
  }
  const std::int32_t root = resolve(root_ref);

  // Flatten in DFS preorder: the near child follows its parent, the far
  // child index is stored. A node's CSR offset is the id count emitted before
  // it — interior nodes naturally get empty ranges (their near child is
  // emitted before any leaf appends items), leaves their ascending-id block.
  nodes_.reserve(top.size());
  item_offsets_.reserve(top.size() + 1);
  item_ids_.reserve(ids.size());
  const auto flatten = [&](auto&& self, std::int32_t temp_idx) -> void {
    const TempNode& t = top[static_cast<std::size_t>(temp_idx)];
    const auto flat = static_cast<std::size_t>(nodes_.size());
    nodes_.push_back(Node{t.box, -1});
    item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));
    if (t.left < 0) {
      item_ids_.insert(item_ids_.end(), ids.begin() + t.begin, ids.begin() + t.end);
      return;
    }
    self(self, t.left);
    nodes_[flat].far_child = static_cast<std::int32_t>(nodes_.size());
    self(self, t.right);
  };
  flatten(flatten, root);
  item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));

  lane_offsets_.reserve(nodes_.size() + 1);
  std::uint32_t lanes = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    lane_offsets_.push_back(lanes);
    lanes += padded_lanes(item_offsets_[i + 1] - item_offsets_[i]);
  }
  lane_offsets_.push_back(lanes);
  soa_.resize(lanes);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::uint32_t lane = lane_offsets_[i];
    for (std::uint32_t k = item_offsets_[i]; k < item_offsets_[i + 1]; ++k, ++lane) {
      const std::int32_t pid = item_ids_[k];
      soa_.set_lane(lane, patches[static_cast<std::size_t>(pid)].hit_constants(), pid);
    }
  }
}

template <bool Count>
bool Bvh::intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                         TraversalStats* stats) const {
  best.patch = -1;
  best.dist = tmax;
  if (nodes_.empty()) return false;
  double t0 = 0.0, t1 = 0.0;
  if (!nodes_[0].box.hit(ray, tmax, t0, t1)) return false;

  const RayLanes rl(ray);

  struct Entry {
    std::int32_t node;
    double t_enter;
  };
  std::array<Entry, kMaxDepth + 2> stack;
  int sp = 0;
  stack[0] = {0, t0};
  sp = 1;

  while (sp > 0) {
    const Entry e = stack[static_cast<std::size_t>(--sp)];
    if (e.t_enter > best.dist) continue;
    const auto ni = static_cast<std::size_t>(e.node);
    if constexpr (Count) ++stats->nodes_visited;

    if (nodes_[ni].far_child < 0) {
      const std::uint32_t lane_begin = lane_offsets_[ni];
      const std::uint32_t lane_end = lane_offsets_[ni + 1];
      if constexpr (Count) stats->patch_tests += item_offsets_[ni + 1] - item_offsets_[ni];
      if (lane_begin < lane_end) leaf_closest(soa_, ray, rl, lane_begin, lane_end, best);
      continue;
    }

    // Test both children, visit front-to-back by slab entry distance: push
    // the farther child first so the nearer pops first. Children whose boxes
    // start beyond the running best hit are pruned here.
    const std::int32_t near_idx = e.node + 1;
    const std::int32_t far_idx = nodes_[ni].far_child;
    double n0 = 0.0, n1 = 0.0, f0 = 0.0, f1 = 0.0;
    const bool hit_near =
        nodes_[static_cast<std::size_t>(near_idx)].box.hit(ray, best.dist, n0, n1);
    const bool hit_far = nodes_[static_cast<std::size_t>(far_idx)].box.hit(ray, best.dist, f0, f1);
    if (hit_near && hit_far) {
      if (n0 <= f0) {
        stack[static_cast<std::size_t>(sp++)] = {far_idx, f0};
        stack[static_cast<std::size_t>(sp++)] = {near_idx, n0};
      } else {
        stack[static_cast<std::size_t>(sp++)] = {near_idx, n0};
        stack[static_cast<std::size_t>(sp++)] = {far_idx, f0};
      }
    } else if (hit_near) {
      stack[static_cast<std::size_t>(sp++)] = {near_idx, n0};
    } else if (hit_far) {
      stack[static_cast<std::size_t>(sp++)] = {far_idx, f0};
    }
  }
  return best.patch >= 0;
}

bool Bvh::intersect(const Ray& ray, double tmax, SceneHit& best) const {
  return intersect_impl<false>(ray, tmax, best, nullptr);
}

bool Bvh::intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                            TraversalStats& stats) const {
  return intersect_impl<true>(ray, tmax, best, &stats);
}

std::size_t Bvh::memory_bytes() const {
  return nodes_.capacity() * sizeof(Node) +
         item_offsets_.capacity() * sizeof(std::uint32_t) +
         item_ids_.capacity() * sizeof(std::int32_t) +
         lane_offsets_.capacity() * sizeof(std::uint32_t) + soa_.memory_bytes();
}

bool Bvh::identical_to(const Bvh& other) const {
  if (nodes_.size() != other.nodes_.size() || depth_ != other.depth_) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& a = nodes_[i];
    const Node& b = other.nodes_[i];
    if (a.box.lo != b.box.lo || a.box.hi != b.box.hi || a.far_child != b.far_child) return false;
  }
  return item_offsets_ == other.item_offsets_ && item_ids_ == other.item_ids_ &&
         lane_offsets_ == other.lane_offsets_ && soa_ == other.soa_;
}

bool Bvh::identical_to(const AccelStructure& other) const {
  const auto* o = dynamic_cast<const Bvh*>(&other);
  return o != nullptr && identical_to(*o);
}

}  // namespace photon
