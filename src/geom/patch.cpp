#include "geom/patch.hpp"

#include <cmath>

namespace photon {

Patch::Patch(const Vec3& origin, const Vec3& edge_s, const Vec3& edge_t, int material_id)
    : origin_(origin), edge_s_(edge_s), edge_t_(edge_t), material_id_(material_id) {
  const Vec3 n = cross(edge_s_, edge_t_);
  area_ = n.length();
  normal_ = area_ > 0.0 ? n / area_ : Vec3{0.0, 0.0, 1.0};
  g11_ = dot(edge_s_, edge_s_);
  g12_ = dot(edge_s_, edge_t_);
  g22_ = dot(edge_t_, edge_t_);
  const double det = g11_ * g22_ - g12_ * g12_;
  inv_det_ = det != 0.0 ? 1.0 / det : 0.0;
  plane_d_ = dot(origin_, normal_);
  s_axis_ = (edge_s_ * g22_ - edge_t_ * g12_) * inv_det_;
  t_axis_ = (edge_t_ * g11_ - edge_s_ * g12_) * inv_det_;
  s_base_ = -dot(origin_, s_axis_);
  t_base_ = -dot(origin_, t_axis_);
}

Patch Patch::from_corners(const Vec3& p00, const Vec3& p10, const Vec3& p01, int material_id) {
  return Patch(p00, p10 - p00, p01 - p00, material_id);
}

Aabb Patch::bounds() const {
  Aabb b;
  b.expand(origin_);
  b.expand(origin_ + edge_s_);
  b.expand(origin_ + edge_t_);
  b.expand(origin_ + edge_s_ + edge_t_);
  return b;
}

void Patch::to_bilinear(const Vec3& p, double& s, double& t) const {
  const Vec3 d = p - origin_;
  const double ps = dot(d, edge_s_);
  const double pt = dot(d, edge_t_);
  s = (g22_ * ps - g12_ * pt) * inv_det_;
  t = (g11_ * pt - g12_ * ps) * inv_det_;
}

}  // namespace photon
