// Plain-text scene format, so scenes can be saved, versioned and exchanged.
//
//   photon-scene 1
//   name <string>
//   material <dr> <dg> <db> <sr> <sg> <sb> <rough> <er> <eg> <eb> <two_sided>
//   patch <ox> <oy> <oz> <sx> <sy> <sz> <tx> <ty> <tz> <material_index>
//   luminaire <patch_index> <pr> <pg> <pb> <angular_scale>
#pragma once

#include <iosfwd>
#include <string>

#include "geom/scene.hpp"

namespace photon {

void save_scene(const Scene& scene, std::ostream& out);
bool save_scene(const Scene& scene, const std::string& path);

// Parses a scene; returns false (and leaves `scene` unspecified) on malformed
// input. The octree is NOT built; call scene.build().
bool load_scene(std::istream& in, Scene& scene);
bool load_scene(const std::string& path, Scene& scene);

}  // namespace photon
