// Out-of-line pieces of the shared leaf kernel: backend introspection and the
// LeafSoA storage methods. The kernel body itself is header-inline
// (geom/leaf_kernel_inl.hpp) and compiled into each traversal TU; this TU and
// those TUs all carry the kernel flags (see PHOTON_KERNEL_TUS in CMakeLists).
#include "geom/leaf_kernel_inl.hpp"

namespace photon {

int kernel_lane_width() { return simd::kLanes; }
const char* kernel_backend() { return simd::kBackendName; }

void LeafSoA::clear() {
  nx.clear(); ny.clear(); nz.clear(); plane_d.clear();
  sx.clear(); sy.clear(); sz.clear(); s_base.clear();
  tx.clear(); ty.clear(); tz.clear(); t_base.clear();
  id.clear();
}

void LeafSoA::resize(std::size_t lanes) {
  nx.assign(lanes, 0.0); ny.assign(lanes, 0.0); nz.assign(lanes, 0.0);
  plane_d.assign(lanes, 0.0);
  sx.assign(lanes, 0.0); sy.assign(lanes, 0.0); sz.assign(lanes, 0.0);
  s_base.assign(lanes, 0.0);
  tx.assign(lanes, 0.0); ty.assign(lanes, 0.0); tz.assign(lanes, 0.0);
  t_base.assign(lanes, 0.0);
  id.assign(lanes, -1);
}

void LeafSoA::set_lane(std::size_t lane, const Patch::HitConstants& c, std::int32_t patch_id) {
  nx[lane] = c.normal.x;
  ny[lane] = c.normal.y;
  nz[lane] = c.normal.z;
  plane_d[lane] = c.plane_d;
  sx[lane] = c.s_axis.x;
  sy[lane] = c.s_axis.y;
  sz[lane] = c.s_axis.z;
  s_base[lane] = c.s_base;
  tx[lane] = c.t_axis.x;
  ty[lane] = c.t_axis.y;
  tz[lane] = c.t_axis.z;
  t_base[lane] = c.t_base;
  id[lane] = patch_id;
}

std::size_t LeafSoA::memory_bytes() const {
  return 12 * nx.capacity() * sizeof(double) + id.capacity() * sizeof(std::int32_t);
}

bool LeafSoA::operator==(const LeafSoA& other) const {
  return nx == other.nx && ny == other.ny && nz == other.nz && plane_d == other.plane_d &&
         sx == other.sx && sy == other.sy && sz == other.sz && s_base == other.s_base &&
         tx == other.tx && ty == other.ty && tz == other.tz && t_base == other.t_base &&
         id == other.id;
}

std::uint32_t padded_lanes(std::uint32_t items) {
  const auto W = static_cast<std::uint32_t>(simd::kLanes);
  return (items + W - 1) / W * W;
}

}  // namespace photon
