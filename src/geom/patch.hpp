// Planar parallelogram patches — the geometric primitive of Photon.
//
// Every defining polygon is a parallelogram `origin + s*edge_s + t*edge_t`
// with bilinear coordinates (s, t) in [0,1]^2. The histogram (chapter 4) uses
// exactly these bilinear parameters as the first two bin dimensions, so the
// intersection routine returns them along with the hit distance.
#pragma once

#include <optional>

#include "core/aabb.hpp"
#include "core/onb.hpp"
#include "core/ray.hpp"
#include "core/vec3.hpp"

namespace photon {

struct PatchHit {
  double dist = kNoHit;  // ray parameter of the hit
  double s = 0.0;        // bilinear coordinates of the hit point
  double t = 0.0;
  bool front = true;  // true when the ray hit the side the normal points at
};

class Patch {
 public:
  Patch() = default;
  // Parallelogram with corners origin, origin+edge_s, origin+edge_t,
  // origin+edge_s+edge_t. The geometric normal is normalize(edge_s x edge_t).
  Patch(const Vec3& origin, const Vec3& edge_s, const Vec3& edge_t, int material_id);

  // Convenience: patch from three corners p00, p10, p01.
  static Patch from_corners(const Vec3& p00, const Vec3& p10, const Vec3& p01, int material_id);

  const Vec3& origin() const { return origin_; }
  const Vec3& edge_s() const { return edge_s_; }
  const Vec3& edge_t() const { return edge_t_; }
  const Vec3& normal() const { return normal_; }
  int material_id() const { return material_id_; }
  double area() const { return area_; }

  Vec3 point_at(double s, double t) const { return origin_ + edge_s_ * s + edge_t_ * t; }

  Aabb bounds() const;

  // Tangent frame with w = geometric normal; bin direction coordinates
  // (r^2, theta) are measured in this frame.
  Onb frame() const { return Onb::from_normal(normal_); }

  // Constants of the hit test, precomputed once at construction so the hot
  // loop does no Gram solve: the hit plane is dot(p, normal) == plane_d, and
  // the bilinear coordinates are affine in the hit point,
  //   s = dot(p, s_axis) + s_base,   t = dot(p, t_axis) + t_base.
  double plane_d() const { return plane_d_; }
  const Vec3& s_axis() const { return s_axis_; }
  const Vec3& t_axis() const { return t_axis_; }
  double s_base() const { return s_base_; }
  double t_base() const { return t_base_; }

  // The full constant set as one bundle — what an acceleration structure
  // copies out per patch reference (the octree's SoA leaf blocks scatter
  // exactly these thirteen scalars into lane-contiguous arrays).
  struct HitConstants {
    Vec3 normal;
    double plane_d;
    Vec3 s_axis;
    double s_base;
    Vec3 t_axis;
    double t_base;
  };
  HitConstants hit_constants() const {
    return {normal_, plane_d_, s_axis_, s_base_, t_axis_, t_base_};
  }

  // Closest intersection with `ray` in (kRayEpsilon, tmax) written to `hit`;
  // returns false (leaving `hit` untouched) on a miss. Inlined allocation-free
  // fast path — the octree traversal runs this test per candidate patch (on
  // its packed copy of the same constants), so the arithmetic here is the
  // bitwise reference for the equivalence suite.
  bool intersect(const Ray& ray, double tmax, PatchHit& hit) const {
    const double denom = dot(ray.dir, normal_);
    if (denom == 0.0) return false;  // parallel to the plane
    const double dist = (plane_d_ - dot(ray.origin, normal_)) / denom;
    if (!(dist > kRayEpsilon && dist < tmax)) return false;

    const Vec3 p = ray.origin + ray.dir * dist;
    const double s = dot(p, s_axis_) + s_base_;
    if (s < 0.0 || s > 1.0) return false;
    const double t = dot(p, t_axis_) + t_base_;
    if (t < 0.0 || t > 1.0) return false;

    hit.dist = dist;
    hit.s = s;
    hit.t = t;
    hit.front = denom < 0.0;
    return true;
  }

  // Convenience wrapper over the fast path.
  std::optional<PatchHit> intersect(const Ray& ray, double tmax = kNoHit) const {
    PatchHit hit;
    if (!intersect(ray, tmax, hit)) return std::nullopt;
    return hit;
  }

  // Inverse of point_at for points on the patch plane: world -> (s, t).
  void to_bilinear(const Vec3& p, double& s, double& t) const;

 private:
  Vec3 origin_;
  Vec3 edge_s_;
  Vec3 edge_t_;
  Vec3 normal_;
  // Precomputed Gram inverse for bilinear inversion.
  double g11_ = 0.0, g12_ = 0.0, g22_ = 0.0, inv_det_ = 0.0;
  // Precomputed hit-test constants (see plane_d()/s_axis() above).
  Vec3 s_axis_;
  Vec3 t_axis_;
  double plane_d_ = 0.0, s_base_ = 0.0, t_base_ = 0.0;
  double area_ = 0.0;
  int material_id_ = 0;
};

}  // namespace photon
