#include "geom/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "engine/pool.hpp"
#include "geom/leaf_kernel_inl.hpp"

namespace photon {

namespace {

// Patch -> cell-range rasterization helper: index of the cell containing
// coordinate x on an axis with `res` cells of size `cs` starting at `lo`.
int cell_index(double x, double lo, double cs, int res) {
  const int i = static_cast<int>(std::floor((x - lo) / cs));
  return std::clamp(i, 0, res - 1);
}

// Amanatides & Woo 3D-DDA over one grid level for the ray segment
// [t_enter, t_seg_end]. Calls visit(idx, t_cell_enter, t_cell_exit) for each
// cell pierced, in front-to-back order; stops and returns true when visit
// does. Boundary-crossing parameters are computed from the cell indices (not
// the moving point), so the walk is self-consistent under rounding.
template <typename Visit>
bool dda_walk(const Ray& ray, const Vec3& lo, const Vec3& cs, const int res[3], double t_enter,
              double t_seg_end, Visit&& visit) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Vec3 entry = ray.origin + ray.dir * t_enter;
  int idx[3];
  int step[3];
  double t_next_cross[3];
  double t_delta[3];
  for (int a = 0; a < 3; ++a) {
    idx[a] = cell_index(entry[a], lo[a], cs[a], res[a]);
    const double d = ray.dir[a];
    const double inv = ray.inv_dir[a];
    if (d > 0.0) {
      step[a] = 1;
      t_next_cross[a] = (lo[a] + (idx[a] + 1) * cs[a] - ray.origin[a]) * inv;
      t_delta[a] = cs[a] * inv;
    } else if (d < 0.0) {
      step[a] = -1;
      t_next_cross[a] = (lo[a] + idx[a] * cs[a] - ray.origin[a]) * inv;
      t_delta[a] = -cs[a] * inv;
    } else {
      step[a] = 0;
      t_next_cross[a] = kInf;
      t_delta[a] = kInf;
    }
  }

  double t_cur = t_enter;
  while (true) {
    const double t_next = std::min({t_next_cross[0], t_next_cross[1], t_next_cross[2]});
    if (visit(idx, t_cur, std::min(t_next, t_seg_end))) return true;
    if (t_next >= t_seg_end) return false;
    int a = 0;
    if (t_next_cross[1] < t_next_cross[a]) a = 1;
    if (t_next_cross[2] < t_next_cross[a]) a = 2;
    idx[a] += step[a];
    if (idx[a] < 0 || idx[a] >= res[a]) return false;
    t_cur = t_next_cross[a];
    t_next_cross[a] += t_delta[a];
  }
}

}  // namespace

void HashGrid::build(std::span<const Patch> patches, const AccelBuildParams& params) {
  coarse_sub_.clear();
  item_offsets_.clear();
  item_ids_.clear();
  lane_offsets_.clear();
  soa_.clear();
  sub_blocks_ = 0;
  depth_ = 0;
  bounds_ = Aabb{};
  res_[0] = res_[1] = res_[2] = 0;
  if (patches.empty()) return;

  const std::size_t n = patches.size();
  for (std::size_t i = 0; i < n; ++i) bounds_.expand(patches[i].bounds());
  const double diag = bounds_.extent().length();
  bounds_ = bounds_.padded(1e-6 * (1.0 + diag));

  // Coarse resolution ~ density * cbrt(n) cells per axis, shaped by the box
  // aspect so elongated scenes get elongated grids.
  const double density = std::clamp(params.grid_density, 0.25, 16.0);
  const double k = density * std::cbrt(static_cast<double>(n));
  const Vec3 e = bounds_.extent();
  const double geo_mean = std::cbrt(e.x * e.y * e.z);
  for (int a = 0; a < 3; ++a) {
    res_[a] = std::clamp(static_cast<int>(std::llround(k * e[a] / geo_mean)), 1, 64);
  }
  cell_size_ = Vec3{e.x / res_[0], e.y / res_[1], e.z / res_[2]};

  const std::size_t nc = static_cast<std::size_t>(res_[0]) * static_cast<std::size_t>(res_[1]) *
                         static_cast<std::size_t>(res_[2]);
  const auto flat = [&](int ix, int iy, int iz) {
    return (static_cast<std::size_t>(iz) * static_cast<std::size_t>(res_[1]) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(res_[0]) +
           static_cast<std::size_t>(ix);
  };

  // Rasterize with a whisker of padding so a patch lying exactly on a cell
  // face is referenced by both neighbors.
  const double raster_eps = 1e-9 * (1.0 + diag);
  const auto coarse_range = [&](std::size_t pid, int out_lo[3], int out_hi[3]) {
    const Aabb pb = patches[pid].bounds().padded(raster_eps);
    for (int a = 0; a < 3; ++a) {
      out_lo[a] = cell_index(pb.lo[a], bounds_.lo[a], cell_size_[a], res_[a]);
      out_hi[a] = cell_index(pb.hi[a], bounds_.lo[a], cell_size_[a], res_[a]);
    }
  };

  // Counting sort into the coarse cells: fixed patch order makes every pass
  // deterministic and leaves each cell's reference list ascending by id.
  std::vector<std::uint32_t> coarse_off(nc + 1, 0);
  for (std::size_t pid = 0; pid < n; ++pid) {
    int clo[3], chi[3];
    coarse_range(pid, clo, chi);
    for (int iz = clo[2]; iz <= chi[2]; ++iz) {
      for (int iy = clo[1]; iy <= chi[1]; ++iy) {
        for (int ix = clo[0]; ix <= chi[0]; ++ix) ++coarse_off[flat(ix, iy, iz) + 1];
      }
    }
  }
  for (std::size_t c = 0; c < nc; ++c) coarse_off[c + 1] += coarse_off[c];
  std::vector<std::int32_t> coarse_refs(coarse_off[nc]);
  {
    std::vector<std::uint32_t> cursor(coarse_off.begin(), coarse_off.end() - 1);
    for (std::size_t pid = 0; pid < n; ++pid) {
      int clo[3], chi[3];
      coarse_range(pid, clo, chi);
      for (int iz = clo[2]; iz <= chi[2]; ++iz) {
        for (int iy = clo[1]; iy <= chi[1]; ++iy) {
          for (int ix = clo[0]; ix <= chi[0]; ++ix) {
            coarse_refs[cursor[flat(ix, iy, iz)]++] = static_cast<std::int32_t>(pid);
          }
        }
      }
    }
  }

  // Hot cells get nested sub-grids; block assignment scans cells in order.
  sub_res_ = std::clamp(params.grid_sub_res, 2, 8);
  const auto threshold = static_cast<std::uint32_t>(std::max(1, params.grid_refine_threshold));
  coarse_sub_.assign(nc, -1);
  std::vector<std::uint32_t> hot_cells;
  for (std::size_t c = 0; c < nc; ++c) {
    if (coarse_off[c + 1] - coarse_off[c] > threshold) {
      coarse_sub_[c] = static_cast<std::int32_t>(hot_cells.size());
      hot_cells.push_back(static_cast<std::uint32_t>(c));
    }
  }
  sub_blocks_ = hot_cells.size();
  depth_ = sub_blocks_ > 0 ? 2 : 1;

  const auto sub3 = static_cast<std::size_t>(sub_res_) * static_cast<std::size_t>(sub_res_) *
                    static_cast<std::size_t>(sub_res_);
  const std::size_t total_cells = nc + sub_blocks_ * sub3;

  int workers = params.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  constexpr std::size_t kParallelBuildMinItems = 2048;
  if (params.workers <= 0 && n < kParallelBuildMinItems) workers = 1;
  const int T = std::min<int>(workers, static_cast<int>(sub_blocks_));
  const auto run_blocks = [&](auto&& fn) {
    if (T <= 1) {
      for (std::size_t b = 0; b < sub_blocks_; ++b) fn(b);
    } else {
      WorkerPool::instance().run(sub_blocks_, T,
                                 [&](std::uint64_t b, int) { fn(static_cast<std::size_t>(b)); });
    }
  };

  // Per-cell counts over the unified id space: leaf coarse cells keep their
  // counting-sort totals, hot cells zero (their sub-cells take over). The
  // per-block sub-rasterization writes only its own sub3 slice — disjoint
  // ranges, so the pool schedule cannot perturb the result.
  std::vector<std::uint32_t> cell_count(total_cells, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    if (coarse_sub_[c] < 0) cell_count[c] = coarse_off[c + 1] - coarse_off[c];
  }
  const Vec3 ss{cell_size_.x / sub_res_, cell_size_.y / sub_res_, cell_size_.z / sub_res_};
  const auto cell_lo_of = [&](std::size_t c) {
    const auto ix = static_cast<int>(c % static_cast<std::size_t>(res_[0]));
    const auto iy = static_cast<int>((c / static_cast<std::size_t>(res_[0])) %
                                     static_cast<std::size_t>(res_[1]));
    const auto iz =
        static_cast<int>(c / (static_cast<std::size_t>(res_[0]) * static_cast<std::size_t>(res_[1])));
    return bounds_.lo + Vec3{ix * cell_size_.x, iy * cell_size_.y, iz * cell_size_.z};
  };
  const auto sub_range = [&](const Vec3& cell_lo, std::int32_t pid, int out_lo[3],
                             int out_hi[3]) {
    const Aabb pb = patches[static_cast<std::size_t>(pid)].bounds().padded(raster_eps);
    for (int a = 0; a < 3; ++a) {
      out_lo[a] = cell_index(pb.lo[a], cell_lo[a], ss[a], sub_res_);
      out_hi[a] = cell_index(pb.hi[a], cell_lo[a], ss[a], sub_res_);
    }
  };
  const auto sub_flat = [&](int jx, int jy, int jz) {
    return (static_cast<std::size_t>(jz) * static_cast<std::size_t>(sub_res_) +
            static_cast<std::size_t>(jy)) *
               static_cast<std::size_t>(sub_res_) +
           static_cast<std::size_t>(jx);
  };
  run_blocks([&](std::size_t b) {
    const std::size_t c = hot_cells[b];
    const Vec3 cell_lo = cell_lo_of(c);
    const std::size_t base = nc + b * sub3;
    for (std::uint32_t r = coarse_off[c]; r < coarse_off[c + 1]; ++r) {
      int jlo[3], jhi[3];
      sub_range(cell_lo, coarse_refs[r], jlo, jhi);
      for (int jz = jlo[2]; jz <= jhi[2]; ++jz) {
        for (int jy = jlo[1]; jy <= jhi[1]; ++jy) {
          for (int jx = jlo[0]; jx <= jhi[0]; ++jx) ++cell_count[base + sub_flat(jx, jy, jz)];
        }
      }
    }
  });

  item_offsets_.assign(total_cells + 1, 0);
  for (std::size_t c = 0; c < total_cells; ++c) {
    item_offsets_[c + 1] = item_offsets_[c] + cell_count[c];
  }
  item_ids_.resize(item_offsets_[total_cells]);
  for (std::size_t c = 0; c < nc; ++c) {
    if (coarse_sub_[c] < 0) {
      std::copy(coarse_refs.begin() + coarse_off[c], coarse_refs.begin() + coarse_off[c + 1],
                item_ids_.begin() + item_offsets_[c]);
    }
  }
  run_blocks([&](std::size_t b) {
    const std::size_t c = hot_cells[b];
    const Vec3 cell_lo = cell_lo_of(c);
    const std::size_t base = nc + b * sub3;
    std::vector<std::uint32_t> cursor(item_offsets_.begin() + base,
                                      item_offsets_.begin() + base + sub3);
    for (std::uint32_t r = coarse_off[c]; r < coarse_off[c + 1]; ++r) {
      int jlo[3], jhi[3];
      sub_range(cell_lo, coarse_refs[r], jlo, jhi);
      for (int jz = jlo[2]; jz <= jhi[2]; ++jz) {
        for (int jy = jlo[1]; jy <= jhi[1]; ++jy) {
          for (int jx = jlo[0]; jx <= jhi[0]; ++jx) {
            item_ids_[cursor[sub_flat(jx, jy, jz)]++] = coarse_refs[r];
          }
        }
      }
    }
  });

  lane_offsets_.reserve(total_cells + 1);
  std::uint32_t lanes = 0;
  for (std::size_t c = 0; c < total_cells; ++c) {
    lane_offsets_.push_back(lanes);
    lanes += padded_lanes(item_offsets_[c + 1] - item_offsets_[c]);
  }
  lane_offsets_.push_back(lanes);
  soa_.resize(lanes);
  for (std::size_t c = 0; c < total_cells; ++c) {
    std::uint32_t lane = lane_offsets_[c];
    for (std::uint32_t i = item_offsets_[c]; i < item_offsets_[c + 1]; ++i, ++lane) {
      const std::int32_t pid = item_ids_[i];
      soa_.set_lane(lane, patches[static_cast<std::size_t>(pid)].hit_constants(), pid);
    }
  }
}

std::size_t HashGrid::node_count() const {
  const auto sub3 = static_cast<std::size_t>(sub_res_) * static_cast<std::size_t>(sub_res_) *
                    static_cast<std::size_t>(sub_res_);
  return coarse_sub_.size() + sub_blocks_ * sub3;
}

template <bool Count>
bool HashGrid::visit_cell(std::size_t cell, const Ray& ray, const RayLanes& rl, double t_exit,
                          SceneHit& best, TraversalStats* stats) const {
  if constexpr (Count) {
    ++stats->nodes_visited;
    stats->patch_tests += item_offsets_[cell + 1] - item_offsets_[cell];
  }
  const std::uint32_t lane_begin = lane_offsets_[cell];
  const std::uint32_t lane_end = lane_offsets_[cell + 1];
  if (lane_begin < lane_end) leaf_closest(soa_, ray, rl, lane_begin, lane_end, best);
  // First confirmed nearest: a hit at or before this cell's exit lies in a
  // cell already tested, and that cell referenced every patch overlapping it,
  // so nothing ahead can beat it.
  return best.patch >= 0 && best.dist <= t_exit;
}

template <bool Count>
bool HashGrid::intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                              TraversalStats* stats) const {
  best.patch = -1;
  best.dist = tmax;
  if (item_offsets_.empty()) return false;
  double t0 = 0.0, t1 = 0.0;
  if (!bounds_.hit(ray, tmax, t0, t1)) return false;

  const RayLanes rl(ray);
  const std::size_t nc = coarse_sub_.size();
  const auto sub3 = static_cast<std::size_t>(sub_res_) * static_cast<std::size_t>(sub_res_) *
                    static_cast<std::size_t>(sub_res_);
  const Vec3 ss{cell_size_.x / sub_res_, cell_size_.y / sub_res_, cell_size_.z / sub_res_};
  const int sres[3] = {sub_res_, sub_res_, sub_res_};

  return dda_walk(ray, bounds_.lo, cell_size_, res_, t0, t1,
                  [&](const int idx[3], double tc0, double tc1) {
                    const std::size_t c =
                        (static_cast<std::size_t>(idx[2]) * static_cast<std::size_t>(res_[1]) +
                         static_cast<std::size_t>(idx[1])) *
                            static_cast<std::size_t>(res_[0]) +
                        static_cast<std::size_t>(idx[0]);
                    const std::int32_t sub = coarse_sub_[c];
                    if (sub < 0) return visit_cell<Count>(c, ray, rl, tc1, best, stats);
                    const Vec3 cell_lo =
                        bounds_.lo + Vec3{idx[0] * cell_size_.x, idx[1] * cell_size_.y,
                                          idx[2] * cell_size_.z};
                    const std::size_t base = nc + static_cast<std::size_t>(sub) * sub3;
                    return dda_walk(ray, cell_lo, ss, sres, tc0, tc1,
                                    [&](const int jdx[3], double, double ts1) {
                                      const std::size_t sc =
                                          base +
                                          (static_cast<std::size_t>(jdx[2]) *
                                               static_cast<std::size_t>(sub_res_) +
                                           static_cast<std::size_t>(jdx[1])) *
                                              static_cast<std::size_t>(sub_res_) +
                                          static_cast<std::size_t>(jdx[0]);
                                      return visit_cell<Count>(sc, ray, rl, ts1, best, stats);
                                    });
                  });
}

bool HashGrid::intersect(const Ray& ray, double tmax, SceneHit& best) const {
  return intersect_impl<false>(ray, tmax, best, nullptr);
}

bool HashGrid::intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                                 TraversalStats& stats) const {
  return intersect_impl<true>(ray, tmax, best, &stats);
}

std::size_t HashGrid::memory_bytes() const {
  return coarse_sub_.capacity() * sizeof(std::int32_t) +
         item_offsets_.capacity() * sizeof(std::uint32_t) +
         item_ids_.capacity() * sizeof(std::int32_t) +
         lane_offsets_.capacity() * sizeof(std::uint32_t) + soa_.memory_bytes();
}

bool HashGrid::identical_to(const HashGrid& other) const {
  return res_[0] == other.res_[0] && res_[1] == other.res_[1] && res_[2] == other.res_[2] &&
         sub_res_ == other.sub_res_ && sub_blocks_ == other.sub_blocks_ &&
         depth_ == other.depth_ && coarse_sub_ == other.coarse_sub_ &&
         item_offsets_ == other.item_offsets_ && item_ids_ == other.item_ids_ &&
         lane_offsets_ == other.lane_offsets_ && soa_ == other.soa_;
}

bool HashGrid::identical_to(const AccelStructure& other) const {
  const auto* o = dynamic_cast<const HashGrid*>(&other);
  return o != nullptr && identical_to(*o);
}

}  // namespace photon
