// Procedural builders for the paper's three test geometries (Table 5.1) and
// small analytic scenes used by the test suite.
//
// The original 1997 geometry files are lost; these synthetic equivalents
// match the paper's defining-polygon counts and surface-type mix (see
// DESIGN.md, "Substitutions"). All scenes are returned fully built (octree
// ready) with luminaires registered.
#pragma once

#include "geom/scene.hpp"

namespace photon::scenes {

// ~30 defining polygons: closed white room with red/green side walls, one
// diffuse ceiling luminaire with fixture trim, two blocks, and a floating
// two-sided mirror in the center of the box (Fig 4.8).
Scene cornell_box();

// ~100 defining polygons: room with two skylights (collimated quarter-degree
// "sun" + diffuse sky per opening), a harpsichord with legs/keyboard/lid, a
// bench, and a music shelf with a mirrored back (Fig 4.7).
Scene harpsichord_room();

// ~2000 defining polygons: large laboratory with a grid of ceiling light
// panels and rows of workstations (desk, monitor with a glossy screen,
// keyboard, chair), plus wall shelving (Fig 5.1).
Scene computer_lab();

// Returns the scene with the given name ("cornell", "harpsichord", "lab"),
// for command-line tools. Throws std::invalid_argument on unknown names.
Scene by_name(const std::string& name);

// --- analytic scenes for validation ---

// Closed cube; every wall uses the same material with `albedo` diffuse
// reflectance and is a diffuse luminaire with unit power. In radiative
// equilibrium the radiance is identical everywhere (furnace test).
Scene furnace_box(double albedo);

// A single white floor patch at y=0 spanning [0,size]^2 in x/z and one small
// diffuse luminaire centered `height` above it, facing down.
Scene floor_and_light(double size = 4.0, double height = 2.0);

// floor_and_light plus a square occluder of half-width `occluder_half`
// parallel to the floor at `occluder_height`, and a collimated luminaire
// (angular_scale) — used to validate penumbra behaviour (Fig 4.4).
Scene occluder_scene(double occluder_height, double occluder_half = 0.5,
                     double angular_scale = 0.05);

// Two parallel unit patches facing each other at distance `gap`; the lower
// one emits. Direct-transfer test with a known analytic form factor.
Scene parallel_plates(double gap);

}  // namespace photon::scenes
