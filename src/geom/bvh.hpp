// Binned-SAH bounding volume hierarchy behind the AccelStructure seam
// (geom/accel.hpp).
//
// Unlike the octree's spatial partition (duplicated references), the BVH is an
// object partition: every patch lives in exactly one leaf, so item_ref_count()
// equals the patch count and rebuild memory is the smallest of the three
// structures. Interior splits come from a binned surface-area heuristic over
// centroid bounds on the longest axis (AccelBuildParams::sah_bins bins), with
// a sorted-median fallback when binning degenerates (all centroids in one
// bin). Partitions use std::stable_partition, so each leaf's item list stays
// in ascending patch-id order — the same scan order the brute reference uses,
// which keeps equal-distance tie-breaks inside a leaf bitwise-faithful.
//
// Storage is pointer-free like the octree: flat nodes in DFS order (an
// interior node's near child is `node + 1`, the far child index is stored),
// CSR leaf ranges, and lane-padded SoA blocks tested by the shared kernel
// (geom/leaf_kernel.hpp). Traversal is an explicit stack visiting children
// front-to-back by slab-test entry distance, pushing the farther child first
// and pruning entries behind the running best hit.
//
// build() decomposes the top of the tree serially into a fixed set of range
// tasks (worker-count-independent), builds each subtree arena in parallel on
// the persistent WorkerPool, and stitches the arenas in task order with child
// indices rebased — the flattened arrays are bitwise-identical for any
// BuildParams workers value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/accel.hpp"
#include "geom/leaf_kernel.hpp"
#include "geom/patch.hpp"

namespace photon {

class Bvh final : public AccelStructure {
 public:
  // Depth bound for the explicit traversal stack: one deferred sibling per
  // level. The builder clamps recursion (median fallback guarantees strict
  // progress, so the clamp is a formality).
  static constexpr int kMaxDepth = 64;

  Bvh() = default;

  void build(std::span<const Patch> patches, const AccelBuildParams& params) override;

  AccelKind kind() const override { return AccelKind::kBvh; }
  bool built() const override { return !nodes_.empty(); }
  const Aabb& bounds() const override { return bounds_; }
  std::size_t node_count() const override { return nodes_.size(); }
  int depth() const override { return depth_; }
  std::size_t item_ref_count() const override { return item_ids_.size(); }
  std::size_t lane_count() const override { return soa_.size(); }
  std::size_t memory_bytes() const override;

  bool intersect(const Ray& ray, double tmax, SceneHit& best) const override;
  bool intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                         TraversalStats& stats) const override;
  using AccelStructure::intersect;
  using AccelStructure::build;  // the default-params helper

  bool identical_to(const Bvh& other) const;
  bool identical_to(const AccelStructure& other) const override;

 private:
  struct Node {
    Aabb box;
    // Interior: index of the far child (near child is the next node in DFS
    // order). Leaf: -1; the CSR arrays hold its item range.
    std::int32_t far_child = -1;
  };

  template <bool Count>
  bool intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                      TraversalStats* stats) const;

  std::vector<Node> nodes_;
  // CSR leaf item lists, parallel to nodes_ (interior nodes have empty
  // ranges): node i's items are item_ids_[item_offsets_[i] ..
  // item_offsets_[i + 1]).
  std::vector<std::uint32_t> item_offsets_;
  std::vector<std::int32_t> item_ids_;
  std::vector<std::uint32_t> lane_offsets_;
  LeafSoA soa_;
  Aabb bounds_;
  int depth_ = 0;
};

}  // namespace photon
