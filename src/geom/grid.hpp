// Nested uniform grid behind the AccelStructure seam (geom/accel.hpp).
//
// A coarse uniform grid spans the scene bounds with a per-axis resolution
// shaped by the box aspect (cells per axis ~ grid_density * cbrt(n)). Patches
// are rasterized into every coarse cell their bounds overlap (duplicated
// references, like the octree's spatial partition), in ascending patch-id
// order per cell — counting sort over a fixed patch order, so the arrays are
// inherently schedule-independent. A coarse cell holding more than
// grid_refine_threshold references is "hot" and gets a dense
// grid_sub_res^3 sub-grid nested inside it; its references re-rasterize into
// the sub-cells and the coarse cell itself keeps an empty range. Coarse and
// sub cells share one unified cell-id space with CSR item lists and the
// lane-padded SoA blocks of the shared kernel (geom/leaf_kernel.hpp).
//
// Traversal is the Amanatides & Woo 3D-DDA over the coarse grid, recursing
// into a nested DDA for the ray's segment through each hot cell. After a
// cell's references are tested, the walk stops as soon as the running best
// hit lies at or before the cell's exit parameter: a hit point before t_exit
// lies inside a cell already visited, and that cell references every patch
// overlapping it — so the untested remainder cannot beat the current best.
// The accepted hit is bitwise-equal to the brute scan, like the other
// structures.
//
// The build is deterministic for any worker count by construction: the
// counting-sort passes run in a fixed order, and the parallel phases
// (per-hot-cell sub-rasterization and the SoA fill on the WorkerPool) write
// disjoint precomputed ranges whose contents do not depend on the schedule.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/accel.hpp"
#include "geom/leaf_kernel.hpp"
#include "geom/patch.hpp"

namespace photon {

class HashGrid final : public AccelStructure {
 public:
  HashGrid() = default;

  void build(std::span<const Patch> patches, const AccelBuildParams& params) override;

  AccelKind kind() const override { return AccelKind::kGrid; }
  bool built() const override { return !item_offsets_.empty(); }
  const Aabb& bounds() const override { return bounds_; }
  // Total cells, coarse plus nested (the grid's "nodes").
  std::size_t node_count() const override;
  // 1 for a flat grid, 2 once any cell is refined.
  int depth() const override { return depth_; }
  std::size_t item_ref_count() const override { return item_ids_.size(); }
  std::size_t lane_count() const override { return soa_.size(); }
  std::size_t memory_bytes() const override;

  bool intersect(const Ray& ray, double tmax, SceneHit& best) const override;
  bool intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                         TraversalStats& stats) const override;
  using AccelStructure::intersect;
  using AccelStructure::build;  // the default-params helper

  bool identical_to(const HashGrid& other) const;
  bool identical_to(const AccelStructure& other) const override;

  // Exposed for tests: coarse resolution and refined-cell count.
  std::array<int, 3> resolution() const { return {res_[0], res_[1], res_[2]}; }
  std::size_t refined_cell_count() const { return sub_blocks_; }

 private:
  template <bool Count>
  bool intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                      TraversalStats* stats) const;
  // Tests one cell's references; returns true when the walk can stop (a
  // confirmed-nearest hit at or before t_exit).
  template <bool Count>
  bool visit_cell(std::size_t cell, const Ray& ray, const RayLanes& rl, double t_exit,
                  SceneHit& best, TraversalStats* stats) const;

  Aabb bounds_;
  int res_[3] = {0, 0, 0};   // coarse cells per axis
  Vec3 cell_size_{};         // coarse cell extent
  int sub_res_ = 0;          // nested cells per axis inside a hot cell
  std::size_t sub_blocks_ = 0;
  // Per coarse cell: -1 for a leaf cell, else the nested block index b whose
  // sub-cells are cell ids [coarse_count + b*sub_res^3, ...).
  std::vector<std::int32_t> coarse_sub_;
  // CSR item lists and SoA lanes over the unified cell-id space.
  std::vector<std::uint32_t> item_offsets_;
  std::vector<std::int32_t> item_ids_;
  std::vector<std::uint32_t> lane_offsets_;
  LeafSoA soa_;
  int depth_ = 0;
};

}  // namespace photon
