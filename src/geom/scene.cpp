#include "geom/scene.hpp"

#include <cmath>
#include <sstream>

#include "core/error.hpp"

namespace photon {

Scene::Scene() : accel_(make_accel(AccelKind::kOctree)) {}

void Scene::set_accel(AccelKind kind) {
  if (kind == accel_kind_ && accel_ != nullptr) return;
  accel_kind_ = kind;
  accel_ = make_accel(kind);
}

void Scene::add_luminaire(int patch, const Rgb& power, double angular_scale) {
  Luminaire lum;
  lum.patch = patch;
  lum.angular_scale = angular_scale;
  if (power.is_black()) {
    const Patch& p = patches_[static_cast<std::size_t>(patch)];
    lum.power = material_of(p).emission * p.area();
  } else {
    lum.power = power;
  }
  luminaires_.push_back(lum);
}

void Scene::build(const AccelBuildParams& params) { accel_->build(patches_, params); }

std::optional<SceneHit> Scene::intersect_brute(const Ray& ray, double tmax) const {
  SceneHit best;
  best.dist = tmax;
  PatchHit hit;
  for (std::size_t i = 0; i < patches_.size(); ++i) {
    if (patches_[i].intersect(ray, best.dist, hit)) {
      best.patch = static_cast<int>(i);
      best.dist = hit.dist;
      best.s = hit.s;
      best.t = hit.t;
      best.front = hit.front;
    }
  }
  if (best.patch < 0) return std::nullopt;
  return best;
}

Rgb Scene::total_power() const {
  Rgb total;
  for (const Luminaire& l : luminaires_) total += l.power;
  return total;
}

Aabb Scene::bounds() const {
  Aabb b;
  for (const Patch& p : patches_) b.expand(p.bounds());
  return b;
}

namespace {

bool finite_vec(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

[[noreturn]] void reject_patch(int index, const std::string& why) {
  std::ostringstream what;
  what << "scene rejected: patch " << index << " " << why;
  throw SceneError(what.str(), index);
}

}  // namespace

void validate_scene(const Scene& scene) {
  if (scene.patch_count() == 0) throw SceneError("scene rejected: no patches");

  const int materials = static_cast<int>(scene.materials().size());
  for (std::size_t i = 0; i < scene.patch_count(); ++i) {
    const int index = static_cast<int>(i);
    const Patch& p = scene.patch(index);
    if (!finite_vec(p.origin()) || !finite_vec(p.edge_s()) || !finite_vec(p.edge_t())) {
      reject_patch(index, "has a non-finite vertex");
    }
    // area == |edge_s x edge_t|: zero means collinear/zero edges — the normal
    // is undefined and the bilinear inversion divides by the Gram determinant.
    if (!(p.area() > 0.0) || !std::isfinite(p.area())) {
      reject_patch(index, "is degenerate (zero or non-finite area)");
    }
    if (!finite_vec(p.normal()) || p.normal().length_squared() == 0.0) {
      reject_patch(index, "has a zero or non-finite normal");
    }
    if (p.material_id() < 0 || p.material_id() >= materials) {
      std::ostringstream what;
      what << "references material " << p.material_id() << " of " << materials;
      reject_patch(index, what.str());
    }
  }

  for (std::size_t i = 0; i < scene.luminaires().size(); ++i) {
    const Luminaire& lum = scene.luminaires()[i];
    std::ostringstream what;
    if (lum.patch < 0 || static_cast<std::size_t>(lum.patch) >= scene.patch_count()) {
      what << "scene rejected: luminaire " << i << " references patch " << lum.patch
           << " of " << scene.patch_count();
      throw SceneError(what.str(), lum.patch);
    }
    for (int c = 0; c < 3; ++c) {
      const double power = lum.power[c];
      if (!std::isfinite(power) || power < 0.0) {
        what << "scene rejected: luminaire " << i << " (patch " << lum.patch
             << ") has invalid power " << power << " in channel " << c;
        throw SceneError(what.str(), lum.patch);
      }
    }
    if (!(lum.angular_scale > 0.0) || lum.angular_scale > 1.0 ||
        !std::isfinite(lum.angular_scale)) {
      what << "scene rejected: luminaire " << i << " (patch " << lum.patch
           << ") has angular_scale " << lum.angular_scale << " outside (0, 1]";
      throw SceneError(what.str(), lum.patch);
    }
  }

  const Rgb total = scene.total_power();
  if (scene.luminaires().empty() || total.is_black()) {
    throw SceneError("scene rejected: total emitter power is zero (nothing to emit)");
  }
}

}  // namespace photon
