#include "geom/scene.hpp"

namespace photon {

Scene::Scene() : accel_(make_accel(AccelKind::kOctree)) {}

void Scene::set_accel(AccelKind kind) {
  if (kind == accel_kind_ && accel_ != nullptr) return;
  accel_kind_ = kind;
  accel_ = make_accel(kind);
}

void Scene::add_luminaire(int patch, const Rgb& power, double angular_scale) {
  Luminaire lum;
  lum.patch = patch;
  lum.angular_scale = angular_scale;
  if (power.is_black()) {
    const Patch& p = patches_[static_cast<std::size_t>(patch)];
    lum.power = material_of(p).emission * p.area();
  } else {
    lum.power = power;
  }
  luminaires_.push_back(lum);
}

void Scene::build(const AccelBuildParams& params) { accel_->build(patches_, params); }

std::optional<SceneHit> Scene::intersect_brute(const Ray& ray, double tmax) const {
  SceneHit best;
  best.dist = tmax;
  PatchHit hit;
  for (std::size_t i = 0; i < patches_.size(); ++i) {
    if (patches_[i].intersect(ray, best.dist, hit)) {
      best.patch = static_cast<int>(i);
      best.dist = hit.dist;
      best.s = hit.s;
      best.t = hit.t;
      best.front = hit.front;
    }
  }
  if (best.patch < 0) return std::nullopt;
  return best;
}

Rgb Scene::total_power() const {
  Rgb total;
  for (const Luminaire& l : luminaires_) total += l.power;
  return total;
}

Aabb Scene::bounds() const {
  Aabb b;
  for (const Patch& p : patches_) b.expand(p.bounds());
  return b;
}

}  // namespace photon
