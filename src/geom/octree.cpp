#include "geom/octree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <thread>
#include <utility>

#include "core/simd.hpp"
#include "engine/pool.hpp"

namespace photon {

int kernel_lane_width() { return simd::kLanes; }
const char* kernel_backend() { return simd::kBackendName; }

namespace {

// Build-time node; flattened into the CSR arrays once the topology is final.
struct TempNode {
  Aabb box;
  std::array<std::int32_t, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  std::vector<std::int32_t> items;
  bool leaf = true;
};

// Partition items into octants by bounding-box overlap; a patch may appear
// in several children (duplicated references, not duplicated geometry).
// Each child's stored box is tightened to the union of its items' bounds
// clipped against the octant: every hit point a subtree is responsible for
// lies inside some assigned patch's bounds AND inside the octant, so the
// shrunken box still encloses all of them while the slab test culls the
// octant's empty space (walls and furniture leave most of a room empty).
// Returns false when every child would hold every item (e.g. a large patch
// spanning the node) — subdividing further only multiplies work.
bool partition_octants(std::span<const Patch> patches, const Aabb& box,
                       const std::vector<std::int32_t>& items,
                       std::array<std::vector<std::int32_t>, 8>& child_items,
                       std::array<Aabb, 8>& tight_boxes) {
  std::array<Aabb, 8> child_boxes;
  for (int o = 0; o < 8; ++o) child_boxes[o] = box.octant(o);
  for (const std::int32_t item : items) {
    const Aabb pb = patches[static_cast<std::size_t>(item)].bounds();
    for (int o = 0; o < 8; ++o) {
      if (child_boxes[o].overlaps(pb)) {
        child_items[o].push_back(item);
        tight_boxes[o].expand(Aabb{max(pb.lo, child_boxes[o].lo), min(pb.hi, child_boxes[o].hi)});
      }
    }
  }
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].size() < items.size()) return true;
  }
  return false;
}

std::int32_t build_temp(std::span<const Patch> patches, std::vector<TempNode>& temp,
                        const Aabb& box, std::vector<std::int32_t> items, int depth,
                        int max_depth, const Octree::BuildParams& params, int& deepest) {
  const auto idx = static_cast<std::int32_t>(temp.size());
  temp.push_back(TempNode{});
  temp[static_cast<std::size_t>(idx)].box = box;
  deepest = std::max(deepest, depth);

  if (static_cast<int>(items.size()) <= params.max_leaf_items || depth >= max_depth) {
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> tight_boxes;
  if (!partition_octants(patches, box, items, child_items, tight_boxes)) {
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  temp[static_cast<std::size_t>(idx)].leaf = false;
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].empty()) continue;
    const std::int32_t child = build_temp(patches, temp, tight_boxes[o],
                                          std::move(child_items[o]), depth + 1, max_depth,
                                          params, deepest);
    temp[static_cast<std::size_t>(idx)].children[static_cast<std::size_t>(o)] = child;
  }
  return idx;
}

// Builds the temp topology with the root's non-empty octants decomposed as
// independent tasks on the persistent worker pool (`workers` wide). Each
// octant subtree is built into its own arena by the same recursion the
// serial path uses (the DFS touches no shared state), then the arenas are
// stitched onto the root in octant order with child indices rebased. The stitched topology — and therefore the
// BFS-flattened node/CSR/SoA arrays — is identical for every worker count,
// including the workers == 1 path that runs the same tasks inline.
void build_temp_root(std::span<const Patch> patches, std::vector<TempNode>& temp,
                     const Aabb& box, std::vector<std::int32_t> items, int max_depth,
                     const Octree::BuildParams& params, int& deepest, int workers) {
  temp.push_back(TempNode{});
  temp[0].box = box;
  deepest = 0;

  if (static_cast<int>(items.size()) <= params.max_leaf_items || 0 >= max_depth) {
    temp[0].items = std::move(items);
    return;
  }

  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> tight_boxes;
  if (!partition_octants(patches, box, items, child_items, tight_boxes)) {
    temp[0].items = std::move(items);
    return;
  }

  struct Subtree {
    std::vector<TempNode> temp;
    int deepest = 0;
  };
  std::array<Subtree, 8> sub;
  std::vector<int> tasks;
  tasks.reserve(8);
  for (int o = 0; o < 8; ++o) {
    if (!child_items[o].empty()) tasks.push_back(o);
  }

  const auto run_task = [&](int o) {
    build_temp(patches, sub[static_cast<std::size_t>(o)].temp, tight_boxes[o],
               std::move(child_items[static_cast<std::size_t>(o)]), 1, max_depth, params,
               sub[static_cast<std::size_t>(o)].deepest);
  };

  const int T = std::min<int>(workers, static_cast<int>(tasks.size()));
  if (T <= 1) {
    for (const int o : tasks) run_task(o);
  } else {
    // Octant subtrees as pool tasks (one chunk each) on the persistent
    // process pool — no thread spawn per build. Nested builds (a build
    // issued from inside a pool task) run inline via the pool's reentrancy
    // path, so this is safe to call from anywhere.
    WorkerPool::instance().run(tasks.size(), T, [&](std::uint64_t i, int) {
      run_task(tasks[static_cast<std::size_t>(i)]);
    });
  }

  temp[0].leaf = false;
  for (const int o : tasks) {
    Subtree& s = sub[static_cast<std::size_t>(o)];
    const auto offset = static_cast<std::int32_t>(temp.size());
    temp[0].children[static_cast<std::size_t>(o)] = offset;
    for (TempNode& n : s.temp) {
      for (std::int32_t& c : n.children) {
        if (c >= 0) c += offset;
      }
      temp.push_back(std::move(n));
    }
    deepest = std::max(deepest, s.deepest);
  }
}

}  // namespace

void Octree::LeafSoA::clear() {
  nx.clear(); ny.clear(); nz.clear(); plane_d.clear();
  sx.clear(); sy.clear(); sz.clear(); s_base.clear();
  tx.clear(); ty.clear(); tz.clear(); t_base.clear();
  id.clear();
}

void Octree::LeafSoA::resize(std::size_t lanes) {
  // Zero-filled growth: a freshly resized lane is a valid sentinel (zero
  // normal -> denom == 0 -> rejected) until the fill loop overwrites it.
  nx.assign(lanes, 0.0); ny.assign(lanes, 0.0); nz.assign(lanes, 0.0);
  plane_d.assign(lanes, 0.0);
  sx.assign(lanes, 0.0); sy.assign(lanes, 0.0); sz.assign(lanes, 0.0);
  s_base.assign(lanes, 0.0);
  tx.assign(lanes, 0.0); ty.assign(lanes, 0.0); tz.assign(lanes, 0.0);
  t_base.assign(lanes, 0.0);
  id.assign(lanes, -1);
}

void Octree::build(std::span<const Patch> patches, const BuildParams& params) {
  nodes_.clear();
  item_offsets_.clear();
  item_ids_.clear();
  lane_offsets_.clear();
  soa_.clear();
  depth_ = 0;
  bounds_ = Aabb{};
  std::vector<std::int32_t> all(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
    bounds_.expand(patches[i].bounds());
  }
  if (patches.empty()) return;
  // Pad so axis-aligned patches on the boundary sit strictly inside.
  bounds_ = bounds_.padded(1e-6 * (1.0 + bounds_.extent().length()));

  const int max_depth = std::min(params.max_depth, kMaxDepth);
  int workers = params.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  // Small builds finish in well under the cost of spawning a thread pool;
  // only the auto setting is gated (an explicit workers request — e.g. the
  // determinism tests — always takes the task-decomposed path).
  constexpr std::size_t kParallelBuildMinItems = 2048;
  if (params.workers <= 0 && patches.size() < kParallelBuildMinItems) workers = 1;
  std::vector<TempNode> temp;
  temp.reserve(patches.size());
  build_temp_root(patches, temp, bounds_, std::move(all), max_depth, params, depth_, workers);

  // Flatten breadth-first: each interior node's non-empty children become one
  // consecutive block, located through the octant bitmask + popcount. BFS
  // order keeps the heavily-traversed upper levels densely packed.
  std::vector<std::int32_t> flat_to_temp;
  flat_to_temp.reserve(temp.size());
  nodes_.reserve(temp.size());
  flat_to_temp.push_back(0);
  nodes_.push_back(Node{temp[0].box, -1, 0});
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    if (t.leaf) continue;
    nodes_[flat].first_child = static_cast<std::int32_t>(nodes_.size());
    std::uint8_t mask = 0;
    for (int o = 0; o < 8; ++o) {
      const std::int32_t child = t.children[static_cast<std::size_t>(o)];
      if (child < 0) continue;
      mask = static_cast<std::uint8_t>(mask | (1u << o));
      flat_to_temp.push_back(child);
      nodes_.push_back(Node{temp[static_cast<std::size_t>(child)].box, -1, 0});
    }
    nodes_[flat].child_mask = mask;
  }

  item_offsets_.reserve(nodes_.size() + 1);
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    item_ids_.insert(item_ids_.end(), t.items.begin(), t.items.end());
  }
  item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));

  // SoA leaf blocks: per node, the CSR item list padded up to the kernel lane
  // width. Only the real-item lanes are overwritten; the padding keeps the
  // sentinel constants resize() installed.
  constexpr std::uint32_t W = static_cast<std::uint32_t>(simd::kLanes);
  lane_offsets_.reserve(nodes_.size() + 1);
  std::uint32_t lanes = 0;
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    lane_offsets_.push_back(lanes);
    const std::uint32_t count = item_offsets_[flat + 1] - item_offsets_[flat];
    lanes += (count + W - 1) / W * W;
  }
  lane_offsets_.push_back(lanes);
  soa_.resize(lanes);
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    std::uint32_t lane = lane_offsets_[flat];
    for (std::uint32_t i = item_offsets_[flat]; i < item_offsets_[flat + 1]; ++i, ++lane) {
      const std::int32_t pid = item_ids_[i];
      const Patch::HitConstants c = patches[static_cast<std::size_t>(pid)].hit_constants();
      soa_.nx[lane] = c.normal.x;
      soa_.ny[lane] = c.normal.y;
      soa_.nz[lane] = c.normal.z;
      soa_.plane_d[lane] = c.plane_d;
      soa_.sx[lane] = c.s_axis.x;
      soa_.sy[lane] = c.s_axis.y;
      soa_.sz[lane] = c.s_axis.z;
      soa_.s_base[lane] = c.s_base;
      soa_.tx[lane] = c.t_axis.x;
      soa_.ty[lane] = c.t_axis.y;
      soa_.tz[lane] = c.t_axis.z;
      soa_.t_base[lane] = c.t_base;
      soa_.id[lane] = pid;
    }
  }
}

namespace {

// Per-ray constants splatted once per traversal.
struct RayLanes {
  simd::Vd ox, oy, oz;  // origin
  simd::Vd dx, dy, dz;  // direction
  simd::Vd eps, zero, one;
};

// Closest accepted hit in the lane block [begin, end) against the running
// best, written back into `best`. Semantics mirror the scalar reference loop
// (Patch::intersect streamed over the leaf in item order) bit for bit:
//
//  - each lane runs the identical IEEE double arithmetic in the identical
//    association order (no FMA: the shim has none and the TU is compiled with
//    -ffp-contract=off), so an accepted lane's dist/s/t equal the scalar's;
//  - acceptance is the same predicate chain (denom != 0, dist in
//    (kRayEpsilon, best), s and t in [0, 1]) — padding sentinels fail the
//    denom test exactly like a parallel patch, and the 0/0 -> NaN lanes the
//    sentinel division produces fail every ordered compare;
//  - the scalar loop's "last strict improvement wins" update means the final
//    winner is the minimum distance, ties resolved to the earliest item in
//    leaf order. The per-lane running minimum uses the same strict compare
//    (earliest block wins a tie within a lane) and the horizontal tail picks
//    the lowest distance, then the lowest lane index on equality — the same
//    winner the sequential scan selects.
inline void leaf_closest(const Octree::LeafSoA& soa, const Ray& ray, const RayLanes& rl,
                         std::uint32_t begin, std::uint32_t end, SceneHit& best) {
  simd::Vd vbest = simd::splat(best.dist);
  simd::Vd vwin = simd::splat(-1.0);
  double iota[simd::kLanes];
  for (int l = 0; l < simd::kLanes; ++l) iota[l] = static_cast<double>(l);
  simd::Vd vlane = simd::load(iota) + simd::splat(static_cast<double>(begin));
  const simd::Vd vstep = simd::splat(static_cast<double>(simd::kLanes));

  for (std::uint32_t k = begin; k < end; k += static_cast<std::uint32_t>(simd::kLanes)) {
    const simd::Vd nx = simd::load(&soa.nx[k]);
    const simd::Vd ny = simd::load(&soa.ny[k]);
    const simd::Vd nz = simd::load(&soa.nz[k]);
    const simd::Vd denom = rl.dx * nx + rl.dy * ny + rl.dz * nz;
    const simd::Vd dist =
        (simd::load(&soa.plane_d[k]) - (rl.ox * nx + rl.oy * ny + rl.oz * nz)) / denom;
    const simd::Vd px = rl.ox + rl.dx * dist;
    const simd::Vd py = rl.oy + rl.dy * dist;
    const simd::Vd pz = rl.oz + rl.dz * dist;
    const simd::Vd s =
        px * simd::load(&soa.sx[k]) + py * simd::load(&soa.sy[k]) +
        pz * simd::load(&soa.sz[k]) + simd::load(&soa.s_base[k]);
    const simd::Vd t =
        px * simd::load(&soa.tx[k]) + py * simd::load(&soa.ty[k]) +
        pz * simd::load(&soa.tz[k]) + simd::load(&soa.t_base[k]);
    const simd::Mask m = simd::neq(denom, rl.zero) & simd::gt(dist, rl.eps) &
                         simd::lt(dist, vbest) & simd::ge(s, rl.zero) & simd::le(s, rl.one) &
                         simd::ge(t, rl.zero) & simd::le(t, rl.one);
    vbest = simd::select(m, dist, vbest);
    vwin = simd::select(m, vlane, vwin);
    vlane = vlane + vstep;
  }

  double lane_dist[simd::kLanes];
  double lane_win[simd::kLanes];
  simd::store(lane_dist, vbest);
  simd::store(lane_win, vwin);
  std::int64_t win = -1;
  double win_dist = best.dist;
  for (int l = 0; l < simd::kLanes; ++l) {
    if (lane_win[l] < 0.0) continue;  // lane never accepted a candidate
    const auto idx = static_cast<std::int64_t>(lane_win[l]);
    if (lane_dist[l] < win_dist || (lane_dist[l] == win_dist && win >= 0 && idx < win)) {
      win_dist = lane_dist[l];
      win = idx;
    }
  }
  if (win < 0) return;

  // Re-derive the winner's hit scalars with the identical arithmetic — bitwise
  // equal to what its lane computed, and to Patch::intersect on the original.
  const auto w = static_cast<std::size_t>(win);
  const double denom = ray.dir.x * soa.nx[w] + ray.dir.y * soa.ny[w] + ray.dir.z * soa.nz[w];
  const double dist =
      (soa.plane_d[w] - (ray.origin.x * soa.nx[w] + ray.origin.y * soa.ny[w] +
                         ray.origin.z * soa.nz[w])) /
      denom;
  const double px = ray.origin.x + ray.dir.x * dist;
  const double py = ray.origin.y + ray.dir.y * dist;
  const double pz = ray.origin.z + ray.dir.z * dist;
  best.patch = soa.id[w];
  best.dist = dist;
  best.s = px * soa.sx[w] + py * soa.sy[w] + pz * soa.sz[w] + soa.s_base[w];
  best.t = px * soa.tx[w] + py * soa.ty[w] + pz * soa.tz[w] + soa.t_base[w];
  best.front = denom < 0.0;
}

}  // namespace

template <bool Count>
bool Octree::intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                            TraversalStats* stats) const {
  best.patch = -1;
  best.dist = tmax;
  if (nodes_.empty()) return false;
  double t0 = 0.0, t1 = 0.0;
  if (!nodes_[0].box.hit(ray, tmax, t0, t1)) return false;

  // Octant-XOR front-to-back order: flipping the child index bits on the axes
  // where the ray direction is negative makes ascending visit index a valid
  // front-to-back sequence over axis-aligned octants.
  const unsigned dir_mask = (ray.dir.x < 0.0 ? 1u : 0u) | (ray.dir.y < 0.0 ? 2u : 0u) |
                            (ray.dir.z < 0.0 ? 4u : 0u);

  RayLanes rl;
  rl.ox = simd::splat(ray.origin.x);
  rl.oy = simd::splat(ray.origin.y);
  rl.oz = simd::splat(ray.origin.z);
  rl.dx = simd::splat(ray.dir.x);
  rl.dy = simd::splat(ray.dir.y);
  rl.dz = simd::splat(ray.dir.z);
  rl.eps = simd::splat(kRayEpsilon);
  rl.zero = simd::splat(0.0);
  rl.one = simd::splat(1.0);

  struct Entry {
    std::int32_t node;
    double t_enter;
  };
  std::array<Entry, 8 * (kMaxDepth + 1)> stack;
  int sp = 0;
  stack[0] = {0, t0};
  sp = 1;

  while (sp > 0) {
    const Entry e = stack[static_cast<std::size_t>(--sp)];
    // The best hit may have improved since this node was pushed.
    if (e.t_enter > best.dist) continue;
    const Node& node = nodes_[static_cast<std::size_t>(e.node)];
    if constexpr (Count) ++stats->nodes_visited;

    const std::uint32_t lane_begin = lane_offsets_[static_cast<std::size_t>(e.node)];
    const std::uint32_t lane_end = lane_offsets_[static_cast<std::size_t>(e.node) + 1];
    if constexpr (Count) {
      // Real patch references, not padded lanes — identical on every backend.
      stats->patch_tests += item_offsets_[static_cast<std::size_t>(e.node) + 1] -
                            item_offsets_[static_cast<std::size_t>(e.node)];
    }
    if (lane_begin < lane_end) leaf_closest(soa_, ray, rl, lane_begin, lane_end, best);

    if (node.first_child < 0) continue;
    // Push in reverse visit order so the nearest child pops first. Clipping
    // the slab test to the running best.dist prunes children that start
    // beyond the closest hit found so far.
    for (int k = 7; k >= 0; --k) {
      const unsigned o = static_cast<unsigned>(k) ^ dir_mask;
      if (!(node.child_mask & (1u << o))) continue;
      const std::int32_t child =
          node.first_child +
          std::popcount(static_cast<unsigned>(node.child_mask) & ((1u << o) - 1u));
      double c0 = 0.0, c1 = 0.0;
      if (nodes_[static_cast<std::size_t>(child)].box.hit(ray, best.dist, c0, c1)) {
        stack[static_cast<std::size_t>(sp++)] = {child, c0};
      }
    }
  }
  return best.patch >= 0;
}

bool Octree::intersect(const Ray& ray, double tmax, SceneHit& best) const {
  return intersect_impl<false>(ray, tmax, best, nullptr);
}

bool Octree::intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                               TraversalStats& stats) const {
  return intersect_impl<true>(ray, tmax, best, &stats);
}

bool Octree::identical_to(const Octree& other) const {
  if (nodes_.size() != other.nodes_.size() || depth_ != other.depth_) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& a = nodes_[i];
    const Node& b = other.nodes_[i];
    if (a.box.lo != b.box.lo || a.box.hi != b.box.hi || a.first_child != b.first_child ||
        a.child_mask != b.child_mask) {
      return false;
    }
  }
  return item_offsets_ == other.item_offsets_ && item_ids_ == other.item_ids_ &&
         lane_offsets_ == other.lane_offsets_ && soa_.nx == other.soa_.nx &&
         soa_.ny == other.soa_.ny && soa_.nz == other.soa_.nz &&
         soa_.plane_d == other.soa_.plane_d && soa_.sx == other.soa_.sx &&
         soa_.sy == other.soa_.sy && soa_.sz == other.soa_.sz &&
         soa_.s_base == other.soa_.s_base && soa_.tx == other.soa_.tx &&
         soa_.ty == other.soa_.ty && soa_.tz == other.soa_.tz &&
         soa_.t_base == other.soa_.t_base && soa_.id == other.soa_.id;
}

}  // namespace photon
