#include "geom/octree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <utility>

namespace photon {

namespace {

// Build-time node; flattened into the CSR arrays once the topology is final.
struct TempNode {
  Aabb box;
  std::array<std::int32_t, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  std::vector<std::int32_t> items;
  bool leaf = true;
};

std::int32_t build_temp(std::span<const Patch> patches, std::vector<TempNode>& temp,
                        const Aabb& box, std::vector<std::int32_t> items, int depth,
                        int max_depth, const Octree::BuildParams& params, int& deepest) {
  const auto idx = static_cast<std::int32_t>(temp.size());
  temp.push_back(TempNode{});
  temp[static_cast<std::size_t>(idx)].box = box;
  deepest = std::max(deepest, depth);

  if (static_cast<int>(items.size()) <= params.max_leaf_items || depth >= max_depth) {
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  // Partition items into octants by bounding-box overlap; a patch may appear
  // in several children (duplicated references, not duplicated geometry).
  // Each child's stored box is tightened to the union of its items' bounds
  // clipped against the octant: every hit point a subtree is responsible for
  // lies inside some assigned patch's bounds AND inside the octant, so the
  // shrunken box still encloses all of them while the slab test culls the
  // octant's empty space (walls and furniture leave most of a room empty).
  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> child_boxes;
  std::array<Aabb, 8> tight_boxes;
  for (int o = 0; o < 8; ++o) child_boxes[o] = box.octant(o);
  bool useful_split = false;
  for (const std::int32_t item : items) {
    const Aabb pb = patches[static_cast<std::size_t>(item)].bounds();
    for (int o = 0; o < 8; ++o) {
      if (child_boxes[o].overlaps(pb)) {
        child_items[o].push_back(item);
        tight_boxes[o].expand(Aabb{max(pb.lo, child_boxes[o].lo), min(pb.hi, child_boxes[o].hi)});
      }
    }
  }
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].size() < items.size()) useful_split = true;
  }
  if (!useful_split) {
    // Every child would hold every item (e.g. a large patch spanning the
    // node); subdividing further only multiplies work.
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  temp[static_cast<std::size_t>(idx)].leaf = false;
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].empty()) continue;
    const std::int32_t child = build_temp(patches, temp, tight_boxes[o],
                                          std::move(child_items[o]), depth + 1, max_depth,
                                          params, deepest);
    temp[static_cast<std::size_t>(idx)].children[static_cast<std::size_t>(o)] = child;
  }
  return idx;
}

}  // namespace

void Octree::build(std::span<const Patch> patches, const BuildParams& params) {
  nodes_.clear();
  item_offsets_.clear();
  item_ids_.clear();
  packed_.clear();
  depth_ = 0;
  bounds_ = Aabb{};
  std::vector<std::int32_t> all(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
    bounds_.expand(patches[i].bounds());
  }
  if (patches.empty()) return;
  // Pad so axis-aligned patches on the boundary sit strictly inside.
  bounds_ = bounds_.padded(1e-6 * (1.0 + bounds_.extent().length()));

  const int max_depth = std::min(params.max_depth, kMaxDepth);
  std::vector<TempNode> temp;
  temp.reserve(patches.size());
  build_temp(patches, temp, bounds_, std::move(all), 0, max_depth, params, depth_);

  // Flatten breadth-first: each interior node's non-empty children become one
  // consecutive block, located through the octant bitmask + popcount. BFS
  // order keeps the heavily-traversed upper levels densely packed.
  std::vector<std::int32_t> flat_to_temp;
  flat_to_temp.reserve(temp.size());
  nodes_.reserve(temp.size());
  flat_to_temp.push_back(0);
  nodes_.push_back(Node{temp[0].box, -1, 0});
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    if (t.leaf) continue;
    nodes_[flat].first_child = static_cast<std::int32_t>(nodes_.size());
    std::uint8_t mask = 0;
    for (int o = 0; o < 8; ++o) {
      const std::int32_t child = t.children[static_cast<std::size_t>(o)];
      if (child < 0) continue;
      mask = static_cast<std::uint8_t>(mask | (1u << o));
      flat_to_temp.push_back(child);
      nodes_.push_back(Node{temp[static_cast<std::size_t>(child)].box, -1, 0});
    }
    nodes_[flat].child_mask = mask;
  }

  item_offsets_.reserve(nodes_.size() + 1);
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    item_ids_.insert(item_ids_.end(), t.items.begin(), t.items.end());
  }
  item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));

  packed_.reserve(item_ids_.size());
  for (const std::int32_t id : item_ids_) {
    const Patch& p = patches[static_cast<std::size_t>(id)];
    packed_.push_back(PackedPatch{p.normal(), p.plane_d(), p.s_axis(), p.s_base(),
                                  p.t_axis(), p.t_base(), id});
  }
}

template <bool Count>
bool Octree::intersect_impl(std::span<const Patch> patches, const Ray& ray, double tmax,
                            SceneHit& best, TraversalStats* stats) const {
  best.patch = -1;
  best.dist = tmax;
  if (nodes_.empty()) return false;
  double t0 = 0.0, t1 = 0.0;
  if (!nodes_[0].box.hit(ray, tmax, t0, t1)) return false;

  // Octant-XOR front-to-back order: flipping the child index bits on the axes
  // where the ray direction is negative makes ascending visit index a valid
  // front-to-back sequence over axis-aligned octants.
  const unsigned dir_mask = (ray.dir.x < 0.0 ? 1u : 0u) | (ray.dir.y < 0.0 ? 2u : 0u) |
                            (ray.dir.z < 0.0 ? 4u : 0u);

  struct Entry {
    std::int32_t node;
    double t_enter;
  };
  std::array<Entry, 8 * (kMaxDepth + 1)> stack;
  int sp = 0;
  stack[0] = {0, t0};
  sp = 1;

  PatchHit hit;
  while (sp > 0) {
    const Entry e = stack[static_cast<std::size_t>(--sp)];
    // The best hit may have improved since this node was pushed.
    if (e.t_enter > best.dist) continue;
    const Node& node = nodes_[static_cast<std::size_t>(e.node)];
    if constexpr (Count) ++stats->nodes_visited;

    const std::uint32_t item_begin = item_offsets_[static_cast<std::size_t>(e.node)];
    const std::uint32_t item_end = item_offsets_[static_cast<std::size_t>(e.node) + 1];
    if constexpr (Count) stats->patch_tests += item_end - item_begin;
    for (std::uint32_t i = item_begin; i < item_end; ++i) {
      // Same arithmetic as Patch::intersect, on the streamed packed copy —
      // the equivalence suite pins the two bitwise.
      const PackedPatch& pp = packed_[i];
      const double denom = dot(ray.dir, pp.normal);
      if (denom == 0.0) continue;
      const double dist = (pp.plane_d - dot(ray.origin, pp.normal)) / denom;
      if (!(dist > kRayEpsilon && dist < best.dist)) continue;
      const Vec3 p = ray.origin + ray.dir * dist;
      const double s = dot(p, pp.s_axis) + pp.s_base;
      if (s < 0.0 || s > 1.0) continue;
      const double t = dot(p, pp.t_axis) + pp.t_base;
      if (t < 0.0 || t > 1.0) continue;
      best.patch = pp.id;
      best.dist = dist;
      best.s = s;
      best.t = t;
      best.front = denom < 0.0;
    }

    if (node.first_child < 0) continue;
    // Push in reverse visit order so the nearest child pops first. Clipping
    // the slab test to the running best.dist prunes children that start
    // beyond the closest hit found so far.
    for (int k = 7; k >= 0; --k) {
      const unsigned o = static_cast<unsigned>(k) ^ dir_mask;
      if (!(node.child_mask & (1u << o))) continue;
      const std::int32_t child =
          node.first_child +
          std::popcount(static_cast<unsigned>(node.child_mask) & ((1u << o) - 1u));
      double c0 = 0.0, c1 = 0.0;
      if (nodes_[static_cast<std::size_t>(child)].box.hit(ray, best.dist, c0, c1)) {
        stack[static_cast<std::size_t>(sp++)] = {child, c0};
      }
    }
  }
  return best.patch >= 0;
}

bool Octree::intersect(std::span<const Patch> patches, const Ray& ray, double tmax,
                       SceneHit& best) const {
  return intersect_impl<false>(patches, ray, tmax, best, nullptr);
}

bool Octree::intersect_counted(std::span<const Patch> patches, const Ray& ray, double tmax,
                               SceneHit& best, TraversalStats& stats) const {
  return intersect_impl<true>(patches, ray, tmax, best, &stats);
}

}  // namespace photon
