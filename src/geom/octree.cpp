#include "geom/octree.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <thread>
#include <utility>

#include "engine/pool.hpp"
#include "geom/leaf_kernel_inl.hpp"

namespace photon {

namespace {

// Build-time node; flattened into the CSR arrays once the topology is final.
struct TempNode {
  Aabb box;
  std::array<std::int32_t, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  std::vector<std::int32_t> items;
  bool leaf = true;
};

// Partition items into octants by bounding-box overlap; a patch may appear
// in several children (duplicated references, not duplicated geometry).
// Each child's stored box is tightened to the union of its items' bounds
// clipped against the octant: every hit point a subtree is responsible for
// lies inside some assigned patch's bounds AND inside the octant, so the
// shrunken box still encloses all of them while the slab test culls the
// octant's empty space (walls and furniture leave most of a room empty).
// Returns false when every child would hold every item (e.g. a large patch
// spanning the node) — subdividing further only multiplies work.
bool partition_octants(std::span<const Patch> patches, const Aabb& box,
                       const std::vector<std::int32_t>& items,
                       std::array<std::vector<std::int32_t>, 8>& child_items,
                       std::array<Aabb, 8>& tight_boxes) {
  std::array<Aabb, 8> child_boxes;
  for (int o = 0; o < 8; ++o) child_boxes[o] = box.octant(o);
  for (const std::int32_t item : items) {
    const Aabb pb = patches[static_cast<std::size_t>(item)].bounds();
    for (int o = 0; o < 8; ++o) {
      if (child_boxes[o].overlaps(pb)) {
        child_items[o].push_back(item);
        tight_boxes[o].expand(Aabb{max(pb.lo, child_boxes[o].lo), min(pb.hi, child_boxes[o].hi)});
      }
    }
  }
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].size() < items.size()) return true;
  }
  return false;
}

std::int32_t build_temp(std::span<const Patch> patches, std::vector<TempNode>& temp,
                        const Aabb& box, std::vector<std::int32_t> items, int depth,
                        int max_depth, const Octree::BuildParams& params, int& deepest) {
  const auto idx = static_cast<std::int32_t>(temp.size());
  temp.push_back(TempNode{});
  temp[static_cast<std::size_t>(idx)].box = box;
  deepest = std::max(deepest, depth);

  if (static_cast<int>(items.size()) <= params.max_leaf_items || depth >= max_depth) {
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> tight_boxes;
  if (!partition_octants(patches, box, items, child_items, tight_boxes)) {
    temp[static_cast<std::size_t>(idx)].items = std::move(items);
    return idx;
  }

  temp[static_cast<std::size_t>(idx)].leaf = false;
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].empty()) continue;
    const std::int32_t child = build_temp(patches, temp, tight_boxes[o],
                                          std::move(child_items[o]), depth + 1, max_depth,
                                          params, deepest);
    temp[static_cast<std::size_t>(idx)].children[static_cast<std::size_t>(o)] = child;
  }
  return idx;
}

// Builds the temp topology with the root's non-empty octants decomposed as
// independent tasks on the persistent worker pool (`workers` wide). Each
// octant subtree is built into its own arena by the same recursion the
// serial path uses (the DFS touches no shared state), then the arenas are
// stitched onto the root in octant order with child indices rebased. The stitched topology — and therefore the
// BFS-flattened node/CSR/SoA arrays — is identical for every worker count,
// including the workers == 1 path that runs the same tasks inline.
void build_temp_root(std::span<const Patch> patches, std::vector<TempNode>& temp,
                     const Aabb& box, std::vector<std::int32_t> items, int max_depth,
                     const Octree::BuildParams& params, int& deepest, int workers) {
  temp.push_back(TempNode{});
  temp[0].box = box;
  deepest = 0;

  if (static_cast<int>(items.size()) <= params.max_leaf_items || 0 >= max_depth) {
    temp[0].items = std::move(items);
    return;
  }

  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> tight_boxes;
  if (!partition_octants(patches, box, items, child_items, tight_boxes)) {
    temp[0].items = std::move(items);
    return;
  }

  struct Subtree {
    std::vector<TempNode> temp;
    int deepest = 0;
  };
  std::array<Subtree, 8> sub;
  std::vector<int> tasks;
  tasks.reserve(8);
  for (int o = 0; o < 8; ++o) {
    if (!child_items[o].empty()) tasks.push_back(o);
  }

  const auto run_task = [&](int o) {
    build_temp(patches, sub[static_cast<std::size_t>(o)].temp, tight_boxes[o],
               std::move(child_items[static_cast<std::size_t>(o)]), 1, max_depth, params,
               sub[static_cast<std::size_t>(o)].deepest);
  };

  const int T = std::min<int>(workers, static_cast<int>(tasks.size()));
  if (T <= 1) {
    for (const int o : tasks) run_task(o);
  } else {
    // Octant subtrees as pool tasks (one chunk each) on the persistent
    // process pool — no thread spawn per build. Nested builds (a build
    // issued from inside a pool task) run inline via the pool's reentrancy
    // path, so this is safe to call from anywhere.
    WorkerPool::instance().run(tasks.size(), T, [&](std::uint64_t i, int) {
      run_task(tasks[static_cast<std::size_t>(i)]);
    });
  }

  temp[0].leaf = false;
  for (const int o : tasks) {
    Subtree& s = sub[static_cast<std::size_t>(o)];
    const auto offset = static_cast<std::int32_t>(temp.size());
    temp[0].children[static_cast<std::size_t>(o)] = offset;
    for (TempNode& n : s.temp) {
      for (std::int32_t& c : n.children) {
        if (c >= 0) c += offset;
      }
      temp.push_back(std::move(n));
    }
    deepest = std::max(deepest, s.deepest);
  }
}

}  // namespace

void Octree::build(std::span<const Patch> patches, const BuildParams& params) {
  nodes_.clear();
  item_offsets_.clear();
  item_ids_.clear();
  lane_offsets_.clear();
  soa_.clear();
  depth_ = 0;
  bounds_ = Aabb{};
  std::vector<std::int32_t> all(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
    bounds_.expand(patches[i].bounds());
  }
  if (patches.empty()) return;
  // Pad so axis-aligned patches on the boundary sit strictly inside.
  bounds_ = bounds_.padded(1e-6 * (1.0 + bounds_.extent().length()));

  const int max_depth = std::min(params.max_depth, kMaxDepth);
  int workers = params.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  // Small builds finish in well under the cost of spawning a thread pool;
  // only the auto setting is gated (an explicit workers request — e.g. the
  // determinism tests — always takes the task-decomposed path).
  constexpr std::size_t kParallelBuildMinItems = 2048;
  if (params.workers <= 0 && patches.size() < kParallelBuildMinItems) workers = 1;
  std::vector<TempNode> temp;
  temp.reserve(patches.size());
  build_temp_root(patches, temp, bounds_, std::move(all), max_depth, params, depth_, workers);

  // Flatten breadth-first: each interior node's non-empty children become one
  // consecutive block, located through the octant bitmask + popcount. BFS
  // order keeps the heavily-traversed upper levels densely packed.
  std::vector<std::int32_t> flat_to_temp;
  flat_to_temp.reserve(temp.size());
  nodes_.reserve(temp.size());
  flat_to_temp.push_back(0);
  nodes_.push_back(Node{temp[0].box, -1, 0});
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    if (t.leaf) continue;
    nodes_[flat].first_child = static_cast<std::int32_t>(nodes_.size());
    std::uint8_t mask = 0;
    for (int o = 0; o < 8; ++o) {
      const std::int32_t child = t.children[static_cast<std::size_t>(o)];
      if (child < 0) continue;
      mask = static_cast<std::uint8_t>(mask | (1u << o));
      flat_to_temp.push_back(child);
      nodes_.push_back(Node{temp[static_cast<std::size_t>(child)].box, -1, 0});
    }
    nodes_[flat].child_mask = mask;
  }

  item_offsets_.reserve(nodes_.size() + 1);
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));
    const TempNode& t = temp[static_cast<std::size_t>(flat_to_temp[flat])];
    item_ids_.insert(item_ids_.end(), t.items.begin(), t.items.end());
  }
  item_offsets_.push_back(static_cast<std::uint32_t>(item_ids_.size()));

  // SoA leaf blocks: per node, the CSR item list padded up to the kernel lane
  // width (geom/leaf_kernel.hpp). Only the real-item lanes are overwritten;
  // the padding keeps the sentinel constants resize() installed.
  lane_offsets_.reserve(nodes_.size() + 1);
  std::uint32_t lanes = 0;
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    lane_offsets_.push_back(lanes);
    lanes += padded_lanes(item_offsets_[flat + 1] - item_offsets_[flat]);
  }
  lane_offsets_.push_back(lanes);
  soa_.resize(lanes);
  for (std::size_t flat = 0; flat < nodes_.size(); ++flat) {
    std::uint32_t lane = lane_offsets_[flat];
    for (std::uint32_t i = item_offsets_[flat]; i < item_offsets_[flat + 1]; ++i, ++lane) {
      const std::int32_t pid = item_ids_[i];
      soa_.set_lane(lane, patches[static_cast<std::size_t>(pid)].hit_constants(), pid);
    }
  }
}

template <bool Count>
bool Octree::intersect_impl(const Ray& ray, double tmax, SceneHit& best,
                            TraversalStats* stats) const {
  best.patch = -1;
  best.dist = tmax;
  if (nodes_.empty()) return false;
  double t0 = 0.0, t1 = 0.0;
  if (!nodes_[0].box.hit(ray, tmax, t0, t1)) return false;

  // Octant-XOR front-to-back order: flipping the child index bits on the axes
  // where the ray direction is negative makes ascending visit index a valid
  // front-to-back sequence over axis-aligned octants.
  const unsigned dir_mask = (ray.dir.x < 0.0 ? 1u : 0u) | (ray.dir.y < 0.0 ? 2u : 0u) |
                            (ray.dir.z < 0.0 ? 4u : 0u);

  const RayLanes rl(ray);

  struct Entry {
    std::int32_t node;
    double t_enter;
  };
  std::array<Entry, 8 * (kMaxDepth + 1)> stack;
  int sp = 0;
  stack[0] = {0, t0};
  sp = 1;

  while (sp > 0) {
    const Entry e = stack[static_cast<std::size_t>(--sp)];
    // The best hit may have improved since this node was pushed.
    if (e.t_enter > best.dist) continue;
    const Node& node = nodes_[static_cast<std::size_t>(e.node)];
    if constexpr (Count) ++stats->nodes_visited;

    const std::uint32_t lane_begin = lane_offsets_[static_cast<std::size_t>(e.node)];
    const std::uint32_t lane_end = lane_offsets_[static_cast<std::size_t>(e.node) + 1];
    if constexpr (Count) {
      // Real patch references, not padded lanes — identical on every backend.
      stats->patch_tests += item_offsets_[static_cast<std::size_t>(e.node) + 1] -
                            item_offsets_[static_cast<std::size_t>(e.node)];
    }
    if (lane_begin < lane_end) leaf_closest(soa_, ray, rl, lane_begin, lane_end, best);

    if (node.first_child < 0) continue;
    // Push in reverse visit order so the nearest child pops first. Clipping
    // the slab test to the running best.dist prunes children that start
    // beyond the closest hit found so far.
    for (int k = 7; k >= 0; --k) {
      const unsigned o = static_cast<unsigned>(k) ^ dir_mask;
      if (!(node.child_mask & (1u << o))) continue;
      const std::int32_t child =
          node.first_child +
          std::popcount(static_cast<unsigned>(node.child_mask) & ((1u << o) - 1u));
      double c0 = 0.0, c1 = 0.0;
      if (nodes_[static_cast<std::size_t>(child)].box.hit(ray, best.dist, c0, c1)) {
        stack[static_cast<std::size_t>(sp++)] = {child, c0};
      }
    }
  }
  return best.patch >= 0;
}

bool Octree::intersect(const Ray& ray, double tmax, SceneHit& best) const {
  return intersect_impl<false>(ray, tmax, best, nullptr);
}

bool Octree::intersect_counted(const Ray& ray, double tmax, SceneHit& best,
                               TraversalStats& stats) const {
  return intersect_impl<true>(ray, tmax, best, &stats);
}

std::size_t Octree::memory_bytes() const {
  return nodes_.capacity() * sizeof(Node) +
         item_offsets_.capacity() * sizeof(std::uint32_t) +
         item_ids_.capacity() * sizeof(std::int32_t) +
         lane_offsets_.capacity() * sizeof(std::uint32_t) + soa_.memory_bytes();
}

bool Octree::identical_to(const Octree& other) const {
  if (nodes_.size() != other.nodes_.size() || depth_ != other.depth_) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& a = nodes_[i];
    const Node& b = other.nodes_[i];
    if (a.box.lo != b.box.lo || a.box.hi != b.box.hi || a.first_child != b.first_child ||
        a.child_mask != b.child_mask) {
      return false;
    }
  }
  return item_offsets_ == other.item_offsets_ && item_ids_ == other.item_ids_ &&
         lane_offsets_ == other.lane_offsets_ && soa_ == other.soa_;
}

bool Octree::identical_to(const AccelStructure& other) const {
  const auto* o = dynamic_cast<const Octree*>(&other);
  return o != nullptr && identical_to(*o);
}

}  // namespace photon
