#include "geom/octree.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace photon {

void Octree::build(std::span<const Patch> patches, const BuildParams& params) {
  nodes_.clear();
  depth_ = 0;
  bounds_ = Aabb{};
  std::vector<std::int32_t> all(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
    bounds_.expand(patches[i].bounds());
  }
  if (patches.empty()) return;
  // Pad so axis-aligned patches on the boundary sit strictly inside.
  bounds_ = bounds_.padded(1e-6 * (1.0 + bounds_.extent().length()));
  build_node(patches, bounds_, std::move(all), 0, params);
}

std::int32_t Octree::build_node(std::span<const Patch> patches, const Aabb& box,
                                std::vector<std::int32_t> items, int depth,
                                const BuildParams& params) {
  const auto idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{box, -1, {}});
  depth_ = std::max(depth_, depth);

  if (static_cast<int>(items.size()) <= params.max_leaf_items || depth >= params.max_depth) {
    nodes_[idx].items = std::move(items);
    return idx;
  }

  // Partition items into octants by bounding-box overlap; a patch may appear
  // in several children (duplicated references, not duplicated geometry).
  std::array<std::vector<std::int32_t>, 8> child_items;
  std::array<Aabb, 8> child_boxes;
  for (int o = 0; o < 8; ++o) child_boxes[o] = box.octant(o);
  bool useful_split = false;
  for (const std::int32_t item : items) {
    const Aabb pb = patches[static_cast<std::size_t>(item)].bounds();
    for (int o = 0; o < 8; ++o) {
      if (child_boxes[o].overlaps(pb)) child_items[o].push_back(item);
    }
  }
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].size() < items.size()) useful_split = true;
  }
  if (!useful_split) {
    // Every child would hold every item (e.g. a large patch spanning the
    // node); subdividing further only multiplies work.
    nodes_[idx].items = std::move(items);
    return idx;
  }

  // Reserve 8 consecutive child slots. Build children one by one; build_node
  // appends, so record positions first.
  const auto first_child = static_cast<std::int32_t>(nodes_.size());
  nodes_[idx].first_child = first_child;
  // Placeholder children to keep indices consecutive.
  for (int o = 0; o < 8; ++o) nodes_.push_back(Node{child_boxes[o], -1, {}});
  for (int o = 0; o < 8; ++o) {
    if (child_items[o].empty()) continue;
    if (static_cast<int>(child_items[o].size()) <= params.max_leaf_items ||
        depth + 1 >= params.max_depth) {
      nodes_[static_cast<std::size_t>(first_child + o)].items = std::move(child_items[o]);
      depth_ = std::max(depth_, depth + 1);
    } else {
      // Recursive build appends nodes; graft the subtree root's content onto
      // the reserved slot.
      const std::int32_t sub = build_node(patches, child_boxes[o], std::move(child_items[o]),
                                          depth + 1, params);
      nodes_[static_cast<std::size_t>(first_child + o)].first_child = nodes_[static_cast<std::size_t>(sub)].first_child;
      nodes_[static_cast<std::size_t>(first_child + o)].items = std::move(nodes_[static_cast<std::size_t>(sub)].items);
      // The subtree root slot `sub` stays as a dead placeholder; its children
      // remain reachable through first_child. This wastes one node per inner
      // recursion but keeps build code simple and traversal unaffected.
    }
  }
  return idx;
}

void Octree::intersect_node(std::span<const Patch> patches, std::int32_t node_idx, const Ray& ray,
                            double tmin, double tmax, SceneHit& best) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_idx)];

  for (const std::int32_t item : node.items) {
    const Patch& p = patches[static_cast<std::size_t>(item)];
    if (auto hit = p.intersect(ray, best.dist)) {
      best.patch = item;
      best.dist = hit->dist;
      best.s = hit->s;
      best.t = hit->t;
      best.front = hit->front;
    }
  }

  if (node.first_child < 0) return;

  // Order children front-to-back by their slab-entry parameter.
  std::array<std::pair<double, int>, 8> order;
  int n = 0;
  for (int o = 0; o < 8; ++o) {
    const Node& child = nodes_[static_cast<std::size_t>(node.first_child + o)];
    if (child.first_child < 0 && child.items.empty()) continue;
    double t0 = 0.0, t1 = 0.0;
    if (child.box.hit(ray, tmax, t0, t1) && t1 >= tmin) {
      order[static_cast<std::size_t>(n++)] = {t0, o};
    }
  }
  std::sort(order.begin(), order.begin() + n);
  for (int i = 0; i < n; ++i) {
    // Early exit: every remaining child starts beyond the best hit.
    if (best.dist < order[static_cast<std::size_t>(i)].first) return;
    intersect_node(patches, node.first_child + order[static_cast<std::size_t>(i)].second, ray,
                   tmin, tmax, best);
  }
}

std::optional<SceneHit> Octree::intersect(std::span<const Patch> patches, const Ray& ray,
                                          double tmax) const {
  if (nodes_.empty()) return std::nullopt;
  double t0 = 0.0, t1 = 0.0;
  if (!nodes_[0].box.hit(ray, tmax, t0, t1)) return std::nullopt;
  SceneHit best;
  best.dist = tmax;
  intersect_node(patches, 0, ray, t0, t1, best);
  if (best.patch < 0) return std::nullopt;
  return best;
}

}  // namespace photon
