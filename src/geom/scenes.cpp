#include "geom/scenes.hpp"

#include <array>
#include <stdexcept>

namespace photon::scenes {
namespace {

// Adds one parallelogram from corners (p00, p10, p01).
int quad(Scene& s, const Vec3& p00, const Vec3& p10, const Vec3& p01, int mat) {
  return s.add_patch(Patch::from_corners(p00, p10, p01, mat));
}

// Face order used by the box helpers: 0:-y 1:+y 2:-x 3:+x 4:-z 5:+z.
enum : unsigned {
  kSkipBottom = 1u << 0,
  kSkipTop = 1u << 1,
};

// Axis-aligned box [lo, hi] with per-face materials. Face normals point away
// from the box; `inward` flips them (room shells).
void box_faces(Scene& s, const Vec3& lo, const Vec3& hi, const std::array<int, 6>& mats,
               bool inward = false, unsigned skip_mask = 0) {
  const Vec3 d = hi - lo;
  struct Face {
    Vec3 p00, e1, e2;
  };
  // Outward-facing: cross(e1, e2) points away from the box interior.
  const Face faces[6] = {
      {lo, {d.x, 0, 0}, {0, 0, d.z}},                    // -y
      {{lo.x, hi.y, lo.z}, {0, 0, d.z}, {d.x, 0, 0}},    // +y
      {lo, {0, 0, d.z}, {0, d.y, 0}},                    // -x
      {{hi.x, lo.y, lo.z}, {0, d.y, 0}, {0, 0, d.z}},    // +x
      {lo, {0, d.y, 0}, {d.x, 0, 0}},                    // -z
      {{lo.x, lo.y, hi.z}, {d.x, 0, 0}, {0, d.y, 0}},    // +z
  };
  for (int f = 0; f < 6; ++f) {
    if (skip_mask & (1u << f)) continue;
    const Face& face = faces[f];
    if (inward) {
      s.add_patch(Patch(face.p00, face.e2, face.e1, mats[static_cast<std::size_t>(f)]));
    } else {
      s.add_patch(Patch(face.p00, face.e1, face.e2, mats[static_cast<std::size_t>(f)]));
    }
  }
}

void box(Scene& s, const Vec3& lo, const Vec3& hi, int mat, bool inward = false,
         unsigned skip_mask = 0) {
  box_faces(s, lo, hi, {mat, mat, mat, mat, mat, mat}, inward, skip_mask);
}

Material two_sided(Material m) {
  m.two_sided = true;
  return m;
}

}  // namespace

Scene cornell_box() {
  Scene s;
  s.set_name("cornell");
  const int white = s.add_material(Material::lambertian({0.73, 0.73, 0.73}));
  const int red = s.add_material(Material::lambertian({0.63, 0.06, 0.05}));
  const int green = s.add_material(Material::lambertian({0.12, 0.47, 0.10}));
  const int gray = s.add_material(two_sided(Material::lambertian({0.35, 0.35, 0.35})));
  const int mirror_mat = s.add_material(two_sided(Material::mirror({0.92, 0.92, 0.92})));
  const int light_mat = s.add_material(Material::emitter({30.0, 28.0, 24.0}));

  const double W = 5.5;  // room dimension

  // Room shell: floor/ceiling white, left (x=0) red, right (x=W) green.
  box_faces(s, {0, 0, 0}, {W, W, W}, {white, white, red, green, white, white},
            /*inward=*/true);

  // Ceiling luminaire, slightly below the ceiling, facing down.
  const double ly = W - 0.01;
  const int light =
      quad(s, {1.8, ly, 1.8}, {3.7, ly, 1.8}, {1.8, ly, 3.7}, light_mat);  // -y normal
  s.add_luminaire(light);

  // Light fixture trim: four gray strips around the luminaire.
  const double fy = W - 0.02;
  quad(s, {1.7, fy, 1.7}, {3.8, fy, 1.7}, {1.7, fy, 1.8}, gray);
  quad(s, {1.7, fy, 3.7}, {3.8, fy, 3.7}, {1.7, fy, 3.8}, gray);
  quad(s, {1.7, fy, 1.8}, {1.8, fy, 1.8}, {1.7, fy, 3.7}, gray);
  quad(s, {3.7, fy, 1.8}, {3.8, fy, 1.8}, {3.7, fy, 3.7}, gray);

  // Tall block (left rear) and short block (right front); bottoms sit on the
  // floor and are skipped.
  box(s, {1.0, 0.0, 1.0}, {2.5, 3.3, 2.5}, white, false, kSkipBottom);
  box(s, {3.0, 0.0, 2.7}, {4.5, 1.65, 4.2}, white, false, kSkipBottom);

  // Floating two-sided mirror in the center of the box (Fig 4.8).
  quad(s, {1.75, 1.4, 2.6}, {3.75, 1.4, 2.6}, {1.75, 2.9, 2.6}, mirror_mat);

  // Baseboards: four thin strips where walls meet the floor (two-sided gray).
  quad(s, {0.01, 0.0, 0}, {0.01, 0.12, 0}, {0.01, 0.0, W}, gray);
  quad(s, {W - 0.01, 0.0, 0}, {W - 0.01, 0.0, W}, {W - 0.01, 0.12, 0}, gray);
  quad(s, {0, 0.0, 0.01}, {W, 0.0, 0.01}, {0, 0.12, 0.01}, gray);
  quad(s, {0, 0.0, W - 0.01}, {0, 0.12, W - 0.01}, {W, 0.0, W - 0.01}, gray);

  // Two picture frames on the back wall (+z normals).
  quad(s, {0.8, 2.6, 0.02}, {1.9, 2.6, 0.02}, {0.8, 3.6, 0.02}, gray);
  quad(s, {3.6, 2.6, 0.02}, {4.7, 2.6, 0.02}, {3.6, 3.6, 0.02}, gray);

  // Door outline on the front wall and a rug on the floor.
  quad(s, {2.2, 0.0, W - 0.02}, {2.2, 2.2, W - 0.02}, {3.3, 0.0, W - 0.02}, gray);
  quad(s, {1.2, 0.001, 3.0}, {4.3, 0.001, 3.0}, {1.2, 0.001, 4.6}, gray);

  s.build();
  return s;
}

Scene harpsichord_room() {
  Scene s;
  s.set_name("harpsichord");
  const int wall = s.add_material(Material::lambertian({0.65, 0.62, 0.55}));
  const int floor_mat =
      s.add_material(Material::glossy({0.45, 0.32, 0.20}, {0.04, 0.04, 0.04}, 0.3));
  const int wood =
      s.add_material(two_sided(Material::glossy({0.42, 0.26, 0.14}, {0.03, 0.03, 0.03}, 0.25)));
  const int dark_wood = s.add_material(two_sided(Material::lambertian({0.25, 0.16, 0.09})));
  const int keys = s.add_material(two_sided(Material::lambertian({0.85, 0.83, 0.78})));
  const int fabric = s.add_material(two_sided(Material::lambertian({0.50, 0.12, 0.12})));
  const int mirror_mat = s.add_material(two_sided(Material::mirror({0.90, 0.90, 0.90})));
  const int sun_mat = s.add_material(Material::emitter({90.0, 85.0, 70.0}));
  const int sky_mat = s.add_material(Material::emitter({6.0, 8.0, 12.0}));

  const double X = 8.0, Y = 3.5, Z = 6.0;

  // Room shell (inward normals), floor tiled 3x3. Tiling the heavily lit
  // surfaces matters for the parallel experiments: bin trees are the unit of
  // ownership, and one monolithic sunlit floor would make load balancing
  // impossible at any granularity (Table 5.2).
  box_faces(s, {0, 0, 0}, {X, Y, Z}, {floor_mat, wall, wall, wall, wall, wall},
            /*inward=*/true, kSkipBottom);
  for (int ix = 0; ix < 3; ++ix) {
    for (int iz = 0; iz < 3; ++iz) {
      const double x0 = X / 3.0 * ix, z0 = Z / 3.0 * iz;
      quad(s, {x0, 0, z0}, {x0, 0, z0 + Z / 3.0}, {x0 + X / 3.0, 0, z0}, floor_mat);
    }
  }

  // Two skylights: each opening is a 2x2 grid of collimated "sun" patches
  // (quarter-degree cone per chapter 4) over a 2x2 grid of diffuse "sky"
  // patches, all facing down. The first lights the rug; the second sits
  // directly above the harpsichord so the instrument casts the crisp shadow
  // the paper contrasts with the soft skylight pools (Fig 4.7).
  // Sun and sky stripes share the opening plane side by side (stacking them
  // would absorb one component on the other's back face).
  const double sy = Y - 0.01;
  const double openings[2][2] = {{1.5, 1.5}, {4.6, 3.5}};
  for (const auto& opening : openings) {
    for (int tile = 0; tile < 4; ++tile) {
      const double tx = opening[0] + 0.6 * (tile % 2);
      const double tz = opening[1] + 0.6 * (tile / 2);
      const int sun = quad(s, {tx, sy, tz}, {tx + 0.3, sy, tz}, {tx, sy, tz + 0.6}, sun_mat);
      s.add_luminaire(sun, {}, /*angular_scale=*/0.005);
      const int sky =
          quad(s, {tx + 0.3, sy, tz}, {tx + 0.6, sy, tz}, {tx + 0.3, sy, tz + 0.6}, sky_mat);
      s.add_luminaire(sky);
    }
  }

  // Harpsichord: three case sections approximating the wing shape at keyboard
  // height, plus soundboard, raised lid, four legs, keyboard and music stand.
  const double hy0 = 0.75, hy1 = 1.05;
  box(s, {2.0, hy0, 3.6}, {4.6, hy1, 4.5}, wood);
  box(s, {4.6, hy0, 3.7}, {5.8, hy1, 4.4}, wood);
  box(s, {5.8, hy0, 3.85}, {6.8, hy1, 4.25}, wood);
  quad(s, {2.0, hy1 + 0.002, 3.6}, {4.6, hy1 + 0.002, 3.6}, {2.0, hy1 + 0.002, 4.5}, dark_wood);
  quad(s, {2.0, hy1, 3.6}, {6.8, hy1, 3.6}, {2.0, hy1 + 1.1, 3.2}, wood);  // lid
  for (int leg = 0; leg < 4; ++leg) {
    const double lx = (leg % 2 == 0) ? 2.1 : 6.5;
    const double lz = (leg / 2 == 0) ? 3.65 : 4.35;
    box(s, {lx, 0.0, lz}, {lx + 0.1, hy0, lz + 0.1}, dark_wood, false, kSkipBottom | kSkipTop);
  }
  box(s, {2.2, hy0 - 0.12, 3.35}, {4.4, hy0, 3.62}, keys);  // keyboard tray
  quad(s, {3.0, hy1 + 0.02, 3.8}, {4.0, hy1 + 0.02, 3.8}, {3.0, hy1 + 0.5, 3.9}, dark_wood);
  quad(s, {3.0, hy1 + 0.02, 3.9}, {4.0, hy1 + 0.02, 3.9}, {3.0, hy1 + 0.5, 4.0}, keys);

  // Bench with fabric seat and four (thin-quad) legs.
  box(s, {3.0, 0.45, 2.3}, {4.0, 0.55, 2.9}, fabric);
  for (int leg = 0; leg < 4; ++leg) {
    const double lx = (leg % 2 == 0) ? 3.05 : 3.87;
    const double lz = (leg / 2 == 0) ? 2.35 : 2.82;
    quad(s, {lx, 0.0, lz}, {lx + 0.08, 0.0, lz}, {lx, 0.45, lz}, dark_wood);
  }

  // Music shelf against the x=0 wall with a mirrored back (chapter 4: "the
  // back of the bookcase is a mirror").
  box(s, {0.05, 1.0, 1.0}, {0.65, 2.2, 2.6}, wood);
  quad(s, {0.12, 1.05, 1.05}, {0.12, 1.05, 2.55}, {0.12, 2.15, 1.05}, mirror_mat);
  quad(s, {0.05, 1.6, 1.0}, {0.65, 1.6, 1.0}, {0.05, 1.6, 2.6}, wood);  // middle shelf

  // Wall paneling strips on the long walls, a door, and a tiled rug (the rug
  // sits under the skylights and receives much of the sunlight).
  for (int i = 0; i < 2; ++i) {
    const double x0 = 0.6 + 3.2 * i;
    quad(s, {x0, 0.15, 0.015}, {x0 + 2.4, 0.15, 0.015}, {x0, 1.1, 0.015}, dark_wood);
    quad(s, {x0, 0.15, Z - 0.015}, {x0, 1.1, Z - 0.015}, {x0 + 2.4, 0.15, Z - 0.015}, dark_wood);
  }
  quad(s, {X - 0.015, 0.0, 2.4}, {X - 0.015, 2.1, 2.4}, {X - 0.015, 0.0, 3.4}, dark_wood);
  for (int rx = 0; rx < 2; ++rx) {
    for (int rz = 0; rz < 2; ++rz) {
      const double x0 = 1.6 + 1.9 * rx, z0 = 1.2 + 1.0 * rz;
      quad(s, {x0, 0.001, z0}, {x0, 0.001, z0 + 1.0}, {x0 + 1.9, 0.001, z0}, fabric);
    }
  }

  s.build();
  return s;
}

Scene computer_lab() {
  Scene s;
  s.set_name("lab");
  const int wall = s.add_material(Material::lambertian({0.70, 0.70, 0.72}));
  const int floor_mat =
      s.add_material(Material::glossy({0.30, 0.30, 0.32}, {0.05, 0.05, 0.05}, 0.4));
  const int desk = s.add_material(two_sided(Material::lambertian({0.55, 0.45, 0.35})));
  const int metal =
      s.add_material(two_sided(Material::glossy({0.35, 0.35, 0.38}, {0.20, 0.20, 0.20}, 0.35)));
  const int plastic = s.add_material(two_sided(Material::lambertian({0.75, 0.73, 0.68})));
  const int screen =
      s.add_material(two_sided(Material::glossy({0.04, 0.05, 0.06}, {0.25, 0.25, 0.25}, 0.05)));
  const int chair_mat = s.add_material(two_sided(Material::lambertian({0.15, 0.18, 0.45})));
  const int shelf = s.add_material(two_sided(Material::lambertian({0.50, 0.50, 0.52})));
  const int light_mat = s.add_material(Material::emitter({14.0, 14.0, 13.0}));

  const double X = 24.0, Y = 3.2, Z = 18.0;

  // Room shell.
  box_faces(s, {0, 0, 0}, {X, Y, Z}, {floor_mat, wall, wall, wall, wall, wall},
            /*inward=*/true);

  // Ceiling light panels: 4 x 6 grid of diffuse luminaires.
  const double ly = Y - 0.01;
  for (int ix = 0; ix < 4; ++ix) {
    for (int iz = 0; iz < 6; ++iz) {
      const double x0 = 2.0 + 5.5 * ix;
      const double z0 = 1.2 + 2.8 * iz;
      const int panel = quad(s, {x0, ly, z0}, {x0 + 1.8, ly, z0}, {x0, ly, z0 + 0.9}, light_mat);
      s.add_luminaire(panel);
    }
  }

  // Workstations: 10 x 10 grid, 19 patches per station (desk 4, monitor 6,
  // keyboard 1, chair 6, legs included).
  const int cols = 10, rows = 10;
  for (int ix = 0; ix < cols; ++ix) {
    for (int iz = 0; iz < rows; ++iz) {
      const double x0 = 1.0 + 2.2 * ix;
      const double z0 = 1.0 + 1.6 * iz;
      // Desk: top + two side panels + back panel.
      quad(s, {x0, 0.75, z0}, {x0 + 1.4, 0.75, z0}, {x0, 0.75, z0 + 0.7}, desk);
      quad(s, {x0 + 0.02, 0.0, z0}, {x0 + 0.02, 0.0, z0 + 0.7}, {x0 + 0.02, 0.75, z0}, metal);
      quad(s, {x0 + 1.38, 0.0, z0}, {x0 + 1.38, 0.75, z0}, {x0 + 1.38, 0.0, z0 + 0.7}, metal);
      quad(s, {x0, 0.1, z0 + 0.68}, {x0 + 1.4, 0.1, z0 + 0.68}, {x0, 0.75, z0 + 0.68}, metal);
      // Monitor: 5-face box (no bottom) + glossy screen facing -z.
      box(s, {x0 + 0.35, 0.78, z0 + 0.3}, {x0 + 0.95, 1.25, z0 + 0.62}, plastic, false,
          kSkipBottom);
      quad(s, {x0 + 0.40, 0.83, z0 + 0.295}, {x0 + 0.90, 0.83, z0 + 0.295},
           {x0 + 0.40, 1.20, z0 + 0.295}, screen);
      // Keyboard, mouse pad and paper tray.
      quad(s, {x0 + 0.35, 0.76, z0 + 0.02}, {x0 + 0.95, 0.76, z0 + 0.02},
           {x0 + 0.35, 0.76, z0 + 0.22}, plastic);
      quad(s, {x0 + 1.0, 0.76, z0 + 0.05}, {x0 + 1.25, 0.76, z0 + 0.05},
           {x0 + 1.0, 0.76, z0 + 0.25}, chair_mat);
      quad(s, {x0 + 0.05, 0.76, z0 + 0.35}, {x0 + 0.3, 0.76, z0 + 0.35},
           {x0 + 0.05, 0.76, z0 + 0.6}, plastic);
      // Chair: seat + back + 4 leg quads.
      quad(s, {x0 + 0.45, 0.45, z0 - 0.55}, {x0 + 0.95, 0.45, z0 - 0.55},
           {x0 + 0.45, 0.45, z0 - 0.15}, chair_mat);
      quad(s, {x0 + 0.45, 0.45, z0 - 0.57}, {x0 + 0.95, 0.45, z0 - 0.57},
           {x0 + 0.45, 0.95, z0 - 0.57}, chair_mat);
      for (int leg = 0; leg < 4; ++leg) {
        const double lx = x0 + ((leg % 2 == 0) ? 0.47 : 0.89);
        const double lz = z0 + ((leg / 2 == 0) ? -0.53 : -0.19);
        quad(s, {lx, 0.0, lz}, {lx + 0.04, 0.0, lz}, {lx, 0.45, lz}, metal);
      }
    }
  }

  // Wall shelving: 14 open-top shelf units of 5 patches each on the far wall.
  for (int i = 0; i < 14; ++i) {
    const double x0 = 0.8 + 1.6 * i;
    box(s, {x0, 1.6, Z - 0.35}, {x0 + 1.2, 2.4, Z - 0.05}, shelf, false, kSkipTop);
  }

  s.build();
  return s;
}

Scene by_name(const std::string& name) {
  if (name == "cornell") return cornell_box();
  if (name == "harpsichord") return harpsichord_room();
  if (name == "lab") return computer_lab();
  throw std::invalid_argument("unknown scene: " + name);
}

Scene furnace_box(double albedo) {
  Scene s;
  s.set_name("furnace");
  Material m = Material::lambertian(Rgb::splat(albedo));
  m.emission = Rgb::splat(1.0);
  const int mat = s.add_material(m);
  const double W = 2.0;
  box(s, {0, 0, 0}, {W, W, W}, mat, /*inward=*/true);
  for (int i = 0; i < 6; ++i) s.add_luminaire(i);
  s.build();
  return s;
}

Scene floor_and_light(double size, double height) {
  Scene s;
  s.set_name("floor_and_light");
  const int white = s.add_material(Material::lambertian({0.7, 0.7, 0.7}));
  const int light_mat = s.add_material(Material::emitter({10.0, 10.0, 10.0}));
  quad(s, {0, 0, 0}, {0, 0, size}, {size, 0, 0}, white);  // +y normal
  const double c = size / 2.0;
  const int light =
      s.add_patch(Patch({c - 0.25, height, c - 0.25}, {0.5, 0, 0}, {0, 0, 0.5}, light_mat));
  s.add_luminaire(light);
  s.build();
  return s;
}

Scene occluder_scene(double occluder_height, double occluder_half, double angular_scale) {
  Scene s;
  s.set_name("occluder");
  const int white = s.add_material(Material::lambertian({0.7, 0.7, 0.7}));
  const int occ_mat = s.add_material(two_sided(Material::black()));
  const int light_mat = s.add_material(Material::emitter({10.0, 10.0, 10.0}));
  const double size = 8.0;
  quad(s, {-size / 2, 0, -size / 2}, {-size / 2, 0, size / 2}, {size / 2, 0, -size / 2}, white);
  const double oh = occluder_half;
  s.add_patch(Patch({-oh, occluder_height, -oh}, {2 * oh, 0, 0}, {0, 0, 2 * oh}, occ_mat));
  // Wide collimated source high above (a "sun window"), facing down. Wide
  // enough that the floor has a fully illuminated annulus around the shadow
  // even for loose collimation.
  const double lh = 6.0;
  const int light = s.add_patch(Patch({-3.0, lh, -3.0}, {6.0, 0, 0}, {0, 0, 6.0}, light_mat));
  s.add_luminaire(light, {}, angular_scale);
  s.build();
  return s;
}

Scene parallel_plates(double gap) {
  Scene s;
  s.set_name("parallel_plates");
  const int absorber = s.add_material(Material::lambertian({0.0, 0.0, 0.0}));
  const int light_mat = s.add_material(Material::emitter({1.0, 1.0, 1.0}));
  // Emitter at y=0 facing up (+y); receiver at y=gap facing down (-y).
  const int light = s.add_patch(Patch({0, 0, 0}, {0, 0, 1}, {1, 0, 0}, light_mat));
  s.add_patch(Patch({0, gap, 0}, {1, 0, 0}, {0, 0, 1}, absorber));
  s.add_luminaire(light);
  s.build();
  return s;
}

}  // namespace photon::scenes
