// The SoA leaf-kernel body, header-inline so each acceleration structure's
// traversal loop absorbs it: the per-ray constants are splatted ONCE per
// traversal (RayLanes) instead of once per leaf visit, and the lane loop
// inlines into the caller's hot loop.
//
// Include rules: ONLY from a TU listed in PHOTON_KERNEL_TUS in CMakeLists
// (leaf_kernel.cpp and the three traversal TUs). Those TUs are compiled with
// -ffp-contract=off (fusing a*b+c would change rounding and break the bitwise
// equivalence with the scalar Patch::intersect reference), with -mavx2 when
// the configure machine runs AVX2, and with PHOTON_SIMD_SCALAR under
// -DPHOTON_SIMD=OFF. Including this header anywhere else would compile the
// intrinsics without those flags.
#pragma once

#include "core/simd.hpp"
#include "geom/leaf_kernel.hpp"

namespace photon {

// Per-ray constants splatted once per traversal.
struct RayLanes {
  simd::Vd ox, oy, oz;  // origin
  simd::Vd dx, dy, dz;  // direction
  simd::Vd eps, zero, one;

  explicit RayLanes(const Ray& ray)
      : ox(simd::splat(ray.origin.x)),
        oy(simd::splat(ray.origin.y)),
        oz(simd::splat(ray.origin.z)),
        dx(simd::splat(ray.dir.x)),
        dy(simd::splat(ray.dir.y)),
        dz(simd::splat(ray.dir.z)),
        eps(simd::splat(kRayEpsilon)),
        zero(simd::splat(0.0)),
        one(simd::splat(1.0)) {}
};

// Closest accepted hit in the lane block [begin, end) against the running
// best, written back into `best` (best.dist doubles as the running tmax).
// [begin, end) must be lane-width-aligned.
//
// Semantics mirror the scalar reference loop (Patch::intersect streamed over
// the leaf in item order) bit for bit:
//
//  - each lane runs the identical IEEE double arithmetic in the identical
//    association order (no FMA: the shim has none and the including TU is
//    compiled with -ffp-contract=off), so an accepted lane's dist/s/t equal
//    the scalar's;
//  - acceptance is the same predicate chain (denom != 0, dist in
//    (kRayEpsilon, best), s and t in [0, 1]) — padding sentinels fail the
//    denom test exactly like a parallel patch, and the 0/0 -> NaN lanes the
//    sentinel division produces fail every ordered compare;
//  - the scalar loop's "last strict improvement wins" update means the final
//    winner is the minimum distance, ties resolved to the earliest item in
//    leaf order. The per-lane running minimum uses the same strict compare
//    (earliest block wins a tie within a lane) and the horizontal tail picks
//    the lowest distance, then the lowest lane index on equality — the same
//    winner the sequential scan selects.
inline void leaf_closest(const LeafSoA& soa, const Ray& ray, const RayLanes& rl,
                         std::uint32_t begin, std::uint32_t end, SceneHit& best) {
  simd::Vd vbest = simd::splat(best.dist);
  simd::Vd vwin = simd::splat(-1.0);
  double iota[simd::kLanes];
  for (int l = 0; l < simd::kLanes; ++l) iota[l] = static_cast<double>(l);
  simd::Vd vlane = simd::load(iota) + simd::splat(static_cast<double>(begin));
  const simd::Vd vstep = simd::splat(static_cast<double>(simd::kLanes));

  for (std::uint32_t k = begin; k < end; k += static_cast<std::uint32_t>(simd::kLanes)) {
    const simd::Vd nx = simd::load(&soa.nx[k]);
    const simd::Vd ny = simd::load(&soa.ny[k]);
    const simd::Vd nz = simd::load(&soa.nz[k]);
    const simd::Vd denom = rl.dx * nx + rl.dy * ny + rl.dz * nz;
    const simd::Vd dist =
        (simd::load(&soa.plane_d[k]) - (rl.ox * nx + rl.oy * ny + rl.oz * nz)) / denom;
    const simd::Vd px = rl.ox + rl.dx * dist;
    const simd::Vd py = rl.oy + rl.dy * dist;
    const simd::Vd pz = rl.oz + rl.dz * dist;
    const simd::Vd s =
        px * simd::load(&soa.sx[k]) + py * simd::load(&soa.sy[k]) +
        pz * simd::load(&soa.sz[k]) + simd::load(&soa.s_base[k]);
    const simd::Vd t =
        px * simd::load(&soa.tx[k]) + py * simd::load(&soa.ty[k]) +
        pz * simd::load(&soa.tz[k]) + simd::load(&soa.t_base[k]);
    const simd::Mask m = simd::neq(denom, rl.zero) & simd::gt(dist, rl.eps) &
                         simd::lt(dist, vbest) & simd::ge(s, rl.zero) & simd::le(s, rl.one) &
                         simd::ge(t, rl.zero) & simd::le(t, rl.one);
    vbest = simd::select(m, dist, vbest);
    vwin = simd::select(m, vlane, vwin);
    vlane = vlane + vstep;
  }

  double lane_dist[simd::kLanes];
  double lane_win[simd::kLanes];
  simd::store(lane_dist, vbest);
  simd::store(lane_win, vwin);
  std::int64_t win = -1;
  double win_dist = best.dist;
  for (int l = 0; l < simd::kLanes; ++l) {
    if (lane_win[l] < 0.0) continue;  // lane never accepted a candidate
    const auto idx = static_cast<std::int64_t>(lane_win[l]);
    if (lane_dist[l] < win_dist || (lane_dist[l] == win_dist && win >= 0 && idx < win)) {
      win_dist = lane_dist[l];
      win = idx;
    }
  }
  if (win < 0) return;

  // Re-derive the winner's hit scalars with the identical arithmetic — bitwise
  // equal to what its lane computed, and to Patch::intersect on the original.
  const auto w = static_cast<std::size_t>(win);
  const double denom = ray.dir.x * soa.nx[w] + ray.dir.y * soa.ny[w] + ray.dir.z * soa.nz[w];
  const double dist =
      (soa.plane_d[w] - (ray.origin.x * soa.nx[w] + ray.origin.y * soa.ny[w] +
                         ray.origin.z * soa.nz[w])) /
      denom;
  const double px = ray.origin.x + ray.dir.x * dist;
  const double py = ray.origin.y + ray.dir.y * dist;
  const double pz = ray.origin.z + ray.dir.z * dist;
  best.patch = soa.id[w];
  best.dist = dist;
  best.s = px * soa.sx[w] + py * soa.sy[w] + pz * soa.sz[w] + soa.s_base[w];
  best.t = px * soa.tx[w] + py * soa.ty[w] + pz * soa.tz[w] + soa.t_base[w];
  best.front = denom < 0.0;
}

}  // namespace photon
