// The SoA leaf-intersection kernel shared by every acceleration structure.
//
// A structure's leaves store sequential copies of their referenced patches'
// hit-test constants (Patch::hit_constants()) in structure-of-arrays blocks:
// one contiguous double array per scalar, so the kernel loads a full vector
// of each constant with a single unit-stride read. Blocks are padded to the
// kernel lane width with sentinel lanes (all-zero constants: denom == 0
// rejects them exactly like the scalar parallel-plane test; id == -1).
//
// leaf_closest() (header-inline in geom/leaf_kernel_inl.hpp, so traversal
// loops absorb it with the per-ray splats hoisted) mirrors the scalar
// reference loop (Patch::intersect streamed over the leaf in item order) bit
// for bit on every kernel backend (AVX/SSE2/scalar, core/simd.hpp) — see the
// contract notes on the definition. Only the TUs listed in PHOTON_KERNEL_TUS
// touch the SIMD shim; the build compiles them with -ffp-contract=off (plus
// -mavx2 when the host runs it): fusing a*b+c would change rounding and break
// the bitwise equivalence with the scalar Patch::intersect reference.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/accel.hpp"
#include "geom/patch.hpp"

namespace photon {

// Compile-time kernel selection: lane width in doubles (4 for AVX, 2 for
// SSE2, 4 for the scalar fallback) and the backend name, for bench artifacts
// and diagnostics.
int kernel_lane_width();
const char* kernel_backend();

// Structure-of-arrays leaf storage. Lane k of a leaf's block holds one
// referenced patch's precomputed hit-test constants; the duplication (one
// copy per referencing leaf) buys unit-stride coherence.
struct LeafSoA {
  std::vector<double> nx, ny, nz, plane_d;
  std::vector<double> sx, sy, sz, s_base;
  std::vector<double> tx, ty, tz, t_base;
  std::vector<std::int32_t> id;  // global patch id; -1 in padding lanes

  void clear();
  // Zero-filled (re)allocation: a fresh lane is a valid sentinel (zero
  // normal -> denom == 0 -> rejected) until set_lane overwrites it.
  void resize(std::size_t lanes);
  // Scatters one patch's constants into lane `lane`.
  void set_lane(std::size_t lane, const Patch::HitConstants& c, std::int32_t patch_id);

  std::size_t size() const { return id.size(); }
  std::size_t memory_bytes() const;
  bool operator==(const LeafSoA& other) const;
};

// Rounds a leaf's item count up to a whole number of kernel lane blocks.
std::uint32_t padded_lanes(std::uint32_t items);

// The kernel itself — RayLanes (the per-traversal splat bundle) and
// leaf_closest() — lives in geom/leaf_kernel_inl.hpp, which only the
// PHOTON_KERNEL_TUS translation units may include. Headers may pass RayLanes
// by reference through this forward declaration.
struct RayLanes;

}  // namespace photon
