#include "geom/scene_io.hpp"

#include <fstream>
#include <sstream>

namespace photon {

void save_scene(const Scene& scene, std::ostream& out) {
  out << "photon-scene 1\n";
  out << "name " << scene.name() << "\n";
  for (const Material& m : scene.materials()) {
    out << "material " << m.diffuse.r << " " << m.diffuse.g << " " << m.diffuse.b << " "
        << m.specular.r << " " << m.specular.g << " " << m.specular.b << " " << m.roughness << " "
        << m.emission.r << " " << m.emission.g << " " << m.emission.b << " "
        << (m.two_sided ? 1 : 0) << "\n";
    if (m.fluorescent()) {
      out << "fluor";
      for (const Rgb& row : m.fluorescence) {
        out << " " << row.r << " " << row.g << " " << row.b;
      }
      out << "\n";
    }
  }
  for (const Patch& p : scene.patches()) {
    const Vec3& o = p.origin();
    const Vec3& s = p.edge_s();
    const Vec3& t = p.edge_t();
    out << "patch " << o.x << " " << o.y << " " << o.z << " " << s.x << " " << s.y << " " << s.z
        << " " << t.x << " " << t.y << " " << t.z << " " << p.material_id() << "\n";
  }
  for (const Luminaire& l : scene.luminaires()) {
    out << "luminaire " << l.patch << " " << l.power.r << " " << l.power.g << " " << l.power.b
        << " " << l.angular_scale << "\n";
  }
}

bool save_scene(const Scene& scene, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_scene(scene, out);
  return static_cast<bool>(out);
}

bool load_scene(std::istream& in, Scene& scene) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "photon-scene" || version != 1) return false;

  std::string keyword;
  while (in >> keyword) {
    if (keyword == "name") {
      std::string name;
      if (!(in >> name)) return false;
      scene.set_name(name);
    } else if (keyword == "material") {
      Material m;
      int two_sided = 0;
      if (!(in >> m.diffuse.r >> m.diffuse.g >> m.diffuse.b >> m.specular.r >> m.specular.g >>
            m.specular.b >> m.roughness >> m.emission.r >> m.emission.g >> m.emission.b >>
            two_sided)) {
        return false;
      }
      m.two_sided = two_sided != 0;
      scene.add_material(m);
    } else if (keyword == "fluor") {
      // Applies to the most recently declared material.
      if (scene.materials().empty()) return false;
      Material m = scene.materials().back();
      for (Rgb& row : m.fluorescence) {
        if (!(in >> row.r >> row.g >> row.b)) return false;
      }
      scene.replace_last_material(m);
    } else if (keyword == "patch") {
      Vec3 o, es, et;
      int mat = 0;
      if (!(in >> o.x >> o.y >> o.z >> es.x >> es.y >> es.z >> et.x >> et.y >> et.z >> mat)) {
        return false;
      }
      if (mat < 0 || mat >= static_cast<int>(scene.materials().size())) return false;
      scene.add_patch(Patch(o, es, et, mat));
    } else if (keyword == "luminaire") {
      int patch = 0;
      Rgb power;
      double scale = 1.0;
      if (!(in >> patch >> power.r >> power.g >> power.b >> scale)) return false;
      if (patch < 0 || patch >= static_cast<int>(scene.patch_count())) return false;
      scene.add_luminaire(patch, power, scale);
    } else {
      return false;  // unknown keyword
    }
  }
  return true;
}

bool load_scene(const std::string& path, Scene& scene) {
  std::ifstream in(path);
  if (!in) return false;
  return load_scene(in, scene);
}

}  // namespace photon
