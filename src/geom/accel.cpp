#include "geom/accel.hpp"

#include "geom/bvh.hpp"
#include "geom/grid.hpp"
#include "geom/octree.hpp"

namespace photon {

std::unique_ptr<AccelStructure> make_accel(AccelKind kind) {
  switch (kind) {
    case AccelKind::kBvh:
      return std::make_unique<Bvh>();
    case AccelKind::kGrid:
      return std::make_unique<HashGrid>();
    case AccelKind::kOctree:
      break;
  }
  return std::make_unique<Octree>();
}

const char* accel_kind_name(AccelKind kind) {
  switch (kind) {
    case AccelKind::kBvh:
      return "bvh";
    case AccelKind::kGrid:
      return "grid";
    case AccelKind::kOctree:
      break;
  }
  return "octree";
}

bool accel_kind_from_string(const std::string& name, AccelKind& kind) {
  if (name == "octree") {
    kind = AccelKind::kOctree;
    return true;
  }
  if (name == "bvh") {
    kind = AccelKind::kBvh;
    return true;
  }
  if (name == "grid") {
    kind = AccelKind::kGrid;
    return true;
  }
  return false;
}

std::vector<AccelKind> accel_kinds() {
  return {AccelKind::kOctree, AccelKind::kBvh, AccelKind::kGrid};
}

}  // namespace photon
