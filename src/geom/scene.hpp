// Scene: patches + materials + luminaires + a pluggable acceleration
// structure (geom/accel.hpp).
//
// Geometry is immutable once build() is called (the paper replicates exactly
// this structure on every rank; only the bin forest is distributed). The
// spatial index is held behind the AccelStructure seam — octree by default,
// switchable to the BVH or nested grid with set_accel() — so this header does
// not depend on any structure-specific header, and every structure answers
// queries bitwise-identically (the equivalence suite pins them against
// intersect_brute).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/accel.hpp"
#include "geom/patch.hpp"
#include "material/material.hpp"

namespace photon {

// A light-emitting patch. `angular_scale` limits the emission cone by scaling
// the unit circle of the hemisphere sampler (chapter 4, Fig 4.4): 1.0 is a
// diffuse luminaire, sin(theta_max) collimates to a cone of half-angle
// theta_max (0.005 ~ quarter-degree sunlight).
struct Luminaire {
  int patch = -1;
  Rgb power;                  // radiant flux per channel
  double angular_scale = 1.0; // in (0, 1]
};

class Scene {
 public:
  Scene();

  int add_material(const Material& m) {
    materials_.push_back(m);
    return static_cast<int>(materials_.size()) - 1;
  }

  // Amends the most recently added material (scene-file loading uses this
  // for trailing attribute lines such as fluorescence rows).
  void replace_last_material(const Material& m) {
    if (!materials_.empty()) materials_.back() = m;
  }

  int add_patch(const Patch& p) {
    patches_.push_back(p);
    return static_cast<int>(patches_.size()) - 1;
  }

  // Registers `patch` as a luminaire. Power defaults to emission * area of
  // the patch when `power` is black.
  void add_luminaire(int patch, const Rgb& power = {}, double angular_scale = 1.0);

  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  std::span<const Patch> patches() const { return patches_; }
  std::span<const Material> materials() const { return materials_; }
  std::span<const Luminaire> luminaires() const { return luminaires_; }
  const Patch& patch(int i) const { return patches_[static_cast<std::size_t>(i)]; }
  const Material& material_of(const Patch& p) const {
    return materials_[static_cast<std::size_t>(p.material_id())];
  }
  const Material& material_of(int patch) const { return material_of(patches_[static_cast<std::size_t>(patch)]); }

  std::size_t patch_count() const { return patches_.size(); }

  // Selects the acceleration structure for subsequent build() calls.
  // Switching kinds discards any built index; call build() again.
  void set_accel(AccelKind kind);
  AccelKind accel_kind() const { return accel_kind_; }

  // Builds the selected acceleration structure. Must be called before
  // intersect().
  void build(const AccelBuildParams& params = {});
  bool built() const { return accel_->built(); }
  const AccelStructure& accel() const { return *accel_; }

  std::optional<SceneHit> intersect(const Ray& ray, double tmax = kNoHit) const {
    return accel_->intersect(ray, tmax);
  }

  // Allocation-free fast path: closest hit written to `best`, false on a
  // miss. The tracer's inner loop uses this instead of the optional wrapper.
  bool intersect(const Ray& ray, double tmax, SceneHit& best) const {
    return accel_->intersect(ray, tmax, best);
  }

  // Reference linear scan, for acceleration-structure equivalence tests.
  std::optional<SceneHit> intersect_brute(const Ray& ray, double tmax = kNoHit) const;

  // Total emitted flux per channel over all luminaires.
  Rgb total_power() const;

  Aabb bounds() const;

 private:
  std::string name_ = "scene";
  std::vector<Patch> patches_;
  std::vector<Material> materials_;
  std::vector<Luminaire> luminaires_;
  // Never null: constructed with an empty octree, replaced by set_accel().
  std::unique_ptr<AccelStructure> accel_;
  AccelKind accel_kind_ = AccelKind::kOctree;
};

// Rejects degenerate input with a typed SceneError (core/error.hpp) naming
// the offending patch/luminaire index: non-finite vertices, zero-area patches
// (which have a zero normal and undefined bilinear inversion — the tracer
// divides by them), out-of-range material references, luminaires with
// invalid patch indices, non-finite or negative power, angular_scale outside
// (0, 1], and a scene whose total power is zero (nothing to emit). Called by
// the CLI after load, before any build; library callers may skip it and keep
// the historical garbage-in behavior.
void validate_scene(const Scene& scene);

}  // namespace photon
