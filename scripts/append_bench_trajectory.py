#!/usr/bin/env python3
"""Append one JSONL trajectory row per bench artifact.

Usage: append_bench_trajectory.py TRAJECTORY_FILE BENCH_JSON [BENCH_JSON...]

Each BENCH_JSON (a bench_hotpath / bench_comm_batching output, or a
checked-in artifact with baseline/current blocks) becomes one line in
TRAJECTORY_FILE tagged with the commit and timestamp from the
environment (GITHUB_SHA / SOURCE_DATE_EPOCH when set), so successive CI
runs accumulate a cross-PR perf history instead of overwriting it.
"""
import json
import os
import sys
import time


def rows_of(data):
    """The freshest `runs` array, whichever shape the artifact has."""
    if "runs" in data:
        return data["runs"]
    if "current" in data:
        return data["current"].get("runs", [])
    return []


def seen_keys(trajectory):
    """(bench, commit) pairs already in the file — re-runs of the same commit
    (whose exact-key cache restore already contains its own rows) must not
    append duplicates."""
    keys = set()
    if os.path.exists(trajectory):
        with open(trajectory) as f:
            for raw in f:
                try:
                    row = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                keys.add((row.get("bench"), row.get("commit")))
    return keys


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trajectory, benches = argv[1], argv[2:]
    commit = os.environ.get("GITHUB_SHA", "local")
    stamp = int(os.environ.get("SOURCE_DATE_EPOCH", time.time()))
    seen = seen_keys(trajectory)
    appended = 0
    with open(trajectory, "a") as out:
        for path in benches:
            if not os.path.exists(path):
                print(f"skip (missing): {path}", file=sys.stderr)
                continue
            with open(path) as f:
                data = json.load(f)
            bench = data.get("bench", os.path.basename(path))
            if (bench, commit) in seen:
                print(f"skip (already recorded): {bench} @ {commit}", file=sys.stderr)
                continue
            line = {
                "bench": bench,
                "commit": commit,
                "timestamp": stamp,
                "label": data.get("label", "current"),
                "runs": rows_of(data),
            }
            out.write(json.dumps(line, sort_keys=True) + "\n")
            appended += 1
    print(f"appended {appended} row(s) to {trajectory}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
