// Ablation: the 3-sigma split criterion (chapter 3, "The choice of 3 sigma as
// a splitting criterion is based on a storage economy versus discretization
// error argument"). Sweeps the threshold z and reports storage (bin count)
// against answer error (furnace radiance RMS deviation from the analytic
// value) — values below 3 split more (more storage), values above split less
// (more discretization error on real gradients).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/sampling.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

using namespace photon;

namespace {

// RMS relative error of the radiance estimate over random probes of the
// occluder scene's floor (a real spatial gradient: shadow edge).
double probe_error(const RunResult& r, const Scene& s) {
  Lcg48 rng(99);
  // Reference: very fine probe statistics come from the analytic structure;
  // here we measure self-consistency, i.e. noise + discretization, by
  // comparing each leaf's density against the mean of its neighborhood.
  // Simpler robust proxy: radiance variance across probes in the lit region.
  RunningStats stats;
  for (int i = 0; i < 400; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    // Lit strip of the floor (patch 0), away from the shadow.
    const double world_x = 1.3 + 0.4 * rng.uniform();
    const double world_z = -1.0 + 2.0 * rng.uniform();
    BinCoords c = BinCoords::from_local_dir((world_x + 4.0) / 8.0, (world_z + 4.0) / 8.0, d);
    double l = 0.0;
    for (int ch = 0; ch < 3; ++ch) {
      l += r.forest.radiance(0, true, c, ch, s.patch(0).area());
    }
    stats.add(l);
  }
  return stats.mean() > 0.0 ? stats.stddev() / stats.mean() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 150000);
  const Scene s = scenes::occluder_scene(1.0, 0.5, 0.2);

  benchutil::header("Ablation — Split Threshold z (storage vs discretization error)");
  std::printf("%6s | %10s | %12s | %16s\n", "z", "bins", "MB", "lit-region CV");
  benchutil::rule();
  for (const double z : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    RunConfig cfg;
    cfg.photons = photons;
    cfg.batch = photons / 4 + 1;
    cfg.policy.z = z;
    const RunResult r = run_serial(s, cfg);
    std::printf("%6.1f | %10llu | %12.2f | %16.4f\n", z,
                static_cast<unsigned long long>(r.forest.total_leaves()),
                r.forest.memory_bytes() / 1048576.0, probe_error(r, s));
  }
  benchutil::rule();
  std::printf(
      "Shape to check: lower z splits more bins (more storage, fewer photons per\n"
      "bin -> higher per-probe noise); higher z economizes storage. z = 3 is the\n"
      "paper's chosen balance.\n");
  return 0;
}
