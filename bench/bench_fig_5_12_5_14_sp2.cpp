// Figs 5.12-5.14: IBM SP-2 speedup traces, 1-64 processors, three scenes.
// The SP-2's buffered asynchronous messaging adds an extra memory copy per
// message; with two ranks the single message per batch overlaps with
// computation, beyond two it cannot be hidden — producing the paper's
// characteristic performance shift between 2 and 4 processors, after which
// scaling resumes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"

using namespace photon;

namespace {

void print_scene(const char* figure, const char* scene_key, std::uint64_t probe) {
  const Scene scene = scenes::by_name(scene_key);
  const WorkloadProfile profile = profile_scene(scene, probe, 1);
  const Platform sp2 = Platform::sp2();
  const double serial_rate = model_serial_rate(profile, sp2);
  const double duration = 1000.0;
  const int procs[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("\n--- %s: %s ---\n", figure, scene.name().c_str());
  std::printf("%5s | %12s | %9s | %10s\n", "P", "final rate", "speedup", "eff/proc");
  benchutil::rule();
  double rate2 = 0.0, rate4 = 0.0;
  for (const int P : procs) {
    const auto trace = model_distributed(profile, sp2, P, duration);
    const double rate = trace.back().rate;
    if (P == 2) rate2 = rate;
    if (P == 4) rate4 = rate;
    std::printf("%5d | %12.0f | %9.2f | %10.3f\n", P, rate, rate / serial_rate,
                rate / serial_rate / P);
  }
  benchutil::rule();
  std::printf("2->4 efficiency shift: %.2f (paper: clearly below 1 — the buffered-copy dip)\n",
              (rate4 / 4.0) / (rate2 / 2.0));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  benchutil::header("Figs 5.12-5.14 — IBM SP-2 Speedup, 1-64 processors");
  print_scene("Fig 5.12", "cornell", probe);
  print_scene("Fig 5.13", "harpsichord", probe);
  print_scene("Fig 5.14", "lab", probe);
  std::printf(
      "\nShapes to check (paper): unexpected reduced scaling between 2 and 4 processors\n"
      "(asynchronous message buffering can no longer be overlapped), good scaling\n"
      "beyond 4 processors out to 64.\n");
  return 0;
}
