// Figs 5.9-5.11: distributed-memory speedup traces on the SGI Indy cluster
// (10 Mb/s Ethernet) for the three scenes. Startup (process launch, geometry
// distribution, redundant load-balancing phase) pushes the first data point
// right; message batching then recovers good scaling on large scenes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"

using namespace photon;

namespace {

void print_scene(const char* figure, const char* scene_key, std::uint64_t probe) {
  const Scene scene = scenes::by_name(scene_key);
  const WorkloadProfile profile = profile_scene(scene, probe, 1);
  const Platform indy = Platform::indy_cluster();
  const double serial_rate = model_serial_rate(profile, indy);
  const double duration = 2000.0;

  std::printf("\n--- %s: %s ---\n", figure, scene.name().c_str());
  std::printf("%7s | ", "t (s)");
  for (const int P : {1, 2, 4, 8}) std::printf("P=%-2d rate  spd | ", P);
  std::printf("\n");
  benchutil::rule();

  std::vector<std::vector<SpeedPoint>> traces;
  for (const int P : {1, 2, 4, 8}) {
    traces.push_back(model_distributed(profile, indy, P, duration));
  }
  const double sample_times[] = {5, 15, 50, 150, 500, 1500, 2000};
  for (const double t : sample_times) {
    std::printf("%7.0f | ", t);
    for (const auto& trace : traces) {
      double rate = 0.0;
      for (const SpeedPoint& pt : trace) {
        if (pt.time_s <= t) rate = pt.rate;
      }
      std::printf("%9.0f %4.2f | ", rate, rate / serial_rate);
    }
    std::printf("\n");
  }
  std::printf("first data point (startup): ");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::printf("P=%d: %.1fs  ", 1 << i, traces[i].front().time_s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  benchutil::header("Figs 5.9-5.11 — Indy Cluster Speedup (distributed-memory model)");
  print_scene("Fig 5.9", "cornell", probe);
  print_scene("Fig 5.10", "harpsichord", probe);
  print_scene("Fig 5.11", "lab", probe);
  std::printf(
      "\nShapes to check (paper): startup shifts the initial time right relative to\n"
      "shared memory; absolute performance is lower than the Onyx (slower CPUs) but\n"
      "scalability is higher because memory contention is gone.\n");
  return 0;
}
