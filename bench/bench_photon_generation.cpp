// Chapter 4 operation-count experiment: the Gustafson rejection kernel vs the
// Shirley/Sillion closed form for cosine-weighted hemisphere directions.
// The paper counts 22 vs 34 FLOPs (LLNL convention) and measures the kernel
// "about twice as fast". google-benchmark measures both on this host.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flops.hpp"
#include "core/rng.hpp"
#include "core/sampling.hpp"

namespace {

void BM_RejectionKernel(benchmark::State& state) {
  photon::Lcg48 rng(1);
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(photon::sample_hemisphere_rejection(rng, scale));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RejectionKernel)->Arg(100)->Arg(25)->Arg(1);

void BM_ShirleyFormula(benchmark::State& state) {
  photon::Lcg48 rng(1);
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(photon::sample_hemisphere_formula(rng, scale));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShirleyFormula)->Arg(100)->Arg(25)->Arg(1);

void BM_RngDraw(benchmark::State& state) {
  photon::Lcg48 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngDraw);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Chapter 4 — Photon Generation Kernel (op counts, LLNL convention) ===\n");
  std::printf("Shirley/Sillion closed form : %d FLOPs (paper: 34)\n",
              photon::shirley_formula_flops());
  std::printf("rejection loop iteration    : %d FLOPs (paper: 13)\n",
              photon::rejection_iteration_flops());
  std::printf("rejection expected total    : %.2f FLOPs (paper: ~22)\n",
              photon::rejection_expected_flops());
  std::printf("expected saving             : %.1f FLOPs (paper: 12)\n\n",
              photon::shirley_formula_flops() - photon::rejection_expected_flops());
  std::printf("Shape to check below: the rejection kernel is roughly twice as fast\n"
              "(no trigonometry), at every collimation scale.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
