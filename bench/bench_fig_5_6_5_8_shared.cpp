// Figs 5.6-5.8: shared-memory speedup traces on the SGI Power Onyx for the
// Cornell Box, Harpsichord Practice Room and Computer Laboratory.
//
// The machine model replays the shared-memory algorithm's schedule with the
// Power Onyx's contention parameters, driven by each scene's measured
// workload profile (serial rate, path length, tally concentration). Speedup
// is relative to the best serial version, following the paper.
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"

using namespace photon;

namespace {

void print_scene(const char* figure, const char* scene_key, std::uint64_t probe) {
  const Scene scene = scenes::by_name(scene_key);
  const WorkloadProfile profile = profile_scene(scene, probe, 1);
  const Platform onyx = Platform::power_onyx();
  const double serial_rate = model_serial_rate(profile, onyx);
  const double duration = 600.0;

  std::printf("\n--- %s: %s (%zu defining polygons, concentration %.3f) ---\n", figure,
              scene.name().c_str(), scene.patch_count(), profile.concentration);
  std::printf("%6s | ", "t (s)");
  for (const int P : {1, 2, 4, 8}) std::printf("P=%-2d rate  spd | ", P);
  std::printf("\n");
  benchutil::rule();

  // Sample each trace on a common log-spaced time grid, like the figures.
  const double sample_times[] = {1, 3, 10, 30, 100, 300, 600};
  std::vector<std::vector<SpeedPoint>> traces;
  for (const int P : {1, 2, 4, 8}) traces.push_back(model_shared(profile, onyx, P, duration));

  for (const double t : sample_times) {
    std::printf("%6.0f | ", t);
    for (const auto& trace : traces) {
      double rate = 0.0;
      for (const SpeedPoint& pt : trace) {
        if (pt.time_s <= t) rate = pt.rate;
      }
      std::printf("%9.0f %4.2f | ", rate, rate / serial_rate);
    }
    std::printf("\n");
  }
  std::printf("final speedups: ");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::printf("P=%d: %.2f  ", 1 << i, traces[i].back().rate / serial_rate);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  benchutil::header("Figs 5.6-5.8 — Shared-Memory Speedup (SGI Power Onyx model)");
  print_scene("Fig 5.6", "cornell", probe);
  print_scene("Fig 5.7", "harpsichord", probe);
  print_scene("Fig 5.8", "lab", probe);
  std::printf(
      "\nShapes to check (paper): small geometries saturate ('for small geometries,\n"
      "using more than two processors is a waste'); scalability rises with scene\n"
      "complexity while absolute performance falls.\n");
  return 0;
}
