// bench_faults — recovery latency and goodput of the elastic runner
// (engine/recovery.hpp) under scripted failures (mp/fault.hpp).
//
// Per bundled scene, six hybrid runs at groups=2:
//
//   baseline   one uninterrupted leg — the fault-free reference rate
//   legs       checkpoint legs, no faults — the pure checkpoint overhead
//   kill-leg2  a rank dies after leg 1 checkpointed — rewind one leg,
//              re-shard onto the survivor, finish at width 1
//   kill-cold  the same death with NO checkpoint legs — the whole run
//              re-traces, the "why checkpoint" number
//   delay      a 50ms delivery delay absorbed by deadline retries — the
//              policy's slack, no recovery
//   detect     a SILENT death (announce_death off): the heartbeat detector
//              pays its missed-deadline budget before recovery starts, so
//              lost_s ~ detection latency + the re-traced leg
//
// goodput = photons / (photons + photons_retraced): the fraction of traced
// work that landed in the answer. recovery_s is wall time inside failed
// legs (detection + lost compute).
//
//   bench_faults [--photons=N] [--batch=N] [--leg=N] [--out=FILE]
//                [--label=NAME]
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/recovery.hpp"

namespace {

using namespace photon;
using benchutil::arg_str;
using benchutil::arg_u64;

struct FaultRow {
  const char* mode;
  double wall_s = 0.0;
  double rate = 0.0;
  double goodput = 1.0;
  RecoveryStats stats;
};

FaultRow run_mode(const char* mode, const Scene& scene, RunConfig cfg,
                  std::shared_ptr<FaultPlan> plan) {
  cfg.fault_plan = std::move(plan);
  const auto backend = make_backend("hybrid");
  FaultRow row;
  row.mode = mode;
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult result = run_elastic(*backend, scene, cfg, nullptr, &row.stats);
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  row.rate = row.wall_s > 0.0 ? static_cast<double>(result.counters.emitted) / row.wall_s : 0.0;
  const double traced =
      static_cast<double>(result.counters.emitted + row.stats.photons_retraced);
  row.goodput = traced > 0.0 ? static_cast<double>(result.counters.emitted) / traced : 1.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = arg_u64(argc, argv, "photons", 12000);
  const std::uint64_t batch = arg_u64(argc, argv, "batch", 500);
  const std::uint64_t leg = arg_u64(argc, argv, "leg", 3000);
  const std::string out = arg_str(argc, argv, "out", "BENCH_faults.json");
  const std::string label = arg_str(argc, argv, "label", "dev");

  benchutil::header("fault recovery: latency and goodput (hybrid, groups=2)");
  std::printf("photons=%llu batch=%llu leg=%llu\n",
              static_cast<unsigned long long>(photons),
              static_cast<unsigned long long>(batch), static_cast<unsigned long long>(leg));

  // The kill fires in leg 2 (window indices are global), so kill-leg2 rewinds
  // exactly one leg while kill-cold re-traces everything before the kill.
  const std::uint64_t kill_window = leg / std::max<std::uint64_t>(batch, 1) + 1;

  std::vector<std::string> rows;
  for (const auto& spec : benchutil::bundled_scenes()) {
    RunConfig base;
    base.photons = photons;
    base.batch = batch;
    base.adapt_batch = false;
    base.groups = 2;
    base.workers = 2;

    std::vector<FaultRow> results;

    results.push_back(run_mode("baseline", spec.scene, base, nullptr));

    RunConfig legs = base;
    legs.checkpoint_photons = leg;
    results.push_back(run_mode("legs", spec.scene, legs, nullptr));

    {
      auto plan = std::make_shared<FaultPlan>();
      plan->add_kill({1, FaultPoint::kBeforeBatch, kill_window});
      results.push_back(run_mode("kill-leg2", spec.scene, legs, plan));
    }
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->add_kill({1, FaultPoint::kBeforeBatch, kill_window});
      results.push_back(run_mode("kill-cold", spec.scene, base, plan));
    }
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->add_delay({0, 1, 0, 0, 0.05});
      RunConfig delay = base;
      delay.comm.deadline_s = 0.02;
      results.push_back(run_mode("delay", spec.scene, delay, plan));
    }
    {
      auto plan = std::make_shared<FaultPlan>();
      plan->add_kill({1, FaultPoint::kBeforeBatch, kill_window});
      RunConfig detect = legs;
      detect.comm.deadline_s = 0.02;
      detect.comm.retries = 2;
      detect.comm.heartbeats = true;
      detect.comm.announce_death = false;
      results.push_back(run_mode("detect", spec.scene, detect, plan));
    }

    benchutil::rule();
    std::printf("%-12s %-10s %10s %12s %8s %9s %10s %9s\n", spec.name, "mode", "wall_s",
                "photons/s", "legs", "failures", "retraced", "goodput");
    for (const FaultRow& r : results) {
      std::printf("%-12s %-10s %10.4f %12.0f %8d %9d %10llu %9.3f\n", "", r.mode, r.wall_s,
                  r.rate, r.stats.legs, r.stats.failures,
                  static_cast<unsigned long long>(r.stats.photons_retraced), r.goodput);
      char row[512];
      std::snprintf(row, sizeof(row),
                    "{\"scene\": \"%s\", \"mode\": \"%s\", \"wall_s\": %.6f, "
                    "\"photons_per_sec\": %.1f, \"legs\": %d, \"failures\": %d, "
                    "\"ranks_lost\": %d, \"final_width\": %d, \"photons_retraced\": %llu, "
                    "\"recovery_s\": %.6f, \"goodput\": %.4f}",
                    spec.name, r.mode, r.wall_s, r.rate, r.stats.legs, r.stats.failures,
                    r.stats.ranks_lost, r.stats.final_width,
                    static_cast<unsigned long long>(r.stats.photons_retraced),
                    r.stats.lost_seconds, r.goodput);
      rows.emplace_back(row);
    }
  }

  char scalars[160];
  std::snprintf(scalars, sizeof(scalars),
                "\"photons\": %llu, \"batch\": %llu, \"leg\": %llu",
                static_cast<unsigned long long>(photons),
                static_cast<unsigned long long>(batch),
                static_cast<unsigned long long>(leg));
  if (!benchutil::write_json_artifact(out, "faults", label, {scalars}, rows)) return 1;
  return 0;
}
