// Ablation: batched photon forwarding vs per-photon messages ("To save on
// message overhead and increase performance, photons are queued and batched
// for transmission"). Measures the real MiniMPI substrate both ways, and the
// modeled 1997 cost for context.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "mp/minimpi.hpp"
#include "perf/platform.hpp"

using namespace photon;

namespace {

double run_batched(int records, int reps) {
  const auto start = std::chrono::steady_clock::now();
  run_world(2, [&](Comm& comm) {
    Bytes payload(static_cast<std::size_t>(records) * 24);
    for (int rep = 0; rep < reps; ++rep) {
      if (comm.rank() == 0) {
        comm.send(1, payload);
      } else {
        comm.recv(0);
      }
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double run_per_photon(int records, int reps) {
  const auto start = std::chrono::steady_clock::now();
  run_world(2, [&](Comm& comm) {
    Bytes payload(24);
    for (int rep = 0; rep < reps; ++rep) {
      if (comm.rank() == 0) {
        for (int i = 0; i < records; ++i) comm.send(1, payload);
      } else {
        for (int i = 0; i < records; ++i) comm.recv(0);
      }
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int records = static_cast<int>(benchutil::arg_u64(argc, argv, "records", 2000));
  const int reps = static_cast<int>(benchutil::arg_u64(argc, argv, "reps", 50));

  benchutil::header("Ablation — Batched vs Per-Photon Forwarding");
  const double batched = run_batched(records, reps);
  const double per_photon = run_per_photon(records, reps);
  std::printf("MiniMPI, %d records x %d exchanges:\n", records, reps);
  std::printf("  one message per batch   : %8.4f s\n", batched);
  std::printf("  one message per photon  : %8.4f s  (%.1fx slower)\n", per_photon,
              per_photon / batched);

  // Modeled 1997 cost of the same exchange on the Indy cluster.
  const Platform indy = Platform::indy_cluster();
  const double bytes = records * 24.0;
  const double modeled_batched = indy.latency_s + bytes / indy.bandwidth_Bps;
  const double modeled_per_photon = records * (indy.latency_s + 24.0 / indy.bandwidth_Bps);
  std::printf("\nIndy-cluster model (latency %.1f ms, %.1f KB batch):\n", indy.latency_s * 1e3,
              bytes / 1e3);
  std::printf("  one message per batch   : %8.4f s\n", modeled_batched);
  std::printf("  one message per photon  : %8.4f s  (%.0fx slower)\n", modeled_per_photon,
              modeled_per_photon / modeled_batched);
  std::printf("\nShape to check: batching wins by a large factor in both the real substrate\n"
              "and the 1997 model — the design choice behind Fig 5.3's queue exchange.\n");
  return 0;
}
