// bench_comm_batching — the distributed comm-path benchmark.
//
// Part 1 (ablation): batched photon forwarding vs per-photon messages ("To
// save on message overhead and increase performance, photons are queued and
// batched for transmission"), on the real MiniMPI substrate and in the
// modeled 1997 cost.
//
// Part 2 (sweep): the real dist-particle / dist-spatial backends on every
// bundled scene at P ∈ {2, 4, 8} — plus the hybrid backend at groups ∈
// {2, 4, 8} × 2 threads per group — measuring photons/s, wire traffic
// (bytes/photon, messages per exchange round) and the overlap telemetry
// (wait_seconds = wall time blocked in recv; overlap_pct = share of total
// rank-time NOT blocked in recv). Writes BENCH_comm.json so every PR leaves a
// comparable trajectory point, same convention as bench_hotpath:
//
//   bench_comm_batching [--photons=N] [--batch=N] [--reps=N] [--sweep-reps=N]
//                       [--out=FILE] [--label=NAME] [--skip-ablation]
//
// --reps controls the ablation's exchange count; --sweep-reps the
// best-of-N repetitions of every scene/backend/P cell in the sweep.
//
// --label tags the run block (e.g. "seed" vs "current") so before/after
// artifacts can be concatenated into one trajectory file.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/backend.hpp"
#include "geom/scenes.hpp"
#include "mp/minimpi.hpp"
#include "par/dist.hpp"
#include "par/hybrid.hpp"
#include "par/spatial.hpp"
#include "perf/platform.hpp"

using namespace photon;

namespace {

double run_batched(int records, int reps) {
  const auto start = std::chrono::steady_clock::now();
  run_world(2, [&](Comm& comm) {
    Bytes payload(static_cast<std::size_t>(records) * 24);
    for (int rep = 0; rep < reps; ++rep) {
      if (comm.rank() == 0) {
        comm.send(1, payload);
      } else {
        comm.recv(0);
      }
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double run_per_photon(int records, int reps) {
  const auto start = std::chrono::steady_clock::now();
  run_world(2, [&](Comm& comm) {
    Bytes payload(24);
    for (int rep = 0; rep < reps; ++rep) {
      if (comm.rank() == 0) {
        for (int i = 0; i < records; ++i) comm.send(1, payload);
      } else {
        for (int i = 0; i < records; ++i) comm.recv(0);
      }
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void run_ablation(int records, int reps) {
  benchutil::header("Ablation — Batched vs Per-Photon Forwarding");
  const double batched = run_batched(records, reps);
  const double per_photon = run_per_photon(records, reps);
  std::printf("MiniMPI, %d records x %d exchanges:\n", records, reps);
  std::printf("  one message per batch   : %8.4f s\n", batched);
  std::printf("  one message per photon  : %8.4f s  (%.1fx slower)\n", per_photon,
              per_photon / batched);

  // Modeled 1997 cost of the same exchange on the Indy cluster.
  const Platform indy = Platform::indy_cluster();
  const double bytes = records * 24.0;
  const double modeled_batched = indy.latency_s + bytes / indy.bandwidth_Bps;
  const double modeled_per_photon = records * (indy.latency_s + 24.0 / indy.bandwidth_Bps);
  std::printf("\nIndy-cluster model (latency %.1f ms, %.1f KB batch):\n", indy.latency_s * 1e3,
              bytes / 1e3);
  std::printf("  one message per batch   : %8.4f s\n", modeled_batched);
  std::printf("  one message per photon  : %8.4f s  (%.0fx slower)\n", modeled_per_photon,
              modeled_per_photon / modeled_batched);
}

struct Row {
  std::string scene;
  std::string backend;
  int ranks = 0;    // MiniMPI ranks: processes for dist-*, groups for hybrid
  int threads = 1;  // shared-memory threads per rank (hybrid only; 1 else)
  std::uint64_t photons = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  double wall_s = 0.0;
  double photons_per_sec = 0.0;
  double wait_seconds = 0.0;  // summed over ranks
  double overlap_pct = 0.0;
};

Row run_backend(const Scene& scene, const std::string& scene_name,
                const std::string& backend, int P, int threads, std::uint64_t photons,
                std::uint64_t batch, int reps) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = batch;
  cfg.adapt_batch = false;
  if (backend == "hybrid") {
    cfg.groups = P;
    cfg.workers = threads;
    // Hybrid's `batch` is the GLOBAL ids-per-window size; the flat backends
    // trace `batch` per rank per round. Scale so every backend exchanges
    // after the same number of photons — the rows' per-round columns
    // (msg/batch, wait_s, overlap%) compare like for like.
    cfg.batch = batch * static_cast<std::uint64_t>(P);
  } else {
    cfg.workers = P;
  }
  Row best;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult r = backend == "dist-particle" ? run_distributed(scene, cfg)
                        : backend == "hybrid"      ? run_hybrid(scene, cfg)
                                                   : run_spatial(scene, cfg);
    Row row;
    row.scene = scene_name;
    row.backend = backend;
    row.ranks = P;
    row.threads = threads;
    row.photons = r.counters.emitted;
    for (const RankReport& report : r.ranks) {
      row.sent_bytes += report.sent_bytes;
      row.messages += report.sent_messages;
      row.rounds = std::max(row.rounds, report.rounds);
      row.wait_seconds += report.wait_seconds;
    }
    row.wall_s = r.trace.total_time_s;
    if (row.wall_s > 0.0) {
      row.photons_per_sec = static_cast<double>(row.photons) / row.wall_s;
      row.overlap_pct =
          100.0 * (1.0 - row.wait_seconds / (static_cast<double>(P) * row.wall_s));
    }
    if (rep == 0 || row.wall_s < best.wall_s) best = row;
  }
  return best;
}

std::string row_json(const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"scene\": \"%s\", \"backend\": \"%s\", \"ranks\": %d, "
                "\"threads_per_group\": %d, "
                "\"photons\": %llu, \"wall_s\": %.6f, \"photons_per_sec\": %.1f, "
                "\"sent_bytes\": %llu, \"bytes_per_photon\": %.2f, "
                "\"messages\": %llu, \"rounds\": %llu, \"messages_per_batch\": %.2f, "
                "\"wait_seconds\": %.6f, \"overlap_pct\": %.2f}",
                r.scene.c_str(), r.backend.c_str(), r.ranks, r.threads,
                static_cast<unsigned long long>(r.photons), r.wall_s, r.photons_per_sec,
                static_cast<unsigned long long>(r.sent_bytes),
                r.photons ? static_cast<double>(r.sent_bytes) / static_cast<double>(r.photons)
                          : 0.0,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.rounds),
                r.rounds ? static_cast<double>(r.messages) / static_cast<double>(r.rounds)
                         : 0.0,
                r.wait_seconds, r.overlap_pct);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const int records = static_cast<int>(benchutil::arg_u64(argc, argv, "records", 2000));
  const int ablation_reps = static_cast<int>(benchutil::arg_u64(argc, argv, "reps", 50));
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 40000);
  const std::uint64_t batch = benchutil::arg_u64(argc, argv, "batch", 500);
  const int sweep_reps =
      std::max(1, static_cast<int>(benchutil::arg_u64(argc, argv, "sweep-reps", 3)));
  const std::string out = benchutil::arg_str(argc, argv, "out", "BENCH_comm.json");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");
  bool skip_ablation = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-ablation") == 0) skip_ablation = true;
  }

  if (!skip_ablation) run_ablation(records, ablation_reps);

  benchutil::header("Distributed backends — wire traffic and overlap");
  std::printf("%-12s %-13s %2s %2s %10s %8s %9s %8s %8s\n", "scene", "backend", "P", "T",
              "photons/s", "B/photon", "msg/batch", "wait_s", "overlap%");
  benchutil::rule();

  std::vector<Row> rows;
  for (const benchutil::NamedScene& spec : benchutil::bundled_scenes()) {
    for (const char* backend : {"dist-particle", "dist-spatial", "hybrid"}) {
      // Hybrid runs each MiniMPI rank as a 2-thread group: same rank counts
      // as the flat backends, so rows compare message-path cost directly.
      const int threads = std::strcmp(backend, "hybrid") == 0 ? 2 : 1;
      for (const int P : {2, 4, 8}) {
        const Row row =
            run_backend(spec.scene, spec.name, backend, P, threads, photons, batch,
                        sweep_reps);
        std::printf("%-12s %-13s %2d %2d %10.0f %8.2f %9.2f %8.4f %8.2f\n", row.scene.c_str(),
                    row.backend.c_str(), row.ranks, row.threads, row.photons_per_sec,
                    row.photons ? static_cast<double>(row.sent_bytes) /
                                      static_cast<double>(row.photons)
                                : 0.0,
                    row.rounds ? static_cast<double>(row.messages) /
                                     static_cast<double>(row.rounds)
                               : 0.0,
                    row.wait_seconds, row.overlap_pct);
        rows.push_back(row);
      }
    }
  }

  std::vector<std::string> row_strings;
  row_strings.reserve(rows.size());
  for (const Row& r : rows) row_strings.push_back(row_json(r));
  char photons_field[64], batch_field[64];
  std::snprintf(photons_field, sizeof(photons_field), "\"photons_requested\": %llu",
                static_cast<unsigned long long>(photons));
  std::snprintf(batch_field, sizeof(batch_field), "\"batch\": %llu",
                static_cast<unsigned long long>(batch));
  return benchutil::write_json_artifact(out, "comm", label, {photons_field, batch_field},
                                        row_strings)
             ? 0
             : 1;
}
