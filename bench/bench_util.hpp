// Shared helpers for the table/figure reproduction benches: tiny argument
// parsing and consistent table formatting so every bench prints rows that can
// be compared against the paper directly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace photon::benchutil {

// Parses "--name=value" from argv; returns fallback when absent.
inline std::uint64_t arg_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

inline const char* arg_str(int argc, char** argv, const char* name, const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

// Escapes a user-supplied string for embedding in a JSON string literal
// (quotes, backslashes, control characters) so a --label like `run "v2"`
// cannot corrupt the bench artifact.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void rule() {
  std::printf("------------------------------------------------------------------------\n");
}

}  // namespace photon::benchutil
