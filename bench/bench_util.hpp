// Shared helpers for the table/figure reproduction benches: tiny argument
// parsing and consistent table formatting so every bench prints rows that can
// be compared against the paper directly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace photon::benchutil {

// Parses "--name=value" from argv; returns fallback when absent.
inline std::uint64_t arg_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void rule() {
  std::printf("------------------------------------------------------------------------\n");
}

}  // namespace photon::benchutil
