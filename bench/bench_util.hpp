// Shared helpers for the table/figure reproduction benches: tiny argument
// parsing and consistent table formatting so every bench prints rows that can
// be compared against the paper directly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "geom/scenes.hpp"

namespace photon::benchutil {

// Parses "--name=value" from argv; returns fallback when absent.
inline std::uint64_t arg_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

inline const char* arg_str(int argc, char** argv, const char* name, const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

// Escapes a user-supplied string for embedding in a JSON string literal
// (quotes, backslashes, control characters) so a --label like `run "v2"`
// cannot corrupt the bench artifact.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline void header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void rule() {
  std::printf("------------------------------------------------------------------------\n");
}

// The bundled scenes every trajectory bench sweeps, in the canonical order —
// one definition so bench_hotpath / bench_comm_batching / bench_adapt_batch
// rows stay comparable across artifacts.
struct NamedScene {
  const char* name;
  Scene scene;
};

inline std::vector<NamedScene> bundled_scenes() {
  std::vector<NamedScene> specs;
  specs.push_back({"cornell", scenes::cornell_box()});
  specs.push_back({"harpsichord", scenes::harpsichord_room()});
  specs.push_back({"lab", scenes::computer_lab()});
  return specs;
}

// Shared JSON envelope for the BENCH_*.json trajectory artifacts:
//
//   { "bench": <name>, "label": <label>, <scalar fields...>, "runs": [rows] }
//
// `scalar_fields` entries are preformatted `"key": value` strings emitted
// verbatim between the label and the runs array; `rows` are preformatted JSON
// objects, one per run. Handles the open/error/close/"wrote" epilogue every
// bench previously duplicated. Returns false (with a message on stderr) when
// the file cannot be written — callers exit nonzero on that.
inline bool write_json_artifact(const std::string& path, const char* bench,
                                const std::string& label,
                                const std::vector<std::string>& scalar_fields,
                                const std::vector<std::string>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench);
  std::fprintf(f, "  \"label\": \"%s\",\n", json_escape(label).c_str());
  for (const std::string& field : scalar_fields) std::fprintf(f, "  %s,\n", field.c_str());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    %s%s\n", rows[i].c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s (label=%s)\n", path.c_str(), label.c_str());
  return true;
}

}  // namespace photon::benchutil
