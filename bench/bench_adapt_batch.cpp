// bench_adapt_batch — Table 5.3's adaptive batch sizing through the engine
// path (the real backends, not the performance model).
//
// Chapter 5 ("Communication vs. Computation"): "Batch size starts with just
// 500 photons per processor and grows as long as overall speed is increased."
// bench_table_5_3_batchsize replays the controller against the modeled 1997
// platforms; this bench runs the actual BatchController inside the engine —
// RunConfig::adapt_batch on the serial and dist-particle backends — and
// compares the adaptive run against fixed batch sizes on every bundled
// scene, reporting photons/s, exchange rounds, and the batch-size sequence
// the controller chose. Writes BENCH_adapt.json with the same envelope as
// BENCH_hotpath/BENCH_comm so every PR leaves a comparable trajectory point:
//
//   bench_adapt_batch [--photons=N] [--ranks=N] [--reps=N] [--out=FILE]
//                     [--label=NAME]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/backend.hpp"

using namespace photon;

namespace {

struct Row {
  std::string scene;
  std::string backend;
  std::string mode;  // "fixed-<N>" or "adaptive"
  int ranks = 1;
  std::uint64_t photons = 0;
  std::uint64_t rounds = 0;
  double wall_s = 0.0;
  double photons_per_sec = 0.0;
  std::vector<std::uint64_t> batch_sizes;  // adaptive runs: controller history
};

Row run_cell(const Scene& scene, const char* scene_name, const std::string& backend_name,
             int ranks, std::uint64_t photons, bool adaptive, std::uint64_t fixed_batch,
             int reps) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.workers = ranks;
  cfg.adapt_batch = adaptive;
  if (!adaptive) cfg.batch = fixed_batch;

  Row best;
  for (int rep = 0; rep < reps; ++rep) {
    const auto backend = make_backend(backend_name);
    const RunResult r = backend->run(scene, cfg);
    Row row;
    row.scene = scene_name;
    row.backend = backend_name;
    row.mode = adaptive ? "adaptive" : "fixed-" + std::to_string(fixed_batch);
    row.ranks = backend_name == "serial" ? 1 : ranks;
    row.photons = r.counters.emitted;
    row.wall_s = r.trace.total_time_s;
    for (const RankReport& report : r.ranks) {
      row.rounds = std::max(row.rounds, report.rounds);
      if (row.batch_sizes.empty() && !report.batch_sizes.empty()) {
        row.batch_sizes = report.batch_sizes;
      }
    }
    if (row.wall_s > 0.0) {
      row.photons_per_sec = static_cast<double>(row.photons) / row.wall_s;
    }
    if (rep == 0 || row.wall_s < best.wall_s) best = row;
  }
  return best;
}

std::string row_json(const Row& r) {
  std::string sizes = "[";
  // Cap the recorded sequence: the shape (500, growth, hover) is in the first
  // rows, and unbounded runs would bloat the artifact.
  const std::size_t cap = std::min<std::size_t>(r.batch_sizes.size(), 16);
  for (std::size_t i = 0; i < cap; ++i) {
    sizes += std::to_string(r.batch_sizes[i]);
    if (i + 1 < cap) sizes += ", ";
  }
  sizes += "]";
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\"scene\": \"%s\", \"backend\": \"%s\", \"mode\": \"%s\", \"ranks\": %d, "
                "\"photons\": %llu, \"wall_s\": %.6f, \"photons_per_sec\": %.1f, "
                "\"rounds\": %llu, \"batch_steps\": %zu, \"batch_sizes\": %s}",
                r.scene.c_str(), r.backend.c_str(), r.mode.c_str(), r.ranks,
                static_cast<unsigned long long>(r.photons), r.wall_s, r.photons_per_sec,
                static_cast<unsigned long long>(r.rounds), r.batch_sizes.size(),
                sizes.c_str());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 40000);
  const int ranks = static_cast<int>(benchutil::arg_u64(argc, argv, "ranks", 4));
  const int reps = std::max(1, static_cast<int>(benchutil::arg_u64(argc, argv, "reps", 3)));
  const std::string out = benchutil::arg_str(argc, argv, "out", "BENCH_adapt.json");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");

  benchutil::header("Adaptive batching (Table 5.3) — engine path, real backends");
  std::printf("%-12s %-13s %-12s %2s %10s %7s %6s  %s\n", "scene", "backend", "mode", "P",
              "photons/s", "rounds", "steps", "batch sequence (first 8)");
  benchutil::rule();

  const std::uint64_t fixed_sweep[] = {500, 2000, 10000};
  std::vector<std::string> rows;
  for (const benchutil::NamedScene& spec : benchutil::bundled_scenes()) {
    for (const char* backend : {"serial", "dist-particle"}) {
      std::vector<Row> cells;
      for (const std::uint64_t batch : fixed_sweep) {
        cells.push_back(run_cell(spec.scene, spec.name, backend, ranks, photons, false,
                                 batch, reps));
      }
      cells.push_back(run_cell(spec.scene, spec.name, backend, ranks, photons, true, 0, reps));
      for (const Row& row : cells) {
        std::string seq;
        for (std::size_t i = 0; i < std::min<std::size_t>(row.batch_sizes.size(), 8); ++i) {
          seq += std::to_string(row.batch_sizes[i]) + " ";
        }
        std::printf("%-12s %-13s %-12s %2d %10.0f %7llu %6zu  %s\n", row.scene.c_str(),
                    row.backend.c_str(), row.mode.c_str(), row.ranks, row.photons_per_sec,
                    static_cast<unsigned long long>(row.rounds), row.batch_sizes.size(),
                    seq.c_str());
        rows.push_back(row_json(row));
      }
    }
  }
  std::printf(
      "\nShape to check: adaptive starts at 500 and grows ~1.5x while the measured\n"
      "rate keeps setting highs (Table 5.3); its throughput should land near the\n"
      "best fixed size without hand-tuning.\n");

  char photons_field[64], ranks_field[64];
  std::snprintf(photons_field, sizeof(photons_field), "\"photons_requested\": %llu",
                static_cast<unsigned long long>(photons));
  std::snprintf(ranks_field, sizeof(ranks_field), "\"ranks\": %d", ranks);
  return benchutil::write_json_artifact(out, "adapt", label, {photons_field, ranks_field}, rows)
             ? 0
             : 1;
}
