// bench_hotpath — the canonical photon hot-path benchmark.
//
// Runs the full emit→trace→tally pipeline on every bundled scene through the
// serial and shared backends and reports photons/sec, intersections/sec and
// ns/bounce, writing the numbers as machine-readable JSON (BENCH_hotpath.json)
// so every PR leaves a comparable trajectory point. Intersections are derived
// from the trace counters: each loop iteration of Tracer::trace casts exactly
// one ray, which either escapes, is absorbed, or records a bounce — photons
// that trip the bounce guard cast one ray per recorded bounce.
//
//   bench_hotpath [--photons=N] [--workers=N] [--out=FILE] [--label=NAME]
//
// --label tags the run block in the JSON (e.g. "seed" vs "flat"), so before/
// after artifacts can be concatenated into one trajectory file.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/backend.hpp"
#include "geom/octree.hpp"

namespace {

using namespace photon;

struct Row {
  std::string scene;
  std::string backend;
  int workers = 1;
  std::uint64_t photons = 0;
  std::uint64_t intersections = 0;
  std::uint64_t bounces = 0;
  double wall_s = 0.0;
  double photons_per_sec = 0.0;
  double intersections_per_sec = 0.0;
  double ns_per_bounce = 0.0;
};

Row run_one(const Scene& scene, const std::string& scene_name, const std::string& backend_name,
            std::uint64_t photons, int workers) {
  const auto backend = make_backend(backend_name);
  RunConfig cfg;
  cfg.photons = photons;
  cfg.workers = workers;
  const RunResult result = backend->run(scene, cfg);

  Row row;
  row.scene = scene_name;
  row.backend = backend_name;
  row.workers = backend_name == "serial" ? 1 : workers;
  row.photons = result.counters.emitted;
  // One ray cast per trace-loop iteration; see the header comment.
  row.intersections =
      result.counters.bounces + result.counters.absorbed + result.counters.escaped;
  row.bounces = result.counters.bounces;
  row.wall_s = result.trace.total_time_s;
  if (row.wall_s > 0.0) {
    row.photons_per_sec = static_cast<double>(row.photons) / row.wall_s;
    row.intersections_per_sec = static_cast<double>(row.intersections) / row.wall_s;
  }
  if (row.bounces > 0) {
    row.ns_per_bounce = row.wall_s * 1e9 / static_cast<double>(row.bounces);
  }
  return row;
}

std::string row_json(const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"scene\": \"%s\", \"backend\": \"%s\", \"workers\": %d, "
                "\"photons\": %llu, \"intersections\": %llu, \"bounces\": %llu, "
                "\"wall_s\": %.6f, \"photons_per_sec\": %.1f, "
                "\"intersections_per_sec\": %.1f, \"ns_per_bounce\": %.1f}",
                r.scene.c_str(), r.backend.c_str(), r.workers,
                static_cast<unsigned long long>(r.photons),
                static_cast<unsigned long long>(r.intersections),
                static_cast<unsigned long long>(r.bounces), r.wall_s, r.photons_per_sec,
                r.intersections_per_sec, r.ns_per_bounce);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 200000);
  const int workers = static_cast<int>(benchutil::arg_u64(argc, argv, "workers", 4));
  const std::string out = benchutil::arg_str(argc, argv, "out", "BENCH_hotpath.json");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");

  benchutil::header("hot path: photons/sec per scene and backend");
  std::printf("leaf kernel: %s, %d doubles/step\n", kernel_backend(), kernel_lane_width());
  std::printf("%-12s %-8s %3s %10s %12s %14s %10s\n", "scene", "backend", "W", "photons",
              "photons/s", "intersect/s", "ns/bounce");
  benchutil::rule();

  std::vector<std::string> rows;
  for (const benchutil::NamedScene& spec : benchutil::bundled_scenes()) {
    for (const char* backend : {"serial", "shared"}) {
      const Row row = run_one(spec.scene, spec.name, backend, photons, workers);
      std::printf("%-12s %-8s %3d %10llu %12.0f %14.0f %10.1f\n", row.scene.c_str(),
                  row.backend.c_str(), row.workers,
                  static_cast<unsigned long long>(row.photons), row.photons_per_sec,
                  row.intersections_per_sec, row.ns_per_bounce);
      rows.push_back(row_json(row));
    }
  }

  char field[128];
  std::snprintf(field, sizeof(field), "\"photons_requested\": %llu",
                static_cast<unsigned long long>(photons));
  char kernel[128];
  std::snprintf(kernel, sizeof(kernel), "\"kernel\": \"%s\", \"kernel_lanes\": %d",
                kernel_backend(), kernel_lane_width());
  return benchutil::write_json_artifact(out, "hotpath", label, {field, kernel}, rows) ? 0 : 1;
}
