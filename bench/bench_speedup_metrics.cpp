// Chapter 5, "Performance": speedup is not a constant — fixed-size and
// fixed-time speedup disagree, and both vary with where you look. "We have
// chosen to present the full speedup picture as a function of execution
// time." This bench quantifies that argument on the modeled Power Onyx
// traces: early measurements (dominated by startup and splitting) undersell
// the steady state, and short fixed tasks undersell long ones.
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"
#include "perf/speedup.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  const Scene scene = scenes::harpsichord_room();
  const WorkloadProfile profile = profile_scene(scene, probe, 1);
  const Platform onyx = Platform::power_onyx();

  const auto serial = model_shared(profile, onyx, 1, 600.0);
  const auto parallel = model_shared(profile, onyx, 8, 600.0);

  benchutil::header("Chapter 5 — Fixed-Time vs Fixed-Size Speedup (Onyx, 8 procs)");
  std::printf("fixed-time speedup (work done in t seconds):\n");
  std::printf("%10s | %10s\n", "t (s)", "speedup");
  benchutil::rule();
  for (const double t : {2.0, 5.0, 20.0, 100.0, 500.0}) {
    std::printf("%10.0f | %10.2f\n", t, fixed_time_speedup(parallel, serial, t));
  }

  std::printf("\nfixed-size speedup (time to finish N photons):\n");
  std::printf("%12s | %10s\n", "N photons", "speedup");
  benchutil::rule();
  for (const std::uint64_t n : {20000ull, 100000ull, 500000ull, 2000000ull}) {
    std::printf("%12llu | %10.2f\n", static_cast<unsigned long long>(n),
                fixed_size_speedup(parallel, serial, n));
  }

  std::printf(
      "\nShapes to check: both metrics rise with the measurement horizon (startup\n"
      "and early splitting amortize away) and converge toward the same plateau —\n"
      "the paper's reason for plotting full speed-vs-time traces instead of quoting\n"
      "one number.\n");
  return 0;
}
