// Acceleration-structure shootout. Chapter 4 notes that "increasing the
// speed of intersection determination holds the most promise for decreasing
// solution time"; this bench (which grew out of the octree-parameter
// ablation) races the three structures behind the AccelStructure seam —
// octree, binned-SAH BVH, nested uniform grid — on every bundled scene, with
// the brute linear scan as the baseline. Build time, memory, closest-hit
// throughput, deterministic work counters (patch tests / cells visited per
// ray), and end-to-end photons/s through the serial backend, per structure.
//
//   bench_accel [--rays=N] [--photons=N] [--reps=N] [--out=FILE] [--label=NAME]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "engine/backend.hpp"
#include "geom/scenes.hpp"

using namespace photon;

namespace {

Ray random_interior_ray(const Scene& s, Lcg48& rng) {
  const Aabb b = s.bounds();
  const Vec3 e = b.extent();
  const Vec3 origin = b.lo + Vec3{0.1 * e.x + 0.8 * e.x * rng.uniform(),
                                  0.1 * e.y + 0.8 * e.y * rng.uniform(),
                                  0.1 * e.z + 0.8 * e.z * rng.uniform()};
  Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  while (dir.length_squared() < 1e-9) {
    dir = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  }
  return Ray(origin, dir.normalized());
}

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int rays = static_cast<int>(benchutil::arg_u64(argc, argv, "rays", 30000));
  const auto photons = benchutil::arg_u64(argc, argv, "photons", 20000);
  const int reps = static_cast<int>(benchutil::arg_u64(argc, argv, "reps", 10));
  const std::string out = benchutil::arg_str(argc, argv, "out", "");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");

  std::vector<std::string> rows;
  char buf[512];

  benchutil::header("Acceleration-structure shootout (closest-hit + serial photon rate)");
  std::printf("%12s %-7s | %9s %8s %8s | %10s %9s %9s | %11s\n", "scene", "accel", "build ms",
              "nodes", "mem KB", "rays/sec", "tests/ray", "cells/ray", "photons/s");
  benchutil::rule();

  for (auto& spec : benchutil::bundled_scenes()) {
    // Brute-force baseline: the reference every structure must answer
    // bitwise-identically (the equivalence suite enforces it; this row just
    // prices it).
    {
      Lcg48 rng(7);
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < rays; ++i) spec.scene.intersect_brute(random_interior_ray(spec.scene, rng));
      const double rate = rays / seconds_since(start);
      std::printf("%12s %-7s | %9s %8s %8s | %10.0f %9zu %9s | %11s\n", spec.name, "brute", "-",
                  "-", "-", rate, spec.scene.patch_count(), "-", "-");
      std::snprintf(buf, sizeof(buf),
                    "{\"section\": \"shootout\", \"scene\": \"%s\", \"accel\": \"brute\", "
                    "\"rays_per_s\": %.0f, \"tests_per_ray\": %zu}",
                    spec.name, rate, spec.scene.patch_count());
      rows.push_back(buf);
    }

    for (const AccelKind kind : accel_kinds()) {
      spec.scene.set_accel(kind);
      const auto build_start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) spec.scene.build();
      const double build_ms = seconds_since(build_start) * 1e3 / reps;
      const AccelStructure& accel = spec.scene.accel();

      Lcg48 rng(7);
      const auto start = std::chrono::steady_clock::now();
      std::uint64_t hits = 0;
      for (int i = 0; i < rays; ++i) {
        SceneHit best;
        if (accel.intersect(random_interior_ray(spec.scene, rng), kNoHit, best)) ++hits;
      }
      const double rate = rays / seconds_since(start) + (hits == 0 ? 1e-9 : 0.0);

      // Deterministic work counters over the identical ray set.
      TraversalStats stats;
      Lcg48 rng2(7);
      for (int i = 0; i < rays; ++i) {
        SceneHit best;
        accel.intersect_counted(random_interior_ray(spec.scene, rng2), kNoHit, best, stats);
      }
      const double tests_per_ray = static_cast<double>(stats.patch_tests) / rays;
      const double cells_per_ray = static_cast<double>(stats.nodes_visited) / rays;

      // End-to-end: the serial backend over this scene+structure.
      RunConfig config;
      config.photons = photons;
      config.accel = kind;
      const RunResult result = make_backend("serial")->run(spec.scene, config, nullptr);
      const double photon_rate = result.trace.final_rate();

      const char* name = accel_kind_name(kind);
      std::printf("%12s %-7s | %9.3f %8zu %8zu | %10.0f %9.1f %9.1f | %11.0f\n", spec.name,
                  name, build_ms, accel.node_count(), accel.memory_bytes() / 1024, rate,
                  tests_per_ray, cells_per_ray, photon_rate);
      std::snprintf(
          buf, sizeof(buf),
          "{\"section\": \"shootout\", \"scene\": \"%s\", \"accel\": \"%s\", "
          "\"build_ms\": %.3f, \"nodes\": %zu, \"depth\": %d, \"refs\": %zu, "
          "\"lanes\": %zu, \"memory_bytes\": %zu, \"rays_per_s\": %.0f, "
          "\"tests_per_ray\": %.2f, \"cells_per_ray\": %.2f, \"photons_per_s\": %.0f}",
          spec.name, name, build_ms, accel.node_count(), accel.depth(),
          accel.item_ref_count(), accel.lane_count(), accel.memory_bytes(), rate,
          tests_per_ray, cells_per_ray, photon_rate);
      rows.push_back(buf);
    }
  }
  benchutil::rule();
  std::printf(
      "Shape to check: every structure beats brute by an order of magnitude; the\n"
      "winner flips with scene shape (object partition vs duplicated references).\n");

  benchutil::header("Parallel build — fixed task decomposition (Computer Lab)");
  std::printf("%-7s %8s | %12s | %10s\n", "accel", "workers", "build ms", "identical");
  benchutil::rule();
  {
    const Scene lab = scenes::computer_lab();
    for (const AccelKind kind : accel_kinds()) {
      AccelBuildParams ref_params;
      ref_params.workers = 1;
      const auto reference = make_accel(kind);
      reference->build(lab.patches(), ref_params);
      for (const int workers : {1, 2, 4, 8}) {
        const auto tree = make_accel(kind);
        AccelBuildParams params;
        params.workers = workers;
        const auto start = std::chrono::steady_clock::now();
        for (int rep = 0; rep < reps; ++rep) tree->build(lab.patches(), params);
        const double build_ms = seconds_since(start) * 1e3 / reps;
        const bool same = tree->identical_to(*reference);
        std::printf("%-7s %8d | %12.3f | %10s\n", accel_kind_name(kind), workers, build_ms,
                    same ? "yes" : "NO");
        std::snprintf(buf, sizeof(buf),
                      "{\"section\": \"build\", \"accel\": \"%s\", \"workers\": %d, "
                      "\"build_ms\": %.3f, \"identical\": %s}",
                      accel_kind_name(kind), workers, build_ms, same ? "true" : "false");
        rows.push_back(buf);
        if (!same) {
          std::fprintf(stderr, "error: %s build at workers=%d is not bitwise-identical\n",
                       accel_kind_name(kind), workers);
          return 1;
        }
      }
    }
  }
  benchutil::rule();
  std::printf(
      "Built arrays are bitwise-identical at every worker count (checked above);\n"
      "on a single-core container the parallel rows only measure task overhead.\n");

  if (!out.empty()) {
    char fields[128];
    std::snprintf(fields, sizeof(fields), "\"rays\": %d", rays);
    char fields2[128];
    std::snprintf(fields2, sizeof(fields2), "\"photons\": %llu",
                  static_cast<unsigned long long>(photons));
    return benchutil::write_json_artifact(out, "accel", label, {fields, fields2}, rows) ? 0 : 1;
  }
  return 0;
}
