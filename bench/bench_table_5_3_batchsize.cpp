// Table 5.3: adaptive simulation batch sizes on the three platforms
// (SGI Power Onyx, IBM SP-2, SGI Indy cluster), 8 processors, Harpsichord
// Practice Room.
//
// The batch-size sequences come from the performance model replaying the
// real BatchController against each platform's communication parameters; the
// paper's observed sequences are printed alongside.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  const Scene scene = scenes::harpsichord_room();
  const WorkloadProfile profile = profile_scene(scene, probe, 1);

  const Platform platforms[] = {Platform::power_onyx(), Platform::sp2(),
                                Platform::indy_cluster()};
  // Paper's Table 5.3 columns.
  const std::vector<std::uint64_t> paper[3] = {
      {500, 750, 1125, 1687, 1518, 2277, 3415, 3073, 4609, 4148, 6222, 7558, 11337},
      {500, 750, 675, 1012, 1012, 910, 1365, 1365, 1228, 1842, 1657, 1657, 1657},
      {500, 750, 1125, 1125, 1125, 1125, 1012, 1012, 1012, 1012, 1518, 1518, 1518},
  };

  std::vector<std::uint64_t> sizes[3];
  for (int p = 0; p < 3; ++p) {
    // The Onyx runs the shared-memory version; for batch sizing treat it as a
    // zero-latency "cluster" so the controller sees pure compute scaling.
    model_distributed(profile, platforms[p], 8, 600.0, &sizes[p]);
  }

  benchutil::header("Table 5.3 — Simulation Batch Sizes (8 procs, Harpsichord Room)");
  std::printf("%5s | %-21s | %-21s | %-21s\n", "batch", "Power Onyx  (paper)", "IBM SP-2  (paper)",
              "Indy Cluster (paper)");
  benchutil::rule();
  const std::size_t rows = 13;
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%5zu |", i);
    for (int p = 0; p < 3; ++p) {
      const std::uint64_t ours = i < sizes[p].size() ? sizes[p][i] : 0;
      const std::uint64_t theirs = i < paper[p].size() ? paper[p][i] : 0;
      std::printf(" %9llu %9llu |", static_cast<unsigned long long>(ours),
                  static_cast<unsigned long long>(theirs));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShapes to check: every platform starts at 500 and grows by 1.5x while speed\n"
      "improves; tightly coupled platforms keep growing, loosely coupled ones are\n"
      "checked by communication and hover (growth / 0.9-backoff oscillation).\n");
  return 0;
}
