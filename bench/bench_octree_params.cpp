// Ablation: octree build parameters. Chapter 4 notes that "increasing the
// speed of intersection determination holds the most promise for decreasing
// solution time"; this bench sweeps the octree's leaf capacity and depth
// limit against closest-hit throughput on the Computer Lab, with brute force
// as the baseline.
//
//   bench_octree_params [--rays=N] [--out=FILE] [--label=NAME]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "geom/scenes.hpp"

using namespace photon;

namespace {

Ray random_interior_ray(const Scene& s, Lcg48& rng) {
  const Aabb b = s.bounds();
  const Vec3 e = b.extent();
  const Vec3 origin = b.lo + Vec3{0.1 * e.x + 0.8 * e.x * rng.uniform(),
                                  0.1 * e.y + 0.8 * e.y * rng.uniform(),
                                  0.1 * e.z + 0.8 * e.z * rng.uniform()};
  Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  while (dir.length_squared() < 1e-9) {
    dir = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  }
  return Ray(origin, dir.normalized());
}

double measure_rays_per_second(const Scene& s, const Octree& tree, int rays) {
  Lcg48 rng(7);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (int i = 0; i < rays; ++i) {
    if (tree.intersect(random_interior_ray(s, rng))) ++hits;
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return rays / dt + (hits == 0 ? 1e-9 : 0.0);  // hits guard against dead-code elimination
}

}  // namespace

int main(int argc, char** argv) {
  const int rays = static_cast<int>(benchutil::arg_u64(argc, argv, "rays", 30000));
  const std::string out = benchutil::arg_str(argc, argv, "out", "");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");
  const Scene s = scenes::computer_lab();

  std::vector<std::string> rows;
  char buf[256];

  benchutil::header("Ablation — Octree Build Parameters (Computer Lab, closest-hit)");
  std::printf("%10s %10s | %10s %8s | %12s\n", "max leaf", "max depth", "nodes", "depth",
              "rays/sec");
  benchutil::rule();

  // Brute force baseline.
  {
    Lcg48 rng(7);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < rays; ++i) s.intersect_brute(random_interior_ray(s, rng));
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::printf("%10s %10s | %10s %8s | %12.0f\n", "(brute)", "-", "-", "-", rays / dt);
    std::snprintf(buf, sizeof(buf),
                  "{\"section\": \"sweep\", \"mode\": \"brute\", \"rays_per_s\": %.0f}", rays / dt);
    rows.push_back(buf);
  }

  for (const int leaf : {2, 4, 8, 16, 32}) {
    for (const int depth : {6, 10, 14}) {
      Octree tree;
      Octree::BuildParams params;
      params.max_leaf_items = leaf;
      params.max_depth = depth;
      tree.build(s.patches(), params);
      const double rate = measure_rays_per_second(s, tree, rays);
      std::printf("%10d %10d | %10zu %8d | %12.0f\n", leaf, depth, tree.node_count(),
                  tree.depth(), rate);
      std::snprintf(buf, sizeof(buf),
                    "{\"section\": \"sweep\", \"max_leaf_items\": %d, \"max_depth\": %d, "
                    "\"nodes\": %zu, \"depth\": %d, \"rays_per_s\": %.0f}",
                    leaf, depth, tree.node_count(), tree.depth(), rate);
      rows.push_back(buf);
    }
  }
  benchutil::rule();
  std::printf(
      "Shape to check: small leaves + enough depth beat brute force; beyond the\n"
      "sweet spot extra depth only duplicates boundary-straddling patches.\n");

  benchutil::header("Parallel build — per-octant task decomposition (default params)");
  std::printf("%8s | %12s | %10s\n", "workers", "build ms", "nodes");
  benchutil::rule();
  const int build_reps = 20;
  for (const int workers : {1, 2, 4, 8}) {
    Octree tree;
    Octree::BuildParams params;
    params.workers = workers;
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < build_reps; ++rep) tree.build(s.patches(), params);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::printf("%8d | %12.3f | %10zu\n", workers, dt * 1e3 / build_reps, tree.node_count());
    std::snprintf(buf, sizeof(buf),
                  "{\"section\": \"build\", \"workers\": %d, \"build_ms\": %.3f, "
                  "\"nodes\": %zu}",
                  workers, dt * 1e3 / build_reps, tree.node_count());
    rows.push_back(buf);
  }
  benchutil::rule();
  std::printf(
      "Built arrays are bitwise-identical at every worker count (tested); on a\n"
      "single-core container the parallel rows only measure task overhead.\n");
  if (!out.empty()) {
    char field[64];
    std::snprintf(field, sizeof(field), "\"rays\": %d", rays);
    return benchutil::write_json_artifact(out, "octree_params", label, {field}, rows) ? 0 : 1;
  }
  return 0;
}
