// Fig 2.4: spherical-harmonic approximation to a specular reflection spike
// using 30 terms. For a function of the deviation angle alone the expansion
// reduces to a Legendre series; the paper's point is the Gibbs ringing and
// the poor fit even at 30 terms — the argument against extended-radiosity
// representations of specular radiance.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/legendre.hpp"
#include "bench_util.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const int terms = static_cast<int>(benchutil::arg_u64(argc, argv, "terms", 30));
  const double half_range = 1.5;  // radians, matching the figure's x axis

  const auto f = [&](double x) { return specular_spike(x * half_range); };
  const auto coeffs = legendre_series(f, terms);

  benchutil::header("Fig 2.4 — 30-Term Harmonic Fit of a Specular Spike");
  std::printf("%12s %12s %12s\n", "angle (rad)", "spike", "series");
  benchutil::rule();
  double min_val = 1e9, max_err = 0.0;
  for (double a = -1.5; a <= 1.5001; a += 0.125) {
    const double x = a / half_range;
    const double approx = eval_legendre_series(coeffs, x);
    min_val = std::min(min_val, approx);
    max_err = std::max(max_err, std::abs(approx - f(x)));
    std::printf("%12.3f %12.4f %12.4f\n", a, f(x), approx);
  }
  // Scan finely for the worst undershoot (ring trough).
  for (double x = -1.0; x <= 1.0; x += 0.001) {
    min_val = std::min(min_val, eval_legendre_series(coeffs, x));
  }
  benchutil::rule();
  std::printf("deepest ring trough: %.4f (paper's figure dips to about -0.2)\n", min_val);
  std::printf("worst absolute error: %.4f of a unit spike\n", max_err);
  std::printf(
      "Shapes to check: visible oscillation away from the spike, negative lobes\n"
      "(physically impossible radiance), and a materially imperfect peak at %d terms.\n",
      terms);
  return 0;
}
