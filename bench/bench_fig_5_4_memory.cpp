// Fig 5.4: memory requirements for the Harpsichord Practice Room — bin-forest
// size as the simulation progresses. The paper's figure shows an initial
// buildup followed by sublinear growth.
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 400000);
  const Scene scene = scenes::harpsichord_room();

  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = photons / 20 + 1;
  const RunResult r = run_serial(scene, cfg);

  benchutil::header("Fig 5.4 — Bin Forest Memory vs Photons (Harpsichord Room)");
  std::printf("%12s %14s %12s %16s\n", "photons", "forest bytes", "MB", "bytes/photon");
  benchutil::rule();
  for (const MemoryPoint& p : r.memory) {
    std::printf("%12llu %14llu %12.2f %16.3f\n", static_cast<unsigned long long>(p.photons),
                static_cast<unsigned long long>(p.bytes), p.bytes / 1048576.0,
                static_cast<double>(p.bytes) / static_cast<double>(p.photons));
  }
  benchutil::rule();
  const MemoryPoint first = r.memory.front();
  const MemoryPoint last = r.memory.back();
  const double early_rate = static_cast<double>(first.bytes) / first.photons;
  const double late_rate = static_cast<double>(last.bytes - r.memory[r.memory.size() / 2].bytes) /
                           static_cast<double>(last.photons - r.memory[r.memory.size() / 2].photons);
  std::printf("marginal growth: %.3f B/photon early vs %.3f B/photon late (shape: sublinear)\n",
              early_rate, late_rate);
  std::printf("paper's note: 1-2 orders of magnitude below storing ray histories\n");
  std::printf("(a 100 B/photon hit-point file would need %.1f MB here; the forest uses %.1f MB)\n",
              photons * 100.0 / 1048576.0, last.bytes / 1048576.0);
  return 0;
}
