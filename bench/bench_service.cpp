// bench_service — throughput and latency of the photon service daemon core
// (src/service/), in-process so the socket layer stays out of the numbers.
//
// One resident cornell scene, a mixed serial/shared workload of identical-
// size jobs, swept across max_active widths:
//
//   solo          the no-service floor: the same configs run back to back on
//                 a prebuilt scene by directly calling the backend. jobs/sec
//                 here is what the service's scheduling must not ruin.
//   service@N     the full path — submit -> queue -> admission -> governed
//                 run on the shared WorkerPool — at max_active=N. Per-job
//                 latency is submit-to-terminal, measured by one waiter
//                 thread per job; p50/p99 are what a daemon client sees.
//
// Widths >1 trade single-job latency (windows interleave fair-share on the
// ticket queue) for queue drain time; the artifact records both sides.
//
//   bench_service [--jobs=N] [--photons=N] [--out=FILE] [--label=NAME]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/backend.hpp"
#include "service/service.hpp"

namespace {

using namespace photon;
using benchutil::arg_str;
using benchutil::arg_u64;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ServiceRow {
  std::string mode;
  int max_active = 0;
  double wall_s = 0.0;
  double jobs_per_sec = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double photons_per_sec = 0.0;
};

const char* job_backend(std::uint64_t index) { return index % 2 ? "shared" : "serial"; }

RunConfig job_config(std::uint64_t photons, std::uint64_t seed) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = 2000;
  cfg.adapt_batch = false;
  cfg.workers = 2;
  cfg.groups = 2;
  cfg.seed = seed;
  return cfg;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[at];
}

ServiceRow solo_baseline(const Scene& scene, std::uint64_t jobs, std::uint64_t photons) {
  ServiceRow row;
  row.mode = "solo";
  std::vector<double> latencies;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < jobs; ++i) {
    const auto backend = make_backend(job_backend(i));
    const auto j0 = Clock::now();
    (void)backend->run(scene, job_config(photons, i + 1), nullptr);
    latencies.push_back(seconds_since(j0));
  }
  row.wall_s = seconds_since(t0);
  std::sort(latencies.begin(), latencies.end());
  row.jobs_per_sec = row.wall_s > 0.0 ? static_cast<double>(jobs) / row.wall_s : 0.0;
  row.p50_s = percentile(latencies, 0.50);
  row.p99_s = percentile(latencies, 0.99);
  row.photons_per_sec =
      row.wall_s > 0.0 ? static_cast<double>(jobs * photons) / row.wall_s : 0.0;
  return row;
}

ServiceRow service_sweep(int max_active, std::uint64_t jobs, std::uint64_t photons) {
  ServiceRow row;
  row.mode = "service@" + std::to_string(max_active);
  row.max_active = max_active;

  ServiceConfig cfg;
  cfg.max_active = max_active;
  PhotonService service(cfg, [](const std::string&, AccelKind) {
    return std::make_shared<const Scene>(scenes::cornell_box());
  });

  std::vector<double> latencies(jobs, 0.0);
  std::vector<std::thread> waiters;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.scene = "cornell";
    spec.backend = job_backend(i);
    spec.config = job_config(photons, i + 1);
    const std::uint64_t id = service.submit(spec);
    const auto submitted = Clock::now();
    // One waiter per job pins the true submit-to-terminal latency; waiting
    // sequentially from one thread would fold queue-polling order into it.
    waiters.emplace_back([&service, &latencies, id, i, submitted] {
      const JobInfo info = service.wait(id);
      if (info.state == JobState::kDone) latencies[i] = seconds_since(submitted);
    });
  }
  for (std::thread& t : waiters) t.join();
  row.wall_s = seconds_since(t0);

  std::size_t done = 0;
  std::vector<double> finished;
  for (const double lat : latencies) {
    if (lat > 0.0) {
      ++done;
      finished.push_back(lat);
    }
  }
  if (done != jobs) std::fprintf(stderr, "error: only %zu/%llu jobs finished clean\n", done,
                                 static_cast<unsigned long long>(jobs));
  std::sort(finished.begin(), finished.end());
  row.jobs_per_sec = row.wall_s > 0.0 ? static_cast<double>(done) / row.wall_s : 0.0;
  row.p50_s = percentile(finished, 0.50);
  row.p99_s = percentile(finished, 0.99);
  row.photons_per_sec =
      row.wall_s > 0.0 ? static_cast<double>(done * photons) / row.wall_s : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t jobs = arg_u64(argc, argv, "jobs", 32);
  const std::uint64_t photons = arg_u64(argc, argv, "photons", 20000);
  const std::string out = arg_str(argc, argv, "out", "BENCH_service.json");
  const std::string label = arg_str(argc, argv, "label", "dev");

  benchutil::header("photon service: jobs/sec and submit-to-done latency (cornell)");
  std::printf("jobs=%llu photons=%llu (mixed serial/shared)\n",
              static_cast<unsigned long long>(jobs), static_cast<unsigned long long>(photons));

  const Scene scene = scenes::cornell_box();
  std::vector<ServiceRow> results;
  results.push_back(solo_baseline(scene, jobs, photons));
  for (const int width : {1, 2, 4}) {
    results.push_back(service_sweep(width, jobs, photons));
  }

  benchutil::rule();
  std::printf("%-12s %10s %10s %12s %10s %10s\n", "mode", "wall_s", "jobs/s", "photons/s",
              "p50_s", "p99_s");
  std::vector<std::string> rows;
  for (const ServiceRow& r : results) {
    std::printf("%-12s %10.4f %10.2f %12.0f %10.4f %10.4f\n", r.mode.c_str(), r.wall_s,
                r.jobs_per_sec, r.photons_per_sec, r.p50_s, r.p99_s);
    char row[320];
    std::snprintf(row, sizeof(row),
                  "{\"mode\": \"%s\", \"max_active\": %d, \"wall_s\": %.6f, "
                  "\"jobs_per_sec\": %.3f, \"photons_per_sec\": %.1f, "
                  "\"p50_latency_s\": %.6f, \"p99_latency_s\": %.6f}",
                  r.mode.c_str(), r.max_active, r.wall_s, r.jobs_per_sec, r.photons_per_sec,
                  r.p50_s, r.p99_s);
    rows.emplace_back(row);
  }

  char scalars[96];
  std::snprintf(scalars, sizeof(scalars), "\"jobs\": %llu, \"photons\": %llu",
                static_cast<unsigned long long>(jobs),
                static_cast<unsigned long long>(photons));
  if (!benchutil::write_json_artifact(out, "service", label, {scalars}, rows)) return 1;
  return 0;
}
