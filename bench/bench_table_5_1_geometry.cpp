// Table 5.1 (dissertation) / Table 2 (appendix): test geometry sizes —
// defining polygons vs view-dependent polygons after adaptive subdivision.
//
// The view-dependent polygon count is the number of histogram leaves in the
// bin forest after a simulation; it scales with the photon budget, so we
// report our counts at the configured budget together with the paper's
// figures (measured after billions of photons on 1997 hardware).
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 300000);

  struct PaperRow {
    const char* name;
    const char* scene_key;
    int paper_defining;
    const char* paper_view_dependent;
    const char* paper_photons;
  };
  const PaperRow rows[] = {
      {"Cornell Box", "cornell", 30, "397,000", "3 billion"},
      {"Harpsichord Practice Room", "harpsichord", 100, "150,000", "1.5 billion"},
      {"Computer Laboratory", "lab", 2000, "350,000", "1 billion"},
  };

  benchutil::header("Table 5.1 — Test Geometry Sizes");
  std::printf("%-28s %10s %10s | %14s %12s | %10s %12s\n", "Geometry", "defining", "(paper)",
              "view-dep bins", "(paper)", "photons", "(paper)");
  benchutil::rule();

  for (const PaperRow& row : rows) {
    const Scene scene = scenes::by_name(row.scene_key);
    RunConfig cfg;
    cfg.photons = photons;
    cfg.batch = photons / 8 + 1;
    const RunResult result = run_serial(scene, cfg);

    std::printf("%-28s %10zu %10d | %14llu %12s | %10llu %12s\n", row.name, scene.patch_count(),
                row.paper_defining,
                static_cast<unsigned long long>(result.forest.total_leaves()),
                row.paper_view_dependent,
                static_cast<unsigned long long>(result.trace.total_photons), row.paper_photons);
  }
  std::printf(
      "\nNote: view-dependent polygon counts grow with the photon budget; the paper's\n"
      "counts come from runs of 1-3 billion photons. Shapes to check: the Cornell Box\n"
      "produces disproportionately many bins per defining polygon (the mirror forces\n"
      "angular subdivision), and the lab needs the most defining polygons by far.\n");
  return 0;
}
