// Fig 5.16: visual speedup — the same wall-clock budget on 1/2/4/8 processors
// simulates proportionally more photons, visibly improving answer quality
// (mirror, shadows under the harpsichord and skylights).
//
// This bench reports the photon budgets a 2-minute run achieves per processor
// count under the Power Onyx model, and the resulting answer-quality proxy
// (bin count and radiance noise) from real simulations at those budgets. The
// companion example `visual_speedup` renders the four images.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"
#include "sim/simulator.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);
  const double budget_s = benchutil::arg_double(argc, argv, "budget", 120.0);
  // The real simulations run at a fraction of the modeled 2-minute budgets to
  // stay affordable on this host; the 1:2:4:8 ratio is what matters.
  const double scale = benchutil::arg_double(argc, argv, "scale", 0.1);

  const Scene scene = scenes::harpsichord_room();
  const WorkloadProfile profile = profile_scene(scene, probe, 1);
  const Platform onyx = Platform::power_onyx();

  benchutil::header("Fig 5.16 — Visual Speedup (2-minute budgets, Harpsichord Room)");
  std::printf("%5s | %14s | %12s | %12s | %12s | %14s\n", "P", "photons/2min", "simulated",
              "bins", "photons/bin", "noise proxy");
  benchutil::rule();

  for (const int P : {1, 2, 4, 8}) {
    const auto trace = model_shared(profile, onyx, P, budget_s);
    const std::uint64_t budget = trace.empty() ? 0 : trace.back().photons;
    const std::uint64_t simulated =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(budget * scale), 1000);

    RunConfig cfg;
    cfg.photons = simulated;
    cfg.batch = simulated / 4 + 1;
    const RunResult r = run_serial(scene, cfg);

    // Relative Monte Carlo noise scales as 1/sqrt(photons per bin).
    const double per_bin = static_cast<double>(r.forest.total_tally_all()) /
                           static_cast<double>(r.forest.total_leaves());
    std::printf("%5d | %14llu | %12llu | %12llu | %12.1f | %14.4f\n", P,
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(r.forest.total_leaves()), per_bin,
                1.0 / std::sqrt(per_bin));
  }
  benchutil::rule();
  std::printf(
      "Shape to check: each doubling of processors roughly doubles the photon count\n"
      "a fixed 2-minute budget buys, cutting bin noise by ~sqrt(2) — the paper's\n"
      "visibly improving mirror and shadows. Render the four images with\n"
      "`examples/visual_speedup`.\n");
  return 0;
}
