// Intersection-determination bench (chapter 4: "increasing the speed of
// intersection determination holds the most promise for decreasing solution
// time"; chapter 6 motivates the octree). Octree traversal vs brute-force
// linear scan on all three test geometries.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "geom/scenes.hpp"

namespace {

using photon::Lcg48;
using photon::Ray;
using photon::Scene;
using photon::Vec3;

const Scene& scene_for(int idx) {
  static const Scene cornell = photon::scenes::cornell_box();
  static const Scene harpsichord = photon::scenes::harpsichord_room();
  static const Scene lab = photon::scenes::computer_lab();
  return idx == 0 ? cornell : (idx == 1 ? harpsichord : lab);
}

Ray random_interior_ray(const Scene& s, Lcg48& rng) {
  const photon::Aabb b = s.bounds();
  const Vec3 e = b.extent();
  const Vec3 origin = b.lo + Vec3{0.1 * e.x + 0.8 * e.x * rng.uniform(),
                                  0.1 * e.y + 0.8 * e.y * rng.uniform(),
                                  0.1 * e.z + 0.8 * e.z * rng.uniform()};
  Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  while (dir.length_squared() < 1e-9) {
    dir = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  }
  return Ray(origin, dir.normalized());
}

void BM_OctreeIntersect(benchmark::State& state) {
  const Scene& s = scene_for(static_cast<int>(state.range(0)));
  Lcg48 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.intersect(random_interior_ray(s, rng)));
  }
  state.SetLabel(s.name());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OctreeIntersect)->Arg(0)->Arg(1)->Arg(2);

void BM_BruteForceIntersect(benchmark::State& state) {
  const Scene& s = scene_for(static_cast<int>(state.range(0)));
  Lcg48 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.intersect_brute(random_interior_ray(s, rng)));
  }
  state.SetLabel(s.name());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BruteForceIntersect)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
