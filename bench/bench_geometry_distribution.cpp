// Chapter 6 ("Massive Parallelism") reproduction: distributing the octree.
// "Currently, the octree representation of the geometry is replicated on all
// nodes. This could limit the size of the input geometry."
//
// Runs the distributed-geometry simulator on the Computer Lab and reports the
// per-rank geometry footprint vs the replicated octree, the photon routing
// volume, and verifies the answer is unchanged.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "par/spatial.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 40000);
  const Scene scene = scenes::computer_lab();

  benchutil::header("Chapter 6 — Geometry Distribution (Computer Lab)");
  std::printf("replicated octree: %zu nodes over %zu patches\n\n", scene.accel().node_count(),
              scene.patch_count());
  std::printf("%5s | %12s | %12s | %14s | %12s\n", "P", "max patches", "max octree",
              "footprint vs 1", "routed/phot");
  benchutil::rule();

  RunConfig cfg;
  cfg.photons = photons;

  std::vector<std::uint64_t> reference_tallies;
  for (const int P : {1, 2, 4, 8}) {
    cfg.workers = P;
    const RunResult r = run_spatial(scene, cfg);
    std::uint64_t max_patches = 0, max_nodes = 0, routed = 0;
    for (const RankReport& rep : r.ranks) {
      max_patches = std::max(max_patches, rep.local_patches);
      max_nodes = std::max(max_nodes, rep.octree_nodes);
      routed += rep.photons_out;
    }
    std::printf("%5d | %12llu | %12llu | %13.1f%% | %12.3f\n", P,
                static_cast<unsigned long long>(max_patches),
                static_cast<unsigned long long>(max_nodes),
                100.0 * static_cast<double>(max_patches) / static_cast<double>(scene.patch_count()),
                static_cast<double>(routed) / static_cast<double>(photons));
    if (P == 1) {
      reference_tallies = r.forest.patch_tallies();
    } else {
      // The partition must not change the answer.
      const auto tallies = r.forest.patch_tallies();
      std::uint64_t diff = 0;
      for (std::size_t i = 0; i < tallies.size(); ++i) {
        diff += tallies[i] > reference_tallies[i] ? tallies[i] - reference_tallies[i]
                                                  : reference_tallies[i] - tallies[i];
      }
      if (diff > r.forest.total_nodes()) {
        std::printf("  WARNING: tallies diverged from the P=1 reference by %llu\n",
                    static_cast<unsigned long long>(diff));
      }
    }
  }
  benchutil::rule();
  std::printf(
      "Shapes to check: the per-rank geometry footprint falls as ranks are added\n"
      "(boundary-straddling patches keep it above 1/P), photons are routed across\n"
      "region faces in batches, and the gathered answer matches the single-rank\n"
      "reference exactly — the paper's proposed design, demonstrated working.\n");
  return 0;
}
