// Fig 5.15: the "graph of graphs" — performance and speedup vs scene
// complexity (columns) and processor coupling (rows). Each cell summarizes a
// full speed-vs-time trace by its final rate and speedup per processor count.
//
// The paper's observations to reproduce:
//  * down a column (looser coupling) the time to first data point grows;
//  * across a row (more complex scene) scalability rises but absolute
//    performance falls.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "perf/model.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t probe = benchutil::arg_u64(argc, argv, "probe", 8000);

  const char* scene_keys[] = {"cornell", "harpsichord", "lab"};
  std::vector<WorkloadProfile> profiles;
  for (const char* key : scene_keys) {
    profiles.push_back(profile_scene(scenes::by_name(key), probe, 1));
  }

  struct Row {
    const char* name;
    Platform platform;
    bool shared;
    double duration;
  };
  const Row rows[] = {
      {"Power Onyx (shared)", Platform::power_onyx(), true, 600.0},
      {"Indy Cluster (dist)", Platform::indy_cluster(), false, 2000.0},
      {"IBM SP-2 (dist)", Platform::sp2(), false, 1000.0},
  };

  benchutil::header("Fig 5.15 — Performance & Speedup vs Complexity (graph of graphs)");
  std::printf("%-22s | %-26s | %-26s | %-26s\n", "", "Cornell Box", "Harpsichord Room",
              "Computer Lab");
  std::printf("%-22s | %-26s | %-26s | %-26s\n", "platform",
              "rate@P8  spd8  t0", "rate@P8  spd8  t0", "rate@P8  spd8  t0");
  benchutil::rule();

  for (const Row& row : rows) {
    std::printf("%-22s |", row.name);
    for (const WorkloadProfile& profile : profiles) {
      const double serial = model_serial_rate(profile, row.platform);
      const auto trace = row.shared
                             ? model_shared(profile, row.platform, 8, row.duration)
                             : model_distributed(profile, row.platform, 8, row.duration);
      std::printf(" %9.0f %5.2f %5.1fs |", trace.back().rate, trace.back().rate / serial,
                  trace.front().time_s);
    }
    std::printf("\n");
  }
  benchutil::rule();
  std::printf(
      "t0 = time of first data point. Shapes to check: t0 grows downward (looser\n"
      "coupling), speedup grows rightward (scene complexity), absolute rate falls\n"
      "rightward.\n");
  return 0;
}
