// Table 5.2 (dissertation) / Table 1 (appendix): total photons processed per
// processor, naive load balancing vs Best-Fit bin packing, 8 processors.
//
// Runs the real distributed algorithm (MiniMPI) twice on the Harpsichord
// Practice Room — identical photon streams, only the ownership assignment
// differs — and reports each rank's tally-update count in thousands, exactly
// the quantity the paper tabulates.
#include <cstdio>

#include "bench_util.hpp"
#include "geom/scenes.hpp"
#include "par/dist.hpp"

using namespace photon;

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 60000);
  const int P = 8;

  const Scene scene = scenes::harpsichord_room();

  RunConfig cfg;
  cfg.photons = photons;
  cfg.adapt_batch = false;
  cfg.batch = 1000;

  cfg.bestfit = false;
  cfg.workers = P;
  const RunResult naive = run_distributed(scene, cfg);
  cfg.bestfit = true;
  cfg.workers = P;
  const RunResult packed = run_distributed(scene, cfg);

  // Paper's Table 5.2 columns (thousands of photons).
  const double paper_naive[] = {47.9, 34.5, 35.6, 25.6, 32.7, 24.9, 35.1, 32.8};
  const double paper_packed[] = {29.4, 28.9, 29.8, 29.4, 29.6, 29.1, 28.7, 29.0};

  benchutil::header("Table 5.2 — Photons Processed: Naive Load Balance vs Bin Packing");
  std::printf("%-9s | %12s %12s | %12s %12s\n", "Processor", "naive (k)", "(paper)",
              "packed (k)", "(paper)");
  benchutil::rule();
  double naive_min = 1e18, naive_max = 0, packed_min = 1e18, packed_max = 0;
  for (int r = 0; r < P; ++r) {
    const double n = static_cast<double>(naive.ranks[static_cast<std::size_t>(r)].processed) / 1000.0;
    const double b = static_cast<double>(packed.ranks[static_cast<std::size_t>(r)].processed) / 1000.0;
    naive_min = std::min(naive_min, n);
    naive_max = std::max(naive_max, n);
    packed_min = std::min(packed_min, b);
    packed_max = std::max(packed_max, b);
    std::printf("%9d | %12.1f %12.1f | %12.1f %12.1f\n", r, n, paper_naive[r], b,
                paper_packed[r]);
  }
  benchutil::rule();
  std::printf("max/min spread: naive %.2fx (paper 1.92x), bin packing %.2fx (paper 1.04x)\n",
              naive_max / naive_min, packed_max / packed_min);
  std::printf("Shape to check: bin packing's spread is far smaller than naive's.\n");
  return 0;
}
