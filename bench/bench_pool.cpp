// bench_pool — the persistent worker pool's two headline numbers.
//
// 1. Dispatch overhead: the per-batch cost of the seed's spawn/join idiom
//    (T fresh std::threads per batch window, the old hybrid inner loop)
//    against waking the parked pool. This is pure scheduling overhead — the
//    body is trivial — so the ratio is the thousands-of-windows tax a long
//    chapter-5 run used to pay.
//
// 2. Tail latency under skewed per-photon cost: the paper's Table 5.2
//    imbalance. Real per-photon costs (1 + bounces, traced once with
//    photon streams — deterministic) are laid on the pool's chunk grid and
//    scheduled two ways with a deterministic discrete-event simulation of
//    the pool's exact policy: the static contiguous split (kStaticOnly,
//    the pre-pool schedule) and dynamic steal-from-richest (kNone). The
//    critical path (the busiest worker's summed cost) is the wall clock a
//    fully parallel machine would see; reporting the simulated number keeps
//    the bench meaningful on this single-core container, where measured
//    wall time only shows timesharing. Wall seconds for real shared-backend
//    runs under both schedules ride along for completeness.
//
//    Scheduling is windowed exactly like the backends: each batch window
//    drains before the next starts, so every window's tail gates it. The
//    defaults (workers=8, batch=512, chunk=8) sit in the small-window
//    regime the adaptive batcher produces, which is where a static split
//    hurts most — few chunks per worker per window means one heavy chunk
//    cannot be averaged away, only stolen.
//
//   bench_pool [--photons=N] [--workers=N] [--chunk=N] [--batch=N]
//              [--batches=N] [--out=FILE] [--label=NAME]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "engine/backend.hpp"
#include "engine/pool.hpp"
#include "sim/emitter.hpp"
#include "sim/tracer.hpp"

namespace {

using namespace photon;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Part 1: dispatch overhead -------------------------------------------

// One trivial task per worker — any real work would mask the dispatch cost.
std::atomic<std::uint64_t> g_sink{0};

double spawn_join_us_per_batch(int threads, int batches) {
  const double t0 = now_s();
  for (int b = 0; b < batches; ++b) {
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([] { g_sink.fetch_add(1, std::memory_order_relaxed); });
    }
    for (std::thread& t : team) t.join();
  }
  return (now_s() - t0) * 1e6 / batches;
}

double pool_dispatch_us_per_batch(int threads, int batches) {
  WorkerPool pool(threads - 1);
  // Warm the pool (helpers spawned, parked) before the clock starts — that
  // one-time cost is exactly what the pool amortizes away.
  pool.run(static_cast<std::uint64_t>(threads), threads,
           [](std::uint64_t, int) { g_sink.fetch_add(1, std::memory_order_relaxed); });
  const double t0 = now_s();
  for (int b = 0; b < batches; ++b) {
    pool.run(static_cast<std::uint64_t>(threads), threads,
             [](std::uint64_t, int) { g_sink.fetch_add(1, std::memory_order_relaxed); });
  }
  return (now_s() - t0) * 1e6 / batches;
}

// --- Part 2: tail latency on a skewed-cost chunk grid --------------------

struct BinDiscard final : BinSink {
  void record(const BounceRecord&) override {}
};

// Deterministic per-photon work: 1 emission + the photon's bounce count,
// traced once from its own stream (identical on every machine and run).
std::vector<std::uint64_t> photon_costs(const Scene& scene, std::uint64_t photons,
                                        std::uint64_t seed) {
  const Emitter emitter(scene);
  const Tracer tracer(scene, TraceLimits{});
  BinDiscard sink;
  TraceCounters counters;
  std::vector<std::uint64_t> cost(photons);
  std::uint64_t prev_bounces = 0;
  for (std::uint64_t i = 0; i < photons; ++i) {
    Lcg48 rng = photon_stream(seed, i);
    const EmissionSample emission = emitter.emit(rng);
    tracer.trace(emission, rng, sink, &counters);
    cost[i] = 1 + (counters.bounces - prev_bounces);
    prev_bounces = counters.bounces;
  }
  return cost;
}

std::vector<std::uint64_t> chunk_costs(const std::vector<std::uint64_t>& photon_cost,
                                       std::uint64_t chunk_size) {
  const std::uint64_t chunks = chunk_count(photon_cost.size(), chunk_size);
  std::vector<std::uint64_t> cost(chunks, 0);
  for (std::uint64_t i = 0; i < photon_cost.size(); ++i) cost[i / chunk_size] += photon_cost[i];
  return cost;
}

// The pool's even contiguous split, remainder to the low slots.
std::vector<std::pair<std::uint64_t, std::uint64_t>> static_ranges(std::uint64_t chunks,
                                                                   int width) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> r;
  const std::uint64_t base = chunks / static_cast<std::uint64_t>(width);
  const std::uint64_t extra = chunks % static_cast<std::uint64_t>(width);
  std::uint64_t at = 0;
  for (int s = 0; s < width; ++s) {
    const std::uint64_t n = base + (static_cast<std::uint64_t>(s) < extra ? 1 : 0);
    r.emplace_back(at, at + n);
    at += n;
  }
  return r;
}

struct TailResult {
  std::uint64_t critical_path = 0;  // busiest worker's summed chunk cost
  std::uint64_t steals = 0;
};

// Static schedule: each worker runs exactly its contiguous share.
TailResult simulate_static(const std::vector<std::uint64_t>& cost, int width) {
  TailResult out;
  for (const auto& [lo, hi] : static_ranges(cost.size(), width)) {
    std::uint64_t sum = 0;
    for (std::uint64_t c = lo; c < hi; ++c) sum += cost[c];
    out.critical_path = std::max(out.critical_path, sum);
  }
  return out;
}

// Cuts the photon range into `batch`-photon windows (the backends' drain
// barrier) and sums each window's critical path: the tail of every window
// gates that window, exactly as in run_shared/run_hybrid.
template <typename Sim>
TailResult windowed(const std::vector<std::uint64_t>& photon_cost, std::uint64_t batch,
                    std::uint64_t chunk, int width, Sim sim) {
  TailResult total;
  for (std::uint64_t lo = 0; lo < photon_cost.size(); lo += batch) {
    const std::uint64_t hi = std::min<std::uint64_t>(lo + batch, photon_cost.size());
    const std::vector<std::uint64_t> window(photon_cost.begin() + static_cast<std::ptrdiff_t>(lo),
                                            photon_cost.begin() + static_cast<std::ptrdiff_t>(hi));
    const TailResult r = sim(chunk_costs(window, chunk), width);
    total.critical_path += r.critical_path;
    total.steals += r.steals;
  }
  return total;
}

// Dynamic schedule: discrete-event simulation of the pool's claim protocol —
// the worker with the lowest virtual clock claims next, from its own range's
// head or, when dry, one chunk off the richest victim's tail. This is the
// schedule real parallel hardware would execute, computed deterministically.
TailResult simulate_dynamic(const std::vector<std::uint64_t>& cost, int width) {
  auto ranges = static_ranges(cost.size(), width);
  std::vector<std::uint64_t> clock(static_cast<std::size_t>(width), 0);
  std::vector<bool> done(static_cast<std::size_t>(width), false);
  TailResult out;
  for (;;) {
    int w = -1;
    for (int s = 0; s < width; ++s) {
      if (!done[static_cast<std::size_t>(s)] && (w < 0 || clock[static_cast<std::size_t>(s)] <
                                                              clock[static_cast<std::size_t>(w)])) {
        w = s;
      }
    }
    if (w < 0) break;
    auto& own = ranges[static_cast<std::size_t>(w)];
    std::uint64_t chunk = 0;
    bool claimed = false;
    if (own.first < own.second) {
      chunk = own.first++;
      claimed = true;
    } else {
      int victim = -1;
      std::uint64_t best_remaining = 0;
      for (int v = 0; v < width; ++v) {
        const std::uint64_t remaining = ranges[static_cast<std::size_t>(v)].second -
                                        ranges[static_cast<std::size_t>(v)].first;
        if (v != w && remaining > best_remaining) {
          best_remaining = remaining;
          victim = v;
        }
      }
      if (victim >= 0) {
        chunk = --ranges[static_cast<std::size_t>(victim)].second;
        claimed = true;
        ++out.steals;
      }
    }
    if (!claimed) {
      done[static_cast<std::size_t>(w)] = true;
      continue;
    }
    clock[static_cast<std::size_t>(w)] += cost[static_cast<std::size_t>(chunk)];
  }
  for (int s = 0; s < width; ++s) {
    out.critical_path = std::max(out.critical_path, clock[static_cast<std::size_t>(s)]);
  }
  return out;
}

double wall_of_shared(const Scene& scene, std::uint64_t photons, int workers,
                      std::uint64_t chunk, std::uint64_t batch,
                      WorkerPool::TestSchedule schedule) {
  WorkerPool::ScheduleGuard guard(schedule);
  RunConfig cfg;
  cfg.photons = photons;
  cfg.workers = workers;
  cfg.chunk = chunk;
  cfg.batch = batch;
  const RunResult r = make_backend("shared")->run(scene, cfg);
  return r.trace.total_time_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = benchutil::arg_u64(argc, argv, "photons", 40000);
  const int workers = static_cast<int>(benchutil::arg_u64(argc, argv, "workers", 8));
  const std::uint64_t chunk = benchutil::arg_u64(argc, argv, "chunk", 8);
  const std::uint64_t batch = benchutil::arg_u64(argc, argv, "batch", 512);
  const int batches = static_cast<int>(benchutil::arg_u64(argc, argv, "batches", 400));
  const std::string out = benchutil::arg_str(argc, argv, "out", "BENCH_pool.json");
  const std::string label = benchutil::arg_str(argc, argv, "label", "current");

  std::vector<std::string> rows;
  char buf[512];

  benchutil::header("pool dispatch overhead (trivial body)");
  const double spawn_us = spawn_join_us_per_batch(workers, batches);
  const double pool_us = pool_dispatch_us_per_batch(workers, batches);
  std::printf("spawn/join per batch: %9.1f us   (T=%d fresh std::threads)\n", spawn_us, workers);
  std::printf("pool dispatch:        %9.1f us   (parked helpers woken)\n", pool_us);
  std::printf("ratio:                %9.1fx\n", pool_us > 0.0 ? spawn_us / pool_us : 0.0);
  std::snprintf(buf, sizeof(buf),
                "{\"section\": \"dispatch\", \"mode\": \"spawn_join\", \"threads\": %d, "
                "\"batches\": %d, \"us_per_batch\": %.2f}",
                workers, batches, spawn_us);
  rows.push_back(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"section\": \"dispatch\", \"mode\": \"pool\", \"threads\": %d, "
                "\"batches\": %d, \"us_per_batch\": %.2f}",
                workers, batches, pool_us);
  rows.push_back(buf);

  benchutil::header("tail latency: static split vs dynamic stealing (simulated critical path)");
  std::printf("%-12s %7s %6s %12s %12s %12s %8s %7s\n", "scene", "chunks", "W", "ideal",
              "static", "dynamic", "gain", "steals");
  benchutil::rule();

  struct SkewScene {
    const char* name;
    Scene scene;
  };
  // cornell: the mild natural bounce skew. furnace 0.9: rho/(1-rho) = 9
  // bounces/photon with a geometric tail — the heavy skew the static split
  // is worst at.
  std::vector<SkewScene> specs;
  specs.push_back({"cornell", scenes::cornell_box()});
  specs.push_back({"furnace09", scenes::furnace_box(0.9)});

  for (const SkewScene& spec : specs) {
    const std::vector<std::uint64_t> per_photon =
        photon_costs(spec.scene, photons, 0x1234ABCD330EULL);
    std::uint64_t total = 0;
    for (const std::uint64_t c : per_photon) total += c;
    const double ideal = static_cast<double>(total) / workers;

    const TailResult st = windowed(per_photon, batch, chunk, workers, simulate_static);
    const TailResult dy = windowed(per_photon, batch, chunk, workers, simulate_dynamic);
    const double gain = dy.critical_path > 0
                            ? static_cast<double>(st.critical_path) /
                                  static_cast<double>(dy.critical_path)
                            : 0.0;

    const double wall_static = wall_of_shared(spec.scene, photons, workers, chunk, batch,
                                              WorkerPool::TestSchedule::kStaticOnly);
    const double wall_dynamic = wall_of_shared(spec.scene, photons, workers, chunk, batch,
                                               WorkerPool::TestSchedule::kNone);

    std::printf("%-12s %7llu %6d %12.0f %12llu %12llu %7.3fx %7llu\n", spec.name,
                static_cast<unsigned long long>(chunk_count(photons, chunk)), workers, ideal,
                static_cast<unsigned long long>(st.critical_path),
                static_cast<unsigned long long>(dy.critical_path), gain,
                static_cast<unsigned long long>(dy.steals));

    std::snprintf(
        buf, sizeof(buf),
        "{\"section\": \"tail\", \"scene\": \"%s\", \"workers\": %d, \"chunk\": %llu, "
        "\"batch\": %llu, \"total_cost\": %llu, \"ideal_cost\": %.1f, "
        "\"static_critical_path\": %llu, \"dynamic_critical_path\": %llu, "
        "\"dynamic_gain\": %.4f, \"dynamic_steals\": %llu, "
        "\"static_imbalance_pct\": %.2f, \"dynamic_imbalance_pct\": %.2f, "
        "\"wall_s_static\": %.6f, \"wall_s_dynamic\": %.6f}",
        spec.name, workers, static_cast<unsigned long long>(chunk),
        static_cast<unsigned long long>(batch), static_cast<unsigned long long>(total), ideal,
        static_cast<unsigned long long>(st.critical_path),
        static_cast<unsigned long long>(dy.critical_path), gain,
        static_cast<unsigned long long>(dy.steals),
        100.0 * (static_cast<double>(st.critical_path) / ideal - 1.0),
        100.0 * (static_cast<double>(dy.critical_path) / ideal - 1.0), wall_static,
        wall_dynamic);
    rows.push_back(buf);
  }

  char field[128];
  std::snprintf(field, sizeof(field), "\"photons_requested\": %llu",
                static_cast<unsigned long long>(photons));
  return benchutil::write_json_artifact(out, "pool", label, {field}, rows) ? 0 : 1;
}
