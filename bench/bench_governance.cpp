// bench_governance — the cost of running governed (engine/governor.hpp).
//
// Per bundled scene, four hybrid runs at groups=2:
//
//   baseline        ungoverned, one leg — the reference rate
//   governed        the same run with governance on: the per-window preempt
//                   poll plus the stop-word allreduce. overhead_pct is the
//                   wall-time cost of being preemptible at all.
//   preempt-resume  a timed preempt ~40% in, the partial result round-
//                   tripped through the checkpoint-v2 serializer, then the
//                   resume leg. overhead_pct compares the stitched wall time
//                   (both legs + serialize + load) against baseline — the
//                   price of an interruption.
//   watchdog        a 60s delivery delay wedges the run under a
//                   deadline_s=0.15 / grace_s=0.1 watchdog. detect_s is the
//                   wall time from launch to the typed WedgedError; the
//                   configured floor is 0.25s, so detect_s - 0.25 is the
//                   monitor's reaction latency.
//
//   bench_governance [--photons=N] [--batch=N] [--out=FILE] [--label=NAME]
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/governor.hpp"
#include "engine/recovery.hpp"
#include "sim/checkpoint.hpp"

namespace {

using namespace photon;
using benchutil::arg_str;
using benchutil::arg_u64;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct GovRow {
  const char* mode;
  double wall_s = 0.0;
  double rate = 0.0;
  double overhead_pct = 0.0;  // vs the scene's baseline wall time
  double detect_s = 0.0;      // watchdog mode only
  std::uint64_t emitted = 0;
};

RunConfig base_config(std::uint64_t photons, std::uint64_t batch) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = batch;
  cfg.adapt_batch = false;
  cfg.groups = 2;
  cfg.workers = 2;
  return cfg;
}

GovRow timed_run(const char* mode, const Scene& scene, const RunConfig& cfg) {
  const auto backend = make_backend("hybrid");
  GovRow row;
  row.mode = mode;
  const auto t0 = Clock::now();
  const RunResult result = backend->run(scene, cfg, nullptr);
  row.wall_s = seconds_since(t0);
  row.emitted = result.counters.emitted;
  row.rate = row.wall_s > 0.0 ? static_cast<double>(row.emitted) / row.wall_s : 0.0;
  return row;
}

GovRow preempt_resume(const Scene& scene, const RunConfig& cfg, double preempt_after_s) {
  const auto backend = make_backend("hybrid");
  GovRow row;
  row.mode = "preempt-resume";
  clear_preempt();
  std::thread trigger([preempt_after_s] {
    std::this_thread::sleep_for(std::chrono::duration<double>(preempt_after_s));
    request_preempt();
  });
  const auto t0 = Clock::now();
  RunResult part = backend->run(scene, cfg, nullptr);
  trigger.join();
  clear_preempt();
  if (part.status == RunStatus::kPreempted && part.counters.emitted < cfg.photons) {
    // Round-trip the checkpoint the way a real preemption does, then resume.
    std::stringstream bytes;
    save_checkpoint(part, bytes);
    RunResult loaded;
    if (load_checkpoint_status(bytes, loaded) != CheckpointStatus::kOk) {
      std::fprintf(stderr, "error: preempted checkpoint did not round-trip\n");
      return row;
    }
    RunConfig rest = cfg;
    rest.photons = cfg.photons - loaded.counters.emitted;
    part = backend->run(scene, rest, &loaded);
  }
  row.wall_s = seconds_since(t0);
  row.emitted = part.counters.emitted;
  row.rate = row.wall_s > 0.0 ? static_cast<double>(row.emitted) / row.wall_s : 0.0;
  return row;
}

GovRow watchdog_detect(const Scene& scene, const RunConfig& base) {
  GovRow row;
  row.mode = "watchdog";
  const auto backend = make_backend("hybrid");
  RunConfig cfg = base;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_delay({0, 1, 0, 0, 60.0});  // wedge: no comm deadline to save us
  cfg.fault_plan = plan;
  cfg.watchdog_s = 0.15;
  cfg.watchdog_grace_s = 0.10;
  const auto t0 = Clock::now();
  try {
    (void)run_elastic(*backend, scene, cfg, nullptr);
    std::fprintf(stderr, "error: wedged run completed instead of aborting\n");
  } catch (const WedgedError&) {
    row.detect_s = seconds_since(t0);
  }
  row.wall_s = row.detect_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t photons = arg_u64(argc, argv, "photons", 200000);
  const std::uint64_t batch = arg_u64(argc, argv, "batch", 5000);
  const std::string out = arg_str(argc, argv, "out", "BENCH_governance.json");
  const std::string label = arg_str(argc, argv, "label", "dev");

  benchutil::header("run governance: preemption overhead and watchdog latency (hybrid)");
  std::printf("photons=%llu batch=%llu\n", static_cast<unsigned long long>(photons),
              static_cast<unsigned long long>(batch));

  std::vector<std::string> rows;
  for (const auto& spec : benchutil::bundled_scenes()) {
    const RunConfig plain = base_config(photons, batch);
    RunConfig governed = plain;
    governed.governed = true;

    std::vector<GovRow> results;
    results.push_back(timed_run("baseline", spec.scene, plain));
    const double baseline_wall = results[0].wall_s;
    results.push_back(timed_run("governed", spec.scene, governed));
    results.push_back(preempt_resume(spec.scene, governed, baseline_wall * 0.4));
    results.push_back(watchdog_detect(spec.scene, plain));

    benchutil::rule();
    std::printf("%-12s %-16s %10s %12s %10s %9s\n", spec.name, "mode", "wall_s",
                "photons/s", "overhead%", "detect_s");
    for (GovRow& r : results) {
      if (baseline_wall > 0.0 && r.mode != std::string("watchdog")) {
        r.overhead_pct = 100.0 * (r.wall_s - baseline_wall) / baseline_wall;
      }
      std::printf("%-12s %-16s %10.4f %12.0f %10.2f %9.3f\n", "", r.mode, r.wall_s, r.rate,
                  r.overhead_pct, r.detect_s);
      char row[384];
      std::snprintf(row, sizeof(row),
                    "{\"scene\": \"%s\", \"mode\": \"%s\", \"wall_s\": %.6f, "
                    "\"photons_per_sec\": %.1f, \"overhead_pct\": %.3f, "
                    "\"detect_s\": %.6f, \"emitted\": %llu}",
                    spec.name, r.mode, r.wall_s, r.rate, r.overhead_pct, r.detect_s,
                    static_cast<unsigned long long>(r.emitted));
      rows.emplace_back(row);
    }
  }

  char scalars[96];
  std::snprintf(scalars, sizeof(scalars), "\"photons\": %llu, \"batch\": %llu",
                static_cast<unsigned long long>(photons),
                static_cast<unsigned long long>(batch));
  if (!benchutil::write_json_artifact(out, "governance", label, {scalars}, rows)) return 1;
  return 0;
}
