// Quickstart: the whole Photon pipeline in ~40 lines.
//
//   1. build a scene (the Cornell Box with its floating mirror),
//   2. run the Monte Carlo light-transport simulation,
//   3. save the view-independent answer file,
//   4. render a viewpoint from it with the single-step-ray-trace viewer.
//
// Usage: quickstart [photons]     (default 200000)
#include <cstdio>
#include <cstdlib>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

int main(int argc, char** argv) {
  using namespace photon;

  const std::uint64_t photons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  // 1. Scene.
  const Scene scene = scenes::cornell_box();
  std::printf("scene: %s, %zu defining polygons, %zu luminaires\n", scene.name().c_str(),
              scene.patch_count(), scene.luminaires().size());

  // 2. Simulate.
  RunConfig config;
  config.photons = photons;
  const RunResult result = run_serial(scene, config);
  std::printf("simulated %llu photons in %.2fs (%.0f photons/s)\n",
              static_cast<unsigned long long>(result.trace.total_photons),
              result.trace.total_time_s, result.trace.final_rate());
  std::printf("bin forest: %llu bins, %.2f MB, mean path %.2f bounces\n",
              static_cast<unsigned long long>(result.forest.total_leaves()),
              result.forest.memory_bytes() / 1048576.0, result.counters.bounces_per_photon());

  // 3. Answer file.
  if (!result.forest.save("cornell.answer")) {
    std::fprintf(stderr, "failed to write cornell.answer\n");
    return 1;
  }
  std::printf("answer file: cornell.answer\n");

  // 4. View.
  const Camera camera({2.75, 2.75, 5.3}, {2.75, 2.75, 0.0}, {0, 1, 0}, 58.0, 320, 320);
  const Image image = render(scene, result.forest, camera);
  if (!image.write_ppm("cornell.ppm")) {
    std::fprintf(stderr, "failed to write cornell.ppm\n");
    return 1;
  }
  std::printf("rendered: cornell.ppm (mean luminance %.4f)\n", image.mean_luminance());
  return 0;
}
