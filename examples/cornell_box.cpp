// Fig 4.10 workflow: "Different Viewpoints Using the Same Answer File."
//
// Simulates the Cornell Box once, then renders several viewpoints — including
// ones looking at the floating mirror from different angles — without any
// recomputation. The mirror is an ordinary patch whose bin tree simply holds
// richer angular information (chapter 4).
//
// Usage: cornell_box [photons]     (default 400000)
#include <cstdio>
#include <cstdlib>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

int main(int argc, char** argv) {
  using namespace photon;

  const std::uint64_t photons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;
  const Scene scene = scenes::cornell_box();

  RunConfig config;
  config.photons = photons;
  // Finer bins than the default: this example is about image quality.
  config.policy.max_leaf_count = 128;
  config.policy.count_growth = 1.25;
  const RunResult result = run_serial(scene, config);
  std::printf("simulated %llu photons (%.0f/s), %llu bins\n",
              static_cast<unsigned long long>(result.trace.total_photons),
              result.trace.final_rate(),
              static_cast<unsigned long long>(result.forest.total_leaves()));

  struct Viewpoint {
    const char* file;
    Vec3 eye;
    Vec3 look;
  };
  const Viewpoint views[] = {
      {"cornell_front.ppm", {2.75, 2.75, 5.3}, {2.75, 2.75, 0.0}},
      {"cornell_left.ppm", {0.7, 3.6, 5.0}, {3.5, 1.8, 1.5}},
      {"cornell_mirror.ppm", {4.6, 1.4, 4.9}, {2.75, 2.15, 2.6}},
  };
  for (const Viewpoint& v : views) {
    const Camera camera(v.eye, v.look, {0, 1, 0}, 58.0, 320, 320);
    const Image image = render(scene, result.forest, camera);
    image.write_ppm(v.file);
    std::printf("  %s (mean luminance %.4f) — same answer file, no recomputation\n", v.file,
                image.mean_luminance());
  }

  // Show the mirror really is view-dependent data: its bin tree carries more
  // angular subdivision than any diffuse wall.
  int mirror = -1;
  for (std::size_t i = 0; i < scene.patch_count(); ++i) {
    if (scene.material_of(static_cast<int>(i)).specular.max_component() > 0.5) {
      mirror = static_cast<int>(i);
    }
  }
  auto angular_splits = [&](int patch) {
    int n = 0;
    for (int side = 0; side < 2; ++side) {
      const BinTree& tree = result.forest.tree(patch, side == 0);
      for (std::size_t i = 0; i < tree.node_count(); ++i) {
        const BinNode& node = tree.node(static_cast<int>(i));
        if (!node.is_leaf() && node.axis >= 2) ++n;
      }
    }
    return n;
  };
  std::printf("angular bin subdivisions: mirror %d vs floor %d\n", angular_splits(mirror),
              angular_splits(0));
  return 0;
}
