// photon_cli — command-line front end for the library.
//
//   photon_cli scenes
//       List the built-in scenes.
//   photon_cli backends
//       List the registered simulation backends.
//   photon_cli info <scene>
//       Print geometry/material/luminaire statistics.
//   photon_cli simulate <scene> <answer-file> [--backend=NAME] [--photons=N]
//                        [--seed=N] [--workers=N] [--groups=N] [--batch=N]
//                        [--chunk=N] [--adapt] [--accel=octree|bvh|grid]
//                        [--split-z=S] [--split-min=N]
//                        [--split-leaf=N] [--split-growth=G] [--max-bounces=N]
//                        [--checkpoint=FILE] [--resume=FILE] [--trace=FILE]
//                        [--checkpoint-every=N] [--max-recoveries=N]
//                        [--fault-plan=SPEC] [--heartbeat=SECONDS]
//                        [--watchdog=SECONDS] [--watchdog-grace=SECONDS]
//                        [--memory-budget=BYTES[k|m|g]]
//                        [--report=json]
//       Run the simulation on the selected backend (serial | shared |
//       dist-particle | dist-spatial | hybrid) and write the answer file,
//       optionally checkpointing so long runs can continue later. The hybrid
//       backend runs --groups message-passing groups of --workers threads
//       each. The --split-* flags set the adaptive-histogram SplitPolicy
//       (significance threshold in sigma, minimum count before testing,
//       count-driven leaf threshold and its per-depth growth); --max-bounces
//       guards pathological mirror corridors. --trace streams the per-batch
//       speed trace to a JSONL file instead of holding it in memory (long
//       runs). --report=json replaces the human-readable summary with
//       machine-readable JSON objects on stdout (the bench harness consumes
//       them); errors then also emit a structured {"error": ...} block.
//
//       Run governance (engine/governor.hpp; DESIGN.md "Run governance"):
//       every simulate run is governed — SIGTERM/SIGINT/SIGUSR1 stops it
//       gracefully at the next window boundary, writes the checkpoint
//       (--checkpoint=FILE, or <answer>.ckpt without one) and exits with the
//       resumable code 5. Rerunning the SAME command with the SAME
//       --checkpoint resumes bitwise: with --checkpoint, --photons is the
//       TOTAL photon count and an existing valid checkpoint at that path is
//       adopted automatically (--resume=FILE keeps its historical meaning:
//       simulate --photons ADDITIONAL photons on top of FILE).
//       --watchdog=S arms the stuck-run watchdog: no engine progress for S
//       seconds (plus a grace of --watchdog-grace, default S again) declares
//       the run wedged — emergency checkpoint, typed abort with exit code 6,
//       never a hang. --memory-budget=B admits the run only under the
//       degradation ladder (shrink sink buffers, then coarsen accel leaves,
//       then refuse with exit 9) and stops the run gracefully (exit 9,
//       resumable) if the forest footprint crosses B mid-run.
//
//       Exit codes (core/error.hpp): 0 ok, 1 generic I/O, 2 usage,
//       3 checkpoint rejected, 4 comm failure beyond recovery,
//       5 preempted (resumable), 6 wedged, 7 config, 8 scene, 9 resource.
//
//       Fault tolerance (engine/recovery.hpp, mp/fault.hpp):
//       --checkpoint-every=N cuts the run into legs of N photons held as
//       in-memory checkpoints; when a rank dies mid-leg the run rewinds to
//       the last leg and re-shards the dead rank's work across the survivors
//       (up to --max-recoveries times, default 8). --heartbeat=SECONDS arms
//       the failure detector: every blocking receive and barrier gets that
//       deadline, and a rank whose per-batch liveness counter stops
//       advancing is declared dead instead of hanging the run.
//       --fault-plan=SPEC injects scripted faults for testing, e.g.
//       "kill:rank=1,batch=2,point=mid" or "drop:src=0,dst=1,nth=3" or
//       "delay:src=0,dst=1,ms=50" (';'-separated, each entry fires once).
//   photon_cli render <scene> <answer-file> <out.ppm>
//                        [--eye=x,y,z] [--look=x,y,z] [--fov=deg]
//                        [--size=WxH] [--spp=N] [--threads=N]
//       Render a viewpoint from an existing answer file (no re-simulation).
//
//   photon_cli serve --socket=PATH [--max-active=N] [--memory-budget=BYTES]
//                        [--watchdog=SECONDS] [--watchdog-grace=SECONDS]
//       Run the photon service daemon (src/service/): resident scenes,
//       concurrent governed jobs multiplexed fair-share onto the worker
//       pool, per-job cancel, admission against a service-wide memory
//       budget. SIGTERM/SIGINT stops the daemon; every active job stops at
//       its next window boundary with a resumable checkpoint (if the job
//       named one).
//   photon_cli submit --socket=PATH --scene=NAME [--backend=NAME]
//                        [--photons=N] [--seed=N] [--workers=N] [--groups=N]
//                        [--batch=N] [--chunk=N] [--accel=octree|bvh|grid]
//                        [--checkpoint=FILE] [--trace=FILE] [--wait]
//       Submit one job to a running daemon; prints the service's one-line
//       JSON response. --wait blocks until the job finishes and prints its
//       final report instead.
//   photon_cli status --socket=PATH [--job=N]
//       One job's JSON report, or {"jobs": [...]} for all of them.
//   photon_cli cancel --socket=PATH --job=N
//       Gracefully stop one job (it halts at the next window boundary;
//       every other job keeps running).
//
// <scene> is a built-in name (cornell | harpsichord | lab) or a path to a
// photon-scene text file.
#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "core/error.hpp"
#include "engine/backend.hpp"
#include "engine/governor.hpp"
#include "engine/recovery.hpp"
#include "geom/scene_io.hpp"
#include "geom/scenes.hpp"
#include "hist/metrics.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/service.hpp"
#include "sim/checkpoint.hpp"
#include "view/viewer.hpp"

namespace {

using namespace photon;

// ---- Strict flag parsing ---------------------------------------------------
//
// Every flag is validated against a per-command table: unknown flags,
// duplicate flags, and malformed values are typed ConfigErrors (exit 7), not
// silently-ignored tokens or strtoull's silent zeros. A mistyped
// "--photons=1e6" must stop the run before it starts, not simulate zero
// photons and report success.

std::uint64_t parse_u64_flag(const std::string& flag, const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+') {
    throw ConfigError("--" + flag + "= needs a non-negative integer, got '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    throw ConfigError("--" + flag + "= needs a non-negative integer, got '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double_flag(const std::string& flag, const std::string& s) {
  if (s.empty()) throw ConfigError("--" + flag + "= needs a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) {
    throw ConfigError("--" + flag + "= needs a number, got '" + s + "'");
  }
  return v;
}

// Byte counts accept a k/m/g suffix (powers of 1024): --memory-budget=512m.
std::uint64_t parse_bytes_flag(const std::string& flag, const std::string& s) {
  std::uint64_t scale = 1;
  std::string digits = s;
  if (!s.empty()) {
    const char suffix = s.back();
    if (suffix == 'k' || suffix == 'K') scale = 1ull << 10;
    if (suffix == 'm' || suffix == 'M') scale = 1ull << 20;
    if (suffix == 'g' || suffix == 'G') scale = 1ull << 30;
    if (scale != 1) digits = s.substr(0, s.size() - 1);
  }
  return parse_u64_flag(flag, digits) * scale;
}

class Args {
 public:
  // Parses argv[first..): every element must be --key=value with `key` in
  // `known_kv`, or a bare --key in `known_flags`. Throws ConfigError
  // otherwise — including on repeats, so "--photons=1000 --photons=10"
  // cannot silently half-win.
  Args(int argc, char** argv, int first, std::set<std::string> known_kv,
       std::set<std::string> known_flags)
      : known_kv_(std::move(known_kv)), known_flags_(std::move(known_flags)) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw ConfigError("unexpected argument '" + arg + "'");
      }
      const std::size_t eq = arg.find('=');
      const std::string key = arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
      if (eq == std::string::npos) {
        if (known_flags_.count(key) == 0) {
          if (known_kv_.count(key) != 0) {
            throw ConfigError("flag --" + key + " needs a value (--" + key + "=...)");
          }
          throw ConfigError("unknown flag '--" + key + "'");
        }
        if (!flags_.insert(key).second) throw ConfigError("duplicate flag '--" + key + "'");
      } else {
        if (known_kv_.count(key) == 0) {
          if (known_flags_.count(key) != 0) {
            throw ConfigError("flag --" + key + " takes no value");
          }
          throw ConfigError("unknown flag '--" + key + "'");
        }
        if (!values_.emplace(key, arg.substr(eq + 1)).second) {
          throw ConfigError("duplicate flag '--" + key + "'");
        }
      }
    }
  }

  const std::string* get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }
  bool flag(const std::string& key) const { return flags_.count(key) != 0; }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    const std::string* v = get(key);
    return v ? parse_u64_flag(key, *v) : fallback;
  }
  double dbl(const std::string& key, double fallback) const {
    const std::string* v = get(key);
    return v ? parse_double_flag(key, *v) : fallback;
  }
  std::uint64_t bytes(const std::string& key, std::uint64_t fallback) const {
    const std::string* v = get(key);
    return v ? parse_bytes_flag(key, *v) : fallback;
  }

 private:
  std::set<std::string> known_kv_;
  std::set<std::string> known_flags_;
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

bool arg_vec3(const Args& args, const char* name, Vec3& out) {
  const std::string* v = args.get(name);
  if (!v) return false;
  if (std::sscanf(v->c_str(), "%lf,%lf,%lf", &out.x, &out.y, &out.z) != 3) {
    throw ConfigError(std::string("--") + name + "= needs x,y,z");
  }
  return true;
}

// ---- Error reporting -------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One structured error surface for both humans and supervisors: stderr gets
// the prose, --report=json stdout gets a machine-readable block with the
// stable code and documented exit code.
int report_engine_error(const EngineError& e, bool json_report) {
  if (json_report) {
    std::printf("{\"error\": {\"code\": \"%s\", \"exit_code\": %d, \"message\": \"%s\"",
                e.code(), e.exit_code(), json_escape(e.what()).c_str());
    if (const auto* scene = dynamic_cast<const SceneError*>(&e); scene && scene->patch >= 0) {
      std::printf(", \"patch\": %d", scene->patch);
    }
    if (const auto* wedged = dynamic_cast<const WedgedError*>(&e)) {
      std::printf(", \"snapshot\": \"%s\"", json_escape(wedged->snapshot).c_str());
    }
    std::printf("}}\n");
  }
  std::fprintf(stderr, "error [%s]: %s\n", e.code(), e.what());
  return e.exit_code();
}

void load_any_scene(const std::string& spec, Scene& scene) {
  if (spec == "cornell" || spec == "harpsichord" || spec == "lab") {
    scene = scenes::by_name(spec);
    return;
  }
  if (!load_scene(spec, scene)) {
    throw SceneError("cannot load scene '" + spec + "'");
  }
  scene.build();
}

int cmd_scenes() {
  std::printf("built-in scenes:\n");
  std::printf("  cornell      Cornell Box with a floating two-sided mirror (~30 polygons)\n");
  std::printf("  harpsichord  Harpsichord Practice Room, sun+sky skylights (~100 polygons)\n");
  std::printf("  lab          Computer Laboratory, 100 workstations (~2000 polygons)\n");
  return 0;
}

int cmd_info(const std::string& spec) {
  Scene scene;
  load_any_scene(spec, scene);
  std::printf("scene: %s\n", scene.name().c_str());
  std::printf("  defining polygons : %zu\n", scene.patch_count());
  std::printf("  materials         : %zu\n", scene.materials().size());
  std::printf("  luminaires        : %zu\n", scene.luminaires().size());
  const Rgb power = scene.total_power();
  std::printf("  total power (RGB) : %.2f %.2f %.2f\n", power.r, power.g, power.b);
  const Aabb b = scene.bounds();
  std::printf("  bounds            : (%.2f %.2f %.2f) .. (%.2f %.2f %.2f)\n", b.lo.x, b.lo.y,
              b.lo.z, b.hi.x, b.hi.y, b.hi.z);
  std::printf("  accel (%s)    : %zu nodes (depth %d)\n",
              accel_kind_name(scene.accel_kind()), scene.accel().node_count(),
              scene.accel().depth());
  return 0;
}

int cmd_backends() {
  std::printf("registered backends:\n");
  for (const std::string& name : backend_names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int cmd_simulate_impl(const Args& args, const std::string& spec, const std::string& answer,
                      bool json_report) {
  Scene scene;
  load_any_scene(spec, scene);
  validate_scene(scene);

  const std::string* backend_name = args.get("backend");
  const std::string backend_sel = backend_name ? *backend_name : "serial";
  const std::unique_ptr<Backend> backend = make_backend(backend_sel);
  if (!backend) {
    throw ConfigError("unknown backend '" + backend_sel + "' (see `photon_cli backends`)");
  }

  AccelKind accel = AccelKind::kOctree;
  if (const std::string* accel_name = args.get("accel")) {
    if (!accel_kind_from_string(accel_name->c_str(), accel)) {
      throw ConfigError("unknown accel '" + *accel_name + "' (supported: octree | bvh | grid)");
    }
  }
  if (accel != scene.accel_kind()) {
    // load_any_scene built the default octree; swap and rebuild. Every
    // structure answers bitwise-identical queries, so results do not change.
    scene.set_accel(accel);
    scene.build();
  }
  Progress::instance().tick("accel-build", scene.patch_count());

  RunConfig config;
  config.accel = accel;
  config.photons = args.u64("photons", 500000);
  config.seed = args.u64("seed", config.seed);
  // Validate before the int narrowing: a 2^32+1 request must error, not
  // silently wrap to 1 worker.
  const std::uint64_t workers_arg = args.u64("workers", 2);
  const std::uint64_t groups_arg = args.u64("groups", 2);
  if (workers_arg < 1 || workers_arg > 4096 || groups_arg < 1 || groups_arg > 4096) {
    throw ConfigError("--workers and --groups must be in [1, 4096]");
  }
  config.workers = static_cast<int>(workers_arg);
  config.groups = static_cast<int>(groups_arg);
  config.batch = args.u64("batch", config.batch);
  config.chunk = args.u64("chunk", config.chunk);
  if (const std::string* trace = args.get("trace")) config.trace_path = *trace;
  config.policy.z = args.dbl("split-z", config.policy.z);
  config.policy.min_count = args.u64("split-min", config.policy.min_count);
  config.policy.max_leaf_count = args.u64("split-leaf", config.policy.max_leaf_count);
  config.policy.count_growth = args.dbl("split-growth", config.policy.count_growth);
  config.limits.max_bounces = static_cast<int>(
      args.u64("max-bounces", static_cast<std::uint64_t>(config.limits.max_bounces)));
  if (config.policy.z <= 0.0 || config.policy.min_count < 1 ||
      config.policy.max_leaf_count < 1 || config.policy.count_growth < 1.0 ||
      config.limits.max_bounces < 1) {
    throw ConfigError(
        "--split-z must be > 0, --split-min/--split-leaf/--max-bounces >= 1, "
        "--split-growth >= 1");
  }
  // The parallel RNG scheme assigns each photon a disjoint 4096-element block
  // (par/spatial's photon_stream, and every resume skip); at a handful of
  // draws per bounce, paths beyond ~512 bounces could bleed into the next
  // photon's block and silently correlate streams.
  if (config.limits.max_bounces > 512) {
    throw ConfigError("--max-bounces must be <= 512 (per-photon RNG blocks are 4096 draws)");
  }
  config.adapt_batch = args.flag("adapt");

  // Fault-tolerance knobs: all runs route through run_elastic, which is a
  // plain backend->run() when none of these are set.
  config.checkpoint_photons = args.u64("checkpoint-every", 0);
  config.max_recoveries = static_cast<int>(
      args.u64("max-recoveries", static_cast<std::uint64_t>(config.max_recoveries)));
  if (args.get("heartbeat")) {
    config.comm.deadline_s = args.dbl("heartbeat", 0.0);
    config.comm.heartbeats = true;
    if (config.comm.deadline_s <= 0.0) {
      throw ConfigError("--heartbeat must be a positive deadline in seconds");
    }
  }
  if (const std::string* plan_spec = args.get("fault-plan")) {
    auto plan = std::make_shared<FaultPlan>();
    std::string error;
    if (!parse_fault_plan(*plan_spec, *plan, error)) {
      throw ConfigError("bad --fault-plan: " + error);
    }
    config.fault_plan = std::move(plan);
  }

  // Run governance: every CLI run is governed (the flag must simply be
  // identical on all ranks, which one process trivially guarantees), so
  // SIGTERM/SIGINT/SIGUSR1 stop it resumably at the next window boundary.
  install_preempt_handlers();
  clear_preempt();
  config.governed = true;
  config.watchdog_s = args.dbl("watchdog", 0.0);
  config.watchdog_grace_s = args.dbl("watchdog-grace", 0.0);
  if (config.watchdog_s < 0.0 || config.watchdog_grace_s < 0.0) {
    throw ConfigError("--watchdog and --watchdog-grace must be >= 0 seconds");
  }
  config.watchdog_exit = config.watchdog_s > 0.0;
  config.memory_budget = args.bytes("memory-budget", 0);

  const std::string* ckpt_path = args.get("checkpoint");
  const std::string stop_path = ckpt_path ? *ckpt_path : answer + ".ckpt";
  config.emergency_checkpoint_path = stop_path;

  // Memory admission (engine/governor.hpp): degrade in the documented
  // bitwise-neutral order or refuse with a typed ResourceError before any
  // photon is traced.
  if (config.memory_budget != 0) {
    const AdmissionPlan plan = govern_admission(scene, config);
    config.sink_buffer = plan.sink_buffer;
    if (!json_report && (plan.shrank_buffers || plan.coarsened_accel)) {
      std::printf("memory budget: degraded admission (%s%s~%llu bytes planned)\n",
                  plan.shrank_buffers ? "shrank sink buffers, " : "",
                  plan.coarsened_accel ? "coarsened accel leaves, " : "",
                  static_cast<unsigned long long>(plan.estimated_bytes));
    }
  }

  RunResult resume;
  const RunResult* resume_ptr = nullptr;
  if (const std::string* path = args.get("resume")) {
    // Historical semantics: --photons ADDITIONAL photons on top of FILE.
    const CheckpointStatus status = load_checkpoint_status(*path, resume);
    if (status != CheckpointStatus::kOk) {
      // Say exactly which check failed: a refused multi-hour resume must be
      // diagnosable from stderr alone.
      throw CheckpointError("cannot load checkpoint '" + *path +
                            "': " + checkpoint_status_name(status));
    }
    resume_ptr = &resume;
  } else if (ckpt_path) {
    // Governed-resume semantics: with --checkpoint, --photons is the TOTAL
    // count, and an existing valid checkpoint at the path is adopted — so
    // rerunning the exact same command after a preemption (exit 5) simply
    // continues. A missing file is a fresh run; a present-but-damaged file
    // is a hard error (silently restarting a long run from zero because one
    // byte flipped would be worse).
    const CheckpointStatus status = load_checkpoint_status(*ckpt_path, resume);
    if (status == CheckpointStatus::kOk) {
      if (resume.counters.emitted >= config.photons) {
        config.photons = 0;
      } else {
        config.photons -= resume.counters.emitted;
      }
      resume_ptr = &resume;
    } else if (status != CheckpointStatus::kOpenFailed) {
      throw CheckpointError("cannot load checkpoint '" + *ckpt_path +
                            "': " + checkpoint_status_name(status));
    }
  }
  if (resume_ptr && !json_report) {
    std::printf("resuming (%llu photons so far)\n",
                static_cast<unsigned long long>(resume.counters.emitted));
  }

  RunResult result;
  if (resume_ptr && config.photons == 0) {
    result = std::move(resume);  // checkpoint already covers the request
    resume_ptr = nullptr;
  } else {
    try {
      result = run_elastic(*backend, scene, config, resume_ptr);
    } catch (const WorldFailure& failure) {
      throw CommError(CommErrorKind::kPeerDead, -1, -1,
                      std::string("run failed beyond recovery: ") + failure.what());
    }
  }
  const ForestMetrics metrics = compute_metrics(result.forest);
  const bool complete = result.status == RunStatus::kComplete;

  if (json_report) {
    std::printf(
        "{\"scene\": \"%s\", \"backend\": \"%s\", \"accel\": \"%s\", \"photons\": %llu, "
        "\"workers\": %d, \"groups\": %d, \"seed\": %llu, "
        "\"split_z\": %.4f, \"split_min\": %llu, \"split_leaf\": %llu, "
        "\"split_growth\": %.4f, \"max_bounces\": %d, \"wall_s\": %.6f, "
        "\"photons_per_sec\": %.1f, \"bounces\": %llu, "
        "\"bounces_per_photon\": %.4f, \"absorbed\": %llu, \"escaped\": %llu, "
        "\"bins\": %llu, \"forest_depth\": %d, \"mean_tally_per_leaf\": %.2f, "
        "\"forest_bytes\": %llu}\n",
        scene.name().c_str(), backend->name().c_str(), accel_kind_name(config.accel),
        static_cast<unsigned long long>(result.counters.emitted), config.workers,
        config.groups, static_cast<unsigned long long>(config.seed), config.policy.z,
        static_cast<unsigned long long>(config.policy.min_count),
        static_cast<unsigned long long>(config.policy.max_leaf_count),
        config.policy.count_growth, config.limits.max_bounces, result.trace.total_time_s,
        result.trace.final_rate(),
        static_cast<unsigned long long>(result.counters.bounces),
        result.counters.bounces_per_photon(),
        static_cast<unsigned long long>(result.counters.absorbed),
        static_cast<unsigned long long>(result.counters.escaped),
        static_cast<unsigned long long>(metrics.leaves), metrics.max_depth,
        metrics.mean_tally_per_leaf,
        static_cast<unsigned long long>(result.forest.memory_bytes()));
    // Unified governance/liveness telemetry, for EVERY backend: the run
    // status, the Progress beacon's tick count, and the blocked-receive
    // clock (serial/shared run no exchange, so wait_s is legitimately 0 —
    // previously the whole line was simply missing for them).
    std::uint64_t retries = 0;
    double wait_s = 0.0;
    for (const RankReport& r : result.ranks) {
      retries += r.deadline_retries;
      wait_s += r.wait_seconds;
    }
    std::printf(
        "{\"status\": \"%s\", \"progress_ticks\": %llu, \"wait_s\": %.6f, "
        "\"deadline_retries\": %llu, \"emitted\": %llu}\n",
        run_status_name(result.status),
        static_cast<unsigned long long>(Progress::instance().total_ticks()), wait_s,
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(result.counters.emitted));
    if (!result.pool.worker_photons.empty()) {
      // Pool scheduler telemetry (shared/hybrid): how the chunk grid landed.
      std::printf(
          "{\"pool_chunk_size\": %llu, \"pool_chunks\": %llu, \"pool_steals\": %llu, "
          "\"pool_workers\": %zu, \"pool_min_photons\": %llu, \"pool_max_photons\": %llu}\n",
          static_cast<unsigned long long>(result.pool.chunk_size),
          static_cast<unsigned long long>(result.pool.chunks),
          static_cast<unsigned long long>(result.pool.steals),
          result.pool.worker_photons.size(),
          static_cast<unsigned long long>(*std::min_element(result.pool.worker_photons.begin(),
                                                            result.pool.worker_photons.end())),
          static_cast<unsigned long long>(*std::max_element(result.pool.worker_photons.begin(),
                                                            result.pool.worker_photons.end())));
    }
    if (result.recovery.legs > 1 || result.recovery.failures > 0) {
      // Elastic-run stats (engine/recovery.hpp): what failed and what the
      // recovery cost.
      std::printf(
          "{\"recovery_legs\": %d, \"recovery_failures\": %d, \"ranks_lost\": %d, "
          "\"final_width\": %d, \"photons_retraced\": %llu, \"lost_s\": %.6f}\n",
          result.recovery.legs, result.recovery.failures, result.recovery.ranks_lost,
          result.recovery.final_width,
          static_cast<unsigned long long>(result.recovery.photons_retraced),
          result.recovery.lost_seconds);
    }
  } else {
    std::printf("backend %s: simulated %llu photons (%.0f/s), %.2f bounces/photon\n",
                backend->name().c_str(),
                static_cast<unsigned long long>(result.counters.emitted),
                result.trace.final_rate(), result.counters.bounces_per_photon());
    std::printf("forest: %llu bins, depth <= %d, %.1f photons/bin, %.1f%% angular splits\n",
                static_cast<unsigned long long>(metrics.leaves), metrics.max_depth,
                metrics.mean_tally_per_leaf, 100.0 * metrics.angular_split_fraction);
    if (result.recovery.failures > 0) {
      std::printf("recovery: %d failure(s), %d rank(s) lost, %llu photons re-traced, "
                  "finished at width %d\n",
                  result.recovery.failures, result.recovery.ranks_lost,
                  static_cast<unsigned long long>(result.recovery.photons_retraced),
                  result.recovery.final_width);
    }
  }

  if (!complete) {
    // Graceful governed stop: the partial result IS the checkpoint. Flush
    // it and exit with the documented resumable code — rerunning the same
    // command with the same --checkpoint continues bitwise.
    if (!save_checkpoint(result, stop_path)) {
      throw CheckpointError("cannot write checkpoint '" + stop_path + "'");
    }
    if (!json_report) {
      std::printf("%s: checkpoint %s (%llu photons done); rerun with "
                  "--checkpoint=%s to continue\n",
                  run_status_name(result.status), stop_path.c_str(),
                  static_cast<unsigned long long>(result.counters.emitted),
                  stop_path.c_str());
    }
    return result.status == RunStatus::kPreempted
               ? engine_error_exit_code(EngineErrorKind::kPreempted)
               : engine_error_exit_code(EngineErrorKind::kResource);
  }

  if (ckpt_path) {
    if (!save_checkpoint(result, *ckpt_path)) {
      throw CheckpointError("cannot write checkpoint '" + *ckpt_path + "'");
    }
    if (!json_report) std::printf("checkpoint: %s\n", ckpt_path->c_str());
  }
  if (!result.forest.save(answer)) {
    std::fprintf(stderr, "error: cannot write answer file '%s'\n", answer.c_str());
    return 1;
  }
  if (!json_report) std::printf("answer file: %s\n", answer.c_str());
  return 0;
}

int cmd_simulate(int argc, char** argv, const std::string& spec, const std::string& answer) {
  bool json_report = false;
  try {
    const Args args(
        argc, argv, 4,
        {"backend", "photons", "seed", "workers", "groups", "batch", "chunk", "accel",
         "split-z", "split-min", "split-leaf", "split-growth", "max-bounces", "checkpoint",
         "resume", "trace", "checkpoint-every", "max-recoveries", "fault-plan", "heartbeat",
         "watchdog", "watchdog-grace", "memory-budget", "report"},
        {"adapt"});
    const std::string* report = args.get("report");
    json_report = report && *report == "json";
    if (report && !json_report) {
      // Validate before the run: a typo'd format must not discard hours of
      // simulation.
      throw ConfigError("unknown report format '" + *report + "' (supported: json)");
    }
    return cmd_simulate_impl(args, spec, answer, json_report);
  } catch (const EngineError& e) {
    return report_engine_error(e, json_report);
  }
}

int cmd_render(int argc, char** argv, const std::string& spec, const std::string& answer,
               const std::string& out) {
  const Args args(argc, argv, 5, {"eye", "look", "fov", "size", "spp", "threads"}, {});
  Scene scene;
  load_any_scene(spec, scene);
  BinForest forest;
  if (!BinForest::load(answer, forest)) {
    std::fprintf(stderr, "error: cannot load answer file '%s'\n", answer.c_str());
    return 1;
  }
  if (forest.patch_count() != scene.patch_count()) {
    std::fprintf(stderr, "error: answer file has %zu patches, scene has %zu\n",
                 forest.patch_count(), scene.patch_count());
    return 1;
  }

  const Aabb b = scene.bounds();
  Vec3 eye = b.center() + Vec3{0, 0, b.extent().z * 0.45};
  Vec3 look = b.center();
  arg_vec3(args, "eye", eye);
  arg_vec3(args, "look", look);
  int width = 320, height = 240;
  if (const std::string* size = args.get("size")) {
    if (std::sscanf(size->c_str(), "%dx%d", &width, &height) != 2 || width < 1 || height < 1) {
      throw ConfigError("--size= needs WxH");
    }
  }

  const Camera camera(eye, look, {0, 1, 0}, args.dbl("fov", 60.0), width, height);
  ViewOptions options;
  options.samples_per_pixel = static_cast<int>(args.u64("spp", 1));
  options.threads = static_cast<int>(args.u64("threads", 1));
  const Image image = render(scene, forest, camera, options);
  if (!image.write_ppm(out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out.c_str());
    return 1;
  }
  std::printf("rendered %dx%d -> %s (mean luminance %.4f)\n", width, height, out.c_str(),
              image.mean_luminance());
  return 0;
}

// ---- Service commands ------------------------------------------------------

int cmd_serve(int argc, char** argv) {
  const Args args(argc, argv, 2,
                  {"socket", "max-active", "memory-budget", "watchdog", "watchdog-grace"}, {});
  const std::string* socket_path = args.get("socket");
  if (!socket_path) throw ConfigError("serve needs --socket=PATH");

  ServiceConfig cfg;
  cfg.max_active = static_cast<int>(args.u64("max-active", 2));
  if (cfg.max_active < 1 || cfg.max_active > 64) {
    throw ConfigError("--max-active= must be in [1, 64]");
  }
  cfg.memory_budget = args.bytes("memory-budget", 0);
  cfg.watchdog_s = args.dbl("watchdog", 0.0);
  cfg.watchdog_grace_s = args.dbl("watchdog-grace", 0.0);

  // The PROCESS preempt flag belongs to the daemon: SIGTERM/SIGINT stop the
  // accept loop, and PhotonService::shutdown() fans the stop out to each
  // job's own RunControl. Jobs never poll the global flag themselves.
  install_preempt_handlers();
  clear_preempt();

  PhotonService service(cfg, [](const std::string& name, AccelKind kind) {
    auto scene = std::make_shared<Scene>();
    load_any_scene(name, *scene);
    if (kind != scene->accel_kind()) {
      scene->set_accel(kind);
      scene->build();
    }
    return std::shared_ptr<const Scene>(std::move(scene));
  });
  std::printf("photon service: listening on %s (max-active %d%s)\n", socket_path->c_str(),
              cfg.max_active, cfg.memory_budget ? ", budgeted" : "");
  std::fflush(stdout);
  return run_daemon(service, *socket_path, [] { return preempt_requested(); }) ? 0 : 1;
}

// Sends one request line and prints the service's JSON reply. Exit 4 (comm)
// when the daemon cannot be reached — same taxonomy as a lost MPI peer.
int service_roundtrip(const std::string& socket_path, const std::string& line,
                      std::string* reply_out = nullptr) {
  ServiceClient client(socket_path);
  std::string reply;
  if (!client.ok() || !client.request(line, reply)) {
    throw CommError(CommErrorKind::kPeerDead, -1, -1, "service: " + client.error());
  }
  std::printf("%s\n", reply.c_str());
  if (reply_out) *reply_out = reply;
  return reply.rfind("{\"error\"", 0) == 0 ? 1 : 0;
}

int cmd_submit(int argc, char** argv) {
  const Args args(argc, argv, 2,
                  {"socket", "scene", "backend", "photons", "seed", "workers", "groups", "batch",
                   "chunk", "accel", "checkpoint", "trace"},
                  {"wait"});
  const std::string* socket_path = args.get("socket");
  if (!socket_path) throw ConfigError("submit needs --socket=PATH");
  if (!args.get("scene")) throw ConfigError("submit needs --scene=NAME");

  std::string line = "submit";
  for (const char* key : {"scene", "backend", "photons", "seed", "workers", "groups", "batch",
                          "chunk", "accel", "checkpoint", "trace"}) {
    if (const std::string* v = args.get(key)) line += std::string(" ") + key + "=" + *v;
  }

  std::string reply;
  const int rc = service_roundtrip(*socket_path, line, &reply);
  if (rc != 0 || !args.flag("wait")) return rc;

  unsigned long long id = 0;
  if (std::sscanf(reply.c_str(), "{\"job\": %llu", &id) != 1) {
    throw CommError(CommErrorKind::kPeerDead, -1, -1, "service: malformed submit reply: " + reply);
  }
  return service_roundtrip(*socket_path, "wait job=" + std::to_string(id));
}

int cmd_status(int argc, char** argv) {
  const Args args(argc, argv, 2, {"socket", "job"}, {});
  const std::string* socket_path = args.get("socket");
  if (!socket_path) throw ConfigError("status needs --socket=PATH");
  std::string line = "status";
  if (const std::string* job = args.get("job")) line += " job=" + *job;
  return service_roundtrip(*socket_path, line);
}

int cmd_cancel(int argc, char** argv) {
  const Args args(argc, argv, 2, {"socket", "job"}, {});
  const std::string* socket_path = args.get("socket");
  if (!socket_path) throw ConfigError("cancel needs --socket=PATH");
  const std::string* job = args.get("job");
  if (!job) throw ConfigError("cancel needs --job=N");
  return service_roundtrip(*socket_path, "cancel job=" + *job);
}

int usage() {
  std::fprintf(stderr,
               "usage: photon_cli scenes\n"
               "       photon_cli backends\n"
               "       photon_cli info <scene>\n"
               "       photon_cli simulate <scene> <answer> [--backend=NAME] [--photons=N]\n"
               "                  [--seed=N] [--workers=N] [--groups=N] [--batch=N]\n"
               "                  [--chunk=N] [--adapt] [--accel=octree|bvh|grid]\n"
               "                  [--split-z=S] [--split-min=N] [--split-leaf=N]\n"
               "                  [--split-growth=G] [--max-bounces=N]\n"
               "                  [--checkpoint=FILE] [--resume=FILE] [--trace=FILE]\n"
               "                  [--checkpoint-every=N] [--max-recoveries=N]\n"
               "                  [--fault-plan=SPEC] [--heartbeat=SECONDS]\n"
               "                  [--watchdog=SECONDS] [--watchdog-grace=SECONDS]\n"
               "                  [--memory-budget=BYTES[k|m|g]]\n"
               "                  [--report=json]\n"
               "       photon_cli render <scene> <answer> <out.ppm> [--eye=x,y,z]\n"
               "                  [--look=x,y,z] [--fov=deg] [--size=WxH] [--spp=N]"
               " [--threads=N]\n"
               "       photon_cli serve --socket=PATH [--max-active=N]\n"
               "                  [--memory-budget=BYTES[k|m|g]] [--watchdog=SECONDS]\n"
               "                  [--watchdog-grace=SECONDS]\n"
               "       photon_cli submit --socket=PATH --scene=NAME [--backend=NAME]\n"
               "                  [--photons=N] [--seed=N] [--workers=N] [--groups=N]\n"
               "                  [--batch=N] [--chunk=N] [--accel=octree|bvh|grid]\n"
               "                  [--checkpoint=FILE] [--trace=FILE] [--wait]\n"
               "       photon_cli status --socket=PATH [--job=N]\n"
               "       photon_cli cancel --socket=PATH --job=N\n"
               "exit codes: 0 ok, 1 i/o, 2 usage, 3 checkpoint, 4 comm, 5 preempted,\n"
               "            6 wedged, 7 config, 8 scene, 9 resource\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "scenes") return cmd_scenes();
    if (cmd == "backends") return cmd_backends();
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "simulate" && argc >= 4) return cmd_simulate(argc, argv, argv[2], argv[3]);
    if (cmd == "render" && argc >= 5) return cmd_render(argc, argv, argv[2], argv[3], argv[4]);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "submit") return cmd_submit(argc, argv);
    if (cmd == "status") return cmd_status(argc, argv);
    if (cmd == "cancel") return cmd_cancel(argc, argv);
  } catch (const EngineError& e) {
    // Commands that manage their own reporting (simulate) catch first; this
    // is the fallback for the rest — same stderr format, same exit table.
    return report_engine_error(e, false);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
