// photon_cli — command-line front end for the library.
//
//   photon_cli scenes
//       List the built-in scenes.
//   photon_cli backends
//       List the registered simulation backends.
//   photon_cli info <scene>
//       Print geometry/material/luminaire statistics.
//   photon_cli simulate <scene> <answer-file> [--backend=NAME] [--photons=N]
//                        [--seed=N] [--workers=N] [--groups=N] [--batch=N]
//                        [--chunk=N] [--adapt] [--accel=octree|bvh|grid]
//                        [--split-z=S] [--split-min=N]
//                        [--split-leaf=N] [--split-growth=G] [--max-bounces=N]
//                        [--checkpoint=FILE] [--resume=FILE] [--trace=FILE]
//                        [--checkpoint-every=N] [--max-recoveries=N]
//                        [--fault-plan=SPEC] [--heartbeat=SECONDS]
//                        [--report=json]
//       Run the simulation on the selected backend (serial | shared |
//       dist-particle | dist-spatial | hybrid) and write the answer file,
//       optionally checkpointing so long runs can continue later. The hybrid
//       backend runs --groups message-passing groups of --workers threads
//       each. The --split-* flags set the adaptive-histogram SplitPolicy
//       (significance threshold in sigma, minimum count before testing,
//       count-driven leaf threshold and its per-depth growth); --max-bounces
//       guards pathological mirror corridors. --trace streams the per-batch
//       speed trace to a JSONL file instead of holding it in memory (long
//       runs). --report=json replaces the human-readable summary with one
//       machine-readable JSON object on stdout (the bench harness consumes
//       it).
//
//       Fault tolerance (engine/recovery.hpp, mp/fault.hpp):
//       --checkpoint-every=N cuts the run into legs of N photons held as
//       in-memory checkpoints; when a rank dies mid-leg the run rewinds to
//       the last leg and re-shards the dead rank's work across the survivors
//       (up to --max-recoveries times, default 8). --heartbeat=SECONDS arms
//       the failure detector: every blocking receive and barrier gets that
//       deadline, and a rank whose per-batch liveness counter stops
//       advancing is declared dead instead of hanging the run.
//       --fault-plan=SPEC injects scripted faults for testing, e.g.
//       "kill:rank=1,batch=2,point=mid" or "drop:src=0,dst=1,nth=3" or
//       "delay:src=0,dst=1,ms=50" (';'-separated, each entry fires once).
//   photon_cli render <scene> <answer-file> <out.ppm>
//                        [--eye=x,y,z] [--look=x,y,z] [--fov=deg]
//                        [--size=WxH] [--spp=N] [--threads=N]
//       Render a viewpoint from an existing answer file (no re-simulation).
//
// <scene> is a built-in name (cornell | harpsichord | lab) or a path to a
// photon-scene text file.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/backend.hpp"
#include "engine/recovery.hpp"
#include "geom/scene_io.hpp"
#include "geom/scenes.hpp"
#include "hist/metrics.hpp"
#include "sim/checkpoint.hpp"
#include "view/viewer.hpp"

namespace {

using namespace photon;

const char* find_arg(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

std::uint64_t arg_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

double arg_double(int argc, char** argv, const char* name, double fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::strtod(v, nullptr) : fallback;
}

bool arg_vec3(int argc, char** argv, const char* name, Vec3& out) {
  const char* v = find_arg(argc, argv, name);
  if (!v) return false;
  return std::sscanf(v, "%lf,%lf,%lf", &out.x, &out.y, &out.z) == 3;
}

bool load_any_scene(const std::string& spec, Scene& scene) {
  if (spec == "cornell" || spec == "harpsichord" || spec == "lab") {
    scene = scenes::by_name(spec);
    return true;
  }
  if (!load_scene(spec, scene)) {
    std::fprintf(stderr, "error: cannot load scene '%s'\n", spec.c_str());
    return false;
  }
  scene.build();
  return true;
}

int cmd_scenes() {
  std::printf("built-in scenes:\n");
  std::printf("  cornell      Cornell Box with a floating two-sided mirror (~30 polygons)\n");
  std::printf("  harpsichord  Harpsichord Practice Room, sun+sky skylights (~100 polygons)\n");
  std::printf("  lab          Computer Laboratory, 100 workstations (~2000 polygons)\n");
  return 0;
}

int cmd_info(const std::string& spec) {
  Scene scene;
  if (!load_any_scene(spec, scene)) return 1;
  std::printf("scene: %s\n", scene.name().c_str());
  std::printf("  defining polygons : %zu\n", scene.patch_count());
  std::printf("  materials         : %zu\n", scene.materials().size());
  std::printf("  luminaires        : %zu\n", scene.luminaires().size());
  const Rgb power = scene.total_power();
  std::printf("  total power (RGB) : %.2f %.2f %.2f\n", power.r, power.g, power.b);
  const Aabb b = scene.bounds();
  std::printf("  bounds            : (%.2f %.2f %.2f) .. (%.2f %.2f %.2f)\n", b.lo.x, b.lo.y,
              b.lo.z, b.hi.x, b.hi.y, b.hi.z);
  std::printf("  accel (%s)    : %zu nodes (depth %d)\n",
              accel_kind_name(scene.accel_kind()), scene.accel().node_count(),
              scene.accel().depth());
  return 0;
}

int cmd_backends() {
  std::printf("registered backends:\n");
  for (const std::string& name : backend_names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int cmd_simulate(int argc, char** argv, const std::string& spec, const std::string& answer) {
  Scene scene;
  if (!load_any_scene(spec, scene)) return 1;

  const char* backend_name = find_arg(argc, argv, "backend");
  const std::unique_ptr<Backend> backend = make_backend(backend_name ? backend_name : "serial");
  if (!backend) {
    std::fprintf(stderr, "error: unknown backend '%s' (see `photon_cli backends`)\n",
                 backend_name);
    return 1;
  }

  AccelKind accel = AccelKind::kOctree;
  if (const char* accel_name = find_arg(argc, argv, "accel")) {
    if (!accel_kind_from_string(accel_name, accel)) {
      std::fprintf(stderr, "error: unknown accel '%s' (supported: octree | bvh | grid)\n",
                   accel_name);
      return 1;
    }
  }
  if (accel != scene.accel_kind()) {
    // load_any_scene built the default octree; swap and rebuild. Every
    // structure answers bitwise-identical queries, so results do not change.
    scene.set_accel(accel);
    scene.build();
  }

  const char* report = find_arg(argc, argv, "report");
  const bool json_report = report && std::strcmp(report, "json") == 0;
  if (report && !json_report) {
    // Validate before the run: a typo'd format must not discard hours of
    // simulation.
    std::fprintf(stderr, "error: unknown report format '%s' (supported: json)\n", report);
    return 1;
  }

  RunConfig config;
  config.accel = accel;
  config.photons = arg_u64(argc, argv, "photons", 500000);
  config.seed = arg_u64(argc, argv, "seed", config.seed);
  // Validate before the int narrowing: a 2^32+1 request must error, not
  // silently wrap to 1 worker.
  const std::uint64_t workers_arg = arg_u64(argc, argv, "workers", 2);
  const std::uint64_t groups_arg = arg_u64(argc, argv, "groups", 2);
  if (workers_arg < 1 || workers_arg > 4096 || groups_arg < 1 || groups_arg > 4096) {
    std::fprintf(stderr, "error: --workers and --groups must be in [1, 4096]\n");
    return 1;
  }
  config.workers = static_cast<int>(workers_arg);
  config.groups = static_cast<int>(groups_arg);
  config.batch = arg_u64(argc, argv, "batch", config.batch);
  config.chunk = arg_u64(argc, argv, "chunk", config.chunk);
  if (const char* trace = find_arg(argc, argv, "trace")) config.trace_path = trace;
  config.policy.z = arg_double(argc, argv, "split-z", config.policy.z);
  config.policy.min_count = arg_u64(argc, argv, "split-min", config.policy.min_count);
  config.policy.max_leaf_count = arg_u64(argc, argv, "split-leaf", config.policy.max_leaf_count);
  config.policy.count_growth =
      arg_double(argc, argv, "split-growth", config.policy.count_growth);
  config.limits.max_bounces =
      static_cast<int>(arg_u64(argc, argv, "max-bounces",
                               static_cast<std::uint64_t>(config.limits.max_bounces)));
  if (config.policy.z <= 0.0 || config.policy.min_count < 1 ||
      config.policy.max_leaf_count < 1 || config.policy.count_growth < 1.0 ||
      config.limits.max_bounces < 1) {
    std::fprintf(stderr,
                 "error: --split-z must be > 0, --split-min/--split-leaf/--max-bounces >= 1, "
                 "--split-growth >= 1\n");
    return 1;
  }
  // The parallel RNG scheme assigns each photon a disjoint 4096-element block
  // (par/spatial's photon_stream, and every resume skip); at a handful of
  // draws per bounce, paths beyond ~512 bounces could bleed into the next
  // photon's block and silently correlate streams.
  if (config.limits.max_bounces > 512) {
    std::fprintf(stderr,
                 "error: --max-bounces must be <= 512 (per-photon RNG blocks are 4096 draws)\n");
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adapt") == 0) config.adapt_batch = true;
  }

  // Fault-tolerance knobs: all runs route through run_elastic, which is a
  // plain backend->run() when none of these are set.
  config.checkpoint_photons = arg_u64(argc, argv, "checkpoint-every", 0);
  config.max_recoveries = static_cast<int>(
      arg_u64(argc, argv, "max-recoveries",
              static_cast<std::uint64_t>(config.max_recoveries)));
  if (const char* hb = find_arg(argc, argv, "heartbeat")) {
    config.comm.deadline_s = std::strtod(hb, nullptr);
    config.comm.heartbeats = true;
    if (config.comm.deadline_s <= 0.0) {
      std::fprintf(stderr, "error: --heartbeat must be a positive deadline in seconds\n");
      return 1;
    }
  }
  if (const char* spec = find_arg(argc, argv, "fault-plan")) {
    auto plan = std::make_shared<FaultPlan>();
    std::string error;
    if (!parse_fault_plan(spec, *plan, error)) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n", error.c_str());
      return 1;
    }
    config.fault_plan = std::move(plan);
  }

  RunResult resume;
  const RunResult* resume_ptr = nullptr;
  if (const char* path = find_arg(argc, argv, "resume")) {
    if (!backend->supports_resume()) {
      std::fprintf(stderr, "error: backend '%s' does not support --resume\n",
                   backend->name().c_str());
      return 1;
    }
    const CheckpointStatus status = load_checkpoint_status(path, resume);
    if (status != CheckpointStatus::kOk) {
      // Say exactly which check failed: a refused multi-hour resume must be
      // diagnosable from stderr alone. Exit 3 distinguishes "checkpoint
      // rejected" from generic usage errors.
      std::fprintf(stderr, "error: cannot load checkpoint '%s': %s\n", path,
                   checkpoint_status_name(status));
      return 3;
    }
    resume_ptr = &resume;
    if (!json_report) {
      std::printf("resuming from %s (%llu photons so far)\n", path,
                  static_cast<unsigned long long>(resume.counters.emitted));
    }
  }

  RunResult result;
  try {
    result = run_elastic(*backend, scene, config, resume_ptr);
  } catch (const WorldFailure& failure) {
    std::fprintf(stderr, "error: run failed beyond recovery: %s\n", failure.what());
    return 4;
  }
  const ForestMetrics metrics = compute_metrics(result.forest);

  if (json_report) {
    std::printf(
        "{\"scene\": \"%s\", \"backend\": \"%s\", \"accel\": \"%s\", \"photons\": %llu, "
        "\"workers\": %d, \"groups\": %d, \"seed\": %llu, "
        "\"split_z\": %.4f, \"split_min\": %llu, \"split_leaf\": %llu, "
        "\"split_growth\": %.4f, \"max_bounces\": %d, \"wall_s\": %.6f, "
        "\"photons_per_sec\": %.1f, \"bounces\": %llu, "
        "\"bounces_per_photon\": %.4f, \"absorbed\": %llu, \"escaped\": %llu, "
        "\"bins\": %llu, \"forest_depth\": %d, \"mean_tally_per_leaf\": %.2f, "
        "\"forest_bytes\": %llu}\n",
        scene.name().c_str(), backend->name().c_str(), accel_kind_name(config.accel),
        static_cast<unsigned long long>(result.counters.emitted), config.workers,
        config.groups, static_cast<unsigned long long>(config.seed), config.policy.z,
        static_cast<unsigned long long>(config.policy.min_count),
        static_cast<unsigned long long>(config.policy.max_leaf_count),
        config.policy.count_growth, config.limits.max_bounces, result.trace.total_time_s,
        result.trace.final_rate(),
        static_cast<unsigned long long>(result.counters.bounces),
        result.counters.bounces_per_photon(),
        static_cast<unsigned long long>(result.counters.absorbed),
        static_cast<unsigned long long>(result.counters.escaped),
        static_cast<unsigned long long>(metrics.leaves), metrics.max_depth,
        metrics.mean_tally_per_leaf,
        static_cast<unsigned long long>(result.forest.memory_bytes()));
    if (!result.pool.worker_photons.empty()) {
      // Pool scheduler telemetry (shared/hybrid): how the chunk grid landed.
      std::printf(
          "{\"pool_chunk_size\": %llu, \"pool_chunks\": %llu, \"pool_steals\": %llu, "
          "\"pool_workers\": %zu, \"pool_min_photons\": %llu, \"pool_max_photons\": %llu}\n",
          static_cast<unsigned long long>(result.pool.chunk_size),
          static_cast<unsigned long long>(result.pool.chunks),
          static_cast<unsigned long long>(result.pool.steals),
          result.pool.worker_photons.size(),
          static_cast<unsigned long long>(*std::min_element(result.pool.worker_photons.begin(),
                                                            result.pool.worker_photons.end())),
          static_cast<unsigned long long>(*std::max_element(result.pool.worker_photons.begin(),
                                                            result.pool.worker_photons.end())));
    }
    if (result.recovery.legs > 1 || result.recovery.failures > 0) {
      // Elastic-run stats (engine/recovery.hpp): what failed and what the
      // recovery cost.
      std::printf(
          "{\"recovery_legs\": %d, \"recovery_failures\": %d, \"ranks_lost\": %d, "
          "\"final_width\": %d, \"photons_retraced\": %llu, \"lost_s\": %.6f, "
          "\"deadline_retries\": %llu}\n",
          result.recovery.legs, result.recovery.failures, result.recovery.ranks_lost,
          result.recovery.final_width,
          static_cast<unsigned long long>(result.recovery.photons_retraced),
          result.recovery.lost_seconds,
          static_cast<unsigned long long>([&] {
            std::uint64_t retries = 0;
            for (const RankReport& r : result.ranks) retries += r.deadline_retries;
            return retries;
          }()));
    }
  } else {
    std::printf("backend %s: simulated %llu photons (%.0f/s), %.2f bounces/photon\n",
                backend->name().c_str(),
                static_cast<unsigned long long>(result.counters.emitted),
                result.trace.final_rate(), result.counters.bounces_per_photon());
    std::printf("forest: %llu bins, depth <= %d, %.1f photons/bin, %.1f%% angular splits\n",
                static_cast<unsigned long long>(metrics.leaves), metrics.max_depth,
                metrics.mean_tally_per_leaf, 100.0 * metrics.angular_split_fraction);
    if (result.recovery.failures > 0) {
      std::printf("recovery: %d failure(s), %d rank(s) lost, %llu photons re-traced, "
                  "finished at width %d\n",
                  result.recovery.failures, result.recovery.ranks_lost,
                  static_cast<unsigned long long>(result.recovery.photons_retraced),
                  result.recovery.final_width);
    }
  }

  if (const char* path = find_arg(argc, argv, "checkpoint")) {
    if (!save_checkpoint(result, path)) {
      std::fprintf(stderr, "error: cannot write checkpoint '%s'\n", path);
      return 1;
    }
    if (!json_report) std::printf("checkpoint: %s\n", path);
  }
  if (!result.forest.save(answer)) {
    std::fprintf(stderr, "error: cannot write answer file '%s'\n", answer.c_str());
    return 1;
  }
  if (!json_report) std::printf("answer file: %s\n", answer.c_str());
  return 0;
}

int cmd_render(int argc, char** argv, const std::string& spec, const std::string& answer,
               const std::string& out) {
  Scene scene;
  if (!load_any_scene(spec, scene)) return 1;
  BinForest forest;
  if (!BinForest::load(answer, forest)) {
    std::fprintf(stderr, "error: cannot load answer file '%s'\n", answer.c_str());
    return 1;
  }
  if (forest.patch_count() != scene.patch_count()) {
    std::fprintf(stderr, "error: answer file has %zu patches, scene has %zu\n",
                 forest.patch_count(), scene.patch_count());
    return 1;
  }

  const Aabb b = scene.bounds();
  Vec3 eye = b.center() + Vec3{0, 0, b.extent().z * 0.45};
  Vec3 look = b.center();
  arg_vec3(argc, argv, "eye", eye);
  arg_vec3(argc, argv, "look", look);
  int width = 320, height = 240;
  if (const char* size = find_arg(argc, argv, "size")) {
    std::sscanf(size, "%dx%d", &width, &height);
  }

  const Camera camera(eye, look, {0, 1, 0}, arg_double(argc, argv, "fov", 60.0), width, height);
  ViewOptions options;
  options.samples_per_pixel = static_cast<int>(arg_u64(argc, argv, "spp", 1));
  options.threads = static_cast<int>(arg_u64(argc, argv, "threads", 1));
  const Image image = render(scene, forest, camera, options);
  if (!image.write_ppm(out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out.c_str());
    return 1;
  }
  std::printf("rendered %dx%d -> %s (mean luminance %.4f)\n", width, height, out.c_str(),
              image.mean_luminance());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: photon_cli scenes\n"
               "       photon_cli backends\n"
               "       photon_cli info <scene>\n"
               "       photon_cli simulate <scene> <answer> [--backend=NAME] [--photons=N]\n"
               "                  [--seed=N] [--workers=N] [--groups=N] [--batch=N]\n"
               "                  [--chunk=N] [--adapt] [--accel=octree|bvh|grid]\n"
               "                  [--split-z=S] [--split-min=N] [--split-leaf=N]\n"
               "                  [--split-growth=G] [--max-bounces=N]\n"
               "                  [--checkpoint=FILE] [--resume=FILE] [--trace=FILE]\n"
               "                  [--checkpoint-every=N] [--max-recoveries=N]\n"
               "                  [--fault-plan=SPEC] [--heartbeat=SECONDS]\n"
               "                  [--report=json]\n"
               "       photon_cli render <scene> <answer> <out.ppm> [--eye=x,y,z]\n"
               "                  [--look=x,y,z] [--fov=deg] [--size=WxH] [--spp=N]"
               " [--threads=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "scenes") return cmd_scenes();
  if (cmd == "backends") return cmd_backends();
  if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
  if (cmd == "simulate" && argc >= 4) return cmd_simulate(argc, argv, argv[2], argv[3]);
  if (cmd == "render" && argc >= 5) return cmd_render(argc, argv, argv[2], argv[3], argv[4]);
  return usage();
}
