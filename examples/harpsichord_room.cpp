// The Harpsichord Practice Room (Fig 4.7): collimated quarter-degree sunlight
// through skylights plus diffuse sky light, a mirrored music shelf, and the
// paper's signature lighting effect — shadows that sharpen as the occluder
// approaches the receiver (the harpsichord's shadow is crisp, the skylight
// frames' outline is soft).
//
// Usage: harpsichord_room [photons]     (default 400000)
#include <cstdio>
#include <cstdlib>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

int main(int argc, char** argv) {
  using namespace photon;

  const std::uint64_t photons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;
  const Scene scene = scenes::harpsichord_room();
  std::printf("scene: %zu defining polygons, %zu luminaires (8 collimated sun tiles)\n",
              scene.patch_count(), scene.luminaires().size());

  RunConfig config;
  config.photons = photons;
  config.policy.max_leaf_count = 128;
  config.policy.count_growth = 1.25;
  const RunResult result = run_serial(scene, config);
  std::printf("simulated %llu photons (%.0f/s), %.2f bounces/photon, %.2f MB forest\n",
              static_cast<unsigned long long>(result.trace.total_photons),
              result.trace.final_rate(), result.counters.bounces_per_photon(),
              result.forest.memory_bytes() / 1048576.0);

  const Camera main_view({7.2, 2.2, 0.8}, {3.5, 0.9, 4.0}, {0, 1, 0}, 62.0, 360, 270);
  render(scene, result.forest, main_view).write_ppm("harpsichord_room.ppm");
  std::printf("rendered: harpsichord_room.ppm\n");

  const Camera shelf_view({2.6, 1.6, 1.8}, {0.1, 1.6, 1.8}, {0, 1, 0}, 50.0, 320, 240);
  render(scene, result.forest, shelf_view).write_ppm("harpsichord_shelf.ppm");
  std::printf("rendered: harpsichord_shelf.ppm (mirrored music shelf)\n");

  // Quantify the shadow effect the paper describes: the second skylight sits
  // directly above the harpsichord, so its footprint on the floor is split
  // into the instrument's crisp shadow and thin sunlit slivers beside it.
  std::uint64_t shadow_tally = 0, lit_tally = 0;
  double shadow_area = 0.0, lit_area = 0.0;
  // Floor tiles are patches 5..13 (after the 5 shell walls); integrate their
  // leaf densities over two world regions inside the skylight footprint
  // (x 4.6..5.8, z 3.5..4.7): under the body (z 3.75..4.35) vs the sliver
  // past the body's far edge (z 4.45..4.65).
  for (int patch = 5; patch <= 13; ++patch) {
    const Patch& p = scene.patch(patch);
    const BinTree& tree = result.forest.tree(patch, true);
    for (std::size_t i = 0; i < tree.node_count(); ++i) {
      const BinNode& n = tree.node(static_cast<int>(i));
      if (!n.is_leaf()) continue;
      const Vec3 center = p.point_at((n.region.lo[0] + n.region.hi[0]) / 2.0,
                                     (n.region.lo[1] + n.region.hi[1]) / 2.0);
      if (center.x < 4.7 || center.x > 5.7) continue;
      const double cell = n.region.extent(0) * n.region.extent(1) * p.area();
      if (center.z > 3.8 && center.z < 4.3) {
        shadow_tally += n.total_tally();
        shadow_area += cell;
      } else if (center.z > 4.45 && center.z < 4.65) {
        lit_tally += n.total_tally();
        lit_area += cell;
      }
    }
  }
  if (shadow_area > 0.0 && lit_area > 0.0) {
    const double dark = static_cast<double>(shadow_tally) / shadow_area;
    const double lit = static_cast<double>(lit_tally) / lit_area;
    std::printf("floor photon density under the skylight: %.0f in the harpsichord's shadow vs"
                " %.0f in the sun sliver (%.1fx)\n", dark, lit, dark > 0 ? lit / dark : 0.0);
    std::printf("the crisp dark region under the body is the paper's near-occluder shadow\n");
  }
  return 0;
}
