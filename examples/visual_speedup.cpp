// Fig 5.16: "Visual Speedup" — the same two-minute budget on 1, 2, 4 and 8
// processors simulates proportionally more photons, and the renders visibly
// improve (mirror, shadows under the harpsichord and skylights).
//
// This host has a single core, so the four photon budgets come from the
// Power Onyx machine model's 2-minute rates (see DESIGN.md, substitutions);
// each budget is then simulated for real and rendered. Pass a scale factor
// to shrink budgets for a quick look.
//
// Usage: visual_speedup [scale]     (default 0.25: a "30-second" Onyx run)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "geom/scenes.hpp"
#include "perf/model.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

int main(int argc, char** argv) {
  using namespace photon;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const Scene scene = scenes::harpsichord_room();
  const WorkloadProfile profile = profile_scene(scene, 8000, 1);
  const Platform onyx = Platform::power_onyx();

  std::printf("Fig 5.16 — fixed 2-minute budget, %g scale\n", scale);
  for (const int P : {1, 2, 4, 8}) {
    const auto trace = model_shared(profile, onyx, P, 120.0);
    const std::uint64_t budget =
        static_cast<std::uint64_t>(static_cast<double>(trace.back().photons) * scale);

    RunConfig config;
    config.photons = std::max<std::uint64_t>(budget, 1000);
    config.policy.max_leaf_count = 128;
    config.policy.count_growth = 1.25;
    const RunResult result = run_serial(scene, config);

    char name[64];
    std::snprintf(name, sizeof(name), "visual_speedup_p%d.ppm", P);
    const Camera camera({7.2, 2.2, 0.8}, {3.5, 0.9, 4.0}, {0, 1, 0}, 62.0, 320, 240);
    const Image image = render(scene, result.forest, camera);
    image.write_ppm(name);

    std::printf("  P=%d: %10llu photons -> %s  (%llu bins, mean luminance %.4f)\n", P,
                static_cast<unsigned long long>(config.photons), name,
                static_cast<unsigned long long>(result.forest.total_leaves()),
                image.mean_luminance());
  }
  std::printf("compare the four images: noise and shadow detail improve with P.\n");
  return 0;
}
