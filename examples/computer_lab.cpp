// The Computer Laboratory (Fig 5.1) simulated with the *distributed-memory*
// algorithm of Fig 5.3 on MiniMPI ranks: replicated geometry, partitioned bin
// forest, Best-Fit load balancing, batched all-to-all photon exchange — then
// rendered from the gathered answer on rank 0.
//
// Usage: computer_lab [photons] [ranks]     (default 200000 photons, 4 ranks)
#include <cstdio>
#include <cstdlib>

#include "geom/scenes.hpp"
#include "par/dist.hpp"
#include "view/viewer.hpp"

int main(int argc, char** argv) {
  using namespace photon;

  const std::uint64_t photons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  const Scene scene = scenes::computer_lab();
  std::printf("scene: %zu defining polygons, %zu ceiling panels; %d MiniMPI ranks\n",
              scene.patch_count(), scene.luminaires().size(), ranks);

  RunConfig config;
  config.photons = photons;
  config.adapt_batch = true;
  config.workers = ranks;
  const RunResult result = run_distributed(scene, config);

  std::printf("\nper-rank report (Fig 5.3 algorithm):\n");
  std::printf("%5s %10s %12s %12s %10s\n", "rank", "traced", "tallied", "sent bytes", "batches");
  for (int r = 0; r < ranks; ++r) {
    const RankReport& rep = result.ranks[static_cast<std::size_t>(r)];
    std::printf("%5d %10llu %12llu %12llu %10zu\n", r,
                static_cast<unsigned long long>(rep.traced),
                static_cast<unsigned long long>(rep.processed),
                static_cast<unsigned long long>(rep.sent_bytes), rep.batch_sizes.size());
  }
  std::printf("load balance (probe-based Best-Fit): imbalance %.3f\n", imbalance(result.balance));
  if (!result.ranks[0].batch_sizes.empty()) {
    std::printf("batch sizes: ");
    for (std::size_t i = 0; i < std::min<std::size_t>(result.ranks[0].batch_sizes.size(), 10); ++i) {
      std::printf("%llu ", static_cast<unsigned long long>(result.ranks[0].batch_sizes[i]));
    }
    std::printf("...\n");
  }

  const Camera camera({12.0, 2.4, 1.2}, {11.0, 0.9, 9.0}, {0, 1, 0}, 65.0, 360, 270);
  const Image image = render(scene, result.forest, camera);
  image.write_ppm("computer_lab.ppm");
  std::printf("rendered from the gathered forest: computer_lab.ppm\n");
  return 0;
}
