// The photon service (src/service/): resident scenes shared across jobs,
// concurrent governed runs multiplexed onto the worker pool, per-job
// cancellation, admission against a service-wide memory budget, the line
// protocol, and the AF_UNIX daemon round-trip. The determinism acceptance —
// four concurrent jobs bitwise-equal to solo runs — lives here. CI runs this
// file under the `service` ctest label, including the TSan job.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef PHOTON_CLI_PATH
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/error.hpp"
#include "engine/governor.hpp"
#include "engine/recovery.hpp"
#include "geom/scenes.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "sim/checkpoint.hpp"

namespace photon {
namespace {

// A loader over the built-ins that the residency test can count through
// PhotonService::scene_loads(). Unknown names throw, failing the job.
SceneLoader test_loader() {
  return [](const std::string& name, AccelKind kind) -> std::shared_ptr<const Scene> {
    auto scene = std::make_shared<Scene>();
    if (name == "cornell") {
      *scene = scenes::cornell_box();
    } else if (name == "lab") {
      *scene = scenes::computer_lab();
    } else {
      throw SceneError("cannot load scene '" + name + "'");
    }
    if (kind != scene->accel_kind()) {
      scene->set_accel(kind);
      scene->build();
    }
    return scene;
  };
}

JobSpec small_job(const std::string& backend, std::uint64_t photons, std::uint64_t seed = 1) {
  JobSpec spec;
  spec.scene = "cornell";
  spec.backend = backend;
  spec.config.photons = photons;
  spec.config.seed = seed;
  spec.config.batch = 400;
  spec.config.adapt_batch = false;
  spec.config.workers = 2;
  spec.config.groups = 2;
  return spec;
}

// Long enough that a cancel lands mid-run on any machine (the CLI governance
// tests use the same scale for their SIGTERM window).
JobSpec long_job(std::uint64_t seed = 7) {
  JobSpec spec = small_job("serial", 4000000, seed);
  spec.config.batch = 50000;
  return spec;
}

void wait_until_running(PhotonService& service, std::uint64_t id) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(30)) {
    const JobState state = service.status(id).state;
    if (state == JobState::kRunning || job_state_terminal(state)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---- States and names ------------------------------------------------------

TEST(ServiceStates, NamesAndTerminality) {
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(job_state_name(JobState::kDone), "done");
  EXPECT_STREQ(job_state_name(JobState::kPreempted), "preempted");
  EXPECT_STREQ(job_state_name(JobState::kOverBudget), "over-budget");
  EXPECT_STREQ(job_state_name(JobState::kCancelled), "cancelled");
  EXPECT_STREQ(job_state_name(JobState::kRefused), "refused");
  EXPECT_STREQ(job_state_name(JobState::kFailed), "failed");
  EXPECT_FALSE(job_state_terminal(JobState::kQueued));
  EXPECT_FALSE(job_state_terminal(JobState::kRunning));
  EXPECT_TRUE(job_state_terminal(JobState::kDone));
  EXPECT_TRUE(job_state_terminal(JobState::kCancelled));
  EXPECT_TRUE(job_state_terminal(JobState::kRefused));
}

// ---- Resident scenes -------------------------------------------------------

TEST(Service, SceneIsLoadedOnceAndSharedAcrossJobs) {
  PhotonService service(ServiceConfig{}, test_loader());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(service.submit(small_job(i % 2 ? "shared" : "serial", 2000, i + 1)));
  }
  for (const std::uint64_t id : ids) {
    const JobInfo info = service.wait(id);
    EXPECT_EQ(info.state, JobState::kDone) << "job " << id << ": " << info.error;
    EXPECT_EQ(info.emitted, 2000u);
    EXPECT_GT(info.progress_ticks, 0u);
  }
  // Six jobs, one (scene, accel) key -> exactly one load.
  EXPECT_EQ(service.scene_loads(), 1u);
}

TEST(Service, DistinctAccelKindsAreDistinctResidents) {
  PhotonService service(ServiceConfig{}, test_loader());
  JobSpec octree = small_job("serial", 1000);
  JobSpec bvh = small_job("serial", 1000);
  bvh.config.accel = AccelKind::kBvh;
  service.wait(service.submit(octree));
  service.wait(service.submit(bvh));
  service.wait(service.submit(octree));  // cache hit
  EXPECT_EQ(service.scene_loads(), 2u);
}

// ---- The determinism acceptance: concurrent jobs == solo runs --------------

TEST(Service, FourConcurrentJobsAreBitwiseEqualToSoloRuns) {
  // Four jobs with distinct seeds and mixed backends run CONCURRENTLY
  // (max_active=4) on one resident scene; each result, saved through the
  // job's atomic checkpoint, must equal the same config run solo — forest,
  // counters, and RNG state bit for bit. Scheduling may interleave their
  // windows arbitrarily; the record order inside each job must not notice.
  const std::string dir = ::testing::TempDir();
  const std::vector<std::string> backends = {"serial", "shared", "serial", "shared"};

  ServiceConfig cfg;
  cfg.max_active = 4;
  PhotonService service(cfg, test_loader());
  std::vector<std::uint64_t> ids;
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec = small_job(backends[static_cast<std::size_t>(i)], 20000, 100 + i);
    spec.checkpoint_path = dir + "/svc_job_" + std::to_string(i) + ".ck";
    std::remove(spec.checkpoint_path.c_str());
    paths.push_back(spec.checkpoint_path);
    ids.push_back(service.submit(spec));
  }
  for (const std::uint64_t id : ids) {
    const JobInfo info = service.wait(id);
    ASSERT_EQ(info.state, JobState::kDone) << "job " << id << ": " << info.error;
  }

  const Scene scene = scenes::cornell_box();
  for (int i = 0; i < 4; ++i) {
    const JobSpec spec = small_job(backends[static_cast<std::size_t>(i)], 20000, 100 + i);
    const auto backend = make_backend(spec.backend);
    const RunResult solo = backend->run(scene, spec.config, nullptr);

    RunResult from_service;
    ASSERT_EQ(load_checkpoint_status(paths[static_cast<std::size_t>(i)], from_service),
              CheckpointStatus::kOk)
        << "job " << i;
    EXPECT_TRUE(from_service.forest == solo.forest) << "job " << i << " (" << spec.backend
                                                    << "): forest diverged from the solo run";
    EXPECT_EQ(from_service.counters.emitted, solo.counters.emitted) << "job " << i;
    EXPECT_EQ(from_service.counters.bounces, solo.counters.bounces) << "job " << i;
    EXPECT_EQ(from_service.rng_state, solo.rng_state) << "job " << i;
    std::remove(paths[static_cast<std::size_t>(i)].c_str());
  }
}

TEST(Service, ManyClientThreadsSubmittingOverlappingRunsStayDeterministic) {
  // The satellite stress (and the TSan target): client threads submit
  // overlapping identical runs while others poll status. Every result must
  // match the solo reference exactly.
  const Scene scene = scenes::cornell_box();
  const JobSpec reference_spec = small_job("shared", 6000, 42);
  const RunResult solo = make_backend("shared")->run(scene, reference_spec.config, nullptr);

  ServiceConfig cfg;
  cfg.max_active = 4;
  PhotonService service(cfg, test_loader());
  const std::string dir = ::testing::TempDir();

  std::atomic<bool> ok{true};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        JobSpec spec = small_job("shared", 6000, 42);
        spec.checkpoint_path =
            dir + "/svc_mt_" + std::to_string(t) + "_" + std::to_string(round) + ".ck";
        std::remove(spec.checkpoint_path.c_str());
        const std::uint64_t id = service.submit(spec);
        (void)service.status(id);  // concurrent status traffic
        (void)service.jobs();
        const JobInfo info = service.wait(id);
        if (info.state != JobState::kDone) ok = false;

        RunResult result;
        if (load_checkpoint_status(spec.checkpoint_path, result) != CheckpointStatus::kOk ||
            !(result.forest == solo.forest) || result.rng_state != solo.rng_state) {
          ok = false;
        }
        std::remove(spec.checkpoint_path.c_str());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(service.scene_loads(), 1u);
}

// ---- Per-job cancel --------------------------------------------------------

TEST(Service, CancelStopsExactlyOneJobAndLeavesItsSiblingAlone) {
  clear_preempt();
  ServiceConfig cfg;
  cfg.max_active = 2;
  PhotonService service(cfg, test_loader());

  const std::uint64_t victim = service.submit(long_job(1));
  const std::uint64_t sibling = service.submit(small_job("serial", 30000, 2));
  wait_until_running(service, victim);
  EXPECT_TRUE(service.cancel(victim));

  const JobInfo stopped = service.wait(victim);
  EXPECT_EQ(stopped.state, JobState::kCancelled);
  EXPECT_LT(stopped.emitted, 4000000u) << "cancel did not stop the run early";

  const JobInfo untouched = service.wait(sibling);
  EXPECT_EQ(untouched.state, JobState::kDone) << untouched.error;
  EXPECT_EQ(untouched.emitted, 30000u);
  // The scoped stop never leaked into the process flag.
  EXPECT_FALSE(preempt_requested());

  // Terminal and unknown ids are both un-cancellable.
  EXPECT_FALSE(service.cancel(victim));
  EXPECT_FALSE(service.cancel(999));
}

TEST(Service, CancelledWhileQueuedNeverRuns) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  PhotonService service(cfg, test_loader());
  const std::uint64_t blocker = service.submit(long_job(3));
  const std::uint64_t queued = service.submit(small_job("serial", 1000));
  EXPECT_TRUE(service.cancel(queued));
  const JobInfo info = service.wait(queued);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_EQ(info.emitted, 0u);
  EXPECT_TRUE(service.cancel(blocker));
  EXPECT_EQ(service.wait(blocker).state, JobState::kCancelled);
}

TEST(Service, ShutdownPreemptsActiveJobsResumably) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  PhotonService service(cfg, test_loader());
  const std::uint64_t active = service.submit(long_job(5));
  const std::uint64_t queued = service.submit(small_job("serial", 1000));
  wait_until_running(service, active);
  service.shutdown();

  const JobInfo stopped = service.status(active);
  EXPECT_EQ(stopped.state, JobState::kPreempted);
  EXPECT_GT(stopped.emitted, 0u);
  EXPECT_LT(stopped.emitted, 4000000u);
  EXPECT_EQ(service.status(queued).state, JobState::kCancelled);
  EXPECT_THROW((void)service.submit(small_job("serial", 100)), ConfigError);
}

// ---- Admission -------------------------------------------------------------

TEST(Service, ImpossibleBudgetRefusesWithADiagnostic) {
  ServiceConfig cfg;
  cfg.memory_budget = 1024;  // the 1 KiB budget the admission tests refuse
  PhotonService service(cfg, test_loader());
  const JobInfo info = service.wait(service.submit(small_job("serial", 1000)));
  EXPECT_EQ(info.state, JobState::kRefused);
  EXPECT_NE(info.error.find("refused"), std::string::npos) << info.error;
  EXPECT_EQ(info.emitted, 0u);
}

TEST(Service, AdmissibleJobsQueueForBudgetInsteadOfRefusing) {
  // A budget that admits one job but not two concurrently: both must still
  // finish (the second waits for the first's reservation to free), and the
  // results stay full-length.
  const Scene scene = scenes::cornell_box();
  const JobSpec probe = small_job("serial", 4000);
  const std::uint64_t one_job =
      admission_estimate_bytes(scene, probe.config, probe.config.sink_buffer);
  ASSERT_GT(one_job, 0u);

  ServiceConfig cfg;
  cfg.max_active = 2;
  cfg.memory_budget = one_job + one_job / 2;  // 1.5 jobs worth
  PhotonService service(cfg, test_loader());
  const std::uint64_t a = service.submit(small_job("serial", 4000, 1));
  const std::uint64_t b = service.submit(small_job("serial", 4000, 2));
  const JobInfo ia = service.wait(a);
  const JobInfo ib = service.wait(b);
  EXPECT_EQ(ia.state, JobState::kDone) << ia.error;
  EXPECT_EQ(ib.state, JobState::kDone) << ib.error;
  EXPECT_EQ(ia.emitted, 4000u);
  EXPECT_EQ(ib.emitted, 4000u);
  EXPECT_GT(ia.estimated_bytes, 0u);
}

// ---- Validation and failure paths ------------------------------------------

TEST(Service, SubmitRejectsBadSpecsUpFront) {
  PhotonService service(ServiceConfig{}, test_loader());
  JobSpec zero = small_job("serial", 1);
  zero.config.photons = 0;
  EXPECT_THROW((void)service.submit(zero), ConfigError);
  JobSpec bad_backend = small_job("serial", 100);
  bad_backend.backend = "warp-drive";
  EXPECT_THROW((void)service.submit(bad_backend), ConfigError);
  JobSpec wide = small_job("serial", 100);
  wide.config.workers = 5000;
  EXPECT_THROW((void)service.submit(wide), ConfigError);
}

TEST(Service, UnknownSceneFailsTheJobNotTheService) {
  PhotonService service(ServiceConfig{}, test_loader());
  JobSpec spec = small_job("serial", 1000);
  spec.scene = "atlantis";
  const JobInfo failed = service.wait(service.submit(spec));
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.error.find("atlantis"), std::string::npos) << failed.error;

  // The service is still healthy.
  const JobInfo ok = service.wait(service.submit(small_job("serial", 1000)));
  EXPECT_EQ(ok.state, JobState::kDone) << ok.error;
}

TEST(Service, UnknownIdsThrowTyped) {
  PhotonService service(ServiceConfig{}, test_loader());
  EXPECT_THROW((void)service.status(42), ConfigError);
  EXPECT_THROW((void)service.wait(42), ConfigError);
  EXPECT_TRUE(service.jobs().empty());
}

// ---- Protocol --------------------------------------------------------------

TEST(Protocol, ParsesTheDocumentedForms) {
  const Request submit = parse_request(
      "submit scene=cornell backend=shared photons=5000 seed=9 workers=2 groups=2 "
      "batch=500 chunk=64 accel=bvh checkpoint=/tmp/j.ck trace=/tmp/j.jsonl");
  ASSERT_EQ(submit.kind, Request::Kind::kSubmit);
  EXPECT_EQ(submit.kv.at("scene"), "cornell");
  EXPECT_EQ(submit.kv.at("accel"), "bvh");

  const JobSpec spec = job_spec_from_request(submit);
  EXPECT_EQ(spec.scene, "cornell");
  EXPECT_EQ(spec.backend, "shared");
  EXPECT_EQ(spec.config.photons, 5000u);
  EXPECT_EQ(spec.config.seed, 9u);
  EXPECT_EQ(spec.config.workers, 2);
  EXPECT_EQ(spec.config.accel, AccelKind::kBvh);
  EXPECT_EQ(spec.checkpoint_path, "/tmp/j.ck");
  EXPECT_EQ(spec.config.trace_path, "/tmp/j.jsonl");

  EXPECT_EQ(parse_request("status").kind, Request::Kind::kStatus);
  EXPECT_EQ(parse_request("status job=3").kv.at("job"), "3");
  EXPECT_EQ(parse_request("wait job=7").kind, Request::Kind::kWait);
  EXPECT_EQ(parse_request("cancel job=1").kind, Request::Kind::kCancel);
  EXPECT_EQ(parse_request("ping").kind, Request::Kind::kPing);
  EXPECT_EQ(parse_request("shutdown").kind, Request::Kind::kShutdown);
}

TEST(Protocol, RejectsMalformedRequestsWithADiagnostic) {
  for (const char* line : {
           "",                          // empty
           "launch scene=cornell",      // unknown verb
           "submit",                    // missing scene
           "submit photons=5",          // still missing scene
           "submit scene=a scene=b",    // duplicate key
           "submit scene=a warp=9",     // unknown key
           "submit scene=a photons",    // bare token, not key=value
           "wait",                      // missing job
           "cancel",                    // missing job
           "status job=1 extra=2",      // unknown key for status
           "ping job=1",                // ping takes nothing
       }) {
    const Request r = parse_request(line);
    EXPECT_EQ(r.kind, Request::Kind::kBad) << "accepted: '" << line << "'";
    EXPECT_FALSE(r.error.empty()) << line;
  }
}

TEST(Protocol, BadValuesThrowWhenTheSpecIsBuilt) {
  EXPECT_THROW((void)job_spec_from_request(parse_request("submit scene=a photons=ten")),
               ConfigError);
  EXPECT_THROW((void)job_spec_from_request(parse_request("submit scene=a accel=quadtree")),
               ConfigError);
  EXPECT_THROW((void)job_spec_from_request(parse_request("submit scene=a workers=1x")),
               ConfigError);
}

TEST(Protocol, JobJsonCarriesTheReportShape) {
  JobInfo info;
  info.id = 12;
  info.state = JobState::kDone;
  info.scene = "cornell";
  info.backend = "shared";
  info.photons_requested = 1000;
  info.emitted = 1000;
  info.error = "say \"hi\"\n";
  const std::string json = job_info_json(info);
  EXPECT_NE(json.find("\"job\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\": \"done\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"photons_requested\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\": \"say \\\"hi\\\"\\n\""), std::string::npos) << json;
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
}

// ---- Daemon round-trip over the real socket --------------------------------

TEST(Daemon, ServesSubmitWaitStatusCancelOverTheSocket) {
  const std::string socket_path = ::testing::TempDir() + "/photon_svc_test.sock";
  std::remove(socket_path.c_str());

  ServiceConfig cfg;
  cfg.max_active = 2;
  PhotonService service(cfg, test_loader());
  std::atomic<bool> stop{false};
  std::thread daemon([&] { run_daemon(service, socket_path, [&] { return stop.load(); }); });

  // Wait for the socket to appear, then connect.
  std::unique_ptr<ServiceClient> client;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    client = std::make_unique<ServiceClient>(socket_path);
    if (client->ok()) break;
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30))
        << client->error();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::string reply;
  ASSERT_TRUE(client->request("ping", reply));
  EXPECT_EQ(reply, "{\"ok\": true}");

  ASSERT_TRUE(client->request("submit scene=cornell backend=serial photons=3000", reply));
  EXPECT_EQ(reply.rfind("{\"job\": 1", 0), 0u) << reply;
  ASSERT_TRUE(client->request("wait job=1", reply));
  EXPECT_NE(reply.find("\"state\": \"done\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"emitted\": 3000"), std::string::npos) << reply;

  ASSERT_TRUE(client->request("status", reply));
  EXPECT_EQ(reply.rfind("{\"jobs\": [", 0), 0u) << reply;
  ASSERT_TRUE(client->request("status job=1", reply));
  EXPECT_NE(reply.find("\"job\": 1"), std::string::npos) << reply;

  ASSERT_TRUE(client->request("cancel job=1", reply));  // already terminal
  EXPECT_NE(reply.find("\"cancelled\": false"), std::string::npos) << reply;
  ASSERT_TRUE(client->request("cancel job=99", reply));
  EXPECT_NE(reply.find("\"cancelled\": false"), std::string::npos) << reply;

  ASSERT_TRUE(client->request("bogus verb", reply));
  EXPECT_EQ(reply.rfind("{\"error\"", 0), 0u) << reply;

  // A second client coexists with the first connection.
  ServiceClient second(socket_path);
  ASSERT_TRUE(second.ok()) << second.error();
  ASSERT_TRUE(second.request("status", reply));
  EXPECT_EQ(reply.rfind("{\"jobs\": [", 0), 0u);

  ASSERT_TRUE(client->request("shutdown", reply));
  EXPECT_EQ(reply, "{\"ok\": true}");
  daemon.join();
}

// ---- The CLI daemon, end to end --------------------------------------------

#ifdef PHOTON_CLI_PATH

TEST(Daemon, CliServeRunsTwoJobsAndStopsOnShutdown) {
  const std::string socket_path = ::testing::TempDir() + "/photon_cli_svc.sock";
  std::remove(socket_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!std::freopen("/dev/null", "w", stdout)) _exit(127);
    const std::string exe = PHOTON_CLI_PATH;
    const std::string socket_arg = "--socket=" + socket_path;
    execl(exe.c_str(), exe.c_str(), "serve", socket_arg.c_str(), "--max-active=2",
          static_cast<char*>(nullptr));
    _exit(127);
  }

  std::unique_ptr<ServiceClient> client;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    client = std::make_unique<ServiceClient>(socket_path);
    if (client->ok()) break;
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30))
        << client->error();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::string reply;
  ASSERT_TRUE(client->request("submit scene=cornell backend=serial photons=2000 seed=1", reply));
  ASSERT_TRUE(client->request("submit scene=cornell backend=shared photons=2000 seed=2", reply));
  for (const char* wait : {"wait job=1", "wait job=2"}) {
    ASSERT_TRUE(client->request(wait, reply)) << wait;
    EXPECT_NE(reply.find("\"state\": \"done\""), std::string::npos) << wait << ": " << reply;
    EXPECT_NE(reply.find("\"emitted\": 2000"), std::string::npos) << wait << ": " << reply;
  }
  ASSERT_TRUE(client->request("shutdown", reply));

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

#endif  // PHOTON_CLI_PATH

}  // namespace
}  // namespace photon
