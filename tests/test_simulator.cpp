#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Simulator, RunsRequestedPhotons) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 5000;
  cfg.batch = 1000;
  const RunResult r = run_serial(s, cfg);
  EXPECT_EQ(r.counters.emitted, 5000u);
  EXPECT_EQ(r.trace.total_photons, 5000u);
  EXPECT_EQ(r.forest.emitted_total(), 5000u);
  EXPECT_EQ(r.trace.points.size(), 5u);
  EXPECT_EQ(r.memory.size(), 5u);
}

TEST(Simulator, DeterministicForSameSeed) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000;
  const RunResult a = run_serial(s, cfg);
  const RunResult b = run_serial(s, cfg);
  EXPECT_TRUE(a.forest == b.forest);
  EXPECT_EQ(a.counters.bounces, b.counters.bounces);
}

TEST(Simulator, DifferentSeedsDiffer) {
  const Scene s = scenes::cornell_box();
  RunConfig a_cfg, b_cfg;
  a_cfg.photons = b_cfg.photons = 2000;
  b_cfg.seed = a_cfg.seed + 1;
  const RunResult a = run_serial(s, a_cfg);
  const RunResult b = run_serial(s, b_cfg);
  EXPECT_FALSE(a.forest == b.forest);
}

TEST(Simulator, FurnaceRadianceIsAnalytic) {
  // Closed box, every wall emits M=1 and reflects rho: equilibrium exitance
  // B = M / (1 - rho), radiance L = B / pi, identical everywhere.
  const double rho = 0.5;
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 150000;
  cfg.batch = 50000;
  const RunResult r = run_serial(s, cfg);

  const double expected = 1.0 / ((1.0 - rho) * kPi);
  Lcg48 rng(4711);
  for (std::size_t wall = 0; wall < s.patch_count(); ++wall) {
    RunningStats stats;
    for (int i = 0; i < 400; ++i) {
      const Vec3 d = sample_hemisphere_rejection(rng);
      const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
      double l = 0.0;
      for (int ch = 0; ch < 3; ++ch) {
        l += r.forest.radiance(static_cast<int>(wall), true, c, ch,
                               s.patch(static_cast<int>(wall)).area());
      }
      stats.add(l / 3.0);
    }
    EXPECT_NEAR(stats.mean(), expected, 0.1 * expected) << "wall " << wall;
  }
}

TEST(Simulator, FurnaceEnergyBalance) {
  // Mean path length of a photon with survival probability rho is the
  // geometric series: E[bounces] = rho / (1 - rho).
  const double rho = 0.6;
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 40000;
  const RunResult r = run_serial(s, cfg);
  EXPECT_NEAR(r.counters.bounces_per_photon(), rho / (1.0 - rho), 0.05);
  EXPECT_EQ(r.counters.escaped, 0u);
}

TEST(Simulator, ParallelPlatesFormFactor) {
  // Fraction of diffusely emitted photons caught by a coaxial parallel unit
  // square equals the analytic form factor (Howell C-11).
  const double gap = 1.0;
  const Scene s = scenes::parallel_plates(gap);
  RunConfig cfg;
  cfg.photons = 200000;
  cfg.batch = 50000;
  const RunResult r = run_serial(s, cfg);

  // Analytic form factor between directly opposed unit squares, distance c:
  // with X = a/c = 1, Y = b/c = 1:
  const double X = 1.0 / gap, Y = 1.0 / gap;
  const double x2 = 1 + X * X, y2 = 1 + Y * Y;
  const double f =
      2.0 / (kPi * X * Y) *
      (std::log(std::sqrt(x2 * y2 / (x2 + Y * Y))) +
       X * std::sqrt(y2) * std::atan(X / std::sqrt(y2)) +
       Y * std::sqrt(x2) * std::atan(Y / std::sqrt(x2)) - X * std::atan(X) - Y * std::atan(Y));

  // Receiver is black and one-sided: every photon that hits it is absorbed;
  // everything else escapes the open scene.
  const double caught =
      static_cast<double>(r.counters.absorbed) / static_cast<double>(r.counters.emitted);
  EXPECT_NEAR(caught, f, 0.02 * f + 0.003);
}

TEST(Simulator, MemoryGrowthSlowsAfterBuildup) {
  // Fig 5.4: "after an initial buildup of memory, the size of the bin forest
  // tends to increase sub-linearly." Compare bin-node growth over the first
  // and last thirds of the run (node counts are smoother than capacity
  // bytes, which jump by powers of two).
  const Scene s = scenes::harpsichord_room();
  const SplitPolicy policy;
  BinForest forest(s.patch_count(), policy);
  const Emitter emitter(s);
  const Tracer tracer(s);
  ForestSink sink(forest);
  Lcg48 rng(1);

  const int batches = 12;
  const std::uint64_t per_batch = 10000;
  std::vector<std::uint64_t> nodes;
  for (int b = 0; b < batches; ++b) {
    for (std::uint64_t i = 0; i < per_batch; ++i) tracer.trace(emitter.emit(rng), rng, sink);
    nodes.push_back(forest.total_nodes());
  }
  const std::uint64_t first_third = nodes[3] - 2 * forest.patch_count();  // minus empty roots
  const std::uint64_t last_third = nodes[11] - nodes[7];
  EXPECT_GT(nodes[11], nodes[3]);  // still growing...
  EXPECT_LT(last_third, first_third);  // ...but slower than the initial buildup
}

TEST(Simulator, SpeedTraceIsMonotone) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 8000;
  cfg.batch = 1000;
  const RunResult r = run_serial(s, cfg);
  for (std::size_t i = 1; i < r.trace.points.size(); ++i) {
    EXPECT_GE(r.trace.points[i].time_s, r.trace.points[i - 1].time_s);
    EXPECT_GT(r.trace.points[i].photons, r.trace.points[i - 1].photons);
  }
  EXPECT_GT(r.trace.final_rate(), 0.0);
}

TEST(Simulator, MaxSecondsStopsEarly) {
  const Scene s = scenes::computer_lab();
  RunConfig cfg;
  cfg.photons = 50'000'000;  // far more than fits in the budget
  cfg.batch = 2000;
  cfg.max_seconds = 0.2;
  const RunResult r = run_serial(s, cfg);
  EXPECT_LT(r.trace.total_photons, cfg.photons);
  EXPECT_GT(r.trace.total_photons, 0u);
}

TEST(Simulator, LeapfrogRanksPartitionWork) {
  // Streams (seed, r, P) are disjoint, so per-rank runs must differ.
  const Scene s = scenes::cornell_box();
  RunConfig a, b;
  a.photons = b.photons = 2000;
  a.rank = 0;
  b.rank = 1;
  a.nranks = b.nranks = 2;
  const RunResult ra = run_serial(s, a);
  const RunResult rb = run_serial(s, b);
  EXPECT_FALSE(ra.forest == rb.forest);
}

TEST(Simulator, MirrorSceneBinsAngularly) {
  // Chapter 4: "A purely diffuse surface requires only planar bin
  // subdivisions while a specular surface requires more angular bin
  // subdivisions." Compare the mirror's split axes against the walls'.
  const Scene s = scenes::cornell_box();
  int mirror_patch = -1;
  for (std::size_t i = 0; i < s.patch_count(); ++i) {
    const Material& m = s.material_of(static_cast<int>(i));
    if (m.specular.max_component() > 0.5) mirror_patch = static_cast<int>(i);
  }
  ASSERT_GE(mirror_patch, 0);

  RunConfig cfg;
  cfg.photons = 120000;
  cfg.batch = 40000;
  const RunResult r = run_serial(s, cfg);

  auto angular_fraction = [&](int patch) {
    int angular = 0, total = 0;
    for (int side = 0; side < 2; ++side) {
      const BinTree& tree = r.forest.tree(patch, side == 0);
      for (std::size_t i = 0; i < tree.node_count(); ++i) {
        const BinNode& n = tree.node(static_cast<int>(i));
        if (n.is_leaf()) continue;
        ++total;
        if (n.axis >= 2) ++angular;
      }
    }
    return total > 0 ? static_cast<double>(angular) / total : 0.0;
  };

  const double mirror_frac = angular_fraction(mirror_patch);
  const double floor_frac = angular_fraction(0);
  EXPECT_GT(mirror_frac, floor_frac);
}

}  // namespace
}  // namespace photon
