#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace photon {
namespace {

TEST(Lcg48, DeterministicForSameSeed) {
  Lcg48 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_bits(), b.next_bits());
}

TEST(Lcg48, DifferentSeedsDiffer) {
  Lcg48 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_bits() == b.next_bits()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Lcg48, MatchesReferenceRecurrence) {
  // x' = (a x + c) mod 2^48 with drand48 constants.
  Lcg48 g(12345);
  std::uint64_t x = 12345;
  for (int i = 0; i < 50; ++i) {
    x = (Lcg48::kA * x + Lcg48::kC) & Lcg48::kModMask;
    EXPECT_EQ(g.next_bits(), x);
  }
}

TEST(Lcg48, UniformIsInUnitInterval) {
  Lcg48 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Lcg48, UniformMeanAndVariance) {
  Lcg48 g(99);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = g.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Lcg48, ChiSquareUniformity) {
  Lcg48 g(31337);
  constexpr int kBins = 64;
  constexpr int kDraws = 64 * 2000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(g.uniform() * kBins)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 dof: mean 63, stddev ~11.2; 5-sigma bound.
  EXPECT_LT(chi2, 63.0 + 5.0 * 11.2);
}

TEST(Lcg48, SkipMatchesIteration) {
  Lcg48 a(555), b(555);
  for (int i = 0; i < 137; ++i) a.next_bits();
  b.skip(137);
  EXPECT_EQ(a.state(), b.state());
}

TEST(Lcg48, SkipZeroIsIdentity) {
  Lcg48 a(555);
  const std::uint64_t before = a.state();
  a.skip(0);
  EXPECT_EQ(a.state(), before);
}

TEST(Lcg48, SkipLargeIsConsistent) {
  // skip(n+m) == skip(n); skip(m)
  Lcg48 a(9), b(9);
  a.skip(1'000'000'007ULL);
  b.skip(1'000'000'000ULL);
  b.skip(7);
  EXPECT_EQ(a.state(), b.state());
}

TEST(Lcg48, StrideConstantsComposeLikeSteps) {
  std::uint64_t mul = 0, add = 0;
  Lcg48::stride_constants(3, mul, add);
  std::uint64_t x = 777;
  const std::uint64_t direct = (mul * x + add) & Lcg48::kModMask;
  for (int i = 0; i < 3; ++i) x = (Lcg48::kA * x + Lcg48::kC) & Lcg48::kModMask;
  EXPECT_EQ(direct, x);
}

// --- leapfrog properties, parameterized over the processor count ---

class LeapfrogTest : public ::testing::TestWithParam<int> {};

TEST_P(LeapfrogTest, StreamsInterleaveTheGlobalSequence) {
  const int P = GetParam();
  const std::uint64_t seed = 0xABCDEF;
  // Global serial sequence.
  Lcg48 global(seed);
  std::vector<std::uint64_t> serial;
  const int per_rank = 50;
  for (int i = 0; i < per_rank * P; ++i) serial.push_back(global.next_bits());

  // Rank r's k-th draw must equal global element k*P + r.
  for (int r = 0; r < P; ++r) {
    Lcg48 rank(seed, r, P);
    for (int k = 0; k < per_rank; ++k) {
      EXPECT_EQ(rank.next_bits(), serial[static_cast<std::size_t>(k * P + r)])
          << "rank " << r << " draw " << k;
    }
  }
}

TEST_P(LeapfrogTest, StreamsAreDisjoint) {
  const int P = GetParam();
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (int r = 0; r < P; ++r) {
    Lcg48 rank(0x1234, r, P);
    for (int k = 0; k < 200; ++k) {
      seen.insert(rank.next_bits());
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total) << "leapfrog streams overlapped";
}

TEST_P(LeapfrogTest, EachStreamLooksUniform) {
  const int P = GetParam();
  for (int r = 0; r < P; ++r) {
    Lcg48 rank(2024, r, P);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rank.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, LeapfrogTest, ::testing::Values(2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace photon
