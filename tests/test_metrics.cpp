#include "hist/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

TEST(Metrics, EmptyForest) {
  const BinForest f(4);
  const ForestMetrics m = compute_metrics(f);
  EXPECT_EQ(m.trees, 8u);
  EXPECT_EQ(m.nodes, 8u);   // one root each
  EXPECT_EQ(m.leaves, 8u);
  EXPECT_EQ(m.max_depth, 0);
  EXPECT_EQ(m.total_tallies, 0u);
  EXPECT_DOUBLE_EQ(m.angular_split_fraction, 0.0);
}

TEST(Metrics, CountsAreConsistent) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 60000;
  const RunResult r = run_serial(s, cfg);
  const ForestMetrics m = compute_metrics(r.forest);

  EXPECT_EQ(m.nodes, r.forest.total_nodes());
  EXPECT_EQ(m.leaves, r.forest.total_leaves());
  EXPECT_EQ(m.total_tallies, r.forest.total_tally_all());
  // nodes = leaves + splits; splits counted per axis.
  const std::uint64_t splits =
      std::accumulate(m.splits_by_axis.begin(), m.splits_by_axis.end(), std::uint64_t{0});
  EXPECT_EQ(m.nodes, m.leaves + splits);
  EXPECT_GT(m.mean_tally_per_leaf, 0.0);
  EXPECT_GT(m.mean_leaf_depth, 0.0);
  EXPECT_LE(m.max_tally_share, 1.0);
  EXPECT_GT(m.concentration, 0.0);
  EXPECT_LE(m.concentration, 1.0);
}

TEST(Metrics, PatchTalliesMatchForest) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 20000;
  const RunResult r = run_serial(s, cfg);
  const ForestMetrics m = compute_metrics(r.forest);
  EXPECT_EQ(m.patch_tallies, r.forest.patch_tallies());
}

TEST(Metrics, MirrorTreeIsAngular) {
  const Scene s = scenes::cornell_box();
  int mirror = -1;
  for (std::size_t i = 0; i < s.patch_count(); ++i) {
    if (s.material_of(static_cast<int>(i)).specular.max_component() > 0.5) {
      mirror = static_cast<int>(i);
    }
  }
  ASSERT_GE(mirror, 0);

  RunConfig cfg;
  cfg.photons = 120000;
  const RunResult r = run_serial(s, cfg);

  const TreeMetrics mirror_m = compute_tree_metrics(r.forest.tree(mirror, true));
  const TreeMetrics floor_m = compute_tree_metrics(r.forest.tree(0, true));
  EXPECT_GT(mirror_m.angular_split_fraction, floor_m.angular_split_fraction);
}

TEST(Metrics, TreeMetricsSumToForestMetrics) {
  const Scene s = scenes::furnace_box(0.5);
  RunConfig cfg;
  cfg.photons = 30000;
  const RunResult r = run_serial(s, cfg);

  const ForestMetrics total = compute_metrics(r.forest);
  std::uint64_t nodes = 0, leaves = 0;
  for (std::size_t t = 0; t < r.forest.tree_count(); ++t) {
    const TreeMetrics tm = compute_tree_metrics(r.forest.tree_at(static_cast<int>(t)));
    nodes += tm.nodes;
    leaves += tm.leaves;
  }
  EXPECT_EQ(nodes, total.nodes);
  EXPECT_EQ(leaves, total.leaves);
}

TEST(Metrics, ConcentrationOrdersScenes) {
  // The cornell box concentrates tallies on fewer patches than the lab —
  // the quantity that drives shared-memory contention in the perf model.
  RunConfig cfg;
  cfg.photons = 30000;
  const ForestMetrics cornell =
      compute_metrics(run_serial(scenes::cornell_box(), cfg).forest);
  const ForestMetrics lab = compute_metrics(run_serial(scenes::computer_lab(), cfg).forest);
  EXPECT_GT(cornell.concentration, lab.concentration);
}

}  // namespace
}  // namespace photon
