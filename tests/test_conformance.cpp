// Cross-backend conformance suite: every backend in the registry is run
// through the same matrix — repeat-determinism, conservation, bitwise
// equality against the serial reference at the shapes where the backend
// contracts it, and checkpoint-resume across a leg boundary.
//
// The matrix is data-driven from contract_for(name): registering a new
// backend automatically enrolls it in the determinism + conservation +
// resume legs at default shapes; pinning it bitwise only requires adding its
// contract here. Two reference kinds exist, matching the two RNG schemes:
//
//   kSerial        run_serial's continuous leapfrog stream — the backends
//                  that replay that exact stream (shared@1, dist-particle@1)
//   kPhotonStreams serial with RunConfig::photon_streams — per-photon
//                  disjoint RNG blocks, the reference for the backends whose
//                  answer is independent of their decomposition
//                  (dist-spatial@1, hybrid at EVERY groups×threads shape)
//
// The suite is additionally parameterized over the acceleration structure
// behind the AccelStructure seam: every backend runs the matrix on
// octree-built scenes, and serial, shared and dist-spatial repeat it with
// the BVH and the nested grid (dist-spatial also rebuilds its per-region
// local indexes with the chosen structure via RunConfig::accel). The bitwise
// reference is ALWAYS computed on the octree scenes, so those cells pin the
// structures' closest-hit equivalence through an entire simulation, not just
// per-ray.
//
// CI runs this suite under the `conformance` ctest label on both the SIMD
// and the scalar-fallback build.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/backend.hpp"
#include "geom/scenes.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

struct Shape {
  int groups = 1;
  int workers = 1;
};

enum class Reference {
  kNone,           // no bitwise pin at this shape (determinism/conservation only)
  kSerial,         // bitwise == run_serial, continuous stream
  kPhotonStreams,  // bitwise == run_serial with photon_streams
};

struct BackendContract {
  std::vector<Shape> shapes;                 // every shape the matrix runs
  Reference reference = Reference::kNone;    // pin kind...
  bool reference_at_every_shape = false;     // ...at all shapes, or only 1x1
  bool resume_bitwise = false;  // leg1+leg2 == straight run, bit for bit
  // Repeated runs reproduce the forest bit for bit at every shape.
  bool repeat_bitwise_at_every_shape = true;
};

BackendContract contract_for(const std::string& name) {
  if (name == "serial") {
    return {{{1, 1}}, Reference::kSerial, true, true, true};
  }
  if (name == "shared") {
    // Pool-backed chunk scheduling (engine/pool.hpp): bitwise equal to the
    // serial photon-stream reference at EVERY worker count — including the
    // oversubscribed 1x8 — with bitwise resume and repeatability. The seed's
    // leapfrog version pinned only totals at T > 1; this contract is
    // strictly stronger.
    return {{{1, 1}, {1, 2}, {1, 4}, {1, 8}}, Reference::kPhotonStreams, true, true, true};
  }
  if (name == "dist-particle") {
    // Resume is bitwise at an unchanged shape with aligned batches — which
    // is how the resume leg below runs every backend.
    return {{{1, 1}, {1, 2}, {1, 4}}, Reference::kSerial, false, true, true};
  }
  if (name == "dist-spatial") {
    return {{{1, 1}, {1, 2}, {1, 4}}, Reference::kPhotonStreams, false, false, true};
  }
  if (name == "hybrid") {
    // The tentpole contract: bitwise-equal to the serial reference at every
    // shape, pinned on all bundled scenes below.
    return {{{1, 1}, {1, 4}, {2, 2}, {4, 1}, {4, 2}},
            Reference::kPhotonStreams,
            true,
            true,
            true};
  }
  // A backend this table has never heard of still gets the full determinism,
  // conservation and resume-conservation matrix for free.
  return {{{1, 1}, {1, 2}, {1, 4}}, Reference::kNone, false, false, true};
}

struct NamedScene {
  const char* name;
  const Scene* scene;
  std::uint64_t photons;  // budget scaled to the scene's cost
};

// Scenes are built once per process; the suite runs dozens of simulations
// against them. These are the octree-built instances the references use.
const std::vector<NamedScene>& bundled_scenes() {
  static const Scene cornell = scenes::cornell_box();
  static const Scene harpsichord = scenes::harpsichord_room();
  static const Scene lab = scenes::computer_lab();
  static const std::vector<NamedScene> all = {
      {"cornell", &cornell, 2000}, {"harpsichord", &harpsichord, 1200}, {"lab", &lab, 600}};
  return all;
}

// The same scene rebuilt behind a different acceleration structure, cached
// per (scene, structure) cell.
const Scene& scene_for(const NamedScene& cell, AccelKind kind) {
  if (kind == AccelKind::kOctree) return *cell.scene;
  static std::map<std::pair<std::string, int>, Scene> cache;
  const std::pair<std::string, int> key{cell.name, static_cast<int>(kind)};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  Scene scene = scenes::by_name(cell.name);
  scene.set_accel(kind);
  scene.build();
  return cache.emplace(key, std::move(scene)).first->second;
}

RunConfig config_for(const Shape& shape, std::uint64_t photons,
                     AccelKind accel = AccelKind::kOctree) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = 500;
  cfg.adapt_batch = false;
  cfg.groups = shape.groups;
  cfg.workers = shape.workers;
  cfg.accel = accel;
  return cfg;
}

RunResult run_named(const std::string& backend, const Scene& scene, const RunConfig& cfg,
                    const RunResult* resume = nullptr) {
  const auto b = make_backend(backend);
  EXPECT_NE(b, nullptr) << backend;
  return b->run(scene, cfg, resume);
}

// The serial reference for one (kind, scene, budget) cell, computed once.
const RunResult& reference_run(Reference kind, const NamedScene& cell) {
  static std::map<std::pair<int, std::string>, RunResult> cache;
  const std::pair<int, std::string> key{static_cast<int>(kind), cell.name};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  RunConfig cfg = config_for({1, 1}, cell.photons);
  cfg.photon_streams = kind == Reference::kPhotonStreams;
  cfg.rank = 0;
  cfg.nranks = 1;
  return cache.emplace(key, run_serial(*cell.scene, cfg)).first->second;
}

// (backend, acceleration structure) cell. Every backend runs with the
// octree; a subset repeats the matrix behind the BVH and the grid.
using ConformanceParam = std::pair<std::string, AccelKind>;

class ConformanceTest : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(ConformanceTest, RepeatRunsAreBitwiseIdentical) {
  const auto& [backend, accel] = GetParam();
  const BackendContract contract = contract_for(backend);
  const NamedScene& cell = bundled_scenes()[0];  // cornell
  const Scene& scene = scene_for(cell, accel);
  for (const Shape& shape : contract.shapes) {
    const bool one_worker = shape.groups == 1 && shape.workers == 1;
    if (!contract.repeat_bitwise_at_every_shape && !one_worker) continue;
    const RunConfig cfg = config_for(shape, cell.photons, accel);
    const RunResult a = run_named(backend, scene, cfg);
    const RunResult b = run_named(backend, scene, cfg);
    EXPECT_TRUE(a.forest == b.forest)
        << backend << " @ " << shape.groups << "x" << shape.workers;
    EXPECT_EQ(a.counters.bounces, b.counters.bounces);
  }
}

TEST_P(ConformanceTest, ConservesEmissionsAndRecords) {
  const auto& [backend, accel] = GetParam();
  const BackendContract contract = contract_for(backend);
  const NamedScene& cell = bundled_scenes()[0];
  const Scene& scene = scene_for(cell, accel);
  for (const Shape& shape : contract.shapes) {
    const RunConfig cfg = config_for(shape, cell.photons, accel);
    const RunResult r = run_named(backend, scene, cfg);
    // Every photon in the budget is emitted exactly once...
    EXPECT_GE(r.counters.emitted, cfg.photons)
        << backend << " @ " << shape.groups << "x" << shape.workers;
    EXPECT_EQ(r.forest.emitted_total(), r.counters.emitted);
    // ...and every record — one per emission, one per bounce — is tallied
    // exactly once, wherever its tree lives.
    EXPECT_EQ(r.forest.total_tally_all(), r.counters.emitted + r.counters.bounces)
        << backend << " @ " << shape.groups << "x" << shape.workers;
  }
}

TEST_P(ConformanceTest, BitwiseEqualToTheSerialReference) {
  const auto& [backend, accel] = GetParam();
  const BackendContract contract = contract_for(backend);
  if (contract.reference == Reference::kNone) {
    GTEST_SKIP() << backend << " contracts no bitwise reference shape";
  }
  for (const NamedScene& cell : bundled_scenes()) {
    // The reference is always the octree-built serial run: a non-octree cell
    // passing this pin means the structure's closest hits are bitwise-equal
    // through the whole simulation.
    const RunResult& reference = reference_run(contract.reference, cell);
    const Scene& scene = scene_for(cell, accel);
    for (const Shape& shape : contract.shapes) {
      if (!contract.reference_at_every_shape && (shape.groups != 1 || shape.workers != 1)) {
        continue;
      }
      const RunConfig cfg = config_for(shape, cell.photons, accel);
      const RunResult r = run_named(backend, scene, cfg);
      EXPECT_TRUE(r.forest == reference.forest)
          << backend << " @ " << shape.groups << "x" << shape.workers << " on " << cell.name;
      EXPECT_EQ(r.counters.bounces, reference.counters.bounces)
          << backend << " @ " << shape.groups << "x" << shape.workers << " on " << cell.name;
    }
  }
}

TEST_P(ConformanceTest, ResumeContinuesAcrossALegBoundary) {
  const auto& [backend, accel] = GetParam();
  const BackendContract contract = contract_for(backend);
  const auto instance = make_backend(backend);
  ASSERT_NE(instance, nullptr);
  if (!instance->supports_resume()) {
    GTEST_SKIP() << backend << " does not support resume";
  }
  const NamedScene& cell = bundled_scenes()[0];
  const Scene& scene = scene_for(cell, accel);
  const Shape shape = contract.shapes.back();  // the widest shape

  // Leg 1 ends on a batch boundary at every shape the matrix uses, so the
  // backends that contract a bitwise continuation can deliver one.
  RunConfig leg1 = config_for(shape, 2000, accel);
  RunConfig leg2 = config_for(shape, 1000, accel);
  RunConfig straight = config_for(shape, 3000, accel);
  const RunResult first = run_named(backend, scene, leg1);
  const RunResult resumed = run_named(backend, scene, leg2, &first);
  EXPECT_EQ(resumed.forest.emitted_total(), straight.photons);
  EXPECT_EQ(resumed.counters.emitted, straight.photons);
  if (contract.resume_bitwise) {
    const RunResult uninterrupted = run_named(backend, scene, straight);
    EXPECT_TRUE(resumed.forest == uninterrupted.forest)
        << backend << " @ " << shape.groups << "x" << shape.workers;
    EXPECT_EQ(resumed.counters.bounces, uninterrupted.counters.bounces);
  }
}

// Every backend × octree, plus a cross-structure band: one backend per RNG
// scheme (serial = continuous stream, shared = pool-scheduled photon
// streams, dist-spatial = per-region local indexes rebuilt from
// RunConfig::accel) × {bvh, grid}.
std::vector<ConformanceParam> conformance_cells() {
  std::vector<ConformanceParam> cells;
  for (const std::string& backend : backend_names()) {
    cells.emplace_back(backend, AccelKind::kOctree);
  }
  for (const char* backend : {"serial", "shared", "dist-spatial"}) {
    cells.emplace_back(backend, AccelKind::kBvh);
    cells.emplace_back(backend, AccelKind::kGrid);
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ConformanceTest,
                         ::testing::ValuesIn(conformance_cells()),
                         [](const ::testing::TestParamInfo<ConformanceParam>& info) {
                           std::string name = info.param.first;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name + "_" + accel_kind_name(info.param.second);
                         });

// --- Elastic resume across a CHANGED shape: checkpoint at width P0, resume
// at width P1 through the v2 byte-format round-trip. Conservation holds for
// every (P0, P1) cell; bitwise equality where the RNG scheme is
// shape-invariant — hybrid everywhere (per-photon streams), dist-particle
// only at an unchanged width with aligned batches (its leapfrog streams are
// shape-bound; at a changed width the resume degrades to disjoint-block
// streams, the conservative re-trace).
class ElasticResumeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ElasticResumeTest, CheckpointAtOneWidthResumesAtAnother) {
  const std::string backend = GetParam();
  const bool width_is_groups = backend == "hybrid";
  const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> budgets = {
      {"cornell", {1200, 600}}, {"harpsichord", {800, 400}}, {"lab", {400, 200}}};
  for (const NamedScene& cell : bundled_scenes()) {
    const auto [leg1_photons, leg2_photons] = budgets.at(cell.name);
    const std::uint64_t total = leg1_photons + leg2_photons;
    for (const int P0 : {2, 4}) {
      for (const int P1 : {1, 2, 3, 8}) {
        const std::string label = backend + " " + cell.name + " P0=" +
                                  std::to_string(P0) + " P1=" + std::to_string(P1);
        const Shape shape0 = width_is_groups ? Shape{P0, 2} : Shape{1, P0};
        const Shape shape1 = width_is_groups ? Shape{P1, 2} : Shape{1, P1};
        RunConfig leg1 = config_for(shape0, leg1_photons);
        RunConfig leg2 = config_for(shape1, leg2_photons);
        leg1.batch = 100;  // aligned: leg1 ends on a batch boundary at every P0
        leg2.batch = 100;
        const RunResult first = run_named(backend, *cell.scene, leg1);

        // Through the v2 byte format, not just the in-memory object: this is
        // the rank/group-count elasticity photon_cli's --resume exercises.
        std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
        save_checkpoint(first, buf);
        RunResult loaded;
        ASSERT_TRUE(load_checkpoint(buf, loaded)) << label;

        const RunResult resumed = run_named(backend, *cell.scene, leg2, &loaded);
        EXPECT_GE(resumed.counters.emitted, total) << label;
        EXPECT_EQ(resumed.forest.emitted_total(), resumed.counters.emitted) << label;
        EXPECT_EQ(resumed.forest.total_tally_all(),
                  resumed.counters.emitted + resumed.counters.bounces)
            << label;

        const bool bitwise = width_is_groups || (backend == "dist-particle" && P0 == P1);
        if (bitwise) {
          RunConfig straight_cfg = config_for(shape1, total);
          straight_cfg.batch = 100;
          const RunResult straight = run_named(backend, *cell.scene, straight_cfg);
          EXPECT_TRUE(resumed.forest == straight.forest) << label;
          EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DistributedBackends, ElasticResumeTest,
                         ::testing::Values("dist-particle", "dist-spatial", "hybrid"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(ConformanceOversubscribed, HybridBeyondHardwareThreadsStaysBitwise) {
  // groups × threads deliberately exceeds the machine's hardware threads:
  // heavy timeslicing must not perturb the canonical record order. CI runs
  // this leg explicitly (the conformance matrix job).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const Shape shape{2, std::max(hw, 1) + 2};  // 2*(hw+2) > hw always
  const NamedScene& cell = bundled_scenes()[0];
  const RunConfig cfg = config_for(shape, cell.photons);
  const RunResult r = run_named("hybrid", *cell.scene, cfg);
  const RunResult& reference = reference_run(Reference::kPhotonStreams, cell);
  EXPECT_TRUE(r.forest == reference.forest)
      << "oversubscribed shape " << shape.groups << "x" << shape.workers;
}

}  // namespace
}  // namespace photon
