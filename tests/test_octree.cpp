#include "geom/octree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

std::vector<Patch> random_patch_soup(int n, std::uint64_t seed) {
  std::vector<Patch> patches;
  Lcg48 rng(seed);
  for (int i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform() * 10, rng.uniform() * 10, rng.uniform() * 10};
    const Vec3 e1{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    const Vec3 e2{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (cross(e1, e2).length() < 1e-6) continue;  // skip degenerate
    patches.emplace_back(origin, e1, e2, 0);
  }
  return patches;
}

Ray random_ray(Lcg48& rng) {
  const Vec3 origin{rng.uniform() * 12 - 1, rng.uniform() * 12 - 1, rng.uniform() * 12 - 1};
  Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  while (dir.length_squared() < 1e-6) {
    dir = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  }
  return Ray(origin, dir.normalized());
}

TEST(Octree, EmptyInput) {
  Octree tree;
  tree.build(std::vector<Patch>{});
  EXPECT_FALSE(tree.built());
  EXPECT_FALSE(tree.intersect(std::vector<Patch>{}, Ray({0, 0, 0}, {0, 0, 1})).has_value());
}

TEST(Octree, SinglePatch) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  Octree tree;
  tree.build(patches);
  ASSERT_TRUE(tree.built());
  const auto hit = tree.intersect(patches, Ray({0.5, 0.5, 1}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patch, 0);
  EXPECT_NEAR(hit->dist, 1.0, 1e-12);
}

TEST(Octree, ReturnsClosestOfStackedPatches) {
  std::vector<Patch> patches;
  for (int i = 0; i < 5; ++i) {
    patches.emplace_back(Vec3{0, 0, static_cast<double>(i)}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0);
  }
  Octree tree;
  tree.build(patches);
  const auto hit = tree.intersect(patches, Ray({0.5, 0.5, 10}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patch, 4);  // top-most (z=4) patch is closest from above
  EXPECT_NEAR(hit->dist, 6.0, 1e-12);
}

TEST(Octree, SubdividesLargeInputs) {
  const auto patches = random_patch_soup(500, 123);
  Octree tree;
  tree.build(patches);
  EXPECT_GT(tree.node_count(), 8u);  // actually split
  EXPECT_GT(tree.depth(), 0);
}

TEST(Octree, RespectsMaxDepth) {
  const auto patches = random_patch_soup(500, 321);
  Octree tree;
  Octree::BuildParams params;
  params.max_depth = 2;
  tree.build(patches, params);
  EXPECT_LE(tree.depth(), 2);
}

class OctreeEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OctreeEquivalenceTest, MatchesBruteForceOnScenes) {
  const Scene scene = scenes::by_name(GetParam());
  Lcg48 rng(999);
  int hits = 0;
  for (int i = 0; i < 500; ++i) {
    // Rays from inside the scene bounds.
    const Aabb b = scene.bounds();
    const Vec3 e = b.extent();
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());

    const auto fast = scene.intersect(ray);
    const auto slow = scene.intersect_brute(ray);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "ray " << i;
    if (fast) {
      ++hits;
      EXPECT_EQ(fast->patch, slow->patch) << "ray " << i;
      EXPECT_NEAR(fast->dist, slow->dist, 1e-9);
      EXPECT_NEAR(fast->s, slow->s, 1e-9);
      EXPECT_NEAR(fast->t, slow->t, 1e-9);
      EXPECT_EQ(fast->front, slow->front);
    }
  }
  EXPECT_GT(hits, 100) << "test exercised too few hits to be meaningful";
}

INSTANTIATE_TEST_SUITE_P(Scenes, OctreeEquivalenceTest,
                         ::testing::Values("cornell", "harpsichord", "lab"));

TEST(Octree, MatchesBruteForceOnRandomSoup) {
  const auto patches = random_patch_soup(300, 2024);
  Octree tree;
  tree.build(patches);
  Lcg48 rng(555);
  for (int i = 0; i < 800; ++i) {
    const Ray ray = random_ray(rng);
    const auto fast = tree.intersect(patches, ray);

    SceneHit best;
    best.dist = kNoHit;
    for (std::size_t p = 0; p < patches.size(); ++p) {
      if (auto hit = patches[p].intersect(ray, best.dist)) {
        best.patch = static_cast<int>(p);
        best.dist = hit->dist;
      }
    }
    ASSERT_EQ(fast.has_value(), best.patch >= 0) << "ray " << i;
    if (fast) {
      EXPECT_EQ(fast->patch, best.patch);
      EXPECT_NEAR(fast->dist, best.dist, 1e-9);
    }
  }
}

TEST(Octree, TmaxCutsOffDistantHits) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  Octree tree;
  tree.build(patches);
  EXPECT_FALSE(tree.intersect(patches, Ray({0.5, 0.5, 5}, {0, 0, -1}), 4.0).has_value());
  EXPECT_TRUE(tree.intersect(patches, Ray({0.5, 0.5, 5}, {0, 0, -1}), 6.0).has_value());
}

TEST(Octree, SceneBoundsCoverAllPatches) {
  const Scene scene = scenes::cornell_box();
  const Aabb root = scene.octree().bounds();
  for (const Patch& p : scene.patches()) {
    const Aabb pb = p.bounds();
    EXPECT_TRUE(root.contains(pb.lo));
    EXPECT_TRUE(root.contains(pb.hi));
  }
}

}  // namespace
}  // namespace photon
