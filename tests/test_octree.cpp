#include "geom/octree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

std::vector<Patch> random_patch_soup(int n, std::uint64_t seed) {
  std::vector<Patch> patches;
  Lcg48 rng(seed);
  for (int i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform() * 10, rng.uniform() * 10, rng.uniform() * 10};
    const Vec3 e1{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    const Vec3 e2{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (cross(e1, e2).length() < 1e-6) continue;  // skip degenerate
    patches.emplace_back(origin, e1, e2, 0);
  }
  return patches;
}

Ray random_ray(Lcg48& rng) {
  const Vec3 origin{rng.uniform() * 12 - 1, rng.uniform() * 12 - 1, rng.uniform() * 12 - 1};
  Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  while (dir.length_squared() < 1e-6) {
    dir = Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  }
  return Ray(origin, dir.normalized());
}

TEST(Octree, EmptyInput) {
  Octree tree;
  tree.build(std::vector<Patch>{});
  EXPECT_FALSE(tree.built());
  EXPECT_FALSE(tree.intersect(Ray({0, 0, 0}, {0, 0, 1})).has_value());
}

TEST(Octree, SinglePatch) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  Octree tree;
  tree.build(patches);
  ASSERT_TRUE(tree.built());
  const auto hit = tree.intersect(Ray({0.5, 0.5, 1}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patch, 0);
  EXPECT_NEAR(hit->dist, 1.0, 1e-12);
}

TEST(Octree, ReturnsClosestOfStackedPatches) {
  std::vector<Patch> patches;
  for (int i = 0; i < 5; ++i) {
    patches.emplace_back(Vec3{0, 0, static_cast<double>(i)}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0);
  }
  Octree tree;
  tree.build(patches);
  const auto hit = tree.intersect(Ray({0.5, 0.5, 10}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patch, 4);  // top-most (z=4) patch is closest from above
  EXPECT_NEAR(hit->dist, 6.0, 1e-12);
}

TEST(Octree, SubdividesLargeInputs) {
  const auto patches = random_patch_soup(500, 123);
  Octree tree;
  tree.build(patches);
  EXPECT_GT(tree.node_count(), 8u);  // actually split
  EXPECT_GT(tree.depth(), 0);
}

TEST(Octree, RespectsMaxDepth) {
  const auto patches = random_patch_soup(500, 321);
  Octree tree;
  Octree::BuildParams params;
  params.max_depth = 2;
  tree.build(patches, params);
  EXPECT_LE(tree.depth(), 2);
}

class OctreeEquivalenceTest : public ::testing::TestWithParam<const char*> {};

// The flattened traversal runs the exact same hit arithmetic as
// Patch::intersect on its packed per-leaf constants, so against the brute
// scan the agreement must be bitwise — patch, dist, s, t and front — not
// merely approximate. Any divergence means the packed copy or the traversal
// pruning drifted from the reference.
TEST_P(OctreeEquivalenceTest, MatchesBruteForceBitwiseOnScenes) {
  const Scene scene = scenes::by_name(GetParam());
  Lcg48 rng(999);
  int hits = 0;
  for (int i = 0; i < 1500; ++i) {
    // Rays from inside the scene bounds.
    const Aabb b = scene.bounds();
    const Vec3 e = b.extent();
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());

    const auto fast = scene.intersect(ray);
    const auto slow = scene.intersect_brute(ray);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "ray " << i;
    if (fast) {
      ++hits;
      ASSERT_EQ(fast->patch, slow->patch) << "ray " << i;
      EXPECT_EQ(fast->dist, slow->dist) << "ray " << i;
      EXPECT_EQ(fast->s, slow->s) << "ray " << i;
      EXPECT_EQ(fast->t, slow->t) << "ray " << i;
      EXPECT_EQ(fast->front, slow->front) << "ray " << i;
    }
  }
  EXPECT_GT(hits, 300) << "test exercised too few hits to be meaningful";
}

// Rays from *outside* the bounds and grazing directions, plus a capped-tmax
// sweep — the pruning paths (root slab miss, child slab clipped by the
// running best, early pop-time rejection) all have to agree with brute force.
TEST_P(OctreeEquivalenceTest, MatchesBruteForceOnFuzzedRays) {
  const Scene scene = scenes::by_name(GetParam());
  const Aabb b = scene.bounds();
  const Vec3 c = b.center();
  const Vec3 e = b.extent();
  const double diag = e.length();
  Lcg48 rng(77);
  for (int i = 0; i < 1500; ++i) {
    // Origins in a shell around the scene (some inside, some far outside).
    const double scale = 0.2 + 2.0 * rng.uniform();
    const Vec3 origin = c + Vec3{(rng.uniform() - 0.5) * e.x * scale,
                                 (rng.uniform() - 0.5) * e.y * scale,
                                 (rng.uniform() - 0.5) * e.z * scale};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (i % 3 == 0) dir.z *= 1e-4;  // grazing, nearly axis-parallel
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    const double tmax = i % 2 == 0 ? kNoHit : diag * rng.uniform();

    const auto fast = scene.intersect(ray, tmax);
    const auto slow = scene.intersect_brute(ray, tmax);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "ray " << i;
    if (fast) {
      ASSERT_EQ(fast->patch, slow->patch) << "ray " << i;
      EXPECT_EQ(fast->dist, slow->dist) << "ray " << i;
      EXPECT_EQ(fast->s, slow->s) << "ray " << i;
      EXPECT_EQ(fast->t, slow->t) << "ray " << i;
      EXPECT_EQ(fast->front, slow->front) << "ray " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenes, OctreeEquivalenceTest,
                         ::testing::Values("cornell", "harpsichord", "lab"));

TEST(Octree, MatchesBruteForceOnRandomSoup) {
  const auto patches = random_patch_soup(300, 2024);
  Octree tree;
  tree.build(patches);
  Lcg48 rng(555);
  for (int i = 0; i < 800; ++i) {
    const Ray ray = random_ray(rng);
    const auto fast = tree.intersect(ray);

    SceneHit best;
    best.dist = kNoHit;
    for (std::size_t p = 0; p < patches.size(); ++p) {
      if (auto hit = patches[p].intersect(ray, best.dist)) {
        best.patch = static_cast<int>(p);
        best.dist = hit->dist;
      }
    }
    ASSERT_EQ(fast.has_value(), best.patch >= 0) << "ray " << i;
    if (fast) {
      EXPECT_EQ(fast->patch, best.patch);
      EXPECT_NEAR(fast->dist, best.dist, 1e-9);
    }
  }
}

TEST(Octree, RebuildReplacesAllFlattenedState) {
  // Regression: build() must clear the packed hit-test array along with the
  // node/CSR arrays — a rebuild that appends to stale packed entries makes
  // every leaf read the previous build's constants.
  const auto patches = random_patch_soup(300, 4711);
  Octree tree;
  tree.build(patches);  // first build, default params
  Octree::BuildParams params;
  params.max_leaf_items = 2;
  params.max_depth = 8;
  tree.build(patches, params);  // rebuild in place with a different shape

  Lcg48 rng(808);
  for (int i = 0; i < 400; ++i) {
    const Ray ray = random_ray(rng);
    const auto fast = tree.intersect(ray);

    SceneHit best;
    best.dist = kNoHit;
    PatchHit hit;
    for (std::size_t p = 0; p < patches.size(); ++p) {
      if (patches[p].intersect(ray, best.dist, hit)) {
        best.patch = static_cast<int>(p);
        best.dist = hit.dist;
      }
    }
    ASSERT_EQ(fast.has_value(), best.patch >= 0) << "ray " << i;
    if (fast) {
      EXPECT_EQ(fast->patch, best.patch) << "ray " << i;
      EXPECT_EQ(fast->dist, best.dist) << "ray " << i;
    }
  }
}

TEST(Octree, CountedTraversalPrunesMostPatchTests) {
  // The whole point of the index: far fewer patch tests than the linear scan.
  // The counted traversal is the deterministic work meter the bench uses;
  // pin that it (a) agrees with the fast path and (b) actually prunes.
  const Scene scene = scenes::computer_lab();
  Lcg48 rng(31);
  const Aabb b = scene.bounds();
  const Vec3 e = b.extent();
  TraversalStats stats;
  const int rays = 400;
  for (int i = 0; i < rays; ++i) {
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    SceneHit counted;
    const bool hit = scene.accel().intersect_counted(ray, kNoHit, counted, stats);
    const auto fast = scene.intersect(ray);
    ASSERT_EQ(hit, fast.has_value()) << "ray " << i;
    if (hit) {
      EXPECT_EQ(counted.patch, fast->patch);
      EXPECT_EQ(counted.dist, fast->dist);
    }
  }
  const double tests_per_ray = static_cast<double>(stats.patch_tests) / rays;
  EXPECT_LT(tests_per_ray, static_cast<double>(scene.patch_count()) / 10.0)
      << "octree is testing a large fraction of the scene per ray";
  EXPECT_GT(stats.nodes_visited, 0u);
}

TEST(Octree, TmaxCutsOffDistantHits) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  Octree tree;
  tree.build(patches);
  EXPECT_FALSE(tree.intersect(Ray({0.5, 0.5, 5}, {0, 0, -1}), 4.0).has_value());
  EXPECT_TRUE(tree.intersect(Ray({0.5, 0.5, 5}, {0, 0, -1}), 6.0).has_value());
}

TEST(Octree, ParallelBuildIsBitwiseIdenticalToSerial) {
  // build() decomposes per top-level octant across threads; the stitched
  // arenas must flatten to the same node/CSR/SoA arrays for ANY worker count
  // — not approximately, bitwise. Cover a real architectural scene and a
  // random soup, at thread counts below and above the 8-octant task count.
  const Scene lab = scenes::computer_lab();
  const auto soup = random_patch_soup(600, 909);
  for (const auto& patches : {std::vector<Patch>(lab.patches().begin(), lab.patches().end()),
                              soup}) {
    Octree serial;
    Octree::BuildParams params;
    params.workers = 1;
    serial.build(patches, params);
    for (const int workers : {2, 4, 8, 16}) {
      Octree parallel;
      params.workers = workers;
      parallel.build(patches, params);
      ASSERT_TRUE(parallel.identical_to(serial)) << "workers=" << workers;
      EXPECT_EQ(parallel.node_count(), serial.node_count());
      EXPECT_EQ(parallel.depth(), serial.depth());
      EXPECT_EQ(parallel.item_ref_count(), serial.item_ref_count());
    }
  }
}

TEST(Octree, ParallelBuildAnswersIdenticalQueries) {
  // Belt and braces over the structural pin: traversal through a
  // parallel-built tree returns the same hits as through the serial build.
  const auto patches = random_patch_soup(400, 1234);
  Octree::BuildParams params;
  params.workers = 1;
  Octree serial;
  serial.build(patches, params);
  params.workers = 4;
  Octree parallel;
  parallel.build(patches, params);
  Lcg48 rng(42);
  for (int i = 0; i < 500; ++i) {
    const Ray ray = random_ray(rng);
    const auto a = serial.intersect(ray);
    const auto b = parallel.intersect(ray);
    ASSERT_EQ(a.has_value(), b.has_value()) << "ray " << i;
    if (a) {
      EXPECT_EQ(a->patch, b->patch);
      EXPECT_EQ(a->dist, b->dist);
      EXPECT_EQ(a->s, b->s);
      EXPECT_EQ(a->t, b->t);
    }
  }
}

TEST(Octree, SoALanePaddingInvariants) {
  // Every leaf block is padded up to the kernel lane width, so the total lane
  // count is a multiple of the width, at least the real reference count, and
  // at most one-partial-block-per-node above it. The kernel itself must
  // report a sane compile-time configuration.
  const int W = kernel_lane_width();
  ASSERT_GE(W, 1);
  ASSERT_LE(W, 8);
  EXPECT_STRNE(kernel_backend(), "");
  const Scene scene = scenes::computer_lab();
  Octree tree;
  tree.build(scene.patches());
  EXPECT_EQ(tree.lane_count() % static_cast<std::size_t>(W), 0u);
  EXPECT_GE(tree.lane_count(), tree.item_ref_count());
  EXPECT_LE(tree.lane_count(),
            tree.item_ref_count() + tree.node_count() * static_cast<std::size_t>(W - 1));
  // CSR and lane layouts describe the same item partition.
  const auto offsets = tree.item_offsets();
  ASSERT_EQ(offsets.size(), tree.node_count() + 1);
  EXPECT_EQ(offsets.back(), tree.item_ref_count());
  ASSERT_EQ(tree.item_ids().size(), tree.item_ref_count());
}

TEST(Octree, SceneBoundsCoverAllPatches) {
  const Scene scene = scenes::cornell_box();
  const Aabb root = scene.accel().bounds();
  for (const Patch& p : scene.patches()) {
    const Aabb pb = p.bounds();
    EXPECT_TRUE(root.contains(pb.lo));
    EXPECT_TRUE(root.contains(pb.hi));
  }
}

}  // namespace
}  // namespace photon
