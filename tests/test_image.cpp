#include "core/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace photon {
namespace {

TEST(Image, Dimensions) {
  const Image img(16, 9);
  EXPECT_EQ(img.width(), 16);
  EXPECT_EQ(img.height(), 9);
}

TEST(Image, PixelAccess) {
  Image img(4, 4);
  img.at(2, 3) = Rgb{1.0, 0.5, 0.25};
  EXPECT_EQ(img.at(2, 3), Rgb(1.0, 0.5, 0.25));
  EXPECT_EQ(img.at(0, 0), Rgb());
}

TEST(Image, MaxValue) {
  Image img(2, 2);
  img.at(0, 0) = {0.1, 0.2, 0.3};
  img.at(1, 1) = {0.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(img.max_value(), 5.0);
}

TEST(Image, MeanLuminance) {
  Image img(2, 1);
  img.at(0, 0) = {1.0, 1.0, 1.0};
  img.at(1, 0) = {0.0, 0.0, 0.0};
  EXPECT_NEAR(img.mean_luminance(), 0.5, 1e-12);
}

TEST(Image, WritePpmHeaderAndSize) {
  Image img(8, 5);
  img.at(3, 2) = {1.0, 0.0, 0.0};
  const std::string path = ::testing::TempDir() + "/photon_test.ppm";
  ASSERT_TRUE(img.write_ppm(path, 1.0));

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 8);
  EXPECT_EQ(h, 5);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> data(8 * 5 * 3);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(data.size()));
  std::remove(path.c_str());
}

TEST(Image, ToneMapClampsAndGammas) {
  Image img(2, 1);
  img.at(0, 0) = {10.0, 10.0, 10.0};  // clips to white
  img.at(1, 0) = {0.5, 0.5, 0.5};
  const std::string path = ::testing::TempDir() + "/photon_tone.ppm";
  ASSERT_TRUE(img.write_ppm(path, 1.0, 2.2));
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);  // P6
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  unsigned char px[6];
  in.read(reinterpret_cast<char*>(px), 6);
  EXPECT_EQ(px[0], 255);  // clamped
  // 0.5^(1/2.2) * 255 ~ 186
  EXPECT_NEAR(px[3], 186, 2);
  std::remove(path.c_str());
}

TEST(Image, AutoExposureProducesVisibleOutput) {
  Image img(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) img.at(x, y) = Rgb::splat(0.001);  // dim scene
  }
  const std::string path = ::testing::TempDir() + "/photon_auto.ppm";
  ASSERT_TRUE(img.write_ppm(path));  // auto exposure
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  std::getline(in, line);
  unsigned char px[3];
  in.read(reinterpret_cast<char*>(px), 3);
  EXPECT_GT(px[0], 100);  // auto exposure brightened the dim scene
  std::remove(path.c_str());
}

TEST(Image, WriteFailsOnBadPath) {
  const Image img(2, 2);
  EXPECT_FALSE(img.write_ppm("/nonexistent_dir_zzz/out.ppm"));
}

}  // namespace
}  // namespace photon
