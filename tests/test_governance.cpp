// Run governance (engine/governor.hpp + core/error.hpp): graceful
// preemption with bitwise resume on every backend, the distributed stop
// word, the Progress beacon and stuck-run watchdog, the memory-budget
// degradation ladder, scene validation, strict fault-plan parsing, and —
// when PHOTON_CLI_PATH is defined by the build — subprocess tests that
// SIGTERM a real photon_cli run and check the documented exit codes and the
// bitwise-equal resume. CI runs this file under the `governance` ctest
// label, including the ASan+UBSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef PHOTON_CLI_PATH
#include <csignal>
#include <fstream>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "core/error.hpp"
#include "engine/governor.hpp"
#include "engine/recovery.hpp"
#include "geom/scenes.hpp"
#include "mp/fault.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

constexpr std::uint64_t kWindow = 200;
constexpr std::uint64_t kPhotons = 1200;

const Scene& small_scene() {
  static const Scene cornell = scenes::cornell_box();
  return cornell;
}

RunConfig gov_config() {
  RunConfig cfg;
  cfg.photons = kPhotons;
  cfg.batch = kWindow;
  cfg.adapt_batch = false;
  cfg.workers = 2;
  cfg.groups = 2;
  return cfg;
}

// Every backend the governance layer must cover.
const std::vector<std::string>& all_backends() {
  static const std::vector<std::string> names = {"serial", "shared", "dist-particle",
                                                 "dist-spatial", "hybrid"};
  return names;
}

void expect_conserved(const RunResult& r, std::uint64_t photons, const std::string& label) {
  EXPECT_GE(r.counters.emitted, photons) << label;
  EXPECT_EQ(r.forest.emitted_total(), r.counters.emitted) << label;
  EXPECT_EQ(r.forest.total_tally_all(), r.counters.emitted + r.counters.bounces) << label;
}

// ---- RunStatus / error taxonomy -------------------------------------------

TEST(ErrorTaxonomy, ExitCodesMatchTheDocumentedTable) {
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kCheckpoint), 3);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kComm), 4);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kPreempted), 5);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kWedged), 6);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kConfig), 7);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kScene), 8);
  EXPECT_EQ(engine_error_exit_code(EngineErrorKind::kResource), 9);
}

TEST(ErrorTaxonomy, CodesAreStableSlugs) {
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kConfig), "config");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kScene), "scene");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kResource), "resource");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kComm), "comm");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kPreempted), "preempted");
  EXPECT_STREQ(engine_error_code(EngineErrorKind::kWedged), "wedged");
}

TEST(ErrorTaxonomy, SubclassesCarryKindAndDetail) {
  const SceneError scene("bad patch", 17);
  EXPECT_EQ(scene.engine_kind(), EngineErrorKind::kScene);
  EXPECT_EQ(scene.patch, 17);
  EXPECT_EQ(scene.exit_code(), 8);

  const WedgedError wedged("stuck", "snapshot text");
  EXPECT_EQ(wedged.snapshot, "snapshot text");
  EXPECT_STREQ(wedged.code(), "wedged");

  // CommError joins the hierarchy but keeps its fine-grained kind.
  const CommError comm(CommErrorKind::kWedged, 3, 7, "poisoned");
  EXPECT_EQ(comm.engine_kind(), EngineErrorKind::kComm);
  EXPECT_EQ(comm.kind(), CommErrorKind::kWedged);
  EXPECT_EQ(comm.peer(), 3);
  EXPECT_EQ(comm.exit_code(), 4);
  const EngineError& as_engine = comm;
  EXPECT_STREQ(as_engine.code(), "comm");
}

TEST(ErrorTaxonomy, RunStatusNames) {
  EXPECT_STREQ(run_status_name(RunStatus::kComplete), "complete");
  EXPECT_STREQ(run_status_name(RunStatus::kPreempted), "preempted");
  EXPECT_STREQ(run_status_name(RunStatus::kOverBudget), "over-budget");
}

// ---- The distributed stop word --------------------------------------------

TEST(StopWord, VotesAndFootprintPackWithoutCollision) {
  EXPECT_EQ(encode_stop_word(false, 0), 0u);
  EXPECT_FALSE(stop_word_preempted(0));
  EXPECT_TRUE(stop_word_preempted(encode_stop_word(true, 0)));

  // 4096 ranks all voting still fits the 13 vote bits.
  const std::uint64_t all_votes = 4096 * encode_stop_word(true, 0);
  EXPECT_TRUE(stop_word_preempted(all_votes));
  EXPECT_FALSE(stop_word_over_budget(all_votes, 1));  // votes never read as bytes

  // Footprint travels in 64 KiB units above the vote bits.
  const std::uint64_t one_mib = encode_stop_word(false, 1u << 20);
  EXPECT_FALSE(stop_word_preempted(one_mib));
  EXPECT_TRUE(stop_word_over_budget(one_mib, (1u << 20) - 1));
  EXPECT_FALSE(stop_word_over_budget(one_mib, 1u << 20));  // budget is inclusive
  EXPECT_FALSE(stop_word_over_budget(one_mib, 0));         // 0 = unlimited

  // Sub-unit footprints round UP to one unit: a nonzero forest must be
  // visible to a budget smaller than the 64 KiB granularity, or tiny budgets
  // could never trip.
  EXPECT_EQ(encode_stop_word(false, 0) >> 13, 0u);
  EXPECT_EQ(encode_stop_word(false, 1) >> 13, 1u);
  EXPECT_EQ(encode_stop_word(false, 65536) >> 13, 1u);
  EXPECT_EQ(encode_stop_word(false, 65537) >> 13, 2u);
  EXPECT_TRUE(stop_word_over_budget(encode_stop_word(false, 1), 1));
  EXPECT_TRUE(stop_word_over_budget(encode_stop_word(false, 65536), 65535));
}

TEST(StopWord, FootprintCapsSoTheDoubleSumStaysExact) {
  // MiniMPI's allreduce reduces through double: per-rank units are capped at
  // 2^27 so even a full 4096-rank world of maximal words — including every
  // partial sum of the reduction — stays strictly below 2^53 and sums
  // exactly.
  const std::uint64_t capped = encode_stop_word(true, ~0ull);
  EXPECT_EQ(capped >> 13, 1ull << 27);
  EXPECT_TRUE(stop_word_preempted(capped));  // the cap never clobbers the vote
  EXPECT_LT(4096.0 * static_cast<double>(capped), 9007199254740992.0);  // 2^53
}

// ---- Preempt flag ----------------------------------------------------------

TEST(Preempt, FlagSetsAndClears) {
  clear_preempt();
  EXPECT_FALSE(preempt_requested());
  request_preempt();
  EXPECT_TRUE(preempt_requested());
  clear_preempt();
  EXPECT_FALSE(preempt_requested());
  install_preempt_handlers();  // idempotent; just must not crash
  install_preempt_handlers();
}

// ---- Progress beacon -------------------------------------------------------

TEST(Progress, TicksPulsesAndSnapshots) {
  Progress& p = Progress::instance();
  p.reset();
  EXPECT_EQ(p.total_ticks(), 0u);
  EXPECT_TRUE(std::isinf(p.seconds_since_tick()));

  p.tick("unit-a", 3);
  p.tick("unit-a", 5);
  p.tick("unit-b", 1);
  p.pulse();
  EXPECT_EQ(p.total_ticks(), 4u);
  EXPECT_LT(p.seconds_since_tick(), 5.0);

  const ProgressSnapshot snap = p.snapshot();
  EXPECT_EQ(snap.total_ticks, 4u);
  ASSERT_EQ(snap.slots.size(), 2u);
  const ProgressSlot& a = snap.slots[0].label == "unit-a" ? snap.slots[0] : snap.slots[1];
  EXPECT_EQ(a.ticks, 2u);
  EXPECT_EQ(a.detail, 5u);  // last reported index wins
  EXPECT_NE(snap.to_string().find("unit-a"), std::string::npos);

  p.reset();
  EXPECT_EQ(p.total_ticks(), 0u);
  EXPECT_TRUE(p.snapshot().slots.empty());
}

TEST(Progress, EveryBackendTicksTheBeacon) {
  for (const std::string& name : all_backends()) {
    Progress::instance().reset();
    const auto backend = make_backend(name);
    ASSERT_NE(backend, nullptr) << name;
    (void)backend->run(small_scene(), gov_config(), nullptr);
    EXPECT_GT(Progress::instance().total_ticks(), 0u) << name;
  }
  Progress::instance().reset();
}

// ---- Governed runs: no-op when idle, graceful stop when preempted ----------

TEST(Governance, GovernedFlagAloneChangesNothing) {
  // Governance must be free: same bits with the polling (and, distributed,
  // the per-window stop allreduce) enabled but never triggered.
  for (const std::string& name : all_backends()) {
    const auto backend = make_backend(name);
    RunConfig cfg = gov_config();
    const RunResult plain = backend->run(small_scene(), cfg, nullptr);
    cfg.governed = true;
    clear_preempt();
    const RunResult governed = backend->run(small_scene(), cfg, nullptr);
    EXPECT_EQ(governed.status, RunStatus::kComplete) << name;
    EXPECT_TRUE(governed.forest == plain.forest) << name;
    EXPECT_EQ(governed.counters.bounces, plain.counters.bounces) << name;
  }
}

TEST(Governance, PreemptResumeIsBitwiseOnEveryBackend) {
  // The tentpole acceptance, in-process: preempt at the first window
  // boundary, resume the remainder, and require the stitched run to equal
  // the uninterrupted one bit for bit. dist-spatial contracts bitwise resume
  // only at width 1 (at wider shapes a resume shifts the round boundaries
  // and with them the cross-owner record interleaving), so it runs here at
  // workers=1; every other backend runs at the full test shape.
  for (const std::string& name : all_backends()) {
    const auto backend = make_backend(name);
    ASSERT_TRUE(backend->supports_resume()) << name;
    RunConfig cfg = gov_config();
    if (name == "dist-spatial") cfg.workers = 1;
    cfg.governed = true;
    clear_preempt();
    const RunResult reference = backend->run(small_scene(), cfg, nullptr);

    request_preempt();
    RunResult part = backend->run(small_scene(), cfg, nullptr);
    clear_preempt();
    EXPECT_EQ(part.status, RunStatus::kPreempted) << name;
    ASSERT_GT(part.counters.emitted, 0u) << name;
    ASSERT_LT(part.counters.emitted, kPhotons) << name;

    RunConfig rest = cfg;
    rest.photons = kPhotons - part.counters.emitted;
    const RunResult resumed = backend->run(small_scene(), rest, &part);
    EXPECT_EQ(resumed.status, RunStatus::kComplete) << name;
    EXPECT_TRUE(resumed.forest == reference.forest) << name;
    EXPECT_EQ(resumed.counters.bounces, reference.counters.bounces) << name;
    expect_conserved(resumed, kPhotons, name);
  }
}

TEST(Governance, SpatialPreemptResumeConservesAtWidth2) {
  // The wide-shape dist-spatial contract: the governed stop leaves a
  // contiguous emitted prefix, the resume completes the budget, and every
  // record is tallied exactly once — conservation, not bitwise.
  const auto backend = make_backend("dist-spatial");
  RunConfig cfg = gov_config();
  cfg.governed = true;
  request_preempt();
  RunResult part = backend->run(small_scene(), cfg, nullptr);
  clear_preempt();
  ASSERT_EQ(part.status, RunStatus::kPreempted);
  ASSERT_GT(part.counters.emitted, 0u);
  ASSERT_LT(part.counters.emitted, kPhotons);
  EXPECT_EQ(part.forest.emitted_total(), part.counters.emitted);

  RunConfig rest = cfg;
  rest.photons = kPhotons - part.counters.emitted;
  const RunResult resumed = backend->run(small_scene(), rest, &part);
  EXPECT_EQ(resumed.status, RunStatus::kComplete);
  expect_conserved(resumed, kPhotons, "dist-spatial@2");
}

TEST(Governance, PreemptedResultRoundTripsThroughACheckpoint) {
  // The partial result is not just resumable in memory: it must survive the
  // checkpoint-v2 serialization and resume bitwise from the loaded copy.
  const auto backend = make_backend("serial");
  RunConfig cfg = gov_config();
  cfg.governed = true;
  const RunResult reference = backend->run(small_scene(), cfg, nullptr);

  request_preempt();
  RunResult part = backend->run(small_scene(), cfg, nullptr);
  clear_preempt();
  ASSERT_EQ(part.status, RunStatus::kPreempted);

  std::stringstream bytes;
  save_checkpoint(part, bytes);
  RunResult loaded;
  ASSERT_EQ(load_checkpoint_status(bytes, loaded), CheckpointStatus::kOk);
  EXPECT_EQ(loaded.counters.emitted, part.counters.emitted);

  RunConfig rest = cfg;
  rest.photons = kPhotons - loaded.counters.emitted;
  const RunResult resumed = backend->run(small_scene(), rest, &loaded);
  EXPECT_TRUE(resumed.forest == reference.forest);
}

TEST(Governance, ElasticRunnerStopsLeggingAfterAPreempt) {
  // run_elastic must not start the next leg after a governed stop: the
  // partial state is the caller's checkpoint.
  const auto backend = make_backend("serial");
  RunConfig cfg = gov_config();
  cfg.governed = true;
  cfg.checkpoint_photons = 600;
  request_preempt();
  const RunResult r = run_elastic(*backend, small_scene(), cfg, nullptr);
  clear_preempt();
  EXPECT_EQ(r.status, RunStatus::kPreempted);
  EXPECT_LT(r.counters.emitted, kPhotons);
}

TEST(Governance, RuntimeOverBudgetStopsGracefullyAndResumes) {
  // A 1-byte budget trips the footprint poll at the first window boundary;
  // the stop is resumable and the stitched run stays bitwise.
  const auto backend = make_backend("serial");
  RunConfig cfg = gov_config();
  const RunResult reference = backend->run(small_scene(), cfg, nullptr);

  cfg.governed = true;
  cfg.memory_budget = 1;
  clear_preempt();
  RunResult part = backend->run(small_scene(), cfg, nullptr);
  EXPECT_EQ(part.status, RunStatus::kOverBudget);
  ASSERT_LT(part.counters.emitted, kPhotons);

  RunConfig rest = cfg;
  rest.memory_budget = 0;
  rest.photons = kPhotons - part.counters.emitted;
  const RunResult resumed = backend->run(small_scene(), rest, &part);
  EXPECT_EQ(resumed.status, RunStatus::kComplete);
  EXPECT_TRUE(resumed.forest == reference.forest);
}

TEST(Governance, DistributedOverBudgetStopsEveryRankTogether) {
  for (const std::string& name : {std::string("hybrid"), std::string("dist-particle"),
                                  std::string("dist-spatial")}) {
    const auto backend = make_backend(name);
    RunConfig cfg = gov_config();
    cfg.governed = true;
    cfg.memory_budget = 1;
    clear_preempt();
    const RunResult part = backend->run(small_scene(), cfg, nullptr);
    EXPECT_EQ(part.status, RunStatus::kOverBudget) << name;
    EXPECT_GT(part.counters.emitted, 0u) << name;
    EXPECT_LT(part.counters.emitted, kPhotons) << name;
    // Whatever was emitted before the agreed stop is fully tallied.
    EXPECT_EQ(part.forest.emitted_total(), part.counters.emitted) << name;
    EXPECT_EQ(part.forest.total_tally_all(), part.counters.emitted + part.counters.bounces)
        << name;
  }
}

// ---- Per-run governance scope (RunControl) ---------------------------------

TEST(RunControlScope, BackToBackGovernedRunsDoNotInheritTheVote) {
  // The regression that blocked the service: a preempt vote delivered to run
  // 1 used to stay latched, so run 2 in the same process stopped instantly
  // unless the caller remembered to clear the flag. Committing to
  // kPreempted now CONSUMES the vote — the second run must complete with no
  // manual clear in between, on every backend.
  for (const std::string& name : all_backends()) {
    const auto backend = make_backend(name);
    RunConfig cfg = gov_config();
    if (name == "dist-spatial") cfg.workers = 1;
    cfg.governed = true;
    cfg.control = std::make_shared<RunControl>();

    cfg.control->request_preempt();
    const RunResult first = backend->run(small_scene(), cfg, nullptr);
    EXPECT_EQ(first.status, RunStatus::kPreempted) << name;
    ASSERT_LT(first.counters.emitted, kPhotons) << name;

    const RunResult second = backend->run(small_scene(), cfg, nullptr);
    EXPECT_EQ(second.status, RunStatus::kComplete) << name;
    EXPECT_EQ(second.counters.emitted, kPhotons) << name;
  }
}

TEST(RunControlScope, GlobalVoteIsAlsoConsumedOnPreempt) {
  // Same contract on the process-global path (no control attached): the CLI
  // rerun-after-SIGTERM flow depends on it.
  const auto backend = make_backend("serial");
  RunConfig cfg = gov_config();
  cfg.governed = true;
  request_preempt();
  const RunResult first = backend->run(small_scene(), cfg, nullptr);
  EXPECT_EQ(first.status, RunStatus::kPreempted);
  const RunResult second = backend->run(small_scene(), cfg, nullptr);
  EXPECT_EQ(second.status, RunStatus::kComplete);
  clear_preempt();  // isolation, in case the first assertion failed
}

TEST(RunControlScope, ScopedPreemptNeverTouchesTheGlobalFlagOrASibling) {
  // cancel(id) semantics: preempting one job's control stops that run only —
  // the process flag stays clear and a sibling config is unaffected.
  clear_preempt();
  const auto backend = make_backend("shared");
  RunConfig victim = gov_config();
  victim.governed = true;
  victim.control = std::make_shared<RunControl>();
  RunConfig sibling = gov_config();
  sibling.governed = true;
  sibling.control = std::make_shared<RunControl>();

  victim.control->request_preempt();
  const RunResult stopped = backend->run(small_scene(), victim, nullptr);
  EXPECT_EQ(stopped.status, RunStatus::kPreempted);
  EXPECT_FALSE(preempt_requested()) << "scoped preempt leaked to the process flag";
  EXPECT_FALSE(sibling.control->preempt_requested());

  const RunResult untouched = backend->run(small_scene(), sibling, nullptr);
  EXPECT_EQ(untouched.status, RunStatus::kComplete);
}

TEST(RunControlScope, EachRunTicksItsOwnBeacon) {
  // A scoped run heartbeats its own Progress instance — the watchdog for job
  // A must never be kept alive by job B's ticks. (Scoped ticks also pulse
  // the process beacon so whole-process liveness still works; that is
  // covered by Progress.EveryBackendTicksTheBeacon.)
  RunConfig cfg = gov_config();
  cfg.governed = true;
  cfg.control = std::make_shared<RunControl>();
  const auto idle = std::make_shared<RunControl>();
  const auto backend = make_backend("serial");
  (void)backend->run(small_scene(), cfg, nullptr);
  EXPECT_GT(cfg.control->progress().total_ticks(), 0u);
  EXPECT_EQ(idle->progress().total_ticks(), 0u);
}

// ---- Watchdog --------------------------------------------------------------

TEST(Watchdog, FiresAfterDeadlinePlusGraceWithSnapshotAndEmergency) {
  Progress::instance().reset();
  Progress::instance().tick("stuck-stage", 42);
  std::atomic<bool> emergency_ran{false};
  Watchdog wd(0.08, 0.05);
  wd.set_emergency([&](const ProgressSnapshot& snap) {
    EXPECT_GE(snap.total_ticks, 1u);
    emergency_ran = true;
  });
  const auto t0 = std::chrono::steady_clock::now();
  while (!wd.fired() &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(wd.fired());
  EXPECT_TRUE(emergency_ran);
  const ProgressSnapshot snap = wd.wedged_snapshot();
  ASSERT_EQ(snap.slots.size(), 1u);
  EXPECT_EQ(snap.slots[0].label, "stuck-stage");
  EXPECT_EQ(snap.slots[0].detail, 42u);
  Progress::instance().reset();
}

TEST(Watchdog, TickingKeepsItHealthy) {
  Progress::instance().reset();
  Watchdog wd(0.3, 0.3);
  // Tick well inside the deadline for longer than deadline+grace: a live run
  // must never be declared wedged.
  for (int i = 0; i < 35; ++i) {
    Progress::instance().tick("alive", static_cast<std::uint64_t>(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(wd.fired());
  Progress::instance().reset();
}

TEST(Watchdog, WedgedDistributedRunAbortsTypedInsteadOfHanging) {
  // A scripted 60s delivery delay with NO comm deadline: without the
  // watchdog the blocked recv would wait out the full minute. The watchdog
  // must declare the run wedged, poison the world, and surface a typed
  // WedgedError — in bounded time.
  Progress::instance().reset();
  const auto backend = make_backend("hybrid");
  RunConfig cfg = gov_config();
  auto plan = std::make_shared<FaultPlan>();
  plan->add_delay({0, 1, 0, 0, 60.0});
  cfg.fault_plan = plan;
  cfg.watchdog_s = 0.25;
  cfg.watchdog_grace_s = 0.15;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)run_elastic(*backend, small_scene(), cfg, nullptr);
    FAIL() << "wedged run returned instead of aborting";
  } catch (const WedgedError& e) {
    EXPECT_STREQ(e.code(), "wedged");
    EXPECT_EQ(e.exit_code(), 6);
    EXPECT_FALSE(e.snapshot.empty());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 30.0) << "typed abort took too long — watchdog did not bound the hang";
  Progress::instance().reset();
}

TEST(Watchdog, EmergencyCheckpointHoldsTheLastCompletedLeg) {
  // Wedge in leg 2 (delay the 4th 0->1 record delivery: windows are 3 per
  // leg) with an emergency path set: the flushed checkpoint must load as
  // kOk and hold leg 1's photons.
  Progress::instance().reset();
  const std::string path = testing::TempDir() + "photon_emergency.ckpt";
  std::remove(path.c_str());
  const auto backend = make_backend("hybrid");
  RunConfig cfg = gov_config();
  cfg.checkpoint_photons = 600;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_delay({0, 1, 0, 3, 60.0});
  cfg.fault_plan = plan;
  cfg.watchdog_s = 0.25;
  cfg.watchdog_grace_s = 0.15;
  cfg.emergency_checkpoint_path = path;
  EXPECT_THROW((void)run_elastic(*backend, small_scene(), cfg, nullptr), WedgedError);
  RunResult loaded;
  ASSERT_EQ(load_checkpoint_status(path, loaded), CheckpointStatus::kOk);
  EXPECT_EQ(loaded.counters.emitted, 600u);
  std::remove(path.c_str());
  Progress::instance().reset();
}

// ---- Memory admission ladder ----------------------------------------------

TEST(Admission, UnlimitedBudgetChangesNothing) {
  Scene scene = scenes::cornell_box();
  RunConfig cfg = gov_config();
  const AdmissionPlan plan = govern_admission(scene, cfg);
  EXPECT_EQ(plan.sink_buffer, cfg.sink_buffer);
  EXPECT_FALSE(plan.shrank_buffers);
  EXPECT_FALSE(plan.coarsened_accel);
}

TEST(Admission, GenerousBudgetAdmitsUndegraded) {
  Scene scene = scenes::cornell_box();
  RunConfig cfg = gov_config();
  cfg.memory_budget = 1ull << 40;
  const AdmissionPlan plan = govern_admission(scene, cfg);
  EXPECT_FALSE(plan.shrank_buffers);
  EXPECT_FALSE(plan.coarsened_accel);
  EXPECT_GT(plan.estimated_bytes, 0u);
  EXPECT_LE(plan.estimated_bytes, cfg.memory_budget);
}

TEST(Admission, TightBudgetWalksTheLadderInOrder) {
  // Find the undegraded estimate, then set the budget just below it: rung 1
  // (sink buffers) must engage first, and the returned estimate must honor
  // the budget.
  Scene scene = scenes::cornell_box();
  RunConfig cfg = gov_config();
  cfg.memory_budget = 1ull << 40;
  const std::uint64_t undegraded = govern_admission(scene, cfg).estimated_bytes;
  cfg.memory_budget = undegraded - 1;
  const AdmissionPlan plan = govern_admission(scene, cfg);
  EXPECT_TRUE(plan.shrank_buffers);
  EXPECT_LE(plan.sink_buffer, cfg.sink_buffer);
  EXPECT_LE(plan.estimated_bytes, cfg.memory_budget);
}

TEST(Admission, ImpossibleBudgetRefusesWithATypedError) {
  Scene scene = scenes::cornell_box();
  RunConfig cfg = gov_config();
  cfg.memory_budget = 1024;
  try {
    (void)govern_admission(scene, cfg);
    FAIL() << "1 KiB budget was admitted";
  } catch (const ResourceError& e) {
    EXPECT_STREQ(e.code(), "resource");
    EXPECT_EQ(e.exit_code(), 9);
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos);
  }
}

// ---- Scene validation ------------------------------------------------------

Scene valid_two_patch_scene() {
  Scene scene;
  const int white = scene.add_material(Material::lambertian(Rgb::splat(0.5)));
  const int lamp = scene.add_material(Material::emitter(Rgb::splat(10.0)));
  (void)white;
  scene.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0));
  scene.add_patch(Patch({0, 0, 1}, {1, 0, 0}, {0, 1, 0}, lamp));
  scene.add_luminaire(1);
  return scene;
}

void expect_scene_rejected(const Scene& scene, int expected_patch, const char* label) {
  try {
    validate_scene(scene);
    FAIL() << label << ": degenerate scene was accepted";
  } catch (const SceneError& e) {
    EXPECT_EQ(e.patch, expected_patch) << label << ": " << e.what();
    EXPECT_EQ(e.exit_code(), 8) << label;
  }
}

TEST(SceneValidation, AcceptsTheBuiltInsAndAValidScene) {
  EXPECT_NO_THROW(validate_scene(scenes::cornell_box()));
  EXPECT_NO_THROW(validate_scene(scenes::harpsichord_room()));
  EXPECT_NO_THROW(validate_scene(scenes::computer_lab()));
  EXPECT_NO_THROW(validate_scene(valid_two_patch_scene()));
}

TEST(SceneValidation, RejectsDegeneratePatchesNamingTheIndex) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  {
    Scene s = valid_two_patch_scene();
    s.add_patch(Patch({0, 0, 2}, {0, 0, 0}, {0, 1, 0}, 0));  // zero-area
    expect_scene_rejected(s, 2, "zero-area");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_patch(Patch({0, 0, 2}, {1, 0, 0}, {2, 0, 0}, 0));  // collinear edges
    expect_scene_rejected(s, 2, "collinear");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_patch(Patch({nan, 0, 2}, {1, 0, 0}, {0, 1, 0}, 0));
    expect_scene_rejected(s, 2, "nan-origin");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_patch(Patch({0, 0, 2}, {inf, 0, 0}, {0, 1, 0}, 0));
    expect_scene_rejected(s, 2, "inf-edge");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_patch(Patch({0, 0, 2}, {1, 0, 0}, {0, 1, 0}, 99));  // bad material
    expect_scene_rejected(s, 2, "bad-material");
  }
}

TEST(SceneValidation, RejectsInvalidLuminaires) {
  {
    Scene s = valid_two_patch_scene();
    s.add_luminaire(0, Rgb{-1.0, 1.0, 1.0});  // negative power channel
    expect_scene_rejected(s, 0, "negative-power");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_luminaire(0, Rgb::splat(1.0), 0.0);  // angular_scale outside (0,1]
    expect_scene_rejected(s, 0, "zero-angular-scale");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_luminaire(0, Rgb::splat(1.0), 1.5);
    expect_scene_rejected(s, 0, "angular-scale-above-one");
  }
  {
    Scene s = valid_two_patch_scene();
    s.add_luminaire(0, Rgb{std::nan(""), 1.0, 1.0});
    expect_scene_rejected(s, 0, "nan-power");
  }
}

TEST(SceneValidation, RejectsEmptyAndPowerlessScenes) {
  expect_scene_rejected(Scene{}, -1, "empty");
  {
    // Patches but no luminaires: nothing to emit.
    Scene s;
    s.add_material(Material::lambertian(Rgb::splat(0.5)));
    s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0));
    expect_scene_rejected(s, -1, "no-luminaires");
  }
}

// ---- Fault-plan parsing fuzz ----------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedForms) {
  for (const char* spec : {
           "kill:rank=1",
           "kill:rank=0,batch=2,point=mid",
           "drop:src=0,dst=1",
           "drop:src=0,dst=1,tag=3,nth=2",
           "delay:src=1,dst=0,ms=50",
           "delay:src=1,dst=0,ms=0.5,tag=1,nth=4",
           "kill:rank=1;drop:src=0,dst=1;delay:src=0,dst=1,ms=1",
       }) {
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(parse_fault_plan(spec, plan, error)) << spec << ": " << error;
    EXPECT_FALSE(plan.empty()) << spec;
  }
}

TEST(FaultPlanParse, RejectsMalformedSpecsWithADiagnostic) {
  // The deterministic fuzz corpus: every entry must fail loudly — never
  // parse to a silently-defaulted fault (the old strtod-with-null-end read
  // "rank=x" as rank 0, exactly the wrong rank to kill).
  for (const char* spec : {
           "",                                   // empty plan
           ";;",                                 // only separators
           "kill",                               // no kind separator
           "boom:rank=1",                        // unknown kind
           "kill:",                              // kill without rank
           "kill:rank=",                         // empty value
           "kill:rank=x",                        // non-numeric
           "kill:rank=1x",                       // trailing garbage
           "kill:rank=-1",                       // negative rank
           "kill:rank=99999999999999999999",     // int overflow
           "kill:rank=1,rank=2",                 // duplicate key
           "kill:rank=1,nht=3",                  // typo'd key
           "kill:rank=1,point=sideways",         // unknown kill point
           "kill:rank=1,batch=1e3",              // float where int expected
           "drop:src=0",                         // missing dst
           "drop:dst=1",                         // missing src
           "drop:src=0,dst=1,ms=5",              // ms on a drop
           "drop:src=0,dst=1,nth=-2",            // negative count
           "delay:src=0,dst=1",                  // missing ms
           "delay:src=0,dst=1,ms=",              // empty ms
           "delay:src=0,dst=1,ms=-5",            // negative delay
           "delay:src=0,dst=1,ms=fast",          // non-numeric delay
           "kill:rank=1;boom:rank=2",            // valid entry then garbage
       }) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(parse_fault_plan(spec, plan, error)) << "accepted: '" << spec << "'";
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---- Subprocess CLI tests --------------------------------------------------

#ifdef PHOTON_CLI_PATH

// Runs photon_cli with `args`, optionally delivering `sig` after
// `kill_after_ms`. Returns the exit status (or -1 on harness failure;
// -signal when the child died on an unhandled signal).
int run_cli(const std::vector<std::string>& args, int kill_after_ms = -1,
            int sig = SIGTERM) {
  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    std::vector<char*> argv;
    static const std::string exe = PHOTON_CLI_PATH;
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    if (!std::freopen("/dev/null", "w", stdout)) _exit(127);
    if (!std::freopen("/dev/null", "w", stderr)) _exit(127);
    execv(exe.c_str(), argv.data());
    _exit(127);
  }
  if (kill_after_ms >= 0) {
    usleep(static_cast<useconds_t>(kill_after_ms) * 1000);
    kill(pid, sig);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

bool files_equal(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  const std::string ca((std::istreambuf_iterator<char>(fa)), std::istreambuf_iterator<char>());
  const std::string cb((std::istreambuf_iterator<char>(fb)), std::istreambuf_iterator<char>());
  return !ca.empty() && ca == cb;
}

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

TEST(CliGovernance, ExitCodeTable) {
  const std::string dir = testing::TempDir();
  EXPECT_EQ(run_cli({}), 2);                                              // usage
  EXPECT_EQ(run_cli({"simulate", "cornell", dir + "x.bin", "--bogus=1"}), 7);
  EXPECT_EQ(run_cli({"simulate", "cornell", dir + "x.bin", "--photons=ten"}), 7);
  EXPECT_EQ(run_cli({"simulate", "cornell", dir + "x.bin", "--photons=1",
                     "--photons=2"}), 7);
  EXPECT_EQ(run_cli({"simulate", "no-such-scene.txt", dir + "x.bin"}), 8);
  // A present-but-damaged checkpoint must refuse, not silently restart.
  const std::string bad = dir + "photon_bad.ckpt";
  { std::ofstream(bad) << "not a checkpoint"; }
  EXPECT_EQ(run_cli({"simulate", "cornell", dir + "x.bin", "--photons=100",
                     "--checkpoint=" + bad}), 3);
  std::remove(bad.c_str());
}

// SIGTERM mid-run must exit with the resumable code 5 having written a
// loadable checkpoint and NO answer file; rerunning the identical command
// must resume and produce a bitwise-identical answer. The full matrix
// (serial, shared, hybrid) is the issue's acceptance test.
TEST(CliGovernance, SigtermResumeIsBitwise) {
  const std::string dir = testing::TempDir();
  for (const std::string bk : {"serial", "shared", "hybrid"}) {
    const std::string ref = dir + "gov_ref_" + bk + ".bin";
    const std::string ans = dir + "gov_ans_" + bk + ".bin";
    const std::string ckpt = dir + "gov_" + bk + ".ckpt";
    std::remove(ans.c_str());
    std::remove(ckpt.c_str());
    const std::vector<std::string> common = {
        "simulate", "cornell", ans,           "--backend=" + bk,  "--photons=4000000",
        "--batch=50000",       "--workers=2", "--groups=2",       "--seed=99",
        "--checkpoint=" + ckpt};
    std::vector<std::string> ref_args = common;
    ref_args[2] = ref;
    ref_args.back() = "--checkpoint=" + dir + "gov_ref_" + bk + ".ckpt";
    ASSERT_EQ(run_cli(ref_args), 0) << bk;

    const int first = run_cli(common, 250, SIGTERM);
    if (first == 0) {
      // The run outraced the signal on this machine; nothing to resume.
      EXPECT_TRUE(file_exists(ans)) << bk;
    } else {
      ASSERT_EQ(first, 5) << bk << ": expected the resumable preempt code";
      EXPECT_FALSE(file_exists(ans)) << bk << ": partial answer file written";
      RunResult loaded;
      ASSERT_EQ(load_checkpoint_status(ckpt, loaded), CheckpointStatus::kOk) << bk;
      EXPECT_GT(loaded.counters.emitted, 0u) << bk;
      EXPECT_LT(loaded.counters.emitted, 4000000u) << bk;
      ASSERT_EQ(run_cli(common), 0) << bk << ": resume failed";
    }
    EXPECT_TRUE(files_equal(ref, ans)) << bk << ": resumed answer not bitwise-equal";
  }
}

TEST(CliGovernance, SigintAndSigusr1AlsoPreempt) {
  const std::string dir = testing::TempDir();
  for (const int sig : {SIGINT, SIGUSR1}) {
    const std::string ans = dir + "gov_sig" + std::to_string(sig) + ".bin";
    const std::string ckpt = ans + ".ckpt";
    std::remove(ckpt.c_str());
    const int code = run_cli({"simulate", "cornell", ans, "--photons=4000000",
                              "--batch=50000"},
                             250, sig);
    if (code != 0) {
      EXPECT_EQ(code, 5) << "signal " << sig;
      EXPECT_TRUE(file_exists(ckpt)) << "signal " << sig;
    }
    std::remove(ckpt.c_str());
  }
}

#endif  // PHOTON_CLI_PATH

}  // namespace
}  // namespace photon
