// Engine-level contracts: backend registry lookup, cross-backend determinism
// (the whole point of one pipeline behind pluggable backends), and the
// BatchController clamping pins.
#include "engine/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(BackendRegistry, BuiltinsAreRegistered) {
  const std::vector<std::string> names = backend_names();
  for (const char* expected :
       {"serial", "shared", "dist-particle", "dist-spatial", "hybrid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing backend " << expected;
  }
  for (const std::string& name : names) {
    const auto backend = make_backend(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
}

TEST(BackendRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_backend("cuda"), nullptr);
  EXPECT_EQ(make_backend(""), nullptr);
}

TEST(BackendRegistry, RuntimeRegistrationAndCollision) {
  class FakeBackend final : public Backend {
   public:
    std::string name() const override { return "fake"; }
    RunResult run(const Scene&, const RunConfig&, const RunResult*) override { return {}; }
  };
  EXPECT_TRUE(register_backend("fake", [] { return std::make_unique<FakeBackend>(); }));
  EXPECT_NE(make_backend("fake"), nullptr);
  // Names are first-come-first-served; the built-ins cannot be shadowed.
  EXPECT_FALSE(register_backend("serial", [] { return std::make_unique<FakeBackend>(); }));
}

// The per-backend bitwise-vs-serial pins (shared@1, dist-particle@1,
// hybrid@every shape, ...) moved to the cross-backend conformance suite —
// tests/test_conformance.cpp — which runs every registered backend through
// the same matrix on all bundled scenes.

TEST(CrossBackend, SharedMatchesSerialPhotonStreamReference) {
  // The pool-backed shared backend traces photon i from RNG stream i, so at
  // any worker count its forest — per-channel emission totals included — is
  // bitwise identical to the serial photon-stream reference (a strictly
  // stronger contract than the old leapfrog-union totals).
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  cfg.workers = 4;
  const RunResult shared = make_backend("shared")->run(s, cfg);

  RunConfig rc = cfg;
  rc.photon_streams = true;
  const RunResult ref = make_backend("serial")->run(s, rc);
  EXPECT_TRUE(ref.forest == shared.forest);
  for (int c = 0; c < kNumChannels; ++c) {
    EXPECT_EQ(shared.forest.emitted(c), ref.forest.emitted(c)) << "channel " << c;
  }
}

TEST(CrossBackend, SerialResumeFromSharedCheckpointGetsFreshStream) {
  // A shared-backend result carries no single RNG state (rng_mul == 0).
  // Resuming it through `serial` must not adopt the raw zeros — that would
  // degenerate the LCG to a constant stream where every photon reflects
  // until the bounce guard trips.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.workers = 2;
  const RunResult first = make_backend("shared")->run(s, cfg);
  ASSERT_EQ(first.rng_mul, 0u);

  const RunResult resumed = make_backend("serial")->run(s, cfg, &first);
  EXPECT_EQ(resumed.counters.emitted, 2 * cfg.photons);
  EXPECT_EQ(resumed.forest.emitted_total(), 2 * cfg.photons);
  // The degenerate stream drives every photon into the bounce limit.
  EXPECT_EQ(resumed.counters.terminated, first.counters.terminated);
  EXPECT_NE(resumed.rng_mul, 0u);
}

TEST(CrossBackend, SharedResumeDoesNotReplayTheFirstLeg) {
  // A resumed shared leg must draw fresh photons, not re-trace the first
  // leg's streams (which would silently double-count identical samples).
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.workers = 2;
  const RunResult first = make_backend("shared")->run(s, cfg);
  const RunResult resumed = make_backend("shared")->run(s, cfg, &first);

  EXPECT_EQ(resumed.forest.emitted_total(), 2 * cfg.photons);
  // A replayed leg would reproduce the first leg's counters exactly; fresh
  // disjoint streams make that virtually impossible across all five fields.
  const TraceCounters leg2{resumed.counters.emitted - first.counters.emitted,
                           resumed.counters.bounces - first.counters.bounces,
                           resumed.counters.absorbed - first.counters.absorbed,
                           resumed.counters.escaped - first.counters.escaped,
                           resumed.counters.terminated - first.counters.terminated};
  EXPECT_EQ(leg2.emitted, first.counters.emitted);
  EXPECT_FALSE(leg2.bounces == first.counters.bounces &&
               leg2.absorbed == first.counters.absorbed &&
               leg2.escaped == first.counters.escaped)
      << "resumed leg reproduced the first leg's photons";
}

TEST(CrossBackend, ResumeSupportIsAdvertisedCorrectly) {
  // Every built-in backend resumes since BinForest::merge landed: the
  // distributed backends fold a checkpoint into their partitioned trees.
  for (const char* name : {"serial", "shared", "dist-particle", "dist-spatial", "hybrid"}) {
    EXPECT_TRUE(make_backend(name)->supports_resume()) << name;
  }
}

TEST(BatchControllerClamp, GrowthClampsExactlyToMax) {
  BatchPolicy policy;
  policy.initial = 900;
  policy.max_size = 1000;
  BatchController c(policy);
  c.update(100.0);  // 900 * 1.5 = 1350 -> clamped
  EXPECT_EQ(c.size(), 1000u);
  c.update(200.0);  // still improving, still clamped
  EXPECT_EQ(c.size(), 1000u);
}

TEST(BatchControllerClamp, BackoffClampsExactlyToMin) {
  BatchPolicy policy;
  policy.initial = 110;
  policy.min_size = 100;
  BatchController c(policy);
  c.update(100.0);  // grows to 165
  c.update(10.0);   // 165 * 0.9 = 148
  c.update(1.0);    // 133
  c.update(0.1);    // 119
  c.update(0.01);   // 107
  c.update(0.001);  // 96 -> clamped to 100
  EXPECT_EQ(c.size(), 100u);
  c.update(0.0001);  // stays pinned at the floor
  EXPECT_EQ(c.size(), 100u);
}

}  // namespace
}  // namespace photon
