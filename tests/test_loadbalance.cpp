#include "par/loadbalance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(LoadBalance, ProbeIsDeterministic) {
  const Scene s = scenes::cornell_box();
  const auto a = measure_patch_loads(s, 1000, 42);
  const auto b = measure_patch_loads(s, 1000, 42);
  EXPECT_EQ(a, b);
}

TEST(LoadBalance, ProbeCountsAllRecords) {
  const Scene s = scenes::cornell_box();
  const auto loads = measure_patch_loads(s, 2000, 42);
  const std::uint64_t total = std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
  // At least one record (the emission tally) per photon.
  EXPECT_GE(total, 2000u);
}

TEST(LoadBalance, NaiveIsRoundRobin) {
  const std::vector<std::uint64_t> loads{5, 5, 5, 5, 5, 5, 5, 5};
  const LoadBalance lb = assign_naive(loads, 4);
  EXPECT_EQ(lb.owner, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  for (const std::uint64_t l : lb.rank_load) EXPECT_EQ(l, 10u);
}

TEST(LoadBalance, NaiveIgnoresLoad) {
  // Two hot patches land on ranks 0 and 1 regardless of the load they carry.
  const std::vector<std::uint64_t> loads{1000, 1000, 1, 1, 1, 1, 1, 1};
  const LoadBalance lb = assign_naive(loads, 4);
  EXPECT_EQ(lb.rank_load[0], 1001u);
  EXPECT_EQ(lb.rank_load[1], 1001u);
  EXPECT_GT(imbalance(lb), 1.5);
}

TEST(LoadBalance, BestFitSpreadsHotPatches) {
  const std::vector<std::uint64_t> loads{1000, 1000, 1, 1, 1, 1, 1, 1};
  const LoadBalance lb = assign_bestfit(loads, 4);
  // The two heavy patches must land on different ranks.
  EXPECT_NE(lb.owner[0], lb.owner[1]);
  EXPECT_LT(imbalance(lb), 2.01);
}

TEST(LoadBalance, BestFitNeverWorseThanNaive) {
  const Scene s = scenes::harpsichord_room();
  const auto loads = measure_patch_loads(s, 5000, 7);
  for (const int P : {2, 4, 8}) {
    const double naive = imbalance(assign_naive(loads, P));
    const double packed = imbalance(assign_bestfit(loads, P));
    EXPECT_LE(packed, naive + 1e-9) << "P=" << P;
  }
}

TEST(LoadBalance, BestFitNearlyBalancesRealScene) {
  // Table 5.2: bin packing evens out the per-processor photon counts — up to
  // the granularity limit: a tree cannot be split, so the best possible
  // imbalance is bounded below by the heaviest tree's share of the total.
  const Scene s = scenes::harpsichord_room();
  const auto loads = measure_patch_loads(s, 8000, 11);
  const int P = 8;
  const LoadBalance lb = assign_bestfit(loads, P);

  const std::uint64_t total = std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
  const std::uint64_t heaviest = *std::max_element(loads.begin(), loads.end());
  const double lower_bound =
      std::max(1.0, static_cast<double>(heaviest) * P / static_cast<double>(total));
  EXPECT_LT(imbalance(lb), 1.05 * lower_bound + 0.05);
}

TEST(LoadBalance, BestFitIsDeterministic) {
  const std::vector<std::uint64_t> loads{9, 3, 7, 3, 5, 1, 8, 2};
  const LoadBalance a = assign_bestfit(loads, 3);
  const LoadBalance b = assign_bestfit(loads, 3);
  EXPECT_EQ(a.owner, b.owner);
}

TEST(LoadBalance, EveryPatchOwned) {
  const std::vector<std::uint64_t> loads(37, 1);
  for (const int P : {1, 2, 5, 8}) {
    for (const LoadBalance& lb : {assign_naive(loads, P), assign_bestfit(loads, P)}) {
      ASSERT_EQ(lb.owner.size(), loads.size());
      for (const int o : lb.owner) {
        EXPECT_GE(o, 0);
        EXPECT_LT(o, P);
      }
      const std::uint64_t total =
          std::accumulate(lb.rank_load.begin(), lb.rank_load.end(), std::uint64_t{0});
      EXPECT_EQ(total, 37u);
    }
  }
}

TEST(LoadBalance, MorePatchesThanRanksNotRequired) {
  const std::vector<std::uint64_t> loads{5, 3};
  const LoadBalance lb = assign_bestfit(loads, 8);
  EXPECT_EQ(lb.rank_load.size(), 8u);
  EXPECT_NE(lb.owner[0], lb.owner[1]);  // each heavy patch gets its own rank
}

TEST(LoadBalance, SingleRankOwnsAll) {
  const std::vector<std::uint64_t> loads{4, 4, 4};
  const LoadBalance lb = assign_bestfit(loads, 1);
  for (const int o : lb.owner) EXPECT_EQ(o, 0);
  EXPECT_DOUBLE_EQ(imbalance(lb), 1.0);
}

TEST(LoadBalance, ImbalanceOfEmpty) {
  LoadBalance lb;
  EXPECT_DOUBLE_EQ(imbalance(lb), 1.0);
}

}  // namespace
}  // namespace photon
