#include "sim/emitter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(Emitter, NoLuminaires) {
  Scene s;
  s.add_material(Material::lambertian({0.5, 0.5, 0.5}));
  s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0));
  s.build();
  const Emitter e(s);
  EXPECT_FALSE(e.has_luminaires());
}

TEST(Emitter, TotalPowerMatchesScene) {
  const Scene s = scenes::cornell_box();
  const Emitter e(s);
  EXPECT_NEAR(e.total_power().r, s.total_power().r, 1e-9);
  EXPECT_GT(e.total_power().sum(), 0.0);
}

TEST(Emitter, OriginOnLuminairePatch) {
  const Scene s = scenes::floor_and_light();
  const Emitter e(s);
  Lcg48 rng(1);
  for (int i = 0; i < 500; ++i) {
    const EmissionSample sample = e.emit(rng);
    ASSERT_GE(sample.patch, 0);
    const Patch& p = s.patch(sample.patch);
    const Vec3 expected = p.point_at(sample.s, sample.t);
    EXPECT_NEAR(distance(sample.origin, expected), 0.0, 1e-12);
    EXPECT_TRUE(s.material_of(p).emissive());
  }
}

TEST(Emitter, DirectionInEmissionHemisphere) {
  const Scene s = scenes::floor_and_light();
  const Emitter e(s);
  Lcg48 rng(2);
  for (int i = 0; i < 500; ++i) {
    const EmissionSample sample = e.emit(rng);
    const Patch& p = s.patch(sample.patch);
    EXPECT_GT(dot(sample.dir, p.normal()), 0.0);
    EXPECT_NEAR(sample.dir.length(), 1.0, 1e-12);
    EXPECT_GT(sample.dir_local.z, 0.0);
  }
}

TEST(Emitter, LuminaireSelectionProportionalToPower) {
  // Two luminaires with 3:1 power ratio.
  Scene s;
  const int m = s.add_material(Material::emitter({1, 1, 1}));
  const int a = s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 0, 1}, m));
  const int b = s.add_patch(Patch({5, 0, 0}, {1, 0, 0}, {0, 0, 1}, m));
  s.add_luminaire(a, {3, 3, 3});
  s.add_luminaire(b, {1, 1, 1});
  s.build();

  const Emitter e(s);
  Lcg48 rng(3);
  const int n = 40000;
  int count_a = 0;
  for (int i = 0; i < n; ++i) {
    if (e.emit(rng).patch == a) ++count_a;
  }
  EXPECT_NEAR(static_cast<double>(count_a) / n, 0.75, 0.01);
}

TEST(Emitter, ChannelProportionalToSpectrum) {
  Scene s;
  const int m = s.add_material(Material::emitter({6, 3, 1}));
  const int p = s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 0, 1}, m));
  s.add_luminaire(p);
  s.build();

  const Emitter e(s);
  Lcg48 rng(4);
  const int n = 40000;
  int counts[3] = {};
  for (int i = 0; i < n; ++i) ++counts[e.emit(rng).channel];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.01);
}

TEST(Emitter, AngularScaleCollimation) {
  Scene s;
  const int m = s.add_material(Material::emitter({1, 1, 1}));
  const int p = s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, m));  // normal +z
  s.add_luminaire(p, {}, /*angular_scale=*/0.1);
  s.build();

  const Emitter e(s);
  Lcg48 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const EmissionSample sample = e.emit(rng);
    const double sin_theta =
        std::sqrt(sample.dir.x * sample.dir.x + sample.dir.y * sample.dir.y);
    EXPECT_LE(sin_theta, 0.1 + 1e-9);
  }
}

TEST(Emitter, PointsCoverThePatchUniformly) {
  const Scene s = scenes::floor_and_light();
  const Emitter e(s);
  Lcg48 rng(6);
  const int n = 20000;
  int quadrants[4] = {};
  for (int i = 0; i < n; ++i) {
    const EmissionSample sample = e.emit(rng);
    ++quadrants[(sample.s < 0.5 ? 0 : 1) + (sample.t < 0.5 ? 0 : 2)];
  }
  for (const int q : quadrants) {
    EXPECT_NEAR(q, n / 4.0, 5.0 * std::sqrt(n / 4.0));
  }
}

TEST(Emitter, DeterministicGivenStream) {
  const Scene s = scenes::cornell_box();
  const Emitter e(s);
  Lcg48 a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    const EmissionSample sa = e.emit(a);
    const EmissionSample sb = e.emit(b);
    EXPECT_EQ(sa.patch, sb.patch);
    EXPECT_EQ(sa.channel, sb.channel);
    EXPECT_EQ(sa.origin, sb.origin);
    EXPECT_EQ(sa.dir, sb.dir);
  }
}

}  // namespace
}  // namespace photon
