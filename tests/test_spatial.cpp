#include "par/spatial.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(PartitionSpace, TilesTheSceneBounds) {
  const Scene s = scenes::cornell_box();
  for (const int P : {1, 2, 3, 4, 8}) {
    const std::vector<Aabb> regions = partition_space(s, P);
    ASSERT_EQ(regions.size(), static_cast<std::size_t>(P));
    // Volumes sum to the root volume.
    Aabb root;
    double volume = 0.0;
    for (const Aabb& r : regions) {
      root.expand(r);
      const Vec3 e = r.extent();
      volume += e.x * e.y * e.z;
    }
    const Vec3 re = root.extent();
    EXPECT_NEAR(volume, re.x * re.y * re.z, 1e-6 * volume) << "P=" << P;
  }
}

TEST(PartitionSpace, BalancesPatchCounts) {
  const Scene s = scenes::computer_lab();
  const int P = 8;
  const std::vector<Aabb> regions = partition_space(s, P);
  std::vector<int> counts(static_cast<std::size_t>(P), 0);
  for (const Patch& p : s.patches()) {
    const int r = region_of(regions, p.point_at(0.5, 0.5));
    ASSERT_GE(r, 0);
    ++counts[static_cast<std::size_t>(r)];
  }
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, static_cast<int>(s.patch_count()));
  for (const int c : counts) {
    // Median splits: no region should hold more than ~2x its fair share.
    EXPECT_LT(c, 2 * total / P + 32);
  }
}

TEST(RegionOf, BoundaryPointsResolveUniquely) {
  const Scene s = scenes::cornell_box();
  const std::vector<Aabb> regions = partition_space(s, 4);
  Lcg48 rng(5);
  const Aabb bounds = s.bounds();
  const Vec3 e = bounds.extent();
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p = bounds.lo +
                   Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    int containing = 0;
    for (const Aabb& r : regions) {
      if (r.contains(p)) ++containing;
    }
    EXPECT_GE(containing, 1);
    EXPECT_GE(region_of(regions, p), 0);
  }
  // Outside point.
  EXPECT_EQ(region_of(regions, bounds.hi + Vec3{10, 10, 10}), -1);
}

TEST(PhotonStream, BlocksAreDisjoint) {
  std::set<std::uint64_t> seen;
  const int photons = 50, draws = 400;
  for (int i = 0; i < photons; ++i) {
    Lcg48 rng = photon_stream(42, static_cast<std::uint64_t>(i));
    for (int d = 0; d < draws; ++d) seen.insert(rng.next_bits());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(photons * draws));
}

TEST(PhotonStream, Deterministic) {
  Lcg48 a = photon_stream(7, 123);
  Lcg48 b = photon_stream(7, 123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_bits(), b.next_bits());
}

class SpatialSimTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialSimTest, MatchesFullOctreeReference) {
  // The defining property of the distributed-geometry mode: partitioning
  // space (and routing photons across region boundaries) must not change the
  // answer. Per-photon RNG streams make the comparison exact.
  const int P = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  cfg.batch = 500;

  cfg.workers = P;
  const RunResult spatial = run_spatial(s, cfg);
  const RunResult reference = run_photon_streams(s, cfg);

  EXPECT_EQ(spatial.counters.emitted, reference.counters.emitted);
  EXPECT_EQ(spatial.counters.bounces, reference.counters.bounces);
  EXPECT_EQ(spatial.counters.absorbed, reference.counters.absorbed);

  const auto a = spatial.forest.patch_tallies();
  const auto b = reference.forest.patch_tallies();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_NEAR(static_cast<double>(a[p]), static_cast<double>(b[p]),
                static_cast<double>(spatial.forest.total_nodes()))
        << "patch " << p;
  }
}

TEST_P(SpatialSimTest, OpenSceneEscapesAreCounted) {
  const int P = GetParam();
  const Scene s = scenes::floor_and_light();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.batch = 250;
  cfg.workers = P;
  const RunResult spatial = run_spatial(s, cfg);
  const RunResult reference = run_photon_streams(s, cfg);
  EXPECT_EQ(spatial.counters.escaped, reference.counters.escaped);
  EXPECT_EQ(spatial.counters.absorbed, reference.counters.absorbed);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SpatialSimTest, ::testing::Values(1, 2, 4));

TEST(SpatialSim, GeometryIsActuallyDistributed) {
  // The point of the exercise (chapter 6): each rank indexes only part of
  // the scene.
  const Scene s = scenes::computer_lab();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.workers = 8;
  const RunResult r = run_spatial(s, cfg);
  std::uint64_t max_local = 0;
  for (const RankReport& rep : r.ranks) {
    max_local = std::max(max_local, rep.local_patches);
  }
  // Boundary-straddling patches are duplicated, but nobody should hold the
  // whole scene.
  EXPECT_LT(max_local, s.patch_count() * 3 / 4);
}

TEST(SpatialSim, PhotonsAreRoutedBetweenRegions) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000;
  cfg.workers = 4;
  const RunResult r = run_spatial(s, cfg);
  std::uint64_t routed = 0, received = 0;
  for (const RankReport& rep : r.ranks) {
    routed += rep.photons_out;
    received += rep.photons_in;
  }
  EXPECT_GT(routed, 0u) << "photons should cross region boundaries";
  EXPECT_EQ(routed, received);
}

TEST(SpatialSim, TalliesLandOnOwners) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000;
  cfg.workers = 4;
  const RunResult r = run_spatial(s, cfg);
  std::uint64_t tallies = 0;
  for (const RankReport& rep : r.ranks) tallies += rep.tallies;
  // Every record (emission + bounce) applied exactly once.
  EXPECT_EQ(tallies, r.counters.emitted + r.counters.bounces);
}

// (spatial@1 == the photon-stream reference, bitwise per scene, is pinned by
// the conformance suite; the per-batch sweep below keeps the exchange-
// threshold coverage.)

// Determinism through the RouterSink/overlapped-record path: rank count x
// injection batch size must never make a run irreproducible.
class SpatialDeterminismTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SpatialDeterminismTest, RepeatedRunsAreBitwiseIdentical) {
  const auto [P, batch] = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 600;
  cfg.batch = batch;
  cfg.workers = P;
  const RunResult a = run_spatial(s, cfg);
  const RunResult b = run_spatial(s, cfg);
  EXPECT_TRUE(a.forest == b.forest) << "P=" << P << " batch=" << batch;
  EXPECT_EQ(a.counters.bounces, b.counters.bounces);
}

INSTANTIATE_TEST_SUITE_P(RanksAndBatches, SpatialDeterminismTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1u, 64u, 4096u)));

TEST(SpatialSim, OneRankIsBitwiseReferenceAtAnyBatch) {
  for (const std::uint64_t batch : {1ull, 64ull, 4096ull}) {
    const Scene s = scenes::cornell_box();
    RunConfig cfg;
    cfg.photons = 1000;
    cfg.batch = batch;
    cfg.workers = 1;
    const RunResult spatial = run_spatial(s, cfg);
    const RunResult reference = run_photon_streams(s, cfg);
    EXPECT_TRUE(spatial.forest == reference.forest) << "batch=" << batch;
  }
}

TEST(SpatialSim, ResumeContinuesThePhotonSequence) {
  // Spatial resume continues the per-photon id sequence, so leg1 + resumed
  // leg2 must reproduce a straight run of the combined budget exactly
  // (per-patch tallies are conserved by the merge fold and paths are
  // id-deterministic).
  const Scene s = scenes::cornell_box();
  RunConfig leg1_cfg;
  leg1_cfg.photons = 1500;
  leg1_cfg.batch = 250;
  leg1_cfg.workers = 4;
  const RunResult leg1 = run_spatial(s, leg1_cfg);

  RunConfig leg2_cfg = leg1_cfg;
  leg2_cfg.photons = 1500;
  const RunResult resumed = run_spatial(s, leg2_cfg, &leg1);

  RunConfig straight_cfg = leg1_cfg;
  straight_cfg.photons = 3000;
  const RunResult straight = run_spatial(s, straight_cfg);

  EXPECT_EQ(resumed.counters.emitted, straight.counters.emitted);
  EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces);
  EXPECT_EQ(resumed.forest.emitted_total(), 3000u);
  const auto a = resumed.forest.patch_tallies();
  const auto b = straight.forest.patch_tallies();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p], b[p]) << "patch " << p;
  }
}

}  // namespace
}  // namespace photon
