// Regression suite: each built-in scene must simulate and render sensibly
// from its canonical viewpoint. Catches geometry regressions (flipped
// normals, dead luminaires, absorbed-on-first-bounce bugs) that the unit
// tests can miss.
#include <gtest/gtest.h>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

namespace photon {
namespace {

struct SceneCase {
  const char* name;
  Vec3 eye;
  Vec3 look;
  double min_bounces;  // photons must survive at least this long on average
};

class SceneRenderTest : public ::testing::TestWithParam<SceneCase> {};

TEST_P(SceneRenderTest, SimulatesAndRenders) {
  const SceneCase& param = GetParam();
  const Scene scene = scenes::by_name(param.name);

  RunConfig cfg;
  cfg.photons = 60000;
  const RunResult r = run_serial(scene, cfg);

  // Physics sanity: photons bounce (no absorbed-at-the-source bug), counters
  // are consistent, and the forest actually accumulated light.
  EXPECT_GT(r.counters.bounces_per_photon(), param.min_bounces) << param.name;
  EXPECT_EQ(r.counters.absorbed + r.counters.escaped + r.counters.terminated,
            r.counters.emitted);
  EXPECT_GT(r.forest.total_tally_all(), cfg.photons);

  // Rendering sanity: the canonical view is lit across most of the frame.
  const Camera cam(param.eye, param.look, {0, 1, 0}, 60.0, 48, 36);
  const Image img = render(scene, r.forest, cam);
  EXPECT_GT(img.mean_luminance(), 0.0) << param.name;
  int lit = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (img.at(x, y).sum() > 0.0) ++lit;
    }
  }
  EXPECT_GT(lit, img.width() * img.height() / 2) << param.name << ": mostly black render";
}

INSTANTIATE_TEST_SUITE_P(
    BuiltinScenes, SceneRenderTest,
    ::testing::Values(SceneCase{"cornell", {2.75, 2.75, 5.3}, {2.75, 2.75, 0.0}, 0.8},
                      SceneCase{"harpsichord", {7.2, 2.2, 0.8}, {3.5, 0.9, 4.0}, 0.4},
                      SceneCase{"lab", {12.0, 2.4, 1.2}, {11.0, 0.9, 9.0}, 0.6}),
    [](const ::testing::TestParamInfo<SceneCase>& info) { return info.param.name; });

TEST(SceneRender, ClosedScenesDoNotLeak) {
  for (const char* name : {"cornell"}) {
    const Scene scene = scenes::by_name(name);
    RunConfig cfg;
    cfg.photons = 20000;
    const RunResult r = run_serial(scene, cfg);
    EXPECT_EQ(r.counters.escaped, 0u) << name << " leaks photons";
  }
}

TEST(SceneRender, RoomScenesLeakOnlyThroughSkylights) {
  // The harpsichord room and lab are closed boxes; photons can only vanish by
  // absorption (including on luminaire panel backs), never by escaping.
  for (const char* name : {"harpsichord", "lab"}) {
    const Scene scene = scenes::by_name(name);
    RunConfig cfg;
    cfg.photons = 20000;
    const RunResult r = run_serial(scene, cfg);
    EXPECT_EQ(r.counters.escaped, 0u) << name;
  }
}

}  // namespace
}  // namespace photon
