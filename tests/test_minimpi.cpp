#include "mp/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

namespace photon {
namespace {

Bytes make_payload(int src, int dst, int tag = 0) {
  Bytes b(12);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dst, 4);
  std::memcpy(b.data() + 8, &tag, 4);
  return b;
}

class MiniMpiTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiTest, RankAndSize) {
  const int P = GetParam();
  std::atomic<int> checks{0};
  run_world(P, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), P);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), P);
    checks.fetch_add(1);
  });
  EXPECT_EQ(checks.load(), P);
}

TEST_P(MiniMpiTest, RingSendRecv) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    comm.send(next, make_payload(comm.rank(), next));
    const Bytes got = comm.recv(prev);
    int src = -1, dst = -1;
    std::memcpy(&src, got.data(), 4);
    std::memcpy(&dst, got.data() + 4, 4);
    EXPECT_EQ(src, prev);
    EXPECT_EQ(dst, comm.rank());
  });
}

TEST_P(MiniMpiTest, MessagesArriveInOrder) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send(P - 1, make_payload(0, P - 1, i));
    } else if (comm.rank() == P - 1) {
      for (int i = 0; i < 50; ++i) {
        const Bytes got = comm.recv(0);
        int tag = -1;
        std::memcpy(&tag, got.data() + 8, 4);
        EXPECT_EQ(tag, i);
      }
    }
  });
}

TEST_P(MiniMpiTest, AlltoallDeliversEverything) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d);
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      int src = -1, dst = -1;
      std::memcpy(&src, in[static_cast<std::size_t>(s)].data(), 4);
      std::memcpy(&dst, in[static_cast<std::size_t>(s)].data() + 4, 4);
      EXPECT_EQ(src, s);
      EXPECT_EQ(dst, comm.rank());
    }
  });
}

TEST_P(MiniMpiTest, AlltoallWithEmptyBuffers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));  // all empty
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    for (const Bytes& b : in) EXPECT_TRUE(b.empty());
  });
}

TEST_P(MiniMpiTest, BarrierSeparatesPhases) {
  const int P = GetParam();
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run_world(P, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all P phase-1 increments.
    if (phase1.load() != P) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(MiniMpiTest, RepeatedBarriers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
}

TEST_P(MiniMpiTest, AllreduceSum) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, P * (P + 1) / 2.0);
  });
}

TEST_P(MiniMpiTest, AllreduceMax) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank() * 10));
    EXPECT_DOUBLE_EQ(m, (P - 1) * 10.0);
  });
}

TEST_P(MiniMpiTest, AllreduceU64) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const std::uint64_t total = comm.allreduce_sum_u64(100);
    EXPECT_EQ(total, static_cast<std::uint64_t>(P) * 100u);
  });
}

TEST_P(MiniMpiTest, RepeatedAllreducesDoNotCrossTalk) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      const double total = comm.allreduce_sum(static_cast<double>(i));
      EXPECT_DOUBLE_EQ(total, static_cast<double>(i * P));
    }
  });
}

TEST_P(MiniMpiTest, TrafficCountersExcludeSelf) {
  const int P = GetParam();
  const WorldStats stats = run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = Bytes(16);
    comm.alltoall(std::move(out));
  });
  EXPECT_EQ(stats.total_messages, static_cast<std::uint64_t>(P) * (P - 1));
  EXPECT_EQ(stats.total_bytes, static_cast<std::uint64_t>(P) * (P - 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MiniMpiTest, ::testing::Values(1, 2, 3, 4, 8));

TEST(MiniMpi, ExceptionPropagates) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
                         }),
               std::runtime_error);
}

TEST(MiniMpi, LargePayloadIntegrity) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Bytes big(1 << 20);
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
      comm.send(1, std::move(big));
    } else {
      const Bytes got = comm.recv(0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 20));
      for (std::size_t i = 0; i < got.size(); i += 4097) {
        EXPECT_EQ(got[i], static_cast<std::uint8_t>(i * 31));
      }
    }
  });
}

}  // namespace
}  // namespace photon
