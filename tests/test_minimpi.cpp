#include "mp/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace photon {
namespace {

Bytes make_payload(int src, int dst, int tag = 0) {
  Bytes b(12);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dst, 4);
  std::memcpy(b.data() + 8, &tag, 4);
  return b;
}

class MiniMpiTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiTest, RankAndSize) {
  const int P = GetParam();
  std::atomic<int> checks{0};
  run_world(P, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), P);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), P);
    checks.fetch_add(1);
  });
  EXPECT_EQ(checks.load(), P);
}

TEST_P(MiniMpiTest, RingSendRecv) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    comm.send(next, make_payload(comm.rank(), next));
    const Bytes got = comm.recv(prev);
    int src = -1, dst = -1;
    std::memcpy(&src, got.data(), 4);
    std::memcpy(&dst, got.data() + 4, 4);
    EXPECT_EQ(src, prev);
    EXPECT_EQ(dst, comm.rank());
  });
}

TEST_P(MiniMpiTest, MessagesArriveInOrder) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send(P - 1, make_payload(0, P - 1, i));
    } else if (comm.rank() == P - 1) {
      for (int i = 0; i < 50; ++i) {
        const Bytes got = comm.recv(0);
        int tag = -1;
        std::memcpy(&tag, got.data() + 8, 4);
        EXPECT_EQ(tag, i);
      }
    }
  });
}

TEST_P(MiniMpiTest, AlltoallDeliversEverything) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d);
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      int src = -1, dst = -1;
      std::memcpy(&src, in[static_cast<std::size_t>(s)].data(), 4);
      std::memcpy(&dst, in[static_cast<std::size_t>(s)].data() + 4, 4);
      EXPECT_EQ(src, s);
      EXPECT_EQ(dst, comm.rank());
    }
  });
}

TEST_P(MiniMpiTest, AlltoallWithEmptyBuffers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));  // all empty
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    for (const Bytes& b : in) EXPECT_TRUE(b.empty());
  });
}

TEST_P(MiniMpiTest, BarrierSeparatesPhases) {
  const int P = GetParam();
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run_world(P, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all P phase-1 increments.
    if (phase1.load() != P) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(MiniMpiTest, RepeatedBarriers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
}

TEST_P(MiniMpiTest, AllreduceSum) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, P * (P + 1) / 2.0);
  });
}

TEST_P(MiniMpiTest, AllreduceMax) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank() * 10));
    EXPECT_DOUBLE_EQ(m, (P - 1) * 10.0);
  });
}

TEST_P(MiniMpiTest, AllreduceU64) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const std::uint64_t total = comm.allreduce_sum_u64(100);
    EXPECT_EQ(total, static_cast<std::uint64_t>(P) * 100u);
  });
}

TEST_P(MiniMpiTest, RepeatedAllreducesDoNotCrossTalk) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      const double total = comm.allreduce_sum(static_cast<double>(i));
      EXPECT_DOUBLE_EQ(total, static_cast<double>(i * P));
    }
  });
}

TEST_P(MiniMpiTest, TrafficCountersExcludeSelf) {
  const int P = GetParam();
  const WorldStats stats = run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = Bytes(16);
    comm.alltoall(std::move(out));
  });
  EXPECT_EQ(stats.total_messages, static_cast<std::uint64_t>(P) * (P - 1));
  EXPECT_EQ(stats.total_bytes, static_cast<std::uint64_t>(P) * (P - 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MiniMpiTest, ::testing::Values(1, 2, 3, 4, 8));

TEST_P(MiniMpiTest, TagsKeepStreamsSeparate) {
  // A send on one tag must never be received on another: post photon-style
  // traffic on tag 0 and record-style traffic on tag 1 in interleaved order,
  // then drain them in the opposite order.
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_world(P, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    comm.send(next, make_payload(comm.rank(), next, 100), 0);
    comm.send(next, make_payload(comm.rank(), next, 200), 1);
    int tag = -1;
    const Bytes rec = comm.recv(prev, 1);  // drain tag 1 first
    std::memcpy(&tag, rec.data() + 8, 4);
    EXPECT_EQ(tag, 200);
    const Bytes photon = comm.recv(prev, 0);
    std::memcpy(&tag, photon.data() + 8, 4);
    EXPECT_EQ(tag, 100);
  });
}

TEST_P(MiniMpiTest, SplitPhaseAlltoallDeliversEverything) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d);
    PendingExchange pending = comm.alltoall_start(std::move(out));
    // Simulated compute between start and finish.
    comm.barrier();
    const std::vector<Bytes> in = pending.finish();
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      int src = -1, dst = -1;
      std::memcpy(&src, in[static_cast<std::size_t>(s)].data(), 4);
      std::memcpy(&dst, in[static_cast<std::size_t>(s)].data() + 4, 4);
      EXPECT_EQ(src, s);
      EXPECT_EQ(dst, comm.rank());
    }
  });
}

TEST_P(MiniMpiTest, OverlappedExchangesDrainInOrder) {
  // Two exchanges in flight on the same tag finish in FIFO order.
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> round1(static_cast<std::size_t>(P)), round2(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      round1[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d, 1);
      round2[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d, 2);
    }
    PendingExchange first = comm.alltoall_start(std::move(round1));
    PendingExchange second = comm.alltoall_start(std::move(round2));
    int tag = -1;
    for (const Bytes& b : first.finish()) {
      std::memcpy(&tag, b.data() + 8, 4);
      EXPECT_EQ(tag, 1);
    }
    for (const Bytes& b : second.finish()) {
      std::memcpy(&tag, b.data() + 8, 4);
      EXPECT_EQ(tag, 2);
    }
  });
}

TEST(MiniMpi, FinishTwiceThrows) {
  run_world(2, [](Comm& comm) {
    PendingExchange pending = comm.alltoall_start(std::vector<Bytes>(2));
    pending.finish();
    EXPECT_THROW(pending.finish(), std::logic_error);
  });
}

TEST(MiniMpi, TagOutOfRangeThrows) {
  run_world(1, [](Comm& comm) {
    EXPECT_THROW(comm.send(0, Bytes(), kNumTags), std::invalid_argument);
    EXPECT_THROW(comm.recv(0, -1), std::invalid_argument);
  });
}

TEST(MiniMpi, WaitSecondsCountsBlockedRecv) {
  // Rank 1 blocks in recv (on tag 1) while rank 0 sleeps before sending: the
  // wait clock must record the block, attributed to the waited-on tag only.
  // The flag + sleep keeps the assertion off a scheduler race: rank 0 only
  // starts its sleep once rank 1 is at most a few instructions from recv, so
  // any nonzero wait is expected and asserted as > 0 (not a duration bound).
  double waited = -1.0, waited_other_tag = -1.0, unwaited = -1.0;
  std::atomic<bool> receiver_ready{false};
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      while (!receiver_ready.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.send(1, Bytes(8), 1);
    } else {
      receiver_ready.store(true);
      comm.recv(0, 1);
      waited = comm.wait_seconds(1);
      waited_other_tag = comm.wait_seconds(0);
    }
  });
  EXPECT_GT(waited, 0.0);
  EXPECT_DOUBLE_EQ(waited_other_tag, 0.0);

  // A pre-delivered message costs nothing: the barrier orders rank 0's send
  // before rank 1's recv, so the fast path adds exactly zero wait.
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, Bytes(8));
      comm.barrier();
    } else {
      comm.barrier();  // after the barrier the message is certainly delivered
      comm.recv(0);
      unwaited = comm.wait_seconds();
    }
  });
  EXPECT_DOUBLE_EQ(unwaited, 0.0);
}

TEST(MiniMpi, ExceptionPropagates) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
                         }),
               std::runtime_error);
}

// --- Fault model (mp/fault.hpp): deadlines, heartbeats, scripted kills,
// drops and delays. These pin the substrate-level guarantees the elastic
// runner builds on; backend-level recovery is pinned in test_faults.

TEST(MiniMpiFaults, RecvDeadlineTimesOutWithTypedError) {
  // A bounded recv with no sender must resolve to a typed kTimeout — and the
  // time blocked on the expired attempts still lands on the wait clock.
  CommErrorKind kind = CommErrorKind::kPeerDead;
  double waited = -1.0;
  std::uint64_t retries = 0;
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 1) {
      try {
        comm.recv(0, 0, 0.02);
        FAIL() << "recv returned without a message";
      } catch (const CommError& e) {
        kind = e.kind();
        waited = comm.wait_seconds(0);
        retries = comm.deadline_retries();
      }
    } else {
      // Outlive the full retry budget (0.02 * (1+2+4+8) = 0.3s) so the peer
      // times out instead of seeing us exit.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  });
  EXPECT_EQ(kind, CommErrorKind::kTimeout);
  EXPECT_GT(waited, 0.0);
  EXPECT_GT(retries, 0u);
}

TEST(MiniMpiFaults, KillUnblocksBlockedPeersWithoutDeadlines) {
  // Fail-stop: an announced death must wake peers blocked in an UNBOUNDED
  // recv — the no-hang guarantee needs no deadline policy when deaths are
  // announced.
  FaultPlan plan;
  plan.add_kill({0, FaultPoint::kBeforeBatch, 0});
  WorldOptions opt;
  opt.plan = &plan;
  try {
    run_world(3, opt, [&](Comm& comm) {
      comm.batch_tick(0);  // rank 0 dies here
      comm.recv(0, 0);     // would block forever without the cascade
      FAIL() << "recv from a dead rank returned";
    });
    FAIL() << "expected WorldFailure";
  } catch (const WorldFailure& f) {
    ASSERT_EQ(f.dead_ranks.size(), 1u);
    EXPECT_EQ(f.dead_ranks[0], 0);
    EXPECT_EQ(f.aborted_ranks, 2);
    EXPECT_FALSE(f.timed_out);
  }
}

TEST(MiniMpiFaults, SilentDeathIsDeclaredByTheHeartbeatDetector) {
  // announce_death=false models a partition: only the failure detector can
  // discover the loss, via the stale per-batch heartbeat counter.
  FaultPlan plan;
  plan.add_kill({0, FaultPoint::kBeforeBatch, 1});
  WorldOptions opt;
  opt.plan = &plan;
  opt.policy.deadline_s = 0.02;
  opt.policy.retries = 2;
  opt.policy.heartbeats = true;
  opt.policy.announce_death = false;
  CommErrorKind kind = CommErrorKind::kTimeout;
  try {
    run_world(2, opt, [&](Comm& comm) {
      comm.batch_tick(0);
      if (comm.rank() == 0) {
        comm.send(1, Bytes(4));
        comm.batch_tick(1);  // dies here, silently
        FAIL() << "rank 0 survived its scripted kill";
      } else {
        comm.recv(0);
        comm.batch_tick(1);
        try {
          comm.recv(0);  // rank 0 is gone and will never send again
          FAIL() << "recv from a silently dead rank returned";
        } catch (const CommError& e) {
          kind = e.kind();
          throw;
        }
      }
    });
    FAIL() << "expected WorldFailure";
  } catch (const WorldFailure& f) {
    ASSERT_EQ(f.dead_ranks.size(), 1u);
    EXPECT_EQ(f.dead_ranks[0], 0);
  }
  EXPECT_EQ(kind, CommErrorKind::kPeerDead);
}

TEST(MiniMpiFaults, PeerExitUnblocksUnboundedRecv) {
  CommErrorKind kind = CommErrorKind::kTimeout;
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 1) {
      try {
        comm.recv(0);
        FAIL() << "recv from an exited rank returned";
      } catch (const CommError& e) {
        kind = e.kind();
      }
    }
  });
  EXPECT_EQ(kind, CommErrorKind::kPeerExited);
}

TEST(MiniMpiFaults, QueuedMessagesDrainBeforePeerGoneError) {
  // A message sent before the peer left must still be received; only the
  // recv past the end of the queue errors.
  bool got = false;
  CommErrorKind kind = CommErrorKind::kTimeout;
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, Bytes(4));  // then exit immediately
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      got = comm.recv(0).size() == 4;
      try {
        comm.recv(0);
      } catch (const CommError& e) {
        kind = e.kind();
      }
    }
  });
  EXPECT_TRUE(got);
  EXPECT_EQ(kind, CommErrorKind::kPeerExited);
}

TEST(MiniMpiFaults, DroppedDeliveryNeverArrives) {
  FaultPlan plan;
  plan.add_drop({0, 1, 0, 0});  // first 0->1 delivery on tag 0
  WorldOptions opt;
  opt.plan = &plan;
  run_world(2, opt, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, make_payload(0, 1, 7));
      comm.send(1, make_payload(0, 1, 8));
    } else {
      const Bytes got = comm.recv(0);
      int tag = -1;
      std::memcpy(&tag, got.data() + 8, 4);
      EXPECT_EQ(tag, 8);  // the first delivery was consumed on the wire
    }
  });
}

TEST(MiniMpiFaults, DelayedDeliveryArrivesLateAndIsWaitedFor) {
  FaultPlan plan;
  plan.add_delay({0, 1, 0, 0, 0.05});
  WorldOptions opt;
  opt.plan = &plan;
  double waited = -1.0;
  run_world(2, opt, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, Bytes(4));
      comm.barrier();  // the delivery is posted; only its visibility lags
    } else {
      comm.barrier();
      comm.recv(0);
      waited = comm.wait_seconds(0);
    }
  });
  EXPECT_GT(waited, 0.02);
}

TEST(MiniMpiFaults, RetriesAbsorbADelayWithinTheDeadlineBudget) {
  // Per-attempt deadline 0.02s but a 0.05s delivery delay: the backed-off
  // retries (0.02 * (1+2+4+8) = 0.3s budget) must absorb it without error.
  FaultPlan plan;
  plan.add_delay({0, 1, 0, 0, 0.05});
  WorldOptions opt;
  opt.plan = &plan;
  opt.policy.deadline_s = 0.02;
  std::uint64_t retries = 0;
  bool received = false;
  run_world(2, opt, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, Bytes(4));
    } else {
      received = comm.recv(0).size() == 4;
      retries = comm.deadline_retries();
    }
  });
  EXPECT_TRUE(received);
  EXPECT_GT(retries, 0u);
}

TEST(MiniMpiFaults, BarrierDeadlineTimesOutTyped) {
  WorldOptions opt;
  opt.policy.deadline_s = 0.02;
  opt.policy.retries = 1;
  CommErrorKind kind = CommErrorKind::kPeerDead;
  std::atomic<bool> late_aborted{false};
  run_world(2, opt, [&](Comm& comm) {
    if (comm.rank() == 0) {
      try {
        comm.barrier();
        FAIL() << "barrier completed with a missing rank";
      } catch (const CommError& e) {
        kind = e.kind();
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      // By now rank 0 gave up and exited; this barrier aborts instead of
      // waiting for a world that can never assemble.
      try {
        comm.barrier();
      } catch (const CommError&) {
        late_aborted.store(true);
      }
    }
  });
  EXPECT_EQ(kind, CommErrorKind::kTimeout);
  EXPECT_TRUE(late_aborted.load());
}

TEST(MiniMpiFaults, FinishDeadlineTimesOutTyped) {
  CommErrorKind kind = CommErrorKind::kPeerDead;
  std::atomic<bool> done{false};
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      PendingExchange pending = comm.alltoall_start(std::vector<Bytes>(2), 1);
      try {
        pending.finish(0.01);
        FAIL() << "finish completed without the peer's buffer";
      } catch (const CommError& e) {
        kind = e.kind();
      }
      done.store(true);
    } else {
      // Never participates on tag 1; just outlives rank 0's deadline.
      while (!done.load()) std::this_thread::yield();
    }
  });
  EXPECT_EQ(kind, CommErrorKind::kTimeout);
}

TEST(MiniMpiFaults, DropAndDelayMatchTheNthDelivery) {
  FaultPlan plan;
  plan.add_drop({0, 1, 0, 1});
  plan.add_delay({0, 1, 0, 2, 0.5});
  double delay = 0.0;
  EXPECT_TRUE(plan.on_delivery(0, 1, 0, delay));  // nth=0: untouched
  EXPECT_DOUBLE_EQ(delay, 0.0);
  EXPECT_FALSE(plan.on_delivery(0, 1, 0, delay));  // nth=1: dropped
  EXPECT_TRUE(plan.on_delivery(0, 1, 0, delay));   // nth=2: delayed
  EXPECT_DOUBLE_EQ(delay, 0.5);
  delay = 0.0;
  EXPECT_TRUE(plan.on_delivery(1, 0, 0, delay));  // other direction: untouched
  EXPECT_DOUBLE_EQ(delay, 0.0);
}

TEST(MiniMpiFaults, ParseFaultPlanSpecGrammar) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan(
      "kill:rank=1,batch=2,point=mid;drop:src=0,dst=1,nth=3;delay:src=1,dst=0,ms=50,tag=1",
      plan, error))
      << error;
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.should_kill(1, FaultPoint::kMidExchange, 1));
  EXPECT_FALSE(plan.should_kill(1, FaultPoint::kBeforeBatch, 2));
  EXPECT_TRUE(plan.should_kill(1, FaultPoint::kMidExchange, 2));
  EXPECT_FALSE(plan.should_kill(1, FaultPoint::kMidExchange, 2));  // one-shot

  FaultPlan bad;
  EXPECT_FALSE(parse_fault_plan("kill:batch=2", bad, error));
  EXPECT_FALSE(parse_fault_plan("drop:src=0", bad, error));
  EXPECT_FALSE(parse_fault_plan("delay:src=0,dst=1", bad, error));
  EXPECT_FALSE(parse_fault_plan("explode:rank=1", bad, error));
  EXPECT_FALSE(parse_fault_plan("kill:rank=1,point=sometime", bad, error));
  EXPECT_FALSE(parse_fault_plan("", bad, error));
}

TEST(MiniMpi, LargePayloadIntegrity) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Bytes big(1 << 20);
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
      comm.send(1, std::move(big));
    } else {
      const Bytes got = comm.recv(0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 20));
      for (std::size_t i = 0; i < got.size(); i += 4097) {
        EXPECT_EQ(got[i], static_cast<std::uint8_t>(i * 31));
      }
    }
  });
}

}  // namespace
}  // namespace photon
