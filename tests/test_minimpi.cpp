#include "mp/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace photon {
namespace {

Bytes make_payload(int src, int dst, int tag = 0) {
  Bytes b(12);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dst, 4);
  std::memcpy(b.data() + 8, &tag, 4);
  return b;
}

class MiniMpiTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiTest, RankAndSize) {
  const int P = GetParam();
  std::atomic<int> checks{0};
  run_world(P, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), P);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), P);
    checks.fetch_add(1);
  });
  EXPECT_EQ(checks.load(), P);
}

TEST_P(MiniMpiTest, RingSendRecv) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    comm.send(next, make_payload(comm.rank(), next));
    const Bytes got = comm.recv(prev);
    int src = -1, dst = -1;
    std::memcpy(&src, got.data(), 4);
    std::memcpy(&dst, got.data() + 4, 4);
    EXPECT_EQ(src, prev);
    EXPECT_EQ(dst, comm.rank());
  });
}

TEST_P(MiniMpiTest, MessagesArriveInOrder) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send(P - 1, make_payload(0, P - 1, i));
    } else if (comm.rank() == P - 1) {
      for (int i = 0; i < 50; ++i) {
        const Bytes got = comm.recv(0);
        int tag = -1;
        std::memcpy(&tag, got.data() + 8, 4);
        EXPECT_EQ(tag, i);
      }
    }
  });
}

TEST_P(MiniMpiTest, AlltoallDeliversEverything) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d);
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      int src = -1, dst = -1;
      std::memcpy(&src, in[static_cast<std::size_t>(s)].data(), 4);
      std::memcpy(&dst, in[static_cast<std::size_t>(s)].data() + 4, 4);
      EXPECT_EQ(src, s);
      EXPECT_EQ(dst, comm.rank());
    }
  });
}

TEST_P(MiniMpiTest, AlltoallWithEmptyBuffers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));  // all empty
    const std::vector<Bytes> in = comm.alltoall(std::move(out));
    for (const Bytes& b : in) EXPECT_TRUE(b.empty());
  });
}

TEST_P(MiniMpiTest, BarrierSeparatesPhases) {
  const int P = GetParam();
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run_world(P, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all P phase-1 increments.
    if (phase1.load() != P) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(MiniMpiTest, RepeatedBarriers) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
}

TEST_P(MiniMpiTest, AllreduceSum) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, P * (P + 1) / 2.0);
  });
}

TEST_P(MiniMpiTest, AllreduceMax) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank() * 10));
    EXPECT_DOUBLE_EQ(m, (P - 1) * 10.0);
  });
}

TEST_P(MiniMpiTest, AllreduceU64) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    const std::uint64_t total = comm.allreduce_sum_u64(100);
    EXPECT_EQ(total, static_cast<std::uint64_t>(P) * 100u);
  });
}

TEST_P(MiniMpiTest, RepeatedAllreducesDoNotCrossTalk) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      const double total = comm.allreduce_sum(static_cast<double>(i));
      EXPECT_DOUBLE_EQ(total, static_cast<double>(i * P));
    }
  });
}

TEST_P(MiniMpiTest, TrafficCountersExcludeSelf) {
  const int P = GetParam();
  const WorldStats stats = run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = Bytes(16);
    comm.alltoall(std::move(out));
  });
  EXPECT_EQ(stats.total_messages, static_cast<std::uint64_t>(P) * (P - 1));
  EXPECT_EQ(stats.total_bytes, static_cast<std::uint64_t>(P) * (P - 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MiniMpiTest, ::testing::Values(1, 2, 3, 4, 8));

TEST_P(MiniMpiTest, TagsKeepStreamsSeparate) {
  // A send on one tag must never be received on another: post photon-style
  // traffic on tag 0 and record-style traffic on tag 1 in interleaved order,
  // then drain them in the opposite order.
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  run_world(P, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % P;
    const int prev = (comm.rank() + P - 1) % P;
    comm.send(next, make_payload(comm.rank(), next, 100), 0);
    comm.send(next, make_payload(comm.rank(), next, 200), 1);
    int tag = -1;
    const Bytes rec = comm.recv(prev, 1);  // drain tag 1 first
    std::memcpy(&tag, rec.data() + 8, 4);
    EXPECT_EQ(tag, 200);
    const Bytes photon = comm.recv(prev, 0);
    std::memcpy(&tag, photon.data() + 8, 4);
    EXPECT_EQ(tag, 100);
  });
}

TEST_P(MiniMpiTest, SplitPhaseAlltoallDeliversEverything) {
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> out(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) out[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d);
    PendingExchange pending = comm.alltoall_start(std::move(out));
    // Simulated compute between start and finish.
    comm.barrier();
    const std::vector<Bytes> in = pending.finish();
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      int src = -1, dst = -1;
      std::memcpy(&src, in[static_cast<std::size_t>(s)].data(), 4);
      std::memcpy(&dst, in[static_cast<std::size_t>(s)].data() + 4, 4);
      EXPECT_EQ(src, s);
      EXPECT_EQ(dst, comm.rank());
    }
  });
}

TEST_P(MiniMpiTest, OverlappedExchangesDrainInOrder) {
  // Two exchanges in flight on the same tag finish in FIFO order.
  const int P = GetParam();
  run_world(P, [&](Comm& comm) {
    std::vector<Bytes> round1(static_cast<std::size_t>(P)), round2(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      round1[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d, 1);
      round2[static_cast<std::size_t>(d)] = make_payload(comm.rank(), d, 2);
    }
    PendingExchange first = comm.alltoall_start(std::move(round1));
    PendingExchange second = comm.alltoall_start(std::move(round2));
    int tag = -1;
    for (const Bytes& b : first.finish()) {
      std::memcpy(&tag, b.data() + 8, 4);
      EXPECT_EQ(tag, 1);
    }
    for (const Bytes& b : second.finish()) {
      std::memcpy(&tag, b.data() + 8, 4);
      EXPECT_EQ(tag, 2);
    }
  });
}

TEST(MiniMpi, FinishTwiceThrows) {
  run_world(2, [](Comm& comm) {
    PendingExchange pending = comm.alltoall_start(std::vector<Bytes>(2));
    pending.finish();
    EXPECT_THROW(pending.finish(), std::logic_error);
  });
}

TEST(MiniMpi, TagOutOfRangeThrows) {
  run_world(1, [](Comm& comm) {
    EXPECT_THROW(comm.send(0, Bytes(), kNumTags), std::invalid_argument);
    EXPECT_THROW(comm.recv(0, -1), std::invalid_argument);
  });
}

TEST(MiniMpi, WaitSecondsCountsBlockedRecv) {
  // Rank 1 blocks in recv (on tag 1) while rank 0 sleeps before sending: the
  // wait clock must record the block, attributed to the waited-on tag only.
  // The flag + sleep keeps the assertion off a scheduler race: rank 0 only
  // starts its sleep once rank 1 is at most a few instructions from recv, so
  // any nonzero wait is expected and asserted as > 0 (not a duration bound).
  double waited = -1.0, waited_other_tag = -1.0, unwaited = -1.0;
  std::atomic<bool> receiver_ready{false};
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      while (!receiver_ready.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.send(1, Bytes(8), 1);
    } else {
      receiver_ready.store(true);
      comm.recv(0, 1);
      waited = comm.wait_seconds(1);
      waited_other_tag = comm.wait_seconds(0);
    }
  });
  EXPECT_GT(waited, 0.0);
  EXPECT_DOUBLE_EQ(waited_other_tag, 0.0);

  // A pre-delivered message costs nothing: the barrier orders rank 0's send
  // before rank 1's recv, so the fast path adds exactly zero wait.
  run_world(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, Bytes(8));
      comm.barrier();
    } else {
      comm.barrier();  // after the barrier the message is certainly delivered
      comm.recv(0);
      unwaited = comm.wait_seconds();
    }
  });
  EXPECT_DOUBLE_EQ(unwaited, 0.0);
}

TEST(MiniMpi, ExceptionPropagates) {
  EXPECT_THROW(run_world(2,
                         [](Comm& comm) {
                           if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
                         }),
               std::runtime_error);
}

TEST(MiniMpi, LargePayloadIntegrity) {
  run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Bytes big(1 << 20);
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
      comm.send(1, std::move(big));
    } else {
      const Bytes got = comm.recv(0);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 20));
      for (std::size_t i = 0; i < got.size(); i += 4097) {
        EXPECT_EQ(got[i], static_cast<std::uint8_t>(i * 31));
      }
    }
  });
}

}  // namespace
}  // namespace photon
